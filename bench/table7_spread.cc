// Table 7 reproduction: influence-spread parity across solvers as Q.k
// varies. The paper reports "almost no difference" between WRIS, RR(θ̂_w),
// RR and IRR — the indexes give up no result quality for their speed.
//
// Spread here is evaluated by forward Monte-Carlo simulation of the
// targeted objective E[Σ_{v ∈ I(S)} φ(v,Q)] for the seed sets each solver
// returns (the paper's expected-influence columns). A second, smaller
// table adds the RR(θ̂_w) column, mirroring the paper's news-only check of
// Lemma 3 vs Lemma 4 parity.
#include <iostream>

#include "bench_common.h"
#include "index/irr_index.h"
#include "index/rr_index.h"
#include "propagation/forward_simulator.h"
#include "sampling/wris_solver.h"

namespace {

using namespace kbtim;
using namespace kbtim::bench;

double SimulatedSpread(const Environment& env,
                       const std::vector<VertexId>& seeds, const Query& q,
                       uint32_t threads) {
  std::vector<double> phi(env.graph().num_vertices(), 0.0);
  for (VertexId v = 0; v < phi.size(); ++v) {
    phi[v] = env.tfidf().Phi(v, q);
  }
  ForwardSimulator sim(env.graph(), PropagationModel::kIndependentCascade,
                       env.ic_probs());
  SpreadEstimateOptions opts;
  opts.num_simulations = 4000;
  opts.num_threads = threads;
  opts.seed = 97;
  return sim.EstimateWeightedSpread(seeds, phi, opts);
}

int MainParity(const DatasetSpec& spec, const BenchFlags& flags) {
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_ic_pfor_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }
  auto rr = RrIndex::Open(*dir);
  auto irr = IrrIndex::Open(*dir);
  if (!rr.ok() || !irr.ok()) return 1;

  OnlineSolverOptions wopts;
  wopts.epsilon = flags.epsilon;
  wopts.num_threads = flags.threads;
  WrisSolver wris(env->graph(), env->tfidf(),
                  PropagationModel::kIndependentCascade, env->ic_probs(),
                  wopts);

  std::cout << "(" << spec.name
            << ")  simulated targeted spread, |Q.T| = 5\n";
  TablePrinter table({"Q.k", "WRIS", "RR", "IRR"});
  for (uint32_t k = 10; k <= 50; k += 10) {
    QueryGeneratorOptions qopts;
    qopts.queries_per_length = 2;  // spread evaluation is the bottleneck
    qopts.min_keywords = 5;
    qopts.max_keywords = 5;
    qopts.k = k;
    qopts.seed = 500;  // same queries at every k: spread monotone in k
    auto queries = env->Queries(qopts);
    if (!queries.ok()) return 1;
    double wris_spread = 0, rr_spread = 0, irr_spread = 0;
    int counted = 0;
    for (const Query& q : *queries) {
      auto w = wris.Solve(q);
      auto r = rr->Query(q);
      auto i = irr->Query(q);
      if (!w.ok() || !r.ok() || !i.ok()) return 1;
      wris_spread += SimulatedSpread(*env, w->seeds, q, flags.threads);
      rr_spread += SimulatedSpread(*env, r->seeds, q, flags.threads);
      irr_spread += SimulatedSpread(*env, i->seeds, q, flags.threads);
      ++counted;
    }
    table.AddRow({std::to_string(k),
                  FormatDouble(wris_spread / counted, 1),
                  FormatDouble(rr_spread / counted, 1),
                  FormatDouble(irr_spread / counted, 1)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return 0;
}

int ThetaHatParity(const BenchFlags& flags) {
  // Small news-like instance where the conservative θ̂_w build is feasible.
  DatasetSpec spec = ScaleSpec(NewsLikeSeries(8)[0], 0.25);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) return 1;
  auto env = std::move(*env_or);

  std::string dirs[2];
  for (int i = 0; i < 2; ++i) {
    IndexBuildOptions opts = DefaultBuildOptions(flags);
    opts.epsilon = 0.8;
    opts.bound = i == 0 ? ThetaBoundKind::kCompact
                        : ThetaBoundKind::kConservative;
    opts.max_theta_per_keyword = uint64_t{1} << 21;
    dirs[i] = CacheRoot() + "/table7_hat_" + std::to_string(i);
    std::filesystem::create_directories(dirs[i]);
    IndexBuilder builder(env->graph(), env->tfidf(), env->ic_probs(),
                         opts);
    auto report = builder.Build(dirs[i]);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
  }
  auto rr_compact = RrIndex::Open(dirs[0]);
  auto rr_hat = RrIndex::Open(dirs[1]);
  if (!rr_compact.ok() || !rr_hat.ok()) return 1;

  std::cout << "(theta vs theta_hat parity, small news-like instance)\n";
  TablePrinter table({"Q.k", "RR(theta)", "RR(theta_hat)"});
  for (uint32_t k : {10u, 30u, 50u}) {
    QueryGeneratorOptions qopts;
    qopts.queries_per_length = 2;
    qopts.min_keywords = 3;
    qopts.max_keywords = 3;
    qopts.k = k;
    qopts.seed = 300;
    auto queries = GenerateQueries(env->profiles(), qopts);
    if (!queries.ok()) return 1;
    double compact = 0, hat = 0;
    int counted = 0;
    for (const Query& q : *queries) {
      auto a = rr_compact->Query(q);
      auto b = rr_hat->Query(q);
      if (!a.ok() || !b.ok()) return 1;
      compact += SimulatedSpread(*env, a->seeds, q, flags.threads);
      hat += SimulatedSpread(*env, b->seeds, q, flags.threads);
      ++counted;
    }
    table.AddRow({std::to_string(k), FormatDouble(compact / counted, 2),
                  FormatDouble(hat / counted, 2)});
  }
  table.Print(std::cout);
  std::filesystem::remove_all(dirs[0]);
  std::filesystem::remove_all(dirs[1]);
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table 7: influence-spread parity across solvers", flags);
  if (MainParity(ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  if (MainParity(ScaleSpec(DefaultTwitterSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  if (ThetaHatParity(flags) != 0) return 1;
  std::cout << "expected shape: all columns within MC noise of each other "
               "at every Q.k, and spread grows monotonically with Q.k "
               "(paper Table 7)\n";
  return 0;
}

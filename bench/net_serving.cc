// Chaos bench for the sharded network serving tier (PR 10): a 4-process
// shard fleet behind the scatter-gather Router, with a shard SIGKILLed
// and restarted MID-BURST, writes BENCH_net.json.
//
//   1. Golden phase: fault-free answers per query from an in-process
//      RrIndex — the byte-equality reference for everything below.
//   2. Pre-kill burst: C clients × iters queries through the router over
//      the healthy fleet. Every answer must equal its golden; p50/p99
//      recorded.
//   3. Kill burst: the same load, but one shard process (the rendezvous
//      owner of the first query keyword) is SIGKILLed once ~25% of the
//      burst has completed and respawned ON THE SAME PORT at ~60%. With
//      replication_factor 2 the dead shard's keywords hedge to their
//      surviving replica: every request must resolve OK (golden-equal) or
//      degraded (equal to the reduced-query golden) — never hang, never
//      silently-wrong, and with the hedge in play, never fail.
//   4. Recovery probe: after the burst, query until the router serves a
//      full golden-equal answer with the victim's breaker CLOSED — the
//      "one probe cycle after restart" contract; attempts and wall time
//      land in the JSON.
//   5. Post-recovery burst: identical to phase 2 over the healed fleet.
//
// Flags on top of bench_common.h:
//   --workers N              QueryService workers per shard (default 2)
//   --iters N                queries per client per burst (default 4x
//                            --queries)
//   --assert-shard-recovery  CI gate: every kill-burst request resolves
//                            OK or degraded (zero failed, zero
//                            undetected-wrong), the fleet returns to
//                            golden-equal full answers, and the
//                            post-recovery p99 is <= 1.5x the pre-kill
//                            p99 (+3ms absolute slack for short runs)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "index/rr_index.h"
#include "net/router.h"

namespace kbtim {
namespace bench {
namespace {

/// One forked shard process serving `dir` on `port`.
struct ShardProc {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// Forks + execs the shard binary; blocks until the child prints its
/// "LISTENING <port>" readiness line (so the fleet is connectable on
/// return). The child dies with the bench (PDEATHSIG) even if we crash.
StatusOr<ShardProc> SpawnShard(const std::string& binary,
                               const std::string& dir, uint16_t port,
                               uint32_t workers) {
  int fds[2];
  if (::pipe(fds) != 0) return Status::IOError("pipe failed");
  const pid_t pid = ::fork();
  if (pid < 0) return Status::IOError("fork failed");
  if (pid == 0) {
#ifdef __linux__
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string port_arg = std::to_string(port);
    const std::string workers_arg = std::to_string(workers);
    ::execl(binary.c_str(), binary.c_str(), "--dir", dir.c_str(), "--port",
            port_arg.c_str(), "--workers", workers_arg.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  ::close(fds[1]);
  std::string line;
  char ch = 0;
  while (::read(fds[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  ::close(fds[0]);
  unsigned bound = 0;
  if (std::sscanf(line.c_str(), "LISTENING %u", &bound) != 1) {
    ::kill(pid, SIGKILL);
    int ignored = 0;
    ::waitpid(pid, &ignored, 0);
    return Status::Unavailable("shard process failed to start: '" + line +
                               "'");
  }
  ShardProc proc;
  proc.pid = pid;
  proc.port = static_cast<uint16_t>(bound);
  return proc;
}

void KillShard(ShardProc* proc, int sig) {
  if (proc->pid <= 0) return;
  ::kill(proc->pid, sig);
  int status = 0;
  ::waitpid(proc->pid, &status, 0);
  proc->pid = -1;
}

/// One classified router answer (classification happens after the burst,
/// against goldens computed single-threaded).
struct Sample {
  size_t query_idx = 0;
  double latency_ms = 0.0;
  StatusOr<SeedSetResult> result{Status::Unavailable("unset")};
};

struct BurstOutcome {
  uint64_t requests = 0;
  uint64_t ok_full = 0;     ///< Non-degraded, equal to the full golden.
  uint64_t ok_degraded = 0; ///< Degraded, equal to the reduced golden.
  uint64_t failed = 0;      ///< Non-OK status (availability loss).
  uint64_t wrong = 0;       ///< The invariant breaker: served but != golden.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t n = sorted_in_place->size();
  size_t idx = static_cast<size_t>(p * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return (*sorted_in_place)[idx];
}

bool SameAnswer(const SeedSetResult& a, const SeedSetResult& b) {
  return a.seeds == b.seeds && a.marginal_gains == b.marginal_gains &&
         a.estimated_influence == b.estimated_influence;
}

/// Drives `clients` threads × `iters` queries through the router,
/// recording every answer. `on_progress` (optional) sees the global
/// completed count after each request — the kill/restart trigger.
std::vector<Sample> RunBurst(net::Router& router,
                             const std::vector<Query>& queries,
                             uint32_t clients, uint32_t iters,
                             const std::function<void(uint64_t)>& on_progress) {
  std::vector<std::vector<Sample>> per_client(clients);
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      per_client[c].reserve(iters);
      for (uint32_t i = 0; i < iters; ++i) {
        Sample sample;
        sample.query_idx = (c + i) % queries.size();
        WallTimer timer;
        sample.result = router.Query(queries[sample.query_idx]);
        sample.latency_ms = timer.ElapsedSeconds() * 1e3;
        per_client[c].push_back(std::move(sample));
        const uint64_t done = completed.fetch_add(1) + 1;
        if (on_progress) on_progress(done);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<Sample> all;
  for (auto& v : per_client) {
    for (auto& s : v) all.push_back(std::move(s));
  }
  return all;
}

/// Scores a burst against the per-query full goldens; degraded answers
/// are verified against a freshly computed reduced-query golden.
StatusOr<BurstOutcome> Classify(const std::vector<Sample>& samples,
                                const std::vector<Query>& queries,
                                const std::vector<SeedSetResult>& goldens,
                                RrIndex& rr) {
  BurstOutcome out;
  std::vector<double> latencies;
  latencies.reserve(samples.size());
  for (const Sample& sample : samples) {
    ++out.requests;
    latencies.push_back(sample.latency_ms);
    if (!sample.result.ok()) {
      ++out.failed;
      continue;
    }
    const SeedSetResult& got = *sample.result;
    if (!got.degraded) {
      if (SameAnswer(got, goldens[sample.query_idx])) {
        ++out.ok_full;
      } else {
        ++out.wrong;
      }
      continue;
    }
    // Degraded: correct means "exactly the answer the reduced query
    // gets" — recompute that golden from the in-process index.
    Query reduced = queries[sample.query_idx];
    std::vector<TopicId> kept;
    for (TopicId t : reduced.topics) {
      if (std::find(got.dropped_keywords.begin(),
                    got.dropped_keywords.end(),
                    t) == got.dropped_keywords.end()) {
        kept.push_back(t);
      }
    }
    reduced.topics = std::move(kept);
    if (reduced.topics.empty()) {
      ++out.wrong;  // a degraded answer with every keyword dropped
      continue;
    }
    KBTIM_ASSIGN_OR_RETURN(SeedSetResult reduced_golden, rr.Query(reduced));
    if (SameAnswer(got, reduced_golden)) {
      ++out.ok_degraded;
    } else {
      ++out.wrong;
    }
  }
  out.p50_ms = Percentile(&latencies, 0.50);
  out.p99_ms = Percentile(&latencies, 0.99);
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace kbtim

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool assert_recovery = false;
  uint32_t workers = 2;
  uint32_t iters = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-shard-recovery") == 0) {
      assert_recovery = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    }
  }
  if (iters == 0) iters = flags.queries * 4;
  PrintHeader("Network serving: shard kill + recovery under live load",
              flags);

  const DatasetSpec spec =
      ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_net_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }

  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 2;
  qopts.max_keywords = 2;
  qopts.k = 20;
  qopts.seed = 2027;
  auto queries = env->Queries(qopts);
  if (!queries.ok() || queries->empty()) return 1;

  // Phase 1: in-process goldens — the distributed tier must match these
  // byte for byte.
  auto rr_or = RrIndex::Open(*dir);
  if (!rr_or.ok()) {
    std::fprintf(stderr, "%s\n", rr_or.status().ToString().c_str());
    return 1;
  }
  RrIndex rr = std::move(*rr_or);
  std::vector<SeedSetResult> goldens;
  for (const Query& q : *queries) {
    auto golden = rr.Query(q);
    if (!golden.ok()) {
      std::fprintf(stderr, "%s\n", golden.status().ToString().c_str());
      return 1;
    }
    goldens.push_back(std::move(*golden));
  }

  // Fleet of 4 shard processes (kernel-assigned ports).
  const std::string binary =
      (std::filesystem::path(argv[0]).parent_path() /
       "example_shard_server_main")
          .string();
  constexpr uint32_t kNumShards = 4;
  std::vector<ShardProc> fleet;
  std::vector<net::ShardAddress> addresses;
  for (uint32_t s = 0; s < kNumShards; ++s) {
    auto proc = SpawnShard(binary, *dir, /*port=*/0, workers);
    if (!proc.ok()) {
      std::fprintf(stderr, "%s\n", proc.status().ToString().c_str());
      for (ShardProc& p : fleet) KillShard(&p, SIGTERM);
      return 1;
    }
    fleet.push_back(*proc);
    addresses.push_back({"127.0.0.1", proc->port});
  }

  net::RouterOptions ropts;
  ropts.replication_factor = 2;  // the hedge target the kill phase needs
  ropts.attempt_timeout_ms = 2000.0;
  ropts.client.connect_timeout_ms = 300.0;
  ropts.client.io_timeout_ms = 1000.0;
  ropts.client.max_reconnects = 1;
  ropts.breaker.failure_threshold = 2;
  ropts.breaker.backoff_ms = 100.0;  // a probe cycle is 100ms
  auto router_or = net::Router::Create(addresses, ropts);
  if (!router_or.ok()) {
    std::fprintf(stderr, "%s\n", router_or.status().ToString().c_str());
    for (ShardProc& p : fleet) KillShard(&p, SIGTERM);
    return 1;
  }
  net::Router& router = **router_or;
  const uint32_t clients = 4;
  const uint64_t burst_total = uint64_t{clients} * iters;

  // Phase 2: pre-kill burst over the healthy fleet.
  auto pre_samples = RunBurst(router, *queries, clients, iters, nullptr);
  auto pre = Classify(pre_samples, *queries, goldens, rr);
  if (!pre.ok()) {
    std::fprintf(stderr, "%s\n", pre.status().ToString().c_str());
    return 1;
  }

  // Phase 3: the chaos burst. The victim owns the first query's first
  // keyword, dies at ~25% of the burst, and respawns on its OLD port at
  // ~60% — both transitions land under live load.
  const uint32_t victim = router.ReplicasOf((*queries)[0].topics[0])[0];
  const uint16_t victim_port = fleet[victim].port;
  std::atomic<bool> killed{false}, restarted{false};
  std::atomic<bool> restart_failed{false};
  const net::RouterStats before_kill = router.stats();
  auto kill_samples = RunBurst(
      router, *queries, clients, iters, [&](uint64_t done) {
        if (done >= burst_total / 4 && !killed.exchange(true)) {
          KillShard(&fleet[victim], SIGKILL);
          std::printf("  [chaos] shard %u (port %u) SIGKILLed after %llu "
                      "requests\n",
                      victim, victim_port,
                      static_cast<unsigned long long>(done));
        }
        if (done >= (burst_total * 3) / 5 && killed.load() &&
            !restarted.exchange(true)) {
          auto revived = SpawnShard(binary, *dir, victim_port, workers);
          if (revived.ok()) {
            fleet[victim] = *revived;
            std::printf("  [chaos] shard %u respawned on port %u after "
                        "%llu requests\n",
                        victim, victim_port,
                        static_cast<unsigned long long>(done));
          } else {
            restart_failed.store(true);
            std::fprintf(stderr, "shard restart failed: %s\n",
                         revived.status().ToString().c_str());
          }
        }
      });
  auto kill = Classify(kill_samples, *queries, goldens, rr);
  if (!kill.ok()) {
    std::fprintf(stderr, "%s\n", kill.status().ToString().c_str());
    return 1;
  }
  const net::RouterStats after_kill = router.stats();
  if (!restarted.load() && !restart_failed.load()) {
    // Tiny --iters can finish the burst before the 60% trigger; restart
    // now so recovery still gets measured.
    auto revived = SpawnShard(binary, *dir, victim_port, workers);
    if (revived.ok()) {
      fleet[victim] = *revived;
    } else {
      restart_failed.store(true);
    }
  }

  // Phase 4: recovery probe — how many queries until a full golden-equal
  // answer with the victim's breaker closed again.
  uint64_t recovery_queries = 0;
  bool recovered = false;
  WallTimer recovery_timer;
  for (int attempt = 0; attempt < 500 && !restart_failed.load();
       ++attempt) {
    const size_t qi = static_cast<size_t>(attempt) % queries->size();
    auto probe = router.Query((*queries)[qi]);
    ++recovery_queries;
    if (probe.ok() && !probe->degraded && SameAnswer(*probe, goldens[qi]) &&
        router.ShardState(victim) == BreakerState::kClosed) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const double recovery_seconds = recovery_timer.ElapsedSeconds();

  // Phase 5: post-recovery burst over the healed fleet.
  auto post_samples = RunBurst(router, *queries, clients, iters, nullptr);
  auto post = Classify(post_samples, *queries, goldens, rr);
  if (!post.ok()) {
    std::fprintf(stderr, "%s\n", post.status().ToString().c_str());
    return 1;
  }
  const net::RouterStats final_stats = router.stats();

  for (ShardProc& p : fleet) KillShard(&p, SIGTERM);

  // ---- Report -------------------------------------------------------------
  const auto print_outcome = [](const char* name, const BurstOutcome& o) {
    std::printf(
        "%-11s %llu requests: %llu full, %llu degraded, %llu failed, "
        "%llu WRONG | p50 %.3f ms p99 %.3f ms\n",
        name, static_cast<unsigned long long>(o.requests),
        static_cast<unsigned long long>(o.ok_full),
        static_cast<unsigned long long>(o.ok_degraded),
        static_cast<unsigned long long>(o.failed),
        static_cast<unsigned long long>(o.wrong), o.p50_ms, o.p99_ms);
  };
  print_outcome("pre-kill:", *pre);
  print_outcome("kill-burst:", *kill);
  print_outcome("post:", *post);
  std::printf(
      "chaos deltas: %llu transport failures, %llu hedged rpcs, %llu "
      "breaker opens, %llu sheds\n",
      static_cast<unsigned long long>(after_kill.transport_failures -
                                      before_kill.transport_failures),
      static_cast<unsigned long long>(after_kill.hedged_rpcs -
                                      before_kill.hedged_rpcs),
      static_cast<unsigned long long>(after_kill.breaker_opens -
                                      before_kill.breaker_opens),
      static_cast<unsigned long long>(after_kill.breaker_sheds -
                                      before_kill.breaker_sheds));
  std::printf("recovery: %s after %llu probe queries (%.3f s)\n",
              recovered ? "golden-equal + breaker closed" : "NOT RECOVERED",
              static_cast<unsigned long long>(recovery_queries),
              recovery_seconds);
  const double p99_budget =
      std::max(1.5 * pre->p99_ms, pre->p99_ms + 3.0);
  std::printf("p99 pre-kill %.3f ms -> post-recovery %.3f ms (budget %.3f "
              "ms)\n",
              pre->p99_ms, post->p99_ms, p99_budget);

  std::FILE* json = std::fopen("BENCH_net.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_net.json\n");
    return 1;
  }
  const auto emit_outcome = [json](const char* name, const BurstOutcome& o,
                                   const char* trailing) {
    std::fprintf(
        json,
        "  \"%s\": {\"requests\": %llu, \"ok_full\": %llu, "
        "\"ok_degraded\": %llu, \"failed\": %llu, \"wrong\": %llu, "
        "\"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
        name, static_cast<unsigned long long>(o.requests),
        static_cast<unsigned long long>(o.ok_full),
        static_cast<unsigned long long>(o.ok_degraded),
        static_cast<unsigned long long>(o.failed),
        static_cast<unsigned long long>(o.wrong), o.p50_ms, o.p99_ms,
        trailing);
  };
  std::fprintf(json,
               "{\n"
               "  \"params\": {\"scale\": %.2f, \"topics\": %u, "
               "\"epsilon\": %.2f, \"queries\": %u, \"iters\": %u, "
               "\"clients\": %u, \"shards\": %u, \"workers\": %u, "
               "\"replication_factor\": %u},\n",
               flags.scale, flags.topics, flags.epsilon, flags.queries,
               iters, clients, kNumShards, workers,
               ropts.replication_factor);
  emit_outcome("pre_kill", *pre, ",");
  emit_outcome("kill_burst", *kill, ",");
  emit_outcome("post_recovery", *post, ",");
  std::fprintf(
      json,
      "  \"chaos\": {\"victim_shard\": %u, \"transport_failures\": %llu, "
      "\"hedged_rpcs\": %llu, \"breaker_opens\": %llu, "
      "\"breaker_sheds\": %llu, \"breaker_probes\": %llu, "
      "\"breaker_closes\": %llu, \"scatter_rpcs\": %llu},\n"
      "  \"recovery\": {\"recovered\": %s, \"probe_queries\": %llu, "
      "\"seconds\": %.4f},\n"
      "  \"p99_pre_ms\": %.4f,\n"
      "  \"p99_post_ms\": %.4f,\n"
      "  \"p99_budget_ms\": %.4f\n"
      "}\n",
      victim,
      static_cast<unsigned long long>(after_kill.transport_failures -
                                      before_kill.transport_failures),
      static_cast<unsigned long long>(after_kill.hedged_rpcs -
                                      before_kill.hedged_rpcs),
      static_cast<unsigned long long>(after_kill.breaker_opens -
                                      before_kill.breaker_opens),
      static_cast<unsigned long long>(after_kill.breaker_sheds -
                                      before_kill.breaker_sheds),
      static_cast<unsigned long long>(final_stats.breaker_probes),
      static_cast<unsigned long long>(final_stats.breaker_closes),
      static_cast<unsigned long long>(final_stats.scatter_rpcs),
      recovered ? "true" : "false",
      static_cast<unsigned long long>(recovery_queries), recovery_seconds,
      pre->p99_ms, post->p99_ms, p99_budget);
  std::fclose(json);
  std::printf("wrote BENCH_net.json\n");

  if (assert_recovery) {
    bool ok = true;
    const uint64_t total_wrong = pre->wrong + kill->wrong + post->wrong;
    if (total_wrong != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu answers served that match NO golden "
                   "(silently wrong)\n",
                   static_cast<unsigned long long>(total_wrong));
      ok = false;
    }
    if (pre->failed != 0 || post->failed != 0) {
      std::fprintf(stderr,
                   "FAIL: healthy-fleet bursts had failures (pre %llu, "
                   "post %llu)\n",
                   static_cast<unsigned long long>(pre->failed),
                   static_cast<unsigned long long>(post->failed));
      ok = false;
    }
    if (kill->failed != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu kill-burst requests failed outright — with "
                   "a replica per keyword every request must resolve OK "
                   "or degraded\n",
                   static_cast<unsigned long long>(kill->failed));
      ok = false;
    }
    if (kill->requests !=
        kill->ok_full + kill->ok_degraded + kill->failed + kill->wrong) {
      std::fprintf(stderr, "FAIL: kill-burst requests went unaccounted "
                           "(hang or lost reply)\n");
      ok = false;
    }
    if (after_kill.transport_failures == before_kill.transport_failures) {
      std::fprintf(stderr, "FAIL: the kill produced no transport failures "
                           "— the chaos phase proved nothing\n");
      ok = false;
    }
    if (!recovered) {
      std::fprintf(stderr, "FAIL: fleet never returned to golden-equal "
                           "full answers after the restart\n");
      ok = false;
    }
    if (post->p99_ms > p99_budget) {
      std::fprintf(stderr,
                   "FAIL: post-recovery p99 %.3f ms exceeds budget %.3f "
                   "ms (1.5x pre-kill %.3f ms)\n",
                   post->p99_ms, p99_budget, pre->p99_ms);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("shard-recovery contract: PASS\n");
  }
  return 0;
}

// Figure 4 reproduction: in-degree distributions of both datasets on
// log-log axes. The paper plots #users vs in-degree; a heavy-tailed
// (roughly straight, negatively sloped) log-log series is the expected
// shape for both graphs, with Twitter reaching much larger degrees.
#include <iostream>

#include "bench_common.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 4: in-degree distributions", flags);

  for (const DatasetSpec& base :
       {DefaultNewsSpec(flags.topics), DefaultTwitterSpec(flags.topics)}) {
    const DatasetSpec spec = ScaleSpec(base, flags.scale);
    auto dataset = BuildDataset(spec);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    std::cout << "(" << spec.name << ")  log2-binned in-degree histogram\n";
    TablePrinter table({"in_degree(bin center)", "#users"});
    for (const auto& [degree, count] :
         LogBinnedInDegreeHistogram(dataset->graph)) {
      table.AddRow({FormatDouble(degree, 1), std::to_string(count)});
    }
    table.Print(std::cout);
    std::cout << "power-law slope (log count vs log degree): "
              << FormatDouble(PowerLawSlope(dataset->graph), 2) << "\n\n";
  }
  std::cout << "expected shape: monotonically falling counts over several "
               "decades (paper Figure 4)\n";
  return 0;
}

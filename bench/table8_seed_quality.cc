// Table 8 reproduction: the qualitative case study. For two ad keywords
// ("software", "journal") the paper lists the top-8 seeds from targeted
// WRIS under IC and LT, next to the untargeted RIS seeds. Its findings:
//   * on the news graph, targeted seeds are visibly keyword-relevant;
//   * RIS returns one keyword-independent list;
//   * on the twitter graph the effect is weaker (global celebrities
//     dominate every topic).
// With synthetic profiles, "relevance" is measured as the fraction of
// seeds whose profile contains the keyword, plus the mean tf mass.
#include <iostream>

#include "bench_common.h"
#include "sampling/ris_solver.h"
#include "sampling/wris_solver.h"
#include "topics/vocabulary.h"

namespace {

using namespace kbtim;
using namespace kbtim::bench;

std::string SeedsToString(const std::vector<VertexId>& seeds,
                          const ProfileStore& profiles, TopicId w) {
  std::string out;
  for (size_t i = 0; i < std::min<size_t>(8, seeds.size()); ++i) {
    if (!out.empty()) out += " ";
    out += std::to_string(seeds[i]);
    if (profiles.Tf(seeds[i], w) > 0.0f) out += "*";
  }
  return out;
}

double Affinity(const std::vector<VertexId>& seeds,
                const ProfileStore& profiles, TopicId w) {
  if (seeds.empty()) return 0.0;
  int hits = 0;
  for (VertexId v : seeds) {
    if (profiles.Tf(v, w) > 0.0f) ++hits;
  }
  return 100.0 * hits / static_cast<double>(seeds.size());
}

int RunDataset(const DatasetSpec& spec, const BenchFlags& flags) {
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  const Vocabulary vocab = Vocabulary::Synthetic(flags.topics);

  OnlineSolverOptions opts;
  opts.epsilon = flags.epsilon;
  opts.num_threads = flags.threads;

  std::cout << "(" << spec.name
            << ")  top-8 seeds; '*' = profile contains the keyword\n";
  TablePrinter table({"method", "keyword", "seeds", "affinity%"});
  for (const char* keyword : {"software", "journal"}) {
    const TopicId w = vocab.Find(keyword);
    if (w == kInvalidTopic ||
        env->profiles().TopicTfSum(w) <= 0.0) {
      continue;
    }
    const Query q{{w}, 8};
    for (auto model : {PropagationModel::kIndependentCascade,
                       PropagationModel::kLinearThreshold}) {
      WrisSolver wris(env->graph(), env->tfidf(), model,
                      env->weights(model), opts);
      auto result = wris.Solve(q);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      table.AddRow({std::string("WRIS(") + PropagationModelName(model) +
                        ")",
                    keyword,
                    SeedsToString(result->seeds, env->profiles(), w),
                    FormatDouble(Affinity(result->seeds, env->profiles(),
                                          w),
                                 0)});
    }
    RisSolver ris(env->graph(), PropagationModel::kIndependentCascade,
                  env->ic_probs(), opts);
    auto untargeted = ris.Solve(8);
    if (!untargeted.ok()) return 1;
    table.AddRow({"RIS", keyword,
                  SeedsToString(untargeted->seeds, env->profiles(), w),
                  FormatDouble(Affinity(untargeted->seeds,
                                        env->profiles(), w),
                               0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  bool scale_given = false;
  for (int i = 1; i < argc; ++i) {
    scale_given |= std::strcmp(argv[i], "--scale") == 0;
  }
  if (!scale_given) flags.scale = 0.5;  // online-only bench, keep it quick
  PrintHeader("Table 8: example KB-TIM query results", flags);
  if (RunDataset(ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  if (RunDataset(ScaleSpec(DefaultTwitterSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  std::cout << "expected shape: WRIS rows differ per keyword with high "
               "affinity (clearest on the news-like graph); the RIS row "
               "is identical for both keywords with low affinity (paper "
               "Table 8)\n";
  return 0;
}

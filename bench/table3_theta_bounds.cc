// Table 3 reproduction: index disk size and construction time when the
// per-keyword sample count uses the conservative θ̂_w (Lemma 3, denominator
// OPT^{w}_1) versus the compact θ_w (Lemma 4, denominator OPT^{w}_K), on
// the news-like series. The paper's finding: θ̂_w-built indexes are ~9x
// larger and slower, with no quality gain (Table 7 checks quality parity).
//
// Default scale/topic/epsilon are reduced relative to the other benches —
// θ̂_w is deliberately the wasteful bound, and the 2-core container has to
// sample it. θ̂_w builds clipped by the per-keyword guardrail are marked.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  // Bench-specific defaults (overridable): quarter-size news graphs and a
  // smaller topic space keep the θ̂ builds tractable.
  bool scale_given = false, topics_given = false, eps_given = false;
  for (int i = 1; i < argc; ++i) {
    scale_given |= std::strcmp(argv[i], "--scale") == 0;
    topics_given |= std::strcmp(argv[i], "--topics") == 0;
    eps_given |= std::strcmp(argv[i], "--epsilon") == 0;
  }
  if (!scale_given) flags.scale = 0.25;
  if (!topics_given) flags.topics = 8;
  if (!eps_given) flags.epsilon = 0.8;
  PrintHeader("Table 3: theta_hat (Lemma 3) vs theta (Lemma 4) indexes",
              flags);

  TablePrinter table({"dataset", "bound", "RR_size", "IRR_size",
                      "RR_time_s", "IRR_time_s", "sum_theta"});
  for (const DatasetSpec& base : NewsLikeSeries(flags.topics)) {
    const DatasetSpec spec = ScaleSpec(base, flags.scale);
    auto env_or = Environment::Create(spec);
    if (!env_or.ok()) {
      std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
      return 1;
    }
    auto env = std::move(*env_or);
    for (ThetaBoundKind bound :
         {ThetaBoundKind::kConservative, ThetaBoundKind::kCompact}) {
      IndexBuildOptions opts = DefaultBuildOptions(flags);
      opts.bound = bound;
      opts.max_theta_per_keyword = uint64_t{1} << 21;

      // Build RR structures and IRR structures separately so each gets an
      // honest time measurement, as the paper reports them.
      double rr_seconds = 0, irr_seconds = 0;
      uint64_t rr_size = 0, irr_size = 0, sum_theta = 0;
      bool clipped = false;
      for (bool build_irr : {false, true}) {
        opts.build_rr = !build_irr;
        opts.build_irr = build_irr;
        const std::string dir = CacheRoot() + "/table3_" + spec.name + "_" +
                                ThetaBoundKindName(bound) +
                                (build_irr ? "_irr" : "_rr");
        std::filesystem::create_directories(dir);
        IndexBuilder builder(env->graph(), env->tfidf(), env->ic_probs(),
                             opts);
        auto report = builder.Build(dir);
        if (!report.ok()) {
          std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
          return 1;
        }
        sum_theta = report->total_theta;
        for (uint64_t t : report->theta_per_topic) {
          clipped |= t == opts.max_theta_per_keyword;
        }
        if (build_irr) {
          irr_seconds = report->seconds;
          irr_size = report->irr_bytes;
        } else {
          rr_seconds = report->seconds;
          rr_size = report->rr_bytes + report->lists_bytes;
        }
        std::filesystem::remove_all(dir);  // table3 indexes are one-shot
      }
      table.AddRow({spec.name,
                    std::string(ThetaBoundKindName(bound)) +
                        (clipped ? "(clipped)" : ""),
                    FormatBytes(rr_size), FormatBytes(irr_size),
                    FormatDouble(rr_seconds, 1),
                    FormatDouble(irr_seconds, 1),
                    std::to_string(sum_theta)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: theta_hat rows are several times larger "
               "and slower than theta rows at every size (paper Table 3 "
               "saw ~9x); '(clipped)' marks keywords capped by the "
               "guardrail, meaning the true theta_hat gap is even "
               "larger\n";
  return 0;
}

// Skip-ahead sampling kernels (PR 5): measures the bucketed RR samplers
// against their scalar fallbacks and writes BENCH_sampling.json.
//
//   1. Micro kernels on the laptop-scale news graph: a fixed batch of
//      uniform-root RR sets, IC scalar-Bernoulli vs skip-ahead and LT
//      linear-scan vs alias-table, through the same sampler objects with
//      only SetSkipSamplingEnabled flipped.
//   2. Bucket-size sweep: constant in-degree graphs (p = w = 1/d, so
//      every vertex is ONE probability bucket of d edges) for
//      d ∈ {2, 4, 8, 32, 128, 512}, both models — the per-bucket-size
//      crossovers that bucketed_adjacency.h's kernel classifier and
//      kLtAliasMinDegree are tuned against.
//   3. End-to-end WRIS ablation: full solves (news IC/LT, dense-news IC,
//      twitter IC), skip-ahead vs scalar, reporting the
//      SolverStats::sampling_seconds split — the number the PR-5
//      tentpole targets (≥2x at laptop scale).
//
// The sweep shows the win scales with in-degree (log-draws per ACCEPTED
// edge vs one draw per SCANNED edge), so the WRIS ablation brackets the
// regime: on the deg-2.2 default news graph the two kernels are within
// noise of each other (per-vertex scaffolding dominates at in-degree ~2),
// while the dense laptop-scale datasets deliver the headline.
//
// Extra flags on top of bench_common.h:
//   --assert-sampling-speedup   CI gate: skip-ahead must beat scalar by
//                               --speedup-threshold (default 1.5) on the
//                               sampling-bound twitter dataset AND must
//                               not regress the sparse news dataset
//                               (>= 0.85 within shared-runner noise; at
//                               full laptop scale twitter shows the ≥2x
//                               headline)
//   --speedup-threshold X       override the twitter gate threshold
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "propagation/rr_sampler.h"
#include "sampling/vertex_sampler.h"
#include "sampling/wris_solver.h"

namespace kbtim {
namespace bench {
namespace {

struct KernelPoint {
  double scalar_ms = 0.0;
  double skip_ms = 0.0;
  double mean_rr_size = 0.0;
  double speedup() const {
    return skip_ms > 0.0 ? scalar_ms / skip_ms : 0.0;
  }
};

/// Rounds per (mode, measurement): modes alternate and the fastest round
/// wins, so a background scheduling hiccup cannot fake (or hide) a
/// speedup.
constexpr int kRounds = 3;

/// Times `num_sets` uniform-root RR sets under both kernel settings
/// through one sampler (scratch reused; RNG stream restarted per mode so
/// both modes sample the same root sequence).
KernelPoint MeasureKernel(RrSampler& sampler, VertexId num_vertices,
                          uint64_t num_sets, uint64_t seed) {
  KernelPoint point;
  std::vector<VertexId> rr;
  uint64_t total_size = 0;
  // Warm-up pass per mode: lazy LT alias builds and scratch growth stay
  // out of the measured rounds.
  for (const bool skip : {false, true}) {
    SetSkipSamplingEnabled(skip);
    Rng rng(seed);
    for (uint64_t i = 0; i < num_sets / 10 + 1; ++i) {
      sampler.Sample(rng.NextU32Below(num_vertices), rng, &rr);
    }
  }
  double best[2] = {0.0, 0.0};
  for (int round = 0; round < kRounds; ++round) {
    for (const bool skip : {false, true}) {
      SetSkipSamplingEnabled(skip);
      Rng rng(seed);
      total_size = 0;
      WallTimer timer;
      for (uint64_t i = 0; i < num_sets; ++i) {
        sampler.Sample(rng.NextU32Below(num_vertices), rng, &rr);
        total_size += rr.size();
      }
      const double ms = timer.ElapsedSeconds() * 1e3;
      double& slot = best[skip ? 1 : 0];
      if (round == 0 || ms < slot) slot = ms;
    }
  }
  point.scalar_ms = best[0];
  point.skip_ms = best[1];
  SetSkipSamplingEnabled(true);
  point.mean_rr_size =
      static_cast<double>(total_size) / static_cast<double>(num_sets);
  return point;
}

/// A directed graph where every vertex has in-degree exactly `d` (distinct
/// random sources, no self-loops): under weighted-cascade probabilities
/// each vertex is exactly one bucket of d edges at p = 1/d.
StatusOr<Graph> ConstantInDegreeGraph(VertexId n, uint32_t d,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * d);
  std::vector<VertexId> sources;
  for (VertexId v = 0; v < n; ++v) {
    sources.clear();
    while (sources.size() < d) {
      const VertexId u = rng.NextU32Below(n);
      if (u == v) continue;
      if (std::find(sources.begin(), sources.end(), u) != sources.end()) {
        continue;
      }
      sources.push_back(u);
      edges.push_back({u, v});
    }
  }
  return Graph::FromEdges(n, edges);
}

struct WrisPoint {
  double scalar_sampling_ms = 0.0;
  double skip_sampling_ms = 0.0;
  double scalar_total_ms = 0.0;
  double skip_total_ms = 0.0;
  double greedy_ms = 0.0;  // skip-mode mean (kernel-independent stage)
  double mean_theta = 0.0;
  double sampling_speedup() const {
    return skip_sampling_ms > 0.0 ? scalar_sampling_ms / skip_sampling_ms
                                  : 0.0;
  }
  double total_speedup() const {
    return skip_total_ms > 0.0 ? scalar_total_ms / skip_total_ms : 0.0;
  }
};

/// Full WRIS solves over the query workload, skip off vs on, averaging
/// the SolverStats sampling/total split.
StatusOr<WrisPoint> MeasureWris(const Environment& env,
                                PropagationModel model,
                                const std::vector<Query>& queries,
                                const BenchFlags& flags) {
  OnlineSolverOptions options;
  options.epsilon = flags.epsilon;
  options.num_threads = flags.threads;
  options.seed = 20260730;
  options.max_theta = uint64_t{1} << 20;  // equal budget for both kernels
  WrisSolver solver(env.graph(), env.tfidf(), model, env.weights(model),
                    options);

  WrisPoint point;
  // Warm-up solves: slot/sampler allocation and (LT) lazy alias builds.
  for (const bool skip : {false, true}) {
    SetSkipSamplingEnabled(skip);
    KBTIM_RETURN_IF_ERROR(solver.Solve(queries[0]).status());
  }
  // Alternating rounds, per-mode minimum of the workload mean.
  for (int round = 0; round < kRounds; ++round) {
    for (const bool skip : {false, true}) {
      SetSkipSamplingEnabled(skip);
      double sampling = 0.0, total = 0.0, greedy = 0.0, theta = 0.0;
      for (const Query& query : queries) {
        KBTIM_ASSIGN_OR_RETURN(SeedSetResult result, solver.Solve(query));
        sampling += result.stats.sampling_seconds * 1e3;
        greedy += result.stats.greedy_seconds * 1e3;
        total += result.stats.total_seconds * 1e3;
        theta += static_cast<double>(result.stats.theta);
      }
      const auto n = static_cast<double>(queries.size());
      if (skip) {
        if (round == 0 || sampling / n < point.skip_sampling_ms) {
          point.skip_sampling_ms = sampling / n;
          point.skip_total_ms = total / n;
          point.greedy_ms = greedy / n;
          point.mean_theta = theta / n;
        }
      } else if (round == 0 ||
                 sampling / n < point.scalar_sampling_ms) {
        point.scalar_sampling_ms = sampling / n;
        point.scalar_total_ms = total / n;
      }
    }
  }
  SetSkipSamplingEnabled(true);
  return point;
}

int Run(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  bool assert_speedup = false;
  double speedup_threshold = 1.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-sampling-speedup") == 0) {
      assert_speedup = true;
    } else if (std::strcmp(argv[i], "--speedup-threshold") == 0 &&
               i + 1 < argc) {
      speedup_threshold = std::atof(argv[i + 1]);
    }
  }
  PrintHeader("sampling kernels: skip-ahead vs scalar (PR 5)", flags);

  const DatasetSpec news = ScaleSpec(DefaultNewsSpec(flags.topics),
                                     flags.scale);
  // Both ends of the news degree series: the default (largest, sparsest,
  // deg 2.2) and the densest (N20k, deg 5.2) — the sweep shows the win
  // scales with in-degree, so the series brackets it.
  const DatasetSpec news_dense =
      ScaleSpec(NewsLikeSeries(flags.topics).front(), flags.scale);
  const DatasetSpec twitter = ScaleSpec(DefaultTwitterSpec(flags.topics),
                                        flags.scale);
  auto news_env = Environment::Create(news);
  auto news_dense_env = Environment::Create(news_dense);
  auto twitter_env = Environment::Create(twitter);
  if (!news_env.ok() || !news_dense_env.ok() || !twitter_env.ok()) {
    std::fprintf(stderr, "dataset build failed\n");
    return 1;
  }

  // ---- 1. Micro kernels on the news graph -------------------------------
  const uint64_t micro_sets =
      std::max<uint64_t>(20000, static_cast<uint64_t>(100000 * flags.scale));
  KernelPoint micro_ic, micro_lt;
  {
    auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                                 (*news_env)->graph(),
                                 (*news_env)->ic_probs());
    micro_ic = MeasureKernel(*sampler, (*news_env)->graph().num_vertices(),
                             micro_sets, 7001);
  }
  {
    auto sampler = MakeRrSampler(PropagationModel::kLinearThreshold,
                                 (*news_env)->graph(),
                                 (*news_env)->lt_weights());
    micro_lt = MeasureKernel(*sampler, (*news_env)->graph().num_vertices(),
                             micro_sets, 7002);
  }
  TablePrinter micro_table(
      {"kernel", "scalar_ms", "skip_ms", "speedup", "mean_rr"});
  micro_table.AddRow({"ic", FormatDouble(micro_ic.scalar_ms, 1),
                      FormatDouble(micro_ic.skip_ms, 1),
                      FormatDouble(micro_ic.speedup(), 2),
                      FormatDouble(micro_ic.mean_rr_size, 1)});
  micro_table.AddRow({"lt", FormatDouble(micro_lt.scalar_ms, 1),
                      FormatDouble(micro_lt.skip_ms, 1),
                      FormatDouble(micro_lt.speedup(), 2),
                      FormatDouble(micro_lt.mean_rr_size, 1)});
  std::printf(">> micro: %llu uniform-root RR sets, news graph\n",
              static_cast<unsigned long long>(micro_sets));
  micro_table.Print(std::cout);

  // ---- 2. Bucket-size sweep ---------------------------------------------
  const uint32_t sweep_degrees[] = {2, 4, 8, 32, 128, 512};
  constexpr int kNumSweep = 6;
  KernelPoint sweep_ic[kNumSweep];
  KernelPoint sweep_lt[kNumSweep];
  const VertexId sweep_n = 20000;
  const uint64_t sweep_sets = 20000;
  for (int i = 0; i < kNumSweep; ++i) {
    auto graph = ConstantInDegreeGraph(sweep_n, sweep_degrees[i],
                                       9000 + i);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    // Uniform 1/d works as both IC probabilities and LT weights (sums to
    // 1 per vertex): the IC row sweeps the acceptance kernels, the LT
    // row sweeps linear-inversion-scan vs alias-table steps.
    const std::vector<float> probs = UniformIcProbabilities(*graph);
    auto ic_sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                                    *graph, probs);
    sweep_ic[i] = MeasureKernel(*ic_sampler, sweep_n, sweep_sets, 9100 + i);
    auto lt_sampler = MakeRrSampler(PropagationModel::kLinearThreshold,
                                    *graph, probs);
    sweep_lt[i] = MeasureKernel(*lt_sampler, sweep_n, sweep_sets, 9200 + i);
  }
  TablePrinter sweep_table({"bucket_d", "ic_scalar_us", "ic_skip_us",
                            "ic_speedup", "lt_scalar_us", "lt_skip_us",
                            "lt_speedup"});
  for (int i = 0; i < kNumSweep; ++i) {
    const double to_us = 1e3 / static_cast<double>(sweep_sets);
    sweep_table.AddRow({std::to_string(sweep_degrees[i]),
                        FormatDouble(sweep_ic[i].scalar_ms * to_us, 2),
                        FormatDouble(sweep_ic[i].skip_ms * to_us, 2),
                        FormatDouble(sweep_ic[i].speedup(), 2),
                        FormatDouble(sweep_lt[i].scalar_ms * to_us, 2),
                        FormatDouble(sweep_lt[i].skip_ms * to_us, 2),
                        FormatDouble(sweep_lt[i].speedup(), 2)});
  }
  std::printf("\n>> bucket sweep: constant in-degree d, p = w = 1/d (one "
              "bucket per vertex), per-RR-set cost\n");
  sweep_table.Print(std::cout);

  // ---- 3. End-to-end WRIS ablation --------------------------------------
  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 2;
  qopts.max_keywords = 2;
  qopts.k = 20;
  qopts.seed = 2026;
  auto news_queries = (*news_env)->Queries(qopts);
  auto news_dense_queries = (*news_dense_env)->Queries(qopts);
  auto twitter_queries = (*twitter_env)->Queries(qopts);
  if (!news_queries.ok() || news_queries->empty() ||
      !news_dense_queries.ok() || news_dense_queries->empty() ||
      !twitter_queries.ok() || twitter_queries->empty()) {
    std::fprintf(stderr, "query generation failed\n");
    return 1;
  }

  struct WrisRow {
    const char* name;
    const Environment* env;
    PropagationModel model;
    const std::vector<Query>* queries;
    WrisPoint point;
  };
  WrisRow rows[] = {
      {"news_ic", news_env->get(), PropagationModel::kIndependentCascade,
       &*news_queries, {}},
      {"news_lt", news_env->get(), PropagationModel::kLinearThreshold,
       &*news_queries, {}},
      {"news_dense_ic", news_dense_env->get(),
       PropagationModel::kIndependentCascade, &*news_dense_queries, {}},
      {"twitter_ic", twitter_env->get(),
       PropagationModel::kIndependentCascade, &*twitter_queries, {}},
  };
  for (WrisRow& row : rows) {
    auto point = MeasureWris(*row.env, row.model, *row.queries, flags);
    if (!point.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name,
                   point.status().ToString().c_str());
      return 1;
    }
    row.point = *point;
  }
  TablePrinter wris_table({"dataset", "scalar_samp_ms", "skip_samp_ms",
                           "samp_speedup", "greedy_ms", "total_speedup",
                           "theta"});
  for (const WrisRow& row : rows) {
    wris_table.AddRow(
        {row.name, FormatDouble(row.point.scalar_sampling_ms, 2),
         FormatDouble(row.point.skip_sampling_ms, 2),
         FormatDouble(row.point.sampling_speedup(), 2),
         FormatDouble(row.point.greedy_ms, 2),
         FormatDouble(row.point.total_speedup(), 2),
         FormatDouble(row.point.mean_theta, 0)});
  }
  std::printf("\n>> WRIS end-to-end: per-query mean, %u sampling "
              "threads, 2-keyword queries, k=20\n",
              flags.threads);
  wris_table.Print(std::cout);
  const double news_speedup = rows[0].point.sampling_speedup();
  const double headline = rows[3].point.sampling_speedup();
  std::printf("\nWRIS sampling_seconds speedup (skip-ahead vs scalar): "
              "twitter %.2fx, news %.2fx\n",
              headline, news_speedup);

  // ---- JSON -------------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_sampling.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sampling.json\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"params\": {\"scale\": %.2f, \"topics\": %u, \"epsilon\": %.2f, "
      "\"queries\": %u, \"threads\": %u, \"micro_sets\": %llu},\n"
      "  \"micro\": {\n"
      "    \"ic\": {\"scalar_ms\": %.3f, \"skip_ms\": %.3f, \"speedup\": "
      "%.3f},\n"
      "    \"lt\": {\"scalar_ms\": %.3f, \"skip_ms\": %.3f, \"speedup\": "
      "%.3f}\n"
      "  },\n"
      "  \"bucket_sweep\": [\n",
      flags.scale, flags.topics, flags.epsilon, flags.queries,
      flags.threads, static_cast<unsigned long long>(micro_sets),
      micro_ic.scalar_ms, micro_ic.skip_ms, micro_ic.speedup(),
      micro_lt.scalar_ms, micro_lt.skip_ms, micro_lt.speedup());
  for (int i = 0; i < kNumSweep; ++i) {
    std::fprintf(json,
                 "    {\"degree\": %u, \"ic_scalar_ms\": %.3f, "
                 "\"ic_skip_ms\": %.3f, \"ic_speedup\": %.3f, "
                 "\"lt_scalar_ms\": %.3f, \"lt_skip_ms\": %.3f, "
                 "\"lt_speedup\": %.3f}%s\n",
                 sweep_degrees[i], sweep_ic[i].scalar_ms,
                 sweep_ic[i].skip_ms, sweep_ic[i].speedup(),
                 sweep_lt[i].scalar_ms, sweep_lt[i].skip_ms,
                 sweep_lt[i].speedup(), i + 1 < kNumSweep ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"wris\": {\n");
  constexpr int kNumRows = 4;
  for (int i = 0; i < kNumRows; ++i) {
    const WrisPoint& p = rows[i].point;
    std::fprintf(
        json,
        "    \"%s\": {\"scalar_sampling_ms\": %.3f, \"skip_sampling_ms\": "
        "%.3f, \"sampling_speedup\": %.3f, \"greedy_ms\": %.3f, "
        "\"scalar_total_ms\": %.3f, \"skip_total_ms\": %.3f, "
        "\"total_speedup\": %.3f, \"mean_theta\": %.0f}%s\n",
        rows[i].name, p.scalar_sampling_ms, p.skip_sampling_ms,
        p.sampling_speedup(), p.greedy_ms, p.scalar_total_ms,
        p.skip_total_ms, p.total_speedup(), p.mean_theta,
        i + 1 < kNumRows ? "," : "");
  }
  std::fprintf(json,
               "  },\n"
               "  \"sampling_speedup\": %.3f\n"
               "}\n",
               headline);
  std::fclose(json);
  std::printf("wrote BENCH_sampling.json\n");

  if (assert_speedup) {
    if (headline < speedup_threshold) {
      std::fprintf(stderr,
                   "ASSERTION FAILED: twitter WRIS sampling speedup %.2fx "
                   "below the --assert-sampling-speedup threshold %.2fx\n",
                   headline, speedup_threshold);
      return 1;
    }
    constexpr double kNewsRegressionFloor = 0.85;
    if (news_speedup < kNewsRegressionFloor) {
      std::fprintf(stderr,
                   "ASSERTION FAILED: news WRIS sampling ratio %.2fx "
                   "regressed below the %.2f no-regression floor\n",
                   news_speedup, kNewsRegressionFloor);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kbtim

int main(int argc, char** argv) {
  return kbtim::bench::Run(argc, argv);
}

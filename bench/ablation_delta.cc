// Ablation (extension beyond the paper, which fixes δ = 100): sensitivity
// of IRR query cost to the partition size δ. Small partitions mean finer
// incremental loading (fewer RR sets pulled in) but more random I/Os;
// large partitions approach the RR index's behaviour.
#include <iostream>

#include "bench_common.h"
#include "index/irr_index.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool scale_given = false, topics_given = false;
  for (int i = 1; i < argc; ++i) {
    scale_given |= std::strcmp(argv[i], "--scale") == 0;
    topics_given |= std::strcmp(argv[i], "--topics") == 0;
  }
  if (!scale_given) flags.scale = 0.5;
  if (!topics_given) flags.topics = 15;
  PrintHeader("Ablation: IRR partition size delta", flags);

  const DatasetSpec spec =
      ScaleSpec(DefaultTwitterSpec(flags.topics), flags.scale);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);

  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 5;
  qopts.max_keywords = 5;
  qopts.k = 30;
  qopts.seed = 1234;
  auto queries = env->Queries(qopts);
  if (!queries.ok()) return 1;

  TablePrinter table({"delta", "IRR_time_s", "IRR_IOs", "RR_sets_IRR",
                      "IRR_size"});
  for (uint32_t delta : {10u, 50u, 100u, 500u, 2000u}) {
    IndexBuildOptions opts = DefaultBuildOptions(flags);
    opts.partition_size = delta;
    opts.build_rr = false;
    const std::string dir =
        CacheRoot() + "/ablation_delta_" + std::to_string(delta);
    std::filesystem::create_directories(dir);
    IndexBuilder builder(env->graph(), env->tfidf(), env->ic_probs(),
                         opts);
    auto report = builder.Build(dir);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    QueryAggregator agg;
    for (const Query& q : *queries) {
      // Fresh handle per query: the δ ablation compares COLD per-query
      // I/O (warm-path numbers come from bench/warm_cold_query.cc).
      // Demand reads only — the prefetch window would blur the δ effect.
      KeywordCacheOptions demand_only;
      demand_only.prefetch_threads = 0;
      auto irr = IrrIndex::Open(dir, demand_only);
      if (!irr.ok()) return 1;
      auto result = irr->Query(q);
      if (!result.ok()) return 1;
      agg.Add(*result);
    }
    const QueryAggregate a = agg.Finish();
    table.AddRow({std::to_string(delta), FormatDouble(a.mean_seconds, 4),
                  FormatDouble(a.mean_io_reads, 1),
                  FormatDouble(a.mean_rr_sets_loaded, 0),
                  FormatBytes(report->irr_bytes)});
    std::filesystem::remove_all(dir);
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: larger delta -> fewer I/Os but more RR "
               "sets loaded per query; the paper's default (100) sits in "
               "the middle of the trade-off\n";
  return 0;
}

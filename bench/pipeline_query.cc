// Query-pipeline benchmark (PR 2): measures the three hot-path stages
// against their PR-1 baselines on the laptop-scale news dataset and
// writes BENCH_pipeline.json.
//
//   1. Cold IRR queries, 2x2 ablation: {prefetch off/on} x {scalar/batch
//      decode}. "off + scalar" is exactly the PR-1 configuration; the
//      headline ratio is PR-1 vs the full pipeline (on + batch).
//   2. Warm repeat queries through the same pipelined handle: must still
//      perform 0 read ops (--assert-warm-zero-io turns a violation into a
//      nonzero exit for CI).
//   3. Seed selection over one WRIS-style RR sample: PR-1's
//      InvertedRrIndex + priority_queue CELF (kept verbatim below as the
//      baseline) vs the flat-array CoverageWorkspace, equal seeds
//      asserted.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <queue>
#include <thread>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "coverage/flat_celf.h"
#include "index/irr_index.h"
#include "propagation/rr_sampler.h"
#include "sampling/vertex_sampler.h"
#include "storage/decode_kernels.h"
#include "storage/io_counter.h"

namespace kbtim {
namespace bench {
namespace {

// ---- PR-1 seed-selection baseline (verbatim copy, measured against) ----

struct Pr1HeapEntry {
  uint64_t count;
  VertexId vertex;
  bool operator<(const Pr1HeapEntry& other) const {
    if (count != other.count) return count < other.count;
    return vertex > other.vertex;
  }
};

MaxCoverResult Pr1CelfMaxCover(const RrCollection& sets,
                               const InvertedRrIndex& inverted, uint32_t k) {
  MaxCoverResult result;
  const VertexId n = inverted.num_vertices();
  std::vector<uint64_t> count(n);
  std::priority_queue<Pr1HeapEntry> heap;
  for (VertexId v = 0; v < n; ++v) {
    count[v] = inverted.ListLength(v);
    if (count[v] > 0) heap.push({count[v], v});
  }
  std::vector<char> covered(sets.size(), 0);
  std::vector<char> selected(n, 0);
  while (result.seeds.size() < k && !heap.empty()) {
    const Pr1HeapEntry top = heap.top();
    heap.pop();
    if (selected[top.vertex]) continue;
    if (top.count != count[top.vertex]) {
      if (count[top.vertex] > 0) heap.push({count[top.vertex], top.vertex});
      continue;
    }
    selected[top.vertex] = 1;
    result.seeds.push_back(top.vertex);
    result.marginal_coverage.push_back(top.count);
    result.total_covered += top.count;
    for (RrId rr : inverted.Sets(top.vertex)) {
      if (covered[rr]) continue;
      covered[rr] = 1;
      for (VertexId u : sets.Set(rr)) --count[u];
    }
  }
  for (VertexId v = 0; v < n && result.seeds.size() < k; ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_coverage.push_back(0);
    }
  }
  return result;
}

// ---- Cold / warm IRR measurement ----------------------------------------

struct ColdStats {
  double ms_mean = 0.0;
  double io_reads_mean = 0.0;
  double prefetches_served_mean = 0.0;
};

StatusOr<ColdStats> MeasureColdIrr(const std::string& dir,
                                   const std::vector<Query>& queries,
                                   uint32_t prefetch_threads,
                                   bool batch_decode, bool eager_ir) {
  constexpr int kReps = 3;  // repetitions stabilize the config ratios
  SetBatchDecodeEnabled(batch_decode);
  ColdStats out;
  KeywordCacheOptions options;
  options.prefetch_threads = prefetch_threads;
  options.eager_ir_members = eager_ir;
  for (int rep = 0; rep < kReps; ++rep) {
    for (const Query& q : queries) {
      // Fresh handle = fresh KeywordCache per query (PR-1 cold
      // methodology).
      KBTIM_ASSIGN_OR_RETURN(IrrIndex index, IrrIndex::Open(dir, options));
      const IoStats io_before = IoCounter::Snapshot();
      WallTimer t;
      KBTIM_ASSIGN_OR_RETURN(SeedSetResult r, index.Query(q));
      out.ms_mean += t.ElapsedSeconds() * 1e3;
      // Drain before closing the I/O window: speculative reads still in
      // flight when Query returns belong to this configuration's cost.
      index.cache()->WaitForPrefetches();
      out.io_reads_mean += static_cast<double>(
          (IoCounter::Snapshot() - io_before).read_ops);
      out.prefetches_served_mean +=
          static_cast<double>(r.stats.prefetches_served);
    }
  }
  SetBatchDecodeEnabled(true);
  const double n = static_cast<double>(queries.size() * kReps);
  out.ms_mean /= n;
  out.io_reads_mean /= n;
  out.prefetches_served_mean /= n;
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace kbtim

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool assert_warm_zero_io = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-warm-zero-io") == 0) {
      assert_warm_zero_io = true;
    }
  }
  PrintHeader("Query pipeline: prefetch + batch decode + flat CELF", flags);

  const DatasetSpec spec = ScaleSpec(DefaultNewsSpec(flags.topics),
                                     flags.scale);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_pipeline_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }

  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 2;
  qopts.max_keywords = 2;
  qopts.k = 20;
  qopts.seed = 2026;
  auto queries = env->Queries(qopts);
  if (!queries.ok() || queries->empty()) return 1;

  // ---- Stage 1+2: cold IRR ablation matrix ------------------------------
  // Three axes off the PR-1 baseline (eager IR decode + scalar kernels +
  // no prefetch): batch decode kernels, lazy IR member decode, and the
  // background prefetch window. With a single hardware thread background
  // decode cannot overlap with anything, so the headline pipeline config
  // drops prefetch there (the prefetch row still records its cost).
  const uint32_t hw_threads = std::thread::hardware_concurrency();
  const uint32_t pipeline_prefetch = hw_threads > 1 ? 2 : 0;
  struct Config {
    const char* name;
    uint32_t prefetch;
    bool batch;
    bool eager_ir;
  };
  const Config configs[] = {
      {"baseline_pr1", 0, false, true},
      {"batch_kernels", 0, true, true},
      {"lazy_ir", 0, true, false},
      {"prefetch", 2, true, false},
      {"pipeline", pipeline_prefetch, true, false},
  };
  constexpr int kNumConfigs = 5;
  ColdStats cold[kNumConfigs];
  for (int c = 0; c < kNumConfigs; ++c) {
    auto stats = MeasureColdIrr(*dir, *queries, configs[c].prefetch,
                                configs[c].batch, configs[c].eager_ir);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    cold[c] = *stats;
  }
  const double cold_speedup =
      cold[kNumConfigs - 1].ms_mean > 0
          ? cold[0].ms_mean / cold[kNumConfigs - 1].ms_mean
          : 0.0;

  // ---- Warm repeat queries through the pipelined handle -----------------
  double warm_ms = 0.0;
  uint64_t warm_reads = 0;
  {
    auto warm_or = IrrIndex::Open(*dir);
    if (!warm_or.ok()) return 1;
    for (const Query& q : *queries) {
      if (!warm_or->Query(q).ok()) return 1;
    }
    warm_or->cache()->WaitForPrefetches();
    const IoStats before = IoCounter::Snapshot();
    WallTimer t;
    for (const Query& q : *queries) {
      if (!warm_or->Query(q).ok()) return 1;
    }
    warm_ms = t.ElapsedSeconds() * 1e3 / static_cast<double>(queries->size());
    warm_reads = (IoCounter::Snapshot() - before).read_ops;
  }

  // ---- Stage 3: seed selection, PR-1 vs flat workspace ------------------
  constexpr uint64_t kThetaCelf = 150000;
  constexpr int kCelfRounds = 5;
  RrCollection sets;
  {
    auto roots_or =
        WeightedVertexSampler::ForQuery(env->tfidf(), (*queries)[0]);
    if (!roots_or.ok()) return 1;
    auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                                 env->graph(), env->ic_probs());
    Rng rng(424242);
    std::vector<VertexId> scratch;
    sets.Reserve(kThetaCelf, kThetaCelf * 4);
    for (uint64_t i = 0; i < kThetaCelf; ++i) {
      sampler->Sample(roots_or->Sample(rng), rng, &scratch);
      sets.Add(scratch);
    }
  }
  const uint32_t k = qopts.k;
  const VertexId n = env->graph().num_vertices();
  double celf_pr1_ms = 0.0, celf_flat_first_ms = 0.0, celf_flat_ms = 0.0;
  MaxCoverResult want, got;
  for (int r = 0; r < kCelfRounds; ++r) {
    WallTimer t;
    const InvertedRrIndex inverted(sets, n);  // PR-1 rebuilt this per query
    want = Pr1CelfMaxCover(sets, inverted, k);
    celf_pr1_ms += t.ElapsedSeconds() * 1e3;
  }
  celf_pr1_ms /= kCelfRounds;
  {
    CoverageWorkspace ws;
    WallTimer first;
    got = ws.Solve(sets, n, k);
    celf_flat_first_ms = first.ElapsedSeconds() * 1e3;
    for (int r = 0; r < kCelfRounds; ++r) {
      WallTimer t;
      got = ws.Solve(sets, n, k);
      celf_flat_ms += t.ElapsedSeconds() * 1e3;
    }
    celf_flat_ms /= kCelfRounds;
  }
  if (want.seeds != got.seeds ||
      want.marginal_coverage != got.marginal_coverage) {
    std::fprintf(stderr,
                 "FATAL: flat CELF diverged from the PR-1 baseline\n");
    return 1;
  }
  const double celf_speedup =
      celf_flat_ms > 0 ? celf_pr1_ms / celf_flat_ms : 0.0;

  // ---- Report -----------------------------------------------------------
  TablePrinter table({"config", "cold_ms", "cold_IOs", "pf_served"});
  for (int c = 0; c < kNumConfigs; ++c) {
    table.AddRow({configs[c].name, FormatDouble(cold[c].ms_mean, 3),
                  FormatDouble(cold[c].io_reads_mean, 1),
                  FormatDouble(cold[c].prefetches_served_mean, 1)});
  }
  table.Print(std::cout);
  std::printf("\ncold IRR speedup (PR1 -> pipeline): %.2fx\n", cold_speedup);
  std::printf("warm repeat: %.3f ms, %llu read ops (must be 0)\n", warm_ms,
              static_cast<unsigned long long>(warm_reads));
  std::printf(
      "seed selection (theta=%llu, k=%u): PR1 %.2f ms, flat first %.2f ms, "
      "flat steady %.2f ms -> %.2fx\n",
      static_cast<unsigned long long>(kThetaCelf), k, celf_pr1_ms,
      celf_flat_first_ms, celf_flat_ms, celf_speedup);

  std::FILE* json = std::fopen("BENCH_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"params\": {\"scale\": %.2f, \"topics\": %u, \"epsilon\": "
               "%.2f, \"queries\": %u, \"k\": %u, \"keywords\": 2, "
               "\"celf_theta\": %llu, \"hardware_threads\": %u, "
               "\"pipeline_prefetch_threads\": %u},\n"
               "  \"cold_irr\": {\n",
               flags.scale, flags.topics, flags.epsilon, flags.queries, k,
               static_cast<unsigned long long>(kThetaCelf), hw_threads,
               pipeline_prefetch);
  for (int c = 0; c < kNumConfigs; ++c) {
    std::fprintf(json,
                 "    \"%s\": {\"ms_mean\": %.4f, \"io_reads_mean\": %.2f, "
                 "\"prefetches_served_mean\": %.2f}%s\n",
                 configs[c].name, cold[c].ms_mean, cold[c].io_reads_mean,
                 cold[c].prefetches_served_mean,
                 c + 1 < kNumConfigs ? "," : "");
  }
  std::fprintf(json,
               "  },\n"
               "  \"cold_irr_speedup\": %.3f,\n"
               "  \"warm\": {\"ms_mean\": %.4f, \"io_reads\": %llu},\n"
               "  \"seed_selection\": {\"pr1_ms\": %.4f, \"flat_first_ms\": "
               "%.4f, \"flat_steady_ms\": %.4f, \"speedup\": %.3f}\n"
               "}\n",
               cold_speedup, warm_ms,
               static_cast<unsigned long long>(warm_reads), celf_pr1_ms,
               celf_flat_first_ms, celf_flat_ms, celf_speedup);
  std::fclose(json);
  std::printf("wrote BENCH_pipeline.json\n");

  if (assert_warm_zero_io && warm_reads != 0) {
    std::fprintf(stderr,
                 "FAIL: warm-path regression — %llu read ops on repeat "
                 "queries (expected 0)\n",
                 static_cast<unsigned long long>(warm_reads));
    return 1;
  }
  return 0;
}

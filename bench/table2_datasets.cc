// Table 2 reproduction: statistics of the two dataset scaling series.
// Paper: #Users / #Edges / AveDegree for t10M..t40M and n0.2M..n1.4M; the
// series here are the laptop-scale analogues (T10k..T40k, N20k..N140k)
// with matching average-degree trends.
#include <iostream>

#include "bench_common.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table 2: dataset statistics", flags);

  TablePrinter table({"dataset", "#users", "#edges", "avg_degree",
                      "max_in_deg", "paper_avg_deg"});
  const double paper_news[] = {5.2, 3.1, 2.6, 2.2};
  const double paper_twitter[] = {76.4, 56.8, 46.1, 38.9};

  auto add_series = [&](std::vector<DatasetSpec> series,
                        const double* paper_deg) {
    for (size_t i = 0; i < series.size(); ++i) {
      const DatasetSpec spec = ScaleSpec(series[i], flags.scale);
      auto dataset = BuildDataset(spec);
      if (!dataset.ok()) {
        std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
        continue;
      }
      const DegreeStats stats = ComputeDegreeStats(dataset->graph);
      table.AddRow({spec.name,
                    std::to_string(dataset->graph.num_vertices()),
                    std::to_string(dataset->graph.num_edges()),
                    FormatDouble(stats.avg_degree, 1),
                    std::to_string(stats.max_in_degree),
                    FormatDouble(paper_deg[i], 1)});
    }
  };
  add_series(TwitterLikeSeries(flags.topics), paper_twitter);
  add_series(NewsLikeSeries(flags.topics), paper_news);
  table.Print(std::cout);
  std::cout << "\nexpected shape: avg degree decreases with |V| within each "
               "series; twitter-like >> news-like (paper Table 2)\n";
  return 0;
}

// Table 4 reproduction: index disk size and construction time with and
// without list compression, on both dataset series. The paper used
// FastPFOR (Lucene 4.6) and observed ~50% (news) / ~40% (twitter) space
// reduction at negligible build-time cost; this repo's PFOR codec plays
// the same role against the raw u32 encoding.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool scale_given = false, topics_given = false;
  for (int i = 1; i < argc; ++i) {
    scale_given |= std::strcmp(argv[i], "--scale") == 0;
    topics_given |= std::strcmp(argv[i], "--topics") == 0;
  }
  if (!scale_given) flags.scale = 0.25;
  if (!topics_given) flags.topics = 15;
  PrintHeader("Table 4: uncompressed vs compressed index build", flags);

  TablePrinter table({"dataset", "codec", "RR_size", "IRR_size",
                      "build_time_s", "vs_raw"});
  std::vector<DatasetSpec> all;
  for (auto& s : NewsLikeSeries(flags.topics)) all.push_back(s);
  for (auto& s : TwitterLikeSeries(flags.topics)) all.push_back(s);

  for (const DatasetSpec& base : all) {
    const DatasetSpec spec = ScaleSpec(base, flags.scale);
    auto env_or = Environment::Create(spec);
    if (!env_or.ok()) {
      std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
      return 1;
    }
    auto env = std::move(*env_or);
    uint64_t raw_total = 0;
    for (CodecKind codec :
         {CodecKind::kRaw, CodecKind::kPfor, CodecKind::kGroupVarint}) {
      IndexBuildOptions opts = DefaultBuildOptions(flags);
      opts.codec = codec;
      const std::string dir = CacheRoot() + "/table4_" + spec.name + "_" +
                              MakeCodec(codec)->Name();
      std::filesystem::create_directories(dir);
      IndexBuilder builder(env->graph(), env->tfidf(), env->ic_probs(),
                           opts);
      auto report = builder.Build(dir);
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        return 1;
      }
      const uint64_t total = report->total_bytes;
      if (codec == CodecKind::kRaw) raw_total = total;
      table.AddRow(
          {spec.name, MakeCodec(codec)->Name(),
           FormatBytes(report->rr_bytes + report->lists_bytes),
           FormatBytes(report->irr_bytes), FormatDouble(report->seconds, 1),
           raw_total == 0
               ? std::string("-")
               : FormatDouble(100.0 * static_cast<double>(total) /
                                  static_cast<double>(raw_total),
                              0) + "%"});
      std::filesystem::remove_all(dir);
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: pfor rows ~40-60% of raw size at nearly "
               "identical build time (paper Table 4)\n";
  return 0;
}

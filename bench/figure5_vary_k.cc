// Figure 5 reproduction: query processing cost as the seed-set size Q.k
// grows from 10 to 50, on both default datasets. Two series per dataset:
//   * mean execution time for WRIS / RR / IRR (paper: log-scale, WRIS two
//     orders of magnitude above the indexes; RR and IRR nearly flat),
//   * mean number of RR sets loaded for RR / IRR (RR flat — it always
//     loads the θ^Q budget; IRR grows with k but stays below RR, most
//     visibly on the twitter-like graph).
// WRIS is measured on a subset of queries (it is the slow baseline).
#include <iostream>

#include "bench_common.h"
#include "index/irr_index.h"
#include "index/rr_index.h"
#include "sampling/wris_solver.h"

namespace {

using namespace kbtim;
using namespace kbtim::bench;

int RunDataset(const DatasetSpec& spec, const BenchFlags& flags) {
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);

  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_ic_pfor_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir_or = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir_or.ok()) {
    std::fprintf(stderr, "%s\n", dir_or.status().ToString().c_str());
    return 1;
  }
  if (report.total_theta > 0) {
    std::printf("[built index %s: %llu RR sets, %.1f s]\n", tag.c_str(),
                static_cast<unsigned long long>(report.total_theta),
                report.seconds);
  }
  auto rr = RrIndex::Open(*dir_or);
  auto irr = IrrIndex::Open(*dir_or);
  if (!rr.ok() || !irr.ok()) {
    std::fprintf(stderr, "index open failed\n");
    return 1;
  }

  OnlineSolverOptions wopts;
  wopts.epsilon = flags.epsilon;
  wopts.num_threads = flags.threads;
  WrisSolver wris(env->graph(), env->tfidf(),
                  PropagationModel::kIndependentCascade, env->ic_probs(),
                  wopts);

  std::cout << "(" << spec.name << ")  default |Q.T| = 5\n";
  TablePrinter table({"Q.k", "WRIS_s", "RR_s", "IRR_s", "RR_sets_RR",
                      "RR_sets_IRR"});
  for (uint32_t k = 10; k <= 50; k += 5) {
    QueryGeneratorOptions qopts;
    qopts.queries_per_length = flags.queries;
    qopts.min_keywords = 5;
    qopts.max_keywords = 5;
    qopts.k = k;
    qopts.seed = 900 + k;
    auto queries = env->Queries(qopts);
    if (!queries.ok()) {
      std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
      return 1;
    }
    QueryAggregator rr_agg, irr_agg, wris_agg;
    for (size_t i = 0; i < queries->size(); ++i) {
      const Query& q = (*queries)[i];
      auto rr_result = rr->Query(q);
      auto irr_result = irr->Query(q);
      if (!rr_result.ok() || !irr_result.ok()) {
        std::fprintf(stderr, "index query failed\n");
        return 1;
      }
      rr_agg.Add(*rr_result);
      irr_agg.Add(*irr_result);
      // WRIS is the 100x-slower baseline: sample it at the sweep ends and
      // middle only, two queries each (the paper plots it on log scale).
      const bool wris_point = k == 10 || k == 30 || k == 50;
      if (wris_point && i < 2) {
        auto wris_result = wris.Solve(q);
        if (wris_result.ok()) wris_agg.Add(*wris_result);
      }
    }
    const QueryAggregate ra = rr_agg.Finish();
    const QueryAggregate ia = irr_agg.Finish();
    const QueryAggregate wa = wris_agg.Finish();
    table.AddRow({std::to_string(k),
                  wa.queries == 0 ? std::string("-")
                                  : FormatDouble(wa.mean_seconds, 3),
                  FormatDouble(ra.mean_seconds, 4),
                  FormatDouble(ia.mean_seconds, 4),
                  FormatDouble(ra.mean_rr_sets_loaded, 0),
                  FormatDouble(ia.mean_rr_sets_loaded, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 5: vary seed-set size Q.k", flags);
  if (RunDataset(ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  if (RunDataset(ScaleSpec(DefaultTwitterSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  std::cout << "expected shape: WRIS >> RR >= IRR in time (orders of "
               "magnitude); RR's loaded-set count flat in k, IRR's grows "
               "with k but stays below RR (paper Figure 5)\n";
  return 0;
}

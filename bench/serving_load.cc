// Serving-layer load generator (PR 3): drives one QueryService — and so
// one shared KeywordCache — with concurrent clients and writes
// BENCH_serving.json.
//
//   1. Closed loop: C ∈ {1, 2, 4, 8} client threads, each issuing
//      synchronous mixed IRR/RR queries back-to-back against a service
//      with C workers. Reports aggregate throughput and p50/p90/p99
//      latency per client count — the multi-core scaling curve of the
//      whole warm path (prefetch overlap + parallel coverage build run
//      for real here; on a single hardware thread the curve is flat and
//      the JSON records that honestly).
//   2. Warm-path contract: every measured pass runs over a pre-warmed
//      cache and must perform 0 read ops (--assert-warm-zero-io turns a
//      violation into a nonzero exit for CI).
//   3. Open loop (--open-loop-rate R, or auto): a dispatcher submits at a
//      fixed arrival rate into a small bounded queue with a queue
//      deadline, demonstrating admission control + load shedding under
//      overload; drops and tail latency land in the JSON.
//
// Extra flags on top of bench_common.h:
//   --workers N          cap service workers per config (default: =clients)
//   --iters N            queries per client per config (default 4x --queries)
//   --open-loop-rate R   arrival rate in QPS (0 = auto from closed loop)
//   --no-open-loop       skip the open-loop phase
//   --assert-warm-zero-io
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "serving/query_service.h"
#include "storage/io_counter.h"

namespace kbtim {
namespace bench {
namespace {

struct LoadPoint {
  uint32_t clients = 0;
  uint32_t workers = 0;
  uint64_t queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double mean_queue_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t warm_io_reads = 0;
};

/// One closed-loop measurement: C clients, each `iters` mixed IRR/RR
/// queries over a freshly created, then warmed, service.
StatusOr<LoadPoint> RunClosedLoop(const std::string& dir,
                                  const std::vector<Query>& queries,
                                  uint32_t clients, uint32_t workers,
                                  uint32_t iters) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 4096;  // closed loop: no shedding
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options));

  // Warm pass: every query once through each engine, then drain the
  // prefetch pipeline so the measured window starts fully resident.
  for (const Query& q : queries) {
    KBTIM_RETURN_IF_ERROR(
        service->Execute({q, QueryEngine::kIrr}).status());
    KBTIM_RETURN_IF_ERROR(service->Execute({q, QueryEngine::kRr}).status());
  }
  service->cache()->WaitForPrefetches();
  const ServiceStats warmup_stats = service->stats();
  service->ResetLatencyWindow();  // percentiles cover the burst only

  const IoStats io_before = IoCounter::Snapshot();
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint32_t i = 0; i < iters; ++i) {
        ServiceRequest request;
        request.query = queries[(c + i) % queries.size()];
        request.engine =
            (c + i) % 2 == 0 ? QueryEngine::kIrr : QueryEngine::kRr;
        auto result = service->Execute(request);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = timer.ElapsedSeconds();
  const IoStats io = IoCounter::Snapshot() - io_before;

  const ServiceStats stats = service->stats();
  LoadPoint point;
  point.clients = clients;
  point.workers = workers;
  point.queries = uint64_t{clients} * iters;
  point.qps = seconds > 0 ? static_cast<double>(point.queries) / seconds
                          : 0.0;
  // Percentiles cover the recent latency window, which the measured burst
  // dominates (the warm-up pass is far smaller than the window).
  point.p50_ms = stats.p50_ms;
  point.p90_ms = stats.p90_ms;
  point.p99_ms = stats.p99_ms;
  point.mean_queue_ms = stats.mean_queue_ms;
  point.cache_hit_rate = stats.cache_hit_rate;
  point.warm_io_reads = io.read_ops;
  if (stats.failed != warmup_stats.failed) {
    return Status::Internal("closed-loop queries failed");
  }
  return point;
}

struct OpenLoopResult {
  double rate_qps = 0.0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t admission_drops = 0;
  uint64_t deadline_drops = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Fixed-arrival-rate dispatcher into a small bounded queue with a queue
/// deadline: the overload/shedding demonstration.
StatusOr<OpenLoopResult> RunOpenLoop(const std::string& dir,
                                     const std::vector<Query>& queries,
                                     double rate_qps, uint32_t workers,
                                     double seconds) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 32;
  options.default_queue_deadline_ms = 50.0;
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options));
  for (const Query& q : queries) {  // warm BOTH engines the phase uses
    KBTIM_RETURN_IF_ERROR(
        service->Execute({q, QueryEngine::kIrr}).status());
    KBTIM_RETURN_IF_ERROR(service->Execute({q, QueryEngine::kRr}).status());
  }
  service->cache()->WaitForPrefetches();
  service->ResetLatencyWindow();

  const auto interval = std::chrono::duration<double>(1.0 / rate_qps);
  const uint64_t offered =
      static_cast<uint64_t>(rate_qps * seconds);
  std::vector<std::future<StatusOr<SeedSetResult>>> futures;
  futures.reserve(offered);
  auto next = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < offered; ++i) {
    std::this_thread::sleep_until(next);
    next += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(interval);
    ServiceRequest request;
    request.query = queries[i % queries.size()];
    request.engine = i % 2 == 0 ? QueryEngine::kIrr : QueryEngine::kRr;
    futures.push_back(service->Submit(std::move(request)));
  }
  service->Drain();
  for (auto& future : futures) (void)future.get();

  const ServiceStats stats = service->stats();
  OpenLoopResult result;
  result.rate_qps = rate_qps;
  result.offered = offered;
  result.completed = stats.completed - 2 * queries.size();  // minus warm-up
  result.admission_drops = stats.admission_drops;
  result.deadline_drops = stats.deadline_drops;
  result.p50_ms = stats.p50_ms;
  result.p99_ms = stats.p99_ms;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace kbtim

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool assert_warm_zero_io = false;
  bool no_open_loop = false;
  uint32_t max_workers = 0;  // 0 = match client count
  uint32_t iters = 0;
  double open_loop_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-warm-zero-io") == 0) {
      assert_warm_zero_io = true;
    } else if (std::strcmp(argv[i], "--no-open-loop") == 0) {
      no_open_loop = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      max_workers = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--open-loop-rate") == 0 &&
               i + 1 < argc) {
      open_loop_rate = std::atof(argv[i + 1]);
    }
  }
  if (iters == 0) iters = flags.queries * 4;
  PrintHeader("Serving load: concurrent clients over one KeywordCache",
              flags);

  const DatasetSpec spec =
      ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_serving_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }

  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 2;
  qopts.max_keywords = 2;
  qopts.k = 20;
  qopts.seed = 2027;
  auto queries = env->Queries(qopts);
  if (!queries.ok() || queries->empty()) return 1;

  const uint32_t hw_threads = std::thread::hardware_concurrency();
  const uint32_t client_counts[] = {1, 2, 4, 8};
  std::vector<LoadPoint> points;
  for (uint32_t clients : client_counts) {
    const uint32_t workers =
        max_workers > 0 ? std::min(clients, max_workers) : clients;
    auto point = RunClosedLoop(*dir, *queries, clients, workers, iters);
    if (!point.ok()) {
      std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
      return 1;
    }
    points.push_back(*point);
  }
  const double speedup_4v1 =
      points[0].qps > 0 ? points[2].qps / points[0].qps : 0.0;

  OpenLoopResult open_loop;
  bool have_open_loop = false;
  if (!no_open_loop) {
    // Default arrival rate: 1.5x the single-client throughput into a
    // 2-worker service — enough pressure to queue, not a meltdown.
    const double rate = open_loop_rate > 0 ? open_loop_rate
                                           : std::max(50.0, 1.5 *
                                                                points[0].qps);
    auto result = RunOpenLoop(*dir, *queries, rate,
                              max_workers > 0 ? max_workers : 2, 2.0);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    open_loop = *result;
    have_open_loop = true;
  }

  // ---- Report -------------------------------------------------------------
  TablePrinter table({"clients", "workers", "qps", "p50_ms", "p90_ms",
                      "p99_ms", "warm_IOs"});
  for (const LoadPoint& p : points) {
    table.AddRow({std::to_string(p.clients), std::to_string(p.workers),
                  FormatDouble(p.qps, 1), FormatDouble(p.p50_ms, 3),
                  FormatDouble(p.p90_ms, 3), FormatDouble(p.p99_ms, 3),
                  std::to_string(p.warm_io_reads)});
  }
  table.Print(std::cout);
  std::printf("\nthroughput scaling 1 -> 4 clients: %.2fx "
              "(hardware threads: %u)\n",
              speedup_4v1, hw_threads);
  if (have_open_loop) {
    std::printf(
        "open loop: %.0f qps offered for 2s -> %llu/%llu served, "
        "%llu queue-full drops, %llu deadline drops, p99 %.2f ms\n",
        open_loop.rate_qps,
        static_cast<unsigned long long>(open_loop.completed),
        static_cast<unsigned long long>(open_loop.offered),
        static_cast<unsigned long long>(open_loop.admission_drops),
        static_cast<unsigned long long>(open_loop.deadline_drops),
        open_loop.p99_ms);
  }

  std::FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"params\": {\"scale\": %.2f, \"topics\": %u, "
               "\"epsilon\": %.2f, \"queries\": %u, \"iters\": %u, "
               "\"k\": %u, \"keywords\": 2, \"hardware_threads\": %u},\n"
               "  \"closed_loop\": [\n",
               flags.scale, flags.topics, flags.epsilon, flags.queries,
               iters, qopts.k, hw_threads);
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"clients\": %u, \"workers\": %u, \"queries\": %llu, "
        "\"qps\": %.2f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"mean_queue_ms\": %.4f, "
        "\"cache_hit_rate\": %.4f, \"warm_io_reads\": %llu}%s\n",
        p.clients, p.workers,
        static_cast<unsigned long long>(p.queries), p.qps, p.p50_ms,
        p.p90_ms, p.p99_ms, p.mean_queue_ms, p.cache_hit_rate,
        static_cast<unsigned long long>(p.warm_io_reads),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"speedup_4v1\": %.3f", speedup_4v1);
  if (have_open_loop) {
    std::fprintf(
        json,
        ",\n  \"open_loop\": {\"rate_qps\": %.1f, \"offered\": %llu, "
        "\"completed\": %llu, \"admission_drops\": %llu, "
        "\"deadline_drops\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f}",
        open_loop.rate_qps,
        static_cast<unsigned long long>(open_loop.offered),
        static_cast<unsigned long long>(open_loop.completed),
        static_cast<unsigned long long>(open_loop.admission_drops),
        static_cast<unsigned long long>(open_loop.deadline_drops),
        open_loop.p50_ms, open_loop.p99_ms);
  }
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_serving.json\n");

  if (assert_warm_zero_io) {
    for (const LoadPoint& p : points) {
      if (p.warm_io_reads != 0) {
        std::fprintf(stderr,
                     "FAIL: warm-path regression — %llu read ops at %u "
                     "clients (expected 0)\n",
                     static_cast<unsigned long long>(p.warm_io_reads),
                     p.clients);
        return 1;
      }
    }
  }
  return 0;
}

// Serving-layer load generator (PR 3): drives one QueryService — and so
// one shared KeywordCache — with concurrent clients and writes
// BENCH_serving.json.
//
//   1. Closed loop: C ∈ {1, 2, 4, 8} client threads, each issuing
//      synchronous mixed IRR/RR queries back-to-back against a service
//      with C workers. Reports aggregate throughput and p50/p90/p99
//      latency per client count — the multi-core scaling curve of the
//      whole warm path (prefetch overlap + parallel coverage build run
//      for real here; on a single hardware thread the curve is flat and
//      the JSON records that honestly).
//   2. Warm-path contract: every measured pass runs over a pre-warmed
//      cache and must perform 0 read ops (--assert-warm-zero-io turns a
//      violation into a nonzero exit for CI).
//   3. Open loop (--open-loop-rate R, or auto): a dispatcher submits at a
//      fixed arrival rate into a small bounded queue with a queue
//      deadline, demonstrating admission control + load shedding under
//      overload; drops and tail latency land in the JSON.
//   4. Mixed workload (PR 4): WRIS clients flood ~10x-slower solves while
//      index clients issue cheap IRR/RR queries, run once under the PR 3
//      FIFO and once under the lane scheduler. Per-class p50/p99 land in
//      the JSON; the delta on the index lane's tail is the
//      head-of-line-blocking fix (--assert-lane-p99 gates CI on it).
//   5. Coalescing (PR 4): bursts of overlapping kRr requests, batch-aware
//      dispatch on vs off, with golden equality checked per request.
//   6. Fault phase (PR 6): measure a warm p99, then arm the storage
//      FaultInjector (flaky reads + rare bit flips) and drive the same
//      load through the burst — requests resolve OK, degraded, or shed —
//      then disarm and measure the recovered p99. --assert-fault-recovery
//      gates CI on post-burst p99 <= 1.25x pre-burst (the service must
//      heal completely: breakers re-admit, the cache repopulates, and no
//      corrupt state lingers to slow the warm path).
//
// Extra flags on top of bench_common.h:
//   --workers N          cap service workers per config (default: =clients)
//   --iters N            queries per client per config (default 4x --queries)
//   --open-loop-rate R   arrival rate in QPS (0 = auto from closed loop)
//   --no-open-loop       skip the open-loop phase
//   --no-mixed           skip the mixed WRIS+index phase
//   --assert-lane-p99    CI gate on the mixed phase: the lane scheduler
//                        must improve the index-lane MEDIAN vs the FIFO
//                        (robust statistic), and the index-lane p99 must
//                        not regress beyond 1.25x (p99 of a short run is
//                        a single order statistic — strict-improvement
//                        gating there would flake on shared runners)
//   --assert-warm-zero-io
//   --no-faults          skip the fault phase
//   --assert-fault-recovery
//                        CI gate on the fault phase: every burst request
//                        resolves (no hangs/crashes), and the post-burst
//                        p99 recovers to <= 1.25x the pre-burst p99
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "serving/query_service.h"
#include "storage/fault_injector.h"
#include "storage/io_counter.h"

namespace kbtim {
namespace bench {
namespace {

struct LoadPoint {
  uint32_t clients = 0;
  uint32_t workers = 0;
  uint64_t queries = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double mean_queue_ms = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t warm_io_reads = 0;
};

/// One closed-loop measurement: C clients, each `iters` mixed IRR/RR
/// queries over a freshly created, then warmed, service.
StatusOr<LoadPoint> RunClosedLoop(const std::string& dir,
                                  const std::vector<Query>& queries,
                                  uint32_t clients, uint32_t workers,
                                  uint32_t iters) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 4096;  // closed loop: no shedding
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options));

  // Warm pass: every query once through each engine, then drain the
  // prefetch pipeline so the measured window starts fully resident.
  for (const Query& q : queries) {
    KBTIM_RETURN_IF_ERROR(
        service->Execute({q, QueryEngine::kIrr}).status());
    KBTIM_RETURN_IF_ERROR(service->Execute({q, QueryEngine::kRr}).status());
  }
  service->cache()->WaitForPrefetches();
  const ServiceStats warmup_stats = service->stats();
  service->ResetLatencyWindow();  // percentiles cover the burst only

  const IoStats io_before = IoCounter::Snapshot();
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint32_t i = 0; i < iters; ++i) {
        ServiceRequest request;
        request.query = queries[(c + i) % queries.size()];
        request.engine =
            (c + i) % 2 == 0 ? QueryEngine::kIrr : QueryEngine::kRr;
        auto result = service->Execute(request);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = timer.ElapsedSeconds();
  const IoStats io = IoCounter::Snapshot() - io_before;

  const ServiceStats stats = service->stats();
  LoadPoint point;
  point.clients = clients;
  point.workers = workers;
  point.queries = uint64_t{clients} * iters;
  point.qps = seconds > 0 ? static_cast<double>(point.queries) / seconds
                          : 0.0;
  // Percentiles cover the recent latency window, which the measured burst
  // dominates (the warm-up pass is far smaller than the window).
  point.p50_ms = stats.p50_ms;
  point.p90_ms = stats.p90_ms;
  point.p99_ms = stats.p99_ms;
  point.mean_queue_ms = stats.mean_queue_ms;
  point.cache_hit_rate = stats.cache_hit_rate;
  point.warm_io_reads = io.read_ops;
  if (stats.failed != warmup_stats.failed) {
    return Status::Internal("closed-loop queries failed");
  }
  return point;
}

struct OpenLoopResult {
  double rate_qps = 0.0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t admission_drops = 0;
  uint64_t deadline_drops = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Fixed-arrival-rate dispatcher into a small bounded queue with a queue
/// deadline: the overload/shedding demonstration.
StatusOr<OpenLoopResult> RunOpenLoop(const std::string& dir,
                                     const std::vector<Query>& queries,
                                     double rate_qps, uint32_t workers,
                                     double seconds) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 32;
  options.default_queue_deadline_ms = 50.0;
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options));
  for (const Query& q : queries) {  // warm BOTH engines the phase uses
    KBTIM_RETURN_IF_ERROR(
        service->Execute({q, QueryEngine::kIrr}).status());
    KBTIM_RETURN_IF_ERROR(service->Execute({q, QueryEngine::kRr}).status());
  }
  service->cache()->WaitForPrefetches();
  service->ResetLatencyWindow();

  const auto interval = std::chrono::duration<double>(1.0 / rate_qps);
  const uint64_t offered =
      static_cast<uint64_t>(rate_qps * seconds);
  std::vector<std::future<StatusOr<SeedSetResult>>> futures;
  futures.reserve(offered);
  auto next = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < offered; ++i) {
    std::this_thread::sleep_until(next);
    next += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(interval);
    ServiceRequest request;
    request.query = queries[i % queries.size()];
    request.engine = i % 2 == 0 ? QueryEngine::kIrr : QueryEngine::kRr;
    futures.push_back(service->Submit(std::move(request)));
  }
  service->Drain();
  for (auto& future : futures) KBTIM_IGNORE_STATUS(future.get());

  const ServiceStats stats = service->stats();
  OpenLoopResult result;
  result.rate_qps = rate_qps;
  result.offered = offered;
  result.completed = stats.completed - 2 * queries.size();  // minus warm-up
  result.admission_drops = stats.admission_drops;
  result.deadline_drops = stats.deadline_drops;
  result.p50_ms = stats.p50_ms;
  result.p99_ms = stats.p99_ms;
  return result;
}

struct MixedLaneResult {
  const char* mode = "";
  uint64_t index_queries = 0;
  uint64_t wris_queries = 0;
  double seconds = 0.0;
  double fast_p50_ms = 0.0;
  double fast_p99_ms = 0.0;
  double slow_p50_ms = 0.0;
  double slow_p99_ms = 0.0;
  uint64_t wris_deferrals = 0;
  uint64_t failed = 0;
};

/// Mixed WRIS+index phase: `wris_clients` flood ~10x-slower solves while
/// `index_clients` issue warm IRR/RR queries, all against one service.
/// Run under kFifo (the PR 3 baseline) and kLanes; the index lane's
/// p50/p99 delta is the head-of-line-blocking fix.
StatusOr<MixedLaneResult> RunMixedWorkload(
    const std::string& dir, const Environment& env,
    const std::vector<Query>& queries, SchedulingMode mode,
    uint32_t workers, uint32_t index_clients, uint32_t wris_clients,
    uint32_t index_iters) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 4096;
  options.scheduler.mode = mode;
  options.wris.epsilon = 0.5;
  options.wris.num_threads = 1;
  options.wris.seed = 99;
  options.wris.max_theta = 20000;
  options.wris.opt_estimate.pilot_initial = 1024;
  QueryService::OnlineBackend online;
  online.graph = &env.graph();
  online.tfidf = &env.tfidf();
  online.model = PropagationModel::kIndependentCascade;
  online.in_edge_weights = &env.ic_probs();
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options, online));
  for (const Query& q : queries) {  // warm both index engines
    KBTIM_RETURN_IF_ERROR(
        service->Execute({q, QueryEngine::kIrr}).status());
    KBTIM_RETURN_IF_ERROR(service->Execute({q, QueryEngine::kRr}).status());
  }
  service->cache()->WaitForPrefetches();
  service->ResetLatencyWindow();
  const ServiceStats before = service->stats();

  std::atomic<bool> stop{false};
  WallTimer timer;
  std::vector<std::thread> wris_threads;
  wris_threads.reserve(wris_clients);
  for (uint32_t c = 0; c < wris_clients; ++c) {
    wris_threads.emplace_back([&, c] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ServiceRequest request;
        request.query = queries[(c + i++) % queries.size()];
        request.engine = QueryEngine::kWris;
        auto result = service->Execute(std::move(request));
        if (!result.ok()) {
          std::fprintf(stderr, "wris query failed: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  std::vector<std::thread> index_threads;
  index_threads.reserve(index_clients);
  for (uint32_t c = 0; c < index_clients; ++c) {
    index_threads.emplace_back([&, c] {
      for (uint32_t i = 0; i < index_iters; ++i) {
        ServiceRequest request;
        request.query = queries[(c + i) % queries.size()];
        request.engine =
            (c + i) % 2 == 0 ? QueryEngine::kIrr : QueryEngine::kRr;
        auto result = service->Execute(std::move(request));
        if (!result.ok()) {
          std::fprintf(stderr, "index query failed: %s\n",
                       result.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& thread : index_threads) thread.join();
  stop.store(true);
  for (auto& thread : wris_threads) thread.join();
  service->Drain();

  const ServiceStats stats = service->stats();
  MixedLaneResult result;
  result.mode = mode == SchedulingMode::kFifo ? "fifo" : "lanes";
  result.seconds = timer.ElapsedSeconds();
  result.index_queries = (stats.irr_queries + stats.rr_queries) -
                         (before.irr_queries + before.rr_queries);
  result.wris_queries = stats.wris_queries - before.wris_queries;
  result.fast_p50_ms = stats.fast_p50_ms;
  result.fast_p99_ms = stats.fast_p99_ms;
  result.slow_p50_ms = stats.slow_p50_ms;
  result.slow_p99_ms = stats.slow_p99_ms;
  result.wris_deferrals = stats.wris_deferrals;
  result.failed = stats.failed - before.failed;
  return result;
}

struct CoalescingResult {
  uint64_t requests = 0;
  double batched_seconds = 0.0;
  double unbatched_seconds = 0.0;
  uint64_t batched_io_reads = 0;
  uint64_t unbatched_io_reads = 0;
  uint64_t rr_batches = 0;
  uint64_t rr_batched_queries = 0;
  bool golden_ok = true;
  double speedup = 0.0;
  double io_savings = 0.0;
};

/// Coalescing phase: async bursts of overlapping kRr requests with the
/// batch-aware dispatcher off (rr_max_batch=1) then on, golden-checking
/// every answer against a direct RrIndex handle. The service runs under a
/// cache budget ~half the working set (constant evictions), the regime
/// the dispatcher exists for: a coalesced batch loads each keyword once
/// where serial execution re-reads it per query.
StatusOr<CoalescingResult> RunCoalescing(const std::string& dir,
                                         const std::vector<Query>& queries,
                                         uint32_t workers, uint32_t bursts,
                                         uint32_t burst_size) {
  CoalescingResult out;
  std::vector<SeedSetResult> golden;
  uint64_t resident_bytes = 0;
  {
    KBTIM_ASSIGN_OR_RETURN(RrIndex rr, RrIndex::Open(dir));
    for (const Query& q : queries) {
      KBTIM_ASSIGN_OR_RETURN(SeedSetResult want, rr.Query(q));
      golden.push_back(std::move(want));
    }
    resident_bytes = rr.cache()->stats().bytes_cached;
  }
  for (const bool batched : {false, true}) {
    QueryServiceOptions options;
    options.num_workers = workers;
    options.max_pending = 4096;
    options.cache.block_cache_bytes = std::max<uint64_t>(resident_bytes / 2, 1);
    // Opportunistic coalescing only (window 0): the burst itself backs
    // the queue up, so batches form without adding hold latency.
    options.scheduler.rr_max_batch = batched ? 16 : 1;
    KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                           QueryService::Create(dir, options));
    for (const Query& q : queries) {  // touch once (budget forces churn)
      KBTIM_RETURN_IF_ERROR(
          service->Execute({q, QueryEngine::kRr}).status());
    }
    service->cache()->WaitForPrefetches();
    service->ResetLatencyWindow();

    const IoStats io_before = IoCounter::Snapshot();
    WallTimer timer;
    for (uint32_t b = 0; b < bursts; ++b) {
      std::vector<std::future<StatusOr<SeedSetResult>>> futures;
      futures.reserve(burst_size);
      for (uint32_t i = 0; i < burst_size; ++i) {
        futures.push_back(service->Submit(
            {queries[i % queries.size()], QueryEngine::kRr}));
      }
      for (uint32_t i = 0; i < burst_size; ++i) {
        auto result = futures[i].get();
        if (!result.ok()) return result.status();
        const SeedSetResult& want = golden[i % queries.size()];
        if (result->seeds != want.seeds ||
            result->estimated_influence != want.estimated_influence) {
          out.golden_ok = false;
        }
      }
    }
    service->Drain();
    const double seconds = timer.ElapsedSeconds();
    const IoStats io = IoCounter::Snapshot() - io_before;
    if (batched) {
      out.batched_seconds = seconds;
      out.batched_io_reads = io.read_ops;
      const ServiceStats stats = service->stats();
      out.rr_batches = stats.rr_batches;
      out.rr_batched_queries = stats.rr_batched_queries;
    } else {
      out.unbatched_seconds = seconds;
      out.unbatched_io_reads = io.read_ops;
    }
  }
  out.requests = uint64_t{bursts} * burst_size;
  out.speedup = out.batched_seconds > 0
                    ? out.unbatched_seconds / out.batched_seconds
                    : 0.0;
  out.io_savings =
      out.batched_io_reads > 0
          ? static_cast<double>(out.unbatched_io_reads) /
                static_cast<double>(out.batched_io_reads)
          : 0.0;
  return out;
}

struct FaultPhaseResult {
  double pre_p99_ms = 0.0;
  double post_p99_ms = 0.0;
  double recovery_ratio = 0.0;  ///< post / pre (1.0 = fully recovered)
  uint64_t burst_requests = 0;
  uint64_t burst_ok = 0;
  uint64_t burst_degraded = 0;
  uint64_t burst_failed = 0;
  double burst_availability = 0.0;  ///< (ok + degraded) / requests
  uint64_t injected_faults = 0;
  uint64_t transient_retries = 0;
  uint64_t retry_successes = 0;
  uint64_t quarantine_rejections = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_closes = 0;
  uint64_t post_failed = 0;  ///< failures AFTER the burst (must be 0)
};

/// Fault phase: pre-burst p99 on the warm path, then the same closed loop
/// with injected I/O errors and rare bit flips (cold cache, so every
/// fault is live), then injector off + re-warm + post-burst p99. The
/// interesting outputs are availability DURING the burst (retry +
/// degradation + O(1) quarantine shedding keep it high) and the recovery
/// ratio AFTER it (breakers re-admit, nothing corrupt lingers).
StatusOr<FaultPhaseResult> RunFaultPhase(const std::string& dir,
                                         const std::vector<Query>& queries,
                                         uint32_t clients, uint32_t workers,
                                         uint32_t iters) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 4096;
  options.failure.retry_backoff_ms = 1.0;
  options.failure.breaker.backoff_ms = 10.0;
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options));

  auto run_burst = [&](uint64_t* ok, uint64_t* degraded,
                       uint64_t* failed) {
    std::atomic<uint64_t> ok_n{0}, degraded_n{0}, failed_n{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (uint32_t i = 0; i < iters; ++i) {
          ServiceRequest request;
          request.query = queries[(c + i) % queries.size()];
          request.engine =
              (c + i) % 2 == 0 ? QueryEngine::kIrr : QueryEngine::kRr;
          auto result = service->Execute(std::move(request));
          if (!result.ok()) {
            ++failed_n;
          } else if (result->degraded) {
            ++degraded_n;
          } else {
            ++ok_n;
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    if (ok != nullptr) *ok = ok_n.load();
    if (degraded != nullptr) *degraded = degraded_n.load();
    if (failed != nullptr) *failed = failed_n.load();
  };

  // Warm everything, then the pre-burst baseline.
  for (const Query& q : queries) {
    KBTIM_RETURN_IF_ERROR(
        service->Execute({q, QueryEngine::kIrr}).status());
    KBTIM_RETURN_IF_ERROR(service->Execute({q, QueryEngine::kRr}).status());
  }
  service->cache()->WaitForPrefetches();
  service->ResetLatencyWindow();
  run_burst(nullptr, nullptr, nullptr);
  FaultPhaseResult out;
  out.pre_p99_ms = service->stats().p99_ms;
  const ServiceStats pre = service->stats();

  // Burst: flaky reads everywhere, rare flips, cold cache so they land.
  {
    FaultPlan plan;
    plan.seed = 20260808;
    plan.rules.push_back({"irr_", FaultOp::kRead, FaultKind::kIOError,
                          /*first_op=*/0, /*max_faults=*/0,
                          /*probability=*/0.15});
    plan.rules.push_back({"rr_", FaultOp::kRead, FaultKind::kIOError,
                          0, 0, 0.10});
    plan.rules.push_back({"irr_", FaultOp::kRead, FaultKind::kBitFlip,
                          0, 0, 0.01});
    FaultInjector::Instance().Arm(plan);
    service->cache()->DropBlocks();
    run_burst(&out.burst_ok, &out.burst_degraded, &out.burst_failed);
    out.injected_faults = FaultInjector::Instance().stats().total_faults();
    FaultInjector::Instance().Disarm();
  }
  out.burst_requests = uint64_t{clients} * iters;
  out.burst_availability =
      out.burst_requests > 0
          ? static_cast<double>(out.burst_ok + out.burst_degraded) /
                static_cast<double>(out.burst_requests)
          : 0.0;
  const ServiceStats mid = service->stats();
  out.transient_retries = mid.transient_retries - pre.transient_retries;
  out.retry_successes = mid.retry_successes - pre.retry_successes;
  out.quarantine_rejections =
      mid.quarantine_rejections - pre.quarantine_rejections;
  out.breaker_opens = mid.breaker_opens - pre.breaker_opens;

  // Recovery: drop whatever the burst left cached, re-warm (half-open
  // probes re-admit quarantined keywords here), then the post-burst p99
  // over the identical workload.
  service->cache()->DropBlocks();
  for (int pass = 0; pass < 2; ++pass) {  // pass 1: probes; pass 2: warm
    for (const Query& q : queries) {
      KBTIM_IGNORE_STATUS(service->Execute({q, QueryEngine::kIrr}));
      KBTIM_IGNORE_STATUS(service->Execute({q, QueryEngine::kRr}));
    }
  }
  service->cache()->WaitForPrefetches();
  service->ResetLatencyWindow();
  const uint64_t failed_before_post = service->stats().failed;
  run_burst(nullptr, nullptr, nullptr);
  const ServiceStats post = service->stats();
  out.post_p99_ms = post.p99_ms;
  out.post_failed = post.failed - failed_before_post;
  out.breaker_closes = post.breaker_closes - pre.breaker_closes;
  out.recovery_ratio =
      out.pre_p99_ms > 0 ? out.post_p99_ms / out.pre_p99_ms : 0.0;
  return out;
}

struct BitFlipPhaseResult {
  uint64_t burst_requests = 0;
  uint64_t injected_flips = 0;   ///< kBitFlip faults actually fired.
  uint64_t crc_detected = 0;     ///< Cache crc_failures delta (verify-on-read).
  uint64_t ok_golden = 0;        ///< Clean, non-degraded, golden-equal.
  uint64_t degraded = 0;         ///< Served minus quarantined keywords.
  uint64_t failed_corruption = 0;  ///< kCorruption surfaced to the client.
  uint64_t failed_other = 0;     ///< Breaker sheds etc. during the burst.
  /// OK, NON-degraded answers that differ from the fault-free golden:
  /// a flipped byte that sneaked through every checksum into a result.
  /// The integrity invariant is exactly undetected_corruptions == 0.
  uint64_t undetected_corruptions = 0;
  bool recovered_golden = false;  ///< Post-disarm: every answer golden again.
};

/// Bit-flip burst: golden answers per (query, engine) first, then the
/// same closed loop with every index file's reads randomly flipping one
/// byte (cold cache, so the flips hit live payloads), scoring each OK
/// answer against its golden. Before checksums a flipped-but-decodable
/// payload silently changed answers; with the v2 format every flip is
/// either caught by a CRC (failed/degraded/shed request) or never reaches
/// a result — undetected_corruptions counts the leaks and must be 0.
StatusOr<BitFlipPhaseResult> RunBitFlipPhase(
    const std::string& dir, const std::vector<Query>& queries,
    uint32_t clients, uint32_t workers, uint32_t iters) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_pending = 4096;
  options.failure.retry_backoff_ms = 1.0;
  options.failure.breaker.backoff_ms = 10.0;
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options));

  std::vector<SeedSetResult> golden_irr(queries.size());
  std::vector<SeedSetResult> golden_rr(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    KBTIM_ASSIGN_OR_RETURN(
        golden_irr[i], service->Execute({queries[i], QueryEngine::kIrr}));
    KBTIM_ASSIGN_OR_RETURN(
        golden_rr[i], service->Execute({queries[i], QueryEngine::kRr}));
  }
  const auto same = [](const SeedSetResult& a, const SeedSetResult& b) {
    return a.seeds == b.seeds &&
           a.estimated_influence == b.estimated_influence;
  };

  BitFlipPhaseResult out;
  const KeywordCacheStats pre_cache = service->cache()->stats();
  {
    FaultPlan plan;
    plan.seed = 20260808;
    plan.rules.push_back({"irr_", FaultOp::kRead, FaultKind::kBitFlip,
                          /*first_op=*/0, /*max_faults=*/0,
                          /*probability=*/0.05});
    plan.rules.push_back({"rr_", FaultOp::kRead, FaultKind::kBitFlip,
                          0, 0, 0.05});
    plan.rules.push_back({"lists_", FaultOp::kRead, FaultKind::kBitFlip,
                          0, 0, 0.05});
    FaultInjector::Instance().Arm(plan);
    service->cache()->DropBlocks();

    std::atomic<uint64_t> ok_golden{0}, degraded{0}, failed_corruption{0},
        failed_other{0}, undetected{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (uint32_t i = 0; i < iters; ++i) {
          const size_t qi = (c + i) % queries.size();
          const bool use_irr = (c + i) % 2 == 0;
          ServiceRequest request;
          request.query = queries[qi];
          request.engine =
              use_irr ? QueryEngine::kIrr : QueryEngine::kRr;
          auto result = service->Execute(std::move(request));
          if (!result.ok()) {
            if (result.status().IsCorruption()) {
              ++failed_corruption;
            } else {
              ++failed_other;
            }
          } else if (result->degraded) {
            ++degraded;
          } else if (same(*result,
                          use_irr ? golden_irr[qi] : golden_rr[qi])) {
            ++ok_golden;
          } else {
            ++undetected;
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    out.ok_golden = ok_golden.load();
    out.degraded = degraded.load();
    out.failed_corruption = failed_corruption.load();
    out.failed_other = failed_other.load();
    out.undetected_corruptions = undetected.load();
    out.injected_flips = FaultInjector::Instance().stats().bit_flips;
    FaultInjector::Instance().Disarm();
  }
  out.burst_requests = uint64_t{clients} * iters;
  out.crc_detected =
      service->cache()->stats().crc_failures - pre_cache.crc_failures;

  // Recovery: injector off, drop suspect cache state, let half-open
  // probes re-admit quarantined keywords, then require every (query,
  // engine) pair to answer golden-equal again.
  service->cache()->DropBlocks();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int pass = 0; pass < 2; ++pass) {
    for (const Query& q : queries) {
      KBTIM_IGNORE_STATUS(service->Execute({q, QueryEngine::kIrr}));
      KBTIM_IGNORE_STATUS(service->Execute({q, QueryEngine::kRr}));
    }
  }
  out.recovered_golden = true;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto irr = service->Execute({queries[i], QueryEngine::kIrr});
    auto rr = service->Execute({queries[i], QueryEngine::kRr});
    if (!irr.ok() || !rr.ok() || !same(*irr, golden_irr[i]) ||
        !same(*rr, golden_rr[i])) {
      out.recovered_golden = false;
      break;
    }
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace kbtim

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool assert_warm_zero_io = false;
  bool assert_lane_p99 = false;
  bool assert_fault_recovery = false;
  bool no_open_loop = false;
  bool no_mixed = false;
  bool no_faults = false;
  uint32_t max_workers = 0;  // 0 = match client count
  uint32_t iters = 0;
  double open_loop_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-warm-zero-io") == 0) {
      assert_warm_zero_io = true;
    } else if (std::strcmp(argv[i], "--assert-lane-p99") == 0) {
      assert_lane_p99 = true;
    } else if (std::strcmp(argv[i], "--assert-fault-recovery") == 0) {
      assert_fault_recovery = true;
    } else if (std::strcmp(argv[i], "--no-open-loop") == 0) {
      no_open_loop = true;
    } else if (std::strcmp(argv[i], "--no-mixed") == 0) {
      no_mixed = true;
    } else if (std::strcmp(argv[i], "--no-faults") == 0) {
      no_faults = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      max_workers = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--open-loop-rate") == 0 &&
               i + 1 < argc) {
      open_loop_rate = std::atof(argv[i + 1]);
    }
  }
  if (iters == 0) iters = flags.queries * 4;
  PrintHeader("Serving load: concurrent clients over one KeywordCache",
              flags);

  const DatasetSpec spec =
      ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_serving_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }

  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 2;
  qopts.max_keywords = 2;
  qopts.k = 20;
  qopts.seed = 2027;
  auto queries = env->Queries(qopts);
  if (!queries.ok() || queries->empty()) return 1;

  const uint32_t hw_threads = std::thread::hardware_concurrency();
  const uint32_t client_counts[] = {1, 2, 4, 8};
  std::vector<LoadPoint> points;
  for (uint32_t clients : client_counts) {
    const uint32_t workers =
        max_workers > 0 ? std::min(clients, max_workers) : clients;
    auto point = RunClosedLoop(*dir, *queries, clients, workers, iters);
    if (!point.ok()) {
      std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
      return 1;
    }
    points.push_back(*point);
  }
  const double speedup_4v1 =
      points[0].qps > 0 ? points[2].qps / points[0].qps : 0.0;

  OpenLoopResult open_loop;
  bool have_open_loop = false;
  if (!no_open_loop) {
    // Default arrival rate: 1.5x the single-client throughput into a
    // 2-worker service — enough pressure to queue, not a meltdown.
    const double rate = open_loop_rate > 0 ? open_loop_rate
                                           : std::max(50.0, 1.5 *
                                                                points[0].qps);
    auto result = RunOpenLoop(*dir, *queries, rate,
                              max_workers > 0 ? max_workers : 2, 2.0);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    open_loop = *result;
    have_open_loop = true;
  }

  // Mixed WRIS+index phase, FIFO baseline then lanes, same workload.
  MixedLaneResult mixed_fifo, mixed_lanes;
  bool have_mixed = false;
  if (!no_mixed) {
    const uint32_t workers = max_workers > 0 ? max_workers : 2;
    const uint32_t index_clients = 2;
    const uint32_t wris_clients = 2;
    const uint32_t index_iters = std::max<uint32_t>(48, iters);
    auto fifo = RunMixedWorkload(*dir, *env, *queries,
                                 SchedulingMode::kFifo, workers,
                                 index_clients, wris_clients, index_iters);
    auto lanes = RunMixedWorkload(*dir, *env, *queries,
                                  SchedulingMode::kLanes, workers,
                                  index_clients, wris_clients, index_iters);
    if (!fifo.ok() || !lanes.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!fifo.ok() ? fifo : lanes).status().ToString().c_str());
      return 1;
    }
    mixed_fifo = *fifo;
    mixed_lanes = *lanes;
    have_mixed = true;
  }

  // Coalescing phase: batch-aware RR dispatch off vs on.
  auto coalescing =
      RunCoalescing(*dir, *queries, max_workers > 0 ? max_workers : 2,
                    /*bursts=*/8, /*burst_size=*/16);
  if (!coalescing.ok()) {
    std::fprintf(stderr, "%s\n", coalescing.status().ToString().c_str());
    return 1;
  }

  // Fault phase: injected storage faults, then recovery.
  FaultPhaseResult fault_phase;
  bool have_faults = false;
  if (!no_faults) {
    auto result = RunFaultPhase(*dir, *queries, /*clients=*/4,
                                max_workers > 0 ? max_workers : 2,
                                std::max<uint32_t>(iters / 2, 8));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    fault_phase = *result;
    have_faults = true;
  }

  // Bit-flip phase: silent payload corruption vs the checksum layer.
  BitFlipPhaseResult bitflip_phase;
  bool have_bitflips = false;
  if (!no_faults) {
    auto result = RunBitFlipPhase(*dir, *queries, /*clients=*/4,
                                  max_workers > 0 ? max_workers : 2,
                                  std::max<uint32_t>(iters / 2, 8));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    bitflip_phase = *result;
    have_bitflips = true;
  }

  // ---- Report -------------------------------------------------------------
  TablePrinter table({"clients", "workers", "qps", "p50_ms", "p90_ms",
                      "p99_ms", "warm_IOs"});
  for (const LoadPoint& p : points) {
    table.AddRow({std::to_string(p.clients), std::to_string(p.workers),
                  FormatDouble(p.qps, 1), FormatDouble(p.p50_ms, 3),
                  FormatDouble(p.p90_ms, 3), FormatDouble(p.p99_ms, 3),
                  std::to_string(p.warm_io_reads)});
  }
  table.Print(std::cout);
  std::printf("\nthroughput scaling 1 -> 4 clients: %.2fx "
              "(hardware threads: %u)\n",
              speedup_4v1, hw_threads);
  if (have_open_loop) {
    std::printf(
        "open loop: %.0f qps offered for 2s -> %llu/%llu served, "
        "%llu queue-full drops, %llu deadline drops, p99 %.2f ms\n",
        open_loop.rate_qps,
        static_cast<unsigned long long>(open_loop.completed),
        static_cast<unsigned long long>(open_loop.offered),
        static_cast<unsigned long long>(open_loop.admission_drops),
        static_cast<unsigned long long>(open_loop.deadline_drops),
        open_loop.p99_ms);
  }
  if (have_mixed) {
    std::printf("\nmixed WRIS+index workload (index-lane tail under a "
                "concurrent slow-class flood):\n");
    TablePrinter mixed_table({"mode", "idx_q", "wris_q", "fast_p50",
                              "fast_p99", "slow_p50", "slow_p99",
                              "deferrals"});
    for (const MixedLaneResult* m : {&mixed_fifo, &mixed_lanes}) {
      mixed_table.AddRow(
          {m->mode, std::to_string(m->index_queries),
           std::to_string(m->wris_queries), FormatDouble(m->fast_p50_ms, 3),
           FormatDouble(m->fast_p99_ms, 3), FormatDouble(m->slow_p50_ms, 2),
           FormatDouble(m->slow_p99_ms, 2),
           std::to_string(m->wris_deferrals)});
    }
    mixed_table.Print(std::cout);
    std::printf("index-lane p99 fifo -> lanes: %.3f ms -> %.3f ms "
                "(%.2fx better)\n",
                mixed_fifo.fast_p99_ms, mixed_lanes.fast_p99_ms,
                mixed_lanes.fast_p99_ms > 0
                    ? mixed_fifo.fast_p99_ms / mixed_lanes.fast_p99_ms
                    : 0.0);
  }
  std::printf("\ncoalescing (cache-pressured): %llu RR requests, no-batch "
              "%.3fs / %llu IOs vs batched %.3fs / %llu IOs (%.2fx time, "
              "%.2fx fewer reads), %llu batches covering %llu queries, "
              "golden %s\n",
              static_cast<unsigned long long>(coalescing->requests),
              coalescing->unbatched_seconds,
              static_cast<unsigned long long>(
                  coalescing->unbatched_io_reads),
              coalescing->batched_seconds,
              static_cast<unsigned long long>(coalescing->batched_io_reads),
              coalescing->speedup, coalescing->io_savings,
              static_cast<unsigned long long>(coalescing->rr_batches),
              static_cast<unsigned long long>(
                  coalescing->rr_batched_queries),
              coalescing->golden_ok ? "OK" : "MISMATCH");
  if (have_faults) {
    std::printf(
        "\nfault phase: %llu requests through the burst (%llu injected "
        "faults) -> %.1f%% available (%llu ok + %llu degraded, %llu "
        "failed), %llu retries (%llu rescued), %llu quarantine sheds, "
        "%llu breaker opens / %llu closes\n"
        "p99 pre-burst %.3f ms -> post-burst %.3f ms (%.2fx)\n",
        static_cast<unsigned long long>(fault_phase.burst_requests),
        static_cast<unsigned long long>(fault_phase.injected_faults),
        100.0 * fault_phase.burst_availability,
        static_cast<unsigned long long>(fault_phase.burst_ok),
        static_cast<unsigned long long>(fault_phase.burst_degraded),
        static_cast<unsigned long long>(fault_phase.burst_failed),
        static_cast<unsigned long long>(fault_phase.transient_retries),
        static_cast<unsigned long long>(fault_phase.retry_successes),
        static_cast<unsigned long long>(fault_phase.quarantine_rejections),
        static_cast<unsigned long long>(fault_phase.breaker_opens),
        static_cast<unsigned long long>(fault_phase.breaker_closes),
        fault_phase.pre_p99_ms, fault_phase.post_p99_ms,
        fault_phase.recovery_ratio);
  }
  if (have_bitflips) {
    std::printf(
        "\nbit-flip phase: %llu requests with flipping reads (%llu flips "
        "fired) -> %llu golden-ok, %llu degraded, %llu corruption-failed, "
        "%llu shed; CRC detected %llu, UNDETECTED corruptions %llu, "
        "post-disarm golden %s\n",
        static_cast<unsigned long long>(bitflip_phase.burst_requests),
        static_cast<unsigned long long>(bitflip_phase.injected_flips),
        static_cast<unsigned long long>(bitflip_phase.ok_golden),
        static_cast<unsigned long long>(bitflip_phase.degraded),
        static_cast<unsigned long long>(bitflip_phase.failed_corruption),
        static_cast<unsigned long long>(bitflip_phase.failed_other),
        static_cast<unsigned long long>(bitflip_phase.crc_detected),
        static_cast<unsigned long long>(
            bitflip_phase.undetected_corruptions),
        bitflip_phase.recovered_golden ? "OK" : "MISMATCH");
  }

  std::FILE* json = std::fopen("BENCH_serving.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"params\": {\"scale\": %.2f, \"topics\": %u, "
               "\"epsilon\": %.2f, \"queries\": %u, \"iters\": %u, "
               "\"k\": %u, \"keywords\": 2, \"hardware_threads\": %u},\n"
               "  \"closed_loop\": [\n",
               flags.scale, flags.topics, flags.epsilon, flags.queries,
               iters, qopts.k, hw_threads);
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(
        json,
        "    {\"clients\": %u, \"workers\": %u, \"queries\": %llu, "
        "\"qps\": %.2f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"mean_queue_ms\": %.4f, "
        "\"cache_hit_rate\": %.4f, \"warm_io_reads\": %llu}%s\n",
        p.clients, p.workers,
        static_cast<unsigned long long>(p.queries), p.qps, p.p50_ms,
        p.p90_ms, p.p99_ms, p.mean_queue_ms, p.cache_hit_rate,
        static_cast<unsigned long long>(p.warm_io_reads),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"speedup_4v1\": %.3f", speedup_4v1);
  if (have_open_loop) {
    std::fprintf(
        json,
        ",\n  \"open_loop\": {\"rate_qps\": %.1f, \"offered\": %llu, "
        "\"completed\": %llu, \"admission_drops\": %llu, "
        "\"deadline_drops\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f}",
        open_loop.rate_qps,
        static_cast<unsigned long long>(open_loop.offered),
        static_cast<unsigned long long>(open_loop.completed),
        static_cast<unsigned long long>(open_loop.admission_drops),
        static_cast<unsigned long long>(open_loop.deadline_drops),
        open_loop.p50_ms, open_loop.p99_ms);
  }
  if (have_mixed) {
    std::fprintf(json, ",\n  \"mixed_workload\": {\n");
    const MixedLaneResult* modes[] = {&mixed_fifo, &mixed_lanes};
    for (size_t i = 0; i < 2; ++i) {
      const MixedLaneResult& m = *modes[i];
      std::fprintf(
          json,
          "    \"%s\": {\"index_queries\": %llu, \"wris_queries\": %llu, "
          "\"seconds\": %.3f, \"fast_p50_ms\": %.4f, \"fast_p99_ms\": "
          "%.4f, \"slow_p50_ms\": %.4f, \"slow_p99_ms\": %.4f, "
          "\"wris_deferrals\": %llu, \"failed\": %llu}%s\n",
          m.mode, static_cast<unsigned long long>(m.index_queries),
          static_cast<unsigned long long>(m.wris_queries), m.seconds,
          m.fast_p50_ms, m.fast_p99_ms, m.slow_p50_ms, m.slow_p99_ms,
          static_cast<unsigned long long>(m.wris_deferrals),
          static_cast<unsigned long long>(m.failed), i == 0 ? "," : "");
    }
    std::fprintf(
        json, "    ,\"fast_p99_improvement\": %.3f\n  }",
        mixed_lanes.fast_p99_ms > 0
            ? mixed_fifo.fast_p99_ms / mixed_lanes.fast_p99_ms
            : 0.0);
  }
  std::fprintf(
      json,
      ",\n  \"coalescing\": {\"requests\": %llu, \"unbatched_seconds\": "
      "%.3f, \"batched_seconds\": %.3f, \"speedup\": %.3f, "
      "\"unbatched_io_reads\": %llu, \"batched_io_reads\": %llu, "
      "\"io_savings\": %.3f, "
      "\"rr_batches\": %llu, \"rr_batched_queries\": %llu, "
      "\"golden_ok\": %s}",
      static_cast<unsigned long long>(coalescing->requests),
      coalescing->unbatched_seconds, coalescing->batched_seconds,
      coalescing->speedup,
      static_cast<unsigned long long>(coalescing->unbatched_io_reads),
      static_cast<unsigned long long>(coalescing->batched_io_reads),
      coalescing->io_savings,
      static_cast<unsigned long long>(coalescing->rr_batches),
      static_cast<unsigned long long>(coalescing->rr_batched_queries),
      coalescing->golden_ok ? "true" : "false");
  if (have_faults) {
    std::fprintf(
        json,
        ",\n  \"fault_phase\": {\"burst_requests\": %llu, "
        "\"injected_faults\": %llu, \"burst_ok\": %llu, "
        "\"burst_degraded\": %llu, \"burst_failed\": %llu, "
        "\"burst_availability\": %.4f, \"transient_retries\": %llu, "
        "\"retry_successes\": %llu, \"quarantine_rejections\": %llu, "
        "\"breaker_opens\": %llu, \"breaker_closes\": %llu, "
        "\"pre_p99_ms\": %.4f, \"post_p99_ms\": %.4f, "
        "\"recovery_ratio\": %.4f, \"post_failed\": %llu}",
        static_cast<unsigned long long>(fault_phase.burst_requests),
        static_cast<unsigned long long>(fault_phase.injected_faults),
        static_cast<unsigned long long>(fault_phase.burst_ok),
        static_cast<unsigned long long>(fault_phase.burst_degraded),
        static_cast<unsigned long long>(fault_phase.burst_failed),
        fault_phase.burst_availability,
        static_cast<unsigned long long>(fault_phase.transient_retries),
        static_cast<unsigned long long>(fault_phase.retry_successes),
        static_cast<unsigned long long>(fault_phase.quarantine_rejections),
        static_cast<unsigned long long>(fault_phase.breaker_opens),
        static_cast<unsigned long long>(fault_phase.breaker_closes),
        fault_phase.pre_p99_ms, fault_phase.post_p99_ms,
        fault_phase.recovery_ratio,
        static_cast<unsigned long long>(fault_phase.post_failed));
  }
  if (have_bitflips) {
    std::fprintf(
        json,
        ",\n  \"bitflip_phase\": {\"burst_requests\": %llu, "
        "\"injected_flips\": %llu, \"ok_golden\": %llu, "
        "\"degraded\": %llu, \"failed_corruption\": %llu, "
        "\"failed_other\": %llu, \"crc_detected\": %llu, "
        "\"undetected_corruptions\": %llu, \"recovered_golden\": %s}",
        static_cast<unsigned long long>(bitflip_phase.burst_requests),
        static_cast<unsigned long long>(bitflip_phase.injected_flips),
        static_cast<unsigned long long>(bitflip_phase.ok_golden),
        static_cast<unsigned long long>(bitflip_phase.degraded),
        static_cast<unsigned long long>(bitflip_phase.failed_corruption),
        static_cast<unsigned long long>(bitflip_phase.failed_other),
        static_cast<unsigned long long>(bitflip_phase.crc_detected),
        static_cast<unsigned long long>(
            bitflip_phase.undetected_corruptions),
        bitflip_phase.recovered_golden ? "true" : "false");
  }
  std::fprintf(json, "\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_serving.json\n");

  if (assert_warm_zero_io) {
    for (const LoadPoint& p : points) {
      if (p.warm_io_reads != 0) {
        std::fprintf(stderr,
                     "FAIL: warm-path regression — %llu read ops at %u "
                     "clients (expected 0)\n",
                     static_cast<unsigned long long>(p.warm_io_reads),
                     p.clients);
        return 1;
      }
    }
  }
  if (!coalescing->golden_ok) {
    std::fprintf(stderr, "FAIL: coalesced RR answers diverged from the "
                         "single-query goldens\n");
    return 1;
  }
  if (assert_lane_p99) {
    if (!have_mixed) {
      std::fprintf(stderr,
                   "FAIL: --assert-lane-p99 needs the mixed phase "
                   "(drop --no-mixed)\n");
      return 1;
    }
    if (mixed_fifo.failed != 0 || mixed_lanes.failed != 0) {
      std::fprintf(stderr, "FAIL: mixed-workload queries failed\n");
      return 1;
    }
    // Primary gate on the median (a robust statistic over ~100 samples;
    // the HoL fix moves it ~10x), tail sanity on p99 with slack — p99 of
    // a short run is a single order statistic and one scheduler hiccup
    // on a shared runner must not fail the job.
    if (mixed_lanes.fast_p50_ms >= mixed_fifo.fast_p50_ms) {
      std::fprintf(stderr,
                   "FAIL: lane scheduler did not improve the index-lane "
                   "p50 under WRIS load (fifo %.3f ms vs lanes %.3f ms)\n",
                   mixed_fifo.fast_p50_ms, mixed_lanes.fast_p50_ms);
      return 1;
    }
    if (mixed_lanes.fast_p99_ms >= 1.25 * mixed_fifo.fast_p99_ms) {
      std::fprintf(stderr,
                   "FAIL: index-lane p99 regressed under the lane "
                   "scheduler (fifo %.3f ms vs lanes %.3f ms)\n",
                   mixed_fifo.fast_p99_ms, mixed_lanes.fast_p99_ms);
      return 1;
    }
  }
  if (assert_fault_recovery) {
    if (!have_faults) {
      std::fprintf(stderr,
                   "FAIL: --assert-fault-recovery needs the fault phase "
                   "(drop --no-faults)\n");
      return 1;
    }
    if (fault_phase.burst_ok + fault_phase.burst_degraded +
            fault_phase.burst_failed !=
        fault_phase.burst_requests) {
      std::fprintf(stderr,
                   "FAIL: fault-phase requests went unaccounted "
                   "(hang or lost promise)\n");
      return 1;
    }
    if (fault_phase.injected_faults == 0) {
      std::fprintf(stderr,
                   "FAIL: the fault burst injected nothing — the phase "
                   "proved nothing\n");
      return 1;
    }
    if (fault_phase.post_failed != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu queries still failing AFTER the burst "
                   "(service did not heal)\n",
                   static_cast<unsigned long long>(fault_phase.post_failed));
      return 1;
    }
    if (fault_phase.post_p99_ms > 1.25 * fault_phase.pre_p99_ms) {
      std::fprintf(stderr,
                   "FAIL: post-burst p99 %.3f ms exceeds 1.25x pre-burst "
                   "%.3f ms — fault state leaked into the warm path\n",
                   fault_phase.post_p99_ms, fault_phase.pre_p99_ms);
      return 1;
    }
    // Integrity gate: with v2 checksums, flipped bytes may fail or degrade
    // a request but must NEVER silently change a served answer.
    if (bitflip_phase.injected_flips == 0) {
      std::fprintf(stderr,
                   "FAIL: the bit-flip burst flipped nothing — the "
                   "integrity phase proved nothing\n");
      return 1;
    }
    if (bitflip_phase.undetected_corruptions != 0) {
      std::fprintf(
          stderr,
          "FAIL: %llu corrupted answers served as clean (checksums "
          "missed flipped payload bytes)\n",
          static_cast<unsigned long long>(
              bitflip_phase.undetected_corruptions));
      return 1;
    }
    if (bitflip_phase.crc_detected == 0) {
      std::fprintf(stderr,
                   "FAIL: flips fired but the cache CRC layer detected "
                   "none of them\n");
      return 1;
    }
    if (!bitflip_phase.recovered_golden) {
      std::fprintf(stderr,
                   "FAIL: answers did not return to golden after the "
                   "bit-flip burst was disarmed\n");
      return 1;
    }
  }
  return 0;
}

// Google-benchmark microbenches for the kernels underneath the paper's
// numbers: integer codecs (Table 4's compression), alias sampling and RR
// sampling (index construction cost), and greedy vs CELF max coverage
// (query processing cost; DESIGN.md ablation).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "coverage/celf_greedy.h"
#include "coverage/greedy_max_cover.h"
#include "graph/generators.h"
#include "propagation/rr_sampler.h"
#include "sampling/alias_table.h"
#include "storage/pfor_codec.h"

namespace kbtim {
namespace {

std::vector<uint32_t> SortedDeltas(size_t n) {
  Rng rng(7);
  std::vector<uint32_t> values(n);
  for (auto& v : values) v = rng.NextU32Below(1u << 24);
  std::sort(values.begin(), values.end());
  DeltaEncode(&values);
  return values;
}

void BM_CodecEncode(benchmark::State& state, CodecKind kind) {
  const auto codec = MakeCodec(kind);
  const auto values = SortedDeltas(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string buf;
    codec->Encode(values, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_CodecEncode, raw, CodecKind::kRaw)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecEncode, varint, CodecKind::kVarint)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecEncode, pfor, CodecKind::kPfor)->Arg(1 << 14);

void BM_CodecDecode(benchmark::State& state, CodecKind kind) {
  const auto codec = MakeCodec(kind);
  const auto values = SortedDeltas(static_cast<size_t>(state.range(0)));
  std::string buf;
  codec->Encode(values, &buf);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(buf, &out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["bytes_per_int"] =
      static_cast<double>(buf.size()) / state.range(0);
}
BENCHMARK_CAPTURE(BM_CodecDecode, raw, CodecKind::kRaw)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecDecode, varint, CodecKind::kVarint)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecDecode, pfor, CodecKind::kPfor)->Arg(1 << 14);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  auto table = AliasTable::FromWeights(weights);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += table->Sample(rng);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample)->Arg(1 << 10)->Arg(1 << 20);

void BM_RrSample(benchmark::State& state, PropagationModel model) {
  SocialGraphOptions opts;
  opts.num_vertices = 20000;
  opts.avg_degree = 20.0;
  opts.seed = 5;
  auto sg = GenerateSocialGraph(opts);
  const std::vector<float> weights = UniformIcProbabilities(sg->graph);
  auto sampler = MakeRrSampler(model, sg->graph, weights);
  Rng rng(9);
  std::vector<VertexId> rr;
  uint64_t total_size = 0;
  for (auto _ : state) {
    sampler->Sample(rng.NextU32Below(opts.num_vertices), rng, &rr);
    total_size += rr.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["mean_rr_size"] =
      static_cast<double>(total_size) /
      static_cast<double>(state.iterations());
}
BENCHMARK_CAPTURE(BM_RrSample, ic, PropagationModel::kIndependentCascade);
BENCHMARK_CAPTURE(BM_RrSample, lt, PropagationModel::kLinearThreshold);

RrCollection BenchSets(uint32_t num_sets, uint32_t num_vertices) {
  Rng rng(11);
  RrCollection sets;
  std::vector<VertexId> members;
  for (uint32_t i = 0; i < num_sets; ++i) {
    members.clear();
    const uint32_t len = 1 + rng.NextU32Below(8);
    for (uint32_t j = 0; j < len; ++j) {
      members.push_back(rng.NextU32Below(num_vertices));
    }
    sets.Add(members);
  }
  return sets;
}

void BM_GreedyCounting(benchmark::State& state) {
  const auto sets = BenchSets(static_cast<uint32_t>(state.range(0)), 20000);
  const InvertedRrIndex inverted(sets, 20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMaxCover(sets, inverted, 50));
  }
}
BENCHMARK(BM_GreedyCounting)->Arg(1 << 16)->Arg(1 << 18);

void BM_GreedyCelf(benchmark::State& state) {
  const auto sets = BenchSets(static_cast<uint32_t>(state.range(0)), 20000);
  const InvertedRrIndex inverted(sets, 20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CelfGreedyMaxCover(sets, inverted, 50));
  }
}
BENCHMARK(BM_GreedyCelf)->Arg(1 << 16)->Arg(1 << 18);

}  // namespace
}  // namespace kbtim

// Google-benchmark microbenches for the kernels underneath the paper's
// numbers: integer codecs (Table 4's compression), alias sampling and RR
// sampling (index construction cost), greedy vs CELF max coverage
// (query processing cost; DESIGN.md ablation), mmap vs pread index reads,
// and flat open-addressing vs unordered_map inverted-list lookup (the two
// warm-query-engine kernels).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "common/rng.h"
#include "coverage/celf_greedy.h"
#include "coverage/greedy_max_cover.h"
#include "graph/generators.h"
#include "propagation/rr_sampler.h"
#include "common/alias_table.h"
#include "storage/block_file.h"
#include "storage/pfor_codec.h"

namespace kbtim {
namespace {

std::vector<uint32_t> SortedDeltas(size_t n) {
  Rng rng(7);
  std::vector<uint32_t> values(n);
  for (auto& v : values) v = rng.NextU32Below(1u << 24);
  std::sort(values.begin(), values.end());
  DeltaEncode(&values);
  return values;
}

void BM_CodecEncode(benchmark::State& state, CodecKind kind) {
  const auto codec = MakeCodec(kind);
  const auto values = SortedDeltas(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string buf;
    codec->Encode(values, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK_CAPTURE(BM_CodecEncode, raw, CodecKind::kRaw)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecEncode, varint, CodecKind::kVarint)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecEncode, pfor, CodecKind::kPfor)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecEncode, gvarint, CodecKind::kGroupVarint)
    ->Arg(1 << 14);

void BM_CodecDecode(benchmark::State& state, CodecKind kind) {
  const auto codec = MakeCodec(kind);
  const auto values = SortedDeltas(static_cast<size_t>(state.range(0)));
  std::string buf;
  codec->Encode(values, &buf);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(buf, &out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["bytes_per_int"] =
      static_cast<double>(buf.size()) / state.range(0);
}
BENCHMARK_CAPTURE(BM_CodecDecode, raw, CodecKind::kRaw)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecDecode, varint, CodecKind::kVarint)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecDecode, pfor, CodecKind::kPfor)->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_CodecDecode, gvarint, CodecKind::kGroupVarint)
    ->Arg(1 << 14);

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  auto table = AliasTable::FromWeights(weights);
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += table->Sample(rng);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasTableSample)->Arg(1 << 10)->Arg(1 << 20);

void BM_RrSample(benchmark::State& state, PropagationModel model) {
  SocialGraphOptions opts;
  opts.num_vertices = 20000;
  opts.avg_degree = 20.0;
  opts.seed = 5;
  auto sg = GenerateSocialGraph(opts);
  const std::vector<float> weights = UniformIcProbabilities(sg->graph);
  auto sampler = MakeRrSampler(model, sg->graph, weights);
  Rng rng(9);
  std::vector<VertexId> rr;
  uint64_t total_size = 0;
  for (auto _ : state) {
    sampler->Sample(rng.NextU32Below(opts.num_vertices), rng, &rr);
    total_size += rr.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["mean_rr_size"] =
      static_cast<double>(total_size) /
      static_cast<double>(state.iterations());
}
BENCHMARK_CAPTURE(BM_RrSample, ic, PropagationModel::kIndependentCascade);
BENCHMARK_CAPTURE(BM_RrSample, lt, PropagationModel::kLinearThreshold);

RrCollection BenchSets(uint32_t num_sets, uint32_t num_vertices) {
  Rng rng(11);
  RrCollection sets;
  std::vector<VertexId> members;
  for (uint32_t i = 0; i < num_sets; ++i) {
    members.clear();
    const uint32_t len = 1 + rng.NextU32Below(8);
    for (uint32_t j = 0; j < len; ++j) {
      members.push_back(rng.NextU32Below(num_vertices));
    }
    sets.Add(members);
  }
  return sets;
}

void BM_GreedyCounting(benchmark::State& state) {
  const auto sets = BenchSets(static_cast<uint32_t>(state.range(0)), 20000);
  const InvertedRrIndex inverted(sets, 20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMaxCover(sets, inverted, 50));
  }
}
BENCHMARK(BM_GreedyCounting)->Arg(1 << 16)->Arg(1 << 18);

void BM_GreedyCelf(benchmark::State& state) {
  const auto sets = BenchSets(static_cast<uint32_t>(state.range(0)), 20000);
  const InvertedRrIndex inverted(sets, 20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CelfGreedyMaxCover(sets, inverted, 50));
  }
}
BENCHMARK(BM_GreedyCelf)->Arg(1 << 16)->Arg(1 << 18);

// ---- mmap vs pread (the RandomAccessFile zero-copy path) ------------------

class TempIndexFile {
 public:
  explicit TempIndexFile(size_t bytes) {
    path_ = (std::filesystem::temp_directory_path() /
             ("kbtim_bench_io_" + std::to_string(bytes) + ".dat"))
                .string();
    auto writer = FileWriter::Create(path_).value();
    Rng rng(13);
    std::string chunk(1 << 16, '\0');
    for (size_t written = 0; written < bytes; written += chunk.size()) {
      for (auto& c : chunk) c = static_cast<char>(rng.NextU32Below(256));
      KBTIM_IGNORE_STATUS(writer->Append(chunk));
    }
    KBTIM_IGNORE_STATUS(writer->Close());
  }
  ~TempIndexFile() { std::filesystem::remove(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void BM_ReadPread(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  TempIndexFile file(64 << 20);
  auto raf = RandomAccessFile::Open(file.path(), /*prefer_mmap=*/false).value();
  Rng rng(17);
  std::string buf;
  uint64_t sink = 0;
  const uint64_t span = raf->size() - block;
  for (auto _ : state) {
    const uint64_t off = rng.NextU32Below(static_cast<uint32_t>(span));
    KBTIM_IGNORE_STATUS(raf->Read(off, block, &buf));
    sink += static_cast<uint8_t>(buf[0]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * block);
}
BENCHMARK(BM_ReadPread)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_ReadMmapView(benchmark::State& state) {
  const size_t block = static_cast<size_t>(state.range(0));
  TempIndexFile file(64 << 20);
  auto raf = RandomAccessFile::Open(file.path(), /*prefer_mmap=*/true).value();
  if (!raf->mmapped()) {
    state.SkipWithError("mmap unavailable on this filesystem");
    return;
  }
  Rng rng(17);
  uint64_t sink = 0;
  const uint64_t span = raf->size() - block;
  for (auto _ : state) {
    const uint64_t off = rng.NextU32Below(static_cast<uint32_t>(span));
    auto view = raf->ReadView(off, block);
    sink += static_cast<uint8_t>((*view)[0]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * block);
}
BENCHMARK(BM_ReadMmapView)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// ---- flat open-addressing vs unordered_map list lookup --------------------
// Mirrors the IRR query's hot loop: look up a vertex's inverted list and
// scan it against a covered bitmap (irr_index.cc's FlatListTable vs the
// seed implementation's std::unordered_map<VertexId, std::vector<RrId>>).

struct ListFixture {
  std::vector<VertexId> vertices;       // inserted keys
  std::vector<VertexId> probes;         // lookup order (hit-heavy)
  std::vector<RrId> ids;                // flattened lists
  std::vector<uint32_t> offsets{0};
  std::vector<char> covered;

  explicit ListFixture(uint32_t num_users) {
    Rng rng(23);
    covered.assign(1 << 16, 0);
    for (uint32_t i = 0; i < num_users; ++i) {
      vertices.push_back(i * 7 + 3);  // sparse non-contiguous ids
      const uint32_t len = 1 + rng.NextU32Below(16);
      for (uint32_t j = 0; j < len; ++j) {
        ids.push_back(rng.NextU32Below(1 << 16));
      }
      offsets.push_back(static_cast<uint32_t>(ids.size()));
    }
    for (uint32_t i = 0; i < 4 * num_users; ++i) {
      probes.push_back(vertices[rng.NextU32Below(num_users)]);
    }
  }
};

void BM_ListLookupHash(benchmark::State& state) {
  const ListFixture fx(static_cast<uint32_t>(state.range(0)));
  std::unordered_map<VertexId, std::vector<RrId>> lists;
  for (size_t i = 0; i < fx.vertices.size(); ++i) {
    lists.emplace(fx.vertices[i],
                  std::vector<RrId>(fx.ids.begin() + fx.offsets[i],
                                    fx.ids.begin() + fx.offsets[i + 1]));
  }
  uint64_t sink = 0;
  for (auto _ : state) {
    for (VertexId v : fx.probes) {
      const auto it = lists.find(v);
      for (RrId rr : it->second) {
        if (!fx.covered[rr]) ++sink;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * fx.probes.size());
}
BENCHMARK(BM_ListLookupHash)->Arg(1 << 10)->Arg(1 << 14);

void BM_ListLookupFlat(benchmark::State& state) {
  const ListFixture fx(static_cast<uint32_t>(state.range(0)));
  // Open-addressing table of spans into the flattened ids (the
  // FlatListTable layout).
  struct Slot {
    VertexId vertex = kInvalidVertex;
    const RrId* begin = nullptr;
    const RrId* end = nullptr;
  };
  size_t cap = 16;
  while (cap < 2 * fx.vertices.size()) cap <<= 1;
  const size_t mask = cap - 1;
  std::vector<Slot> slots(cap);
  auto hash = [](VertexId v) {
    return static_cast<size_t>((uint64_t{v} * 0x9E3779B97F4A7C15ull) >> 29);
  };
  for (size_t i = 0; i < fx.vertices.size(); ++i) {
    size_t s = hash(fx.vertices[i]) & mask;
    while (slots[s].vertex != kInvalidVertex) s = (s + 1) & mask;
    slots[s] = {fx.vertices[i], fx.ids.data() + fx.offsets[i],
                fx.ids.data() + fx.offsets[i + 1]};
  }
  uint64_t sink = 0;
  for (auto _ : state) {
    for (VertexId v : fx.probes) {
      size_t s = hash(v) & mask;
      while (slots[s].vertex != v) s = (s + 1) & mask;
      for (const RrId* p = slots[s].begin; p != slots[s].end; ++p) {
        if (!fx.covered[*p]) ++sink;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * fx.probes.size());
}
BENCHMARK(BM_ListLookupFlat)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace kbtim

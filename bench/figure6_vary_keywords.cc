// Figure 6 reproduction: query processing cost as the number of query
// keywords |Q.T| grows from 1 to 6 (Q.k fixed at the default 30).
#include <iostream>

#include "bench_common.h"
#include "index/irr_index.h"
#include "index/rr_index.h"
#include "sampling/wris_solver.h"

namespace {

using namespace kbtim;
using namespace kbtim::bench;

int RunDataset(const DatasetSpec& spec, const BenchFlags& flags) {
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_ic_pfor_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }
  auto rr = RrIndex::Open(*dir);
  auto irr = IrrIndex::Open(*dir);
  if (!rr.ok() || !irr.ok()) return 1;

  OnlineSolverOptions wopts;
  wopts.epsilon = flags.epsilon;
  wopts.num_threads = flags.threads;
  WrisSolver wris(env->graph(), env->tfidf(),
                  PropagationModel::kIndependentCascade, env->ic_probs(),
                  wopts);

  std::cout << "(" << spec.name << ")  Q.k = 30\n";
  TablePrinter table({"|Q.T|", "WRIS_s", "RR_s", "IRR_s", "RR_sets_RR",
                      "RR_sets_IRR"});
  for (uint32_t len = 1; len <= 6; ++len) {
    QueryGeneratorOptions qopts;
    qopts.queries_per_length = flags.queries;
    qopts.min_keywords = len;
    qopts.max_keywords = len;
    qopts.k = 30;
    qopts.seed = 700 + len;
    auto queries = env->Queries(qopts);
    if (!queries.ok()) return 1;
    QueryAggregator rr_agg, irr_agg, wris_agg;
    for (size_t i = 0; i < queries->size(); ++i) {
      const Query& q = (*queries)[i];
      auto rr_result = rr->Query(q);
      auto irr_result = irr->Query(q);
      if (!rr_result.ok() || !irr_result.ok()) return 1;
      rr_agg.Add(*rr_result);
      irr_agg.Add(*irr_result);
      const bool wris_point = len == 1 || len == 3 || len == 5;
      if (wris_point && i < 2) {
        auto wris_result = wris.Solve(q);
        if (wris_result.ok()) wris_agg.Add(*wris_result);
      }
    }
    const QueryAggregate ra = rr_agg.Finish();
    const QueryAggregate ia = irr_agg.Finish();
    const QueryAggregate wa = wris_agg.Finish();
    table.AddRow({std::to_string(len),
                  wa.queries == 0 ? std::string("-")
                                  : FormatDouble(wa.mean_seconds, 3),
                  FormatDouble(ra.mean_seconds, 4),
                  FormatDouble(ia.mean_seconds, 4),
                  FormatDouble(ra.mean_rr_sets_loaded, 0),
                  FormatDouble(ia.mean_rr_sets_loaded, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 6: vary number of query keywords |Q.T|", flags);
  if (RunDataset(ScaleSpec(DefaultNewsSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  if (RunDataset(ScaleSpec(DefaultTwitterSpec(flags.topics), flags.scale),
                 flags) != 0) {
    return 1;
  }
  std::cout << "expected shape: indexes stay >= two orders of magnitude "
               "faster than WRIS across keyword counts; loaded-set counts "
               "grow roughly linearly for RR (paper Figure 6)\n";
  return 0;
}

// Shared plumbing for the per-table/figure benchmark binaries.
//
// Every bench accepts:
//   --scale S    multiply dataset vertex counts by S (default 1.0)
//   --topics N   topic-space size (default 30)
//   --epsilon E  index/solver epsilon (default 0.5; the paper used 0.1 on
//                a 60 GB server — θ grows as 1/ε²)
//   --queries Q  queries per configuration (default 10; paper used 100)
//   --threads T  build/evaluation threads (default 2)
//   --no-cache   rebuild indexes even if a cached copy exists
// and prints its parameter block first so runs are self-describing.
#ifndef KBTIM_BENCH_BENCH_COMMON_H_
#define KBTIM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "expr/datasets.h"
#include "expr/table_printer.h"
#include "expr/workload.h"
#include "index/index_builder.h"

namespace kbtim {
namespace bench {

struct BenchFlags {
  double scale = 1.0;
  uint32_t topics = 30;
  double epsilon = 0.5;
  uint32_t queries = 10;
  uint32_t threads = 2;
  bool no_cache = false;
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      flags.scale = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--topics") == 0) {
      flags.topics = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--epsilon") == 0) {
      flags.epsilon = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      flags.queries = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      flags.threads = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-cache") == 0) flags.no_cache = true;
  }
  return flags;
}

inline void PrintHeader(const char* title, const BenchFlags& flags) {
  std::printf("==== %s ====\n", title);
  std::printf(
      "params: scale=%.2f topics=%u epsilon=%.2f queries=%u threads=%u\n",
      flags.scale, flags.topics, flags.epsilon, flags.queries,
      flags.threads);
  std::printf(
      "note: laptop-scale reproduction; compare SHAPES to the paper, not "
      "absolute numbers (see EXPERIMENTS.md)\n\n");
}

/// Applies --scale to a spec's vertex count (min 1000 vertices).
inline DatasetSpec ScaleSpec(DatasetSpec spec, double scale) {
  const double n = static_cast<double>(spec.graph.num_vertices) * scale;
  spec.graph.num_vertices =
      static_cast<uint32_t>(n < 1000.0 ? 1000.0 : n);
  return spec;
}

/// Default index-build options used across benches.
inline IndexBuildOptions DefaultBuildOptions(const BenchFlags& flags) {
  IndexBuildOptions opts;
  opts.epsilon = flags.epsilon;
  opts.max_k = 100;
  opts.num_threads = flags.threads;
  opts.partition_size = 100;
  opts.seed = 4242;
  opts.max_theta_per_keyword = uint64_t{1} << 22;
  opts.opt_estimate.pilot_initial = 2048;
  return opts;
}

/// Root of the on-disk index cache shared by bench binaries.
inline std::string CacheRoot() {
  const char* env = std::getenv("KBTIM_BENCH_CACHE");
  return env != nullptr ? env : "/tmp/kbtim_bench_cache";
}

/// Builds (or reuses) an index for `env` under a tag; returns the directory
/// and fills `report` if a build happened (report->total_theta == 0 means
/// the cached index was reused).
inline StatusOr<std::string> EnsureIndex(const Environment& env,
                                         const IndexBuildOptions& opts,
                                         const std::string& tag,
                                         bool no_cache,
                                         IndexBuildReport* report) {
  const std::string dir = CacheRoot() + "/" + tag;
  std::filesystem::create_directories(dir);
  bool cached = !no_cache && std::filesystem::exists(MetaFileName(dir));
  if (cached) {
    // A cache dir left by an older binary may predate the current format
    // (e.g. v1, no checksums); rebuild instead of benching stale bytes.
    auto meta = ReadIndexMeta(MetaFileName(dir));
    cached = meta.ok() && meta->format_version == kIndexFormatLatest;
  }
  if (cached) {
    *report = IndexBuildReport{};
    return dir;
  }
  IndexBuilder builder(env.graph(), env.tfidf(),
                       env.weights(opts.model), opts);
  KBTIM_ASSIGN_OR_RETURN(*report, builder.Build(dir));
  return dir;
}

/// Directory size on disk (sums files matching the given prefix, or all
/// files when prefix is empty).
inline uint64_t DirBytes(const std::string& dir,
                         const std::string& prefix = "") {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    total += entry.file_size();
  }
  return total;
}

}  // namespace bench
}  // namespace kbtim

#endif  // KBTIM_BENCH_BENCH_COMMON_H_

// Table 5 reproduction: Σθ_w across all keywords and the mean RR-set size
// for each graph size in both series. The paper's observed tension — θ_w
// grows with |V| while the mean RR-set size shrinks (because the sampled
// sub-networks get sparser) — is the shape to look for.
#include <iostream>

#include "bench_common.h"
#include "propagation/rr_sampler.h"
#include "sampling/opt_estimator.h"
#include "sampling/theta_bounds.h"
#include "sampling/vertex_sampler.h"

namespace {

using namespace kbtim;
using namespace kbtim::bench;

struct ThetaSummary {
  uint64_t theta_sum = 0;
  double mean_rr_size = 0.0;
};

StatusOr<ThetaSummary> Summarize(const Environment& env,
                                 const BenchFlags& flags) {
  ThetaSummary summary;
  uint64_t size_samples = 0;
  uint64_t size_total = 0;
  auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                               env.graph(), env.ic_probs());
  Rng rng(777);
  std::vector<VertexId> scratch;
  for (TopicId w = 0; w < env.profiles().num_topics(); ++w) {
    const double tf_sum = env.profiles().TopicTfSum(w);
    if (tf_sum <= 0.0) continue;
    KBTIM_ASSIGN_OR_RETURN(
        WeightedVertexSampler roots,
        WeightedVertexSampler::ForTopic(env.profiles(), w));
    OptEstimateOptions oo;
    oo.k = 100;
    oo.pilot_initial = 2048;
    oo.seed = 1000 + w;
    KBTIM_ASSIGN_OR_RETURN(
        double opt,
        EstimateOptLowerBound(env.graph(), *sampler, roots, oo));
    summary.theta_sum += ThetaForKeyword(flags.epsilon, tf_sum,
                                         env.graph().num_vertices(), 100,
                                         opt);
    // Sample a few thousand RR sets per keyword for the mean size.
    for (int i = 0; i < 2000; ++i) {
      sampler->Sample(roots.Sample(rng), rng, &scratch);
      size_total += scratch.size();
      ++size_samples;
    }
  }
  summary.mean_rr_size = size_samples == 0
                             ? 0.0
                             : static_cast<double>(size_total) /
                                   static_cast<double>(size_samples);
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table 5: sum of theta_w and mean RR-set size vs |V|", flags);

  TablePrinter table(
      {"dataset", "|V|", "sum_theta_w", "mean_RR_size"});
  for (auto series :
       {NewsLikeSeries(flags.topics), TwitterLikeSeries(flags.topics)}) {
    for (const DatasetSpec& base : series) {
      const DatasetSpec spec = ScaleSpec(base, flags.scale);
      auto env = Environment::Create(spec);
      if (!env.ok()) {
        std::fprintf(stderr, "%s\n", env.status().ToString().c_str());
        return 1;
      }
      auto summary = Summarize(**env, flags);
      if (!summary.ok()) {
        std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
        return 1;
      }
      table.AddRow({spec.name,
                    std::to_string((*env)->graph().num_vertices()),
                    std::to_string(summary->theta_sum),
                    FormatDouble(summary->mean_rr_size, 1)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: sum_theta_w grows with |V|; mean RR size "
               "shrinks as the graphs get sparser; twitter-like RR sets "
               ">> news-like (paper Table 5)\n";
  return 0;
}

// Figure 7 reproduction: query processing cost as the graph size |V|
// grows, across both scaling series. One index is built per graph size
// (cached); queries use the default |Q.T| = 5, Q.k = 30.
#include <iostream>

#include "bench_common.h"
#include "index/irr_index.h"
#include "index/rr_index.h"
#include "sampling/wris_solver.h"

namespace {

using namespace kbtim;
using namespace kbtim::bench;

int RunSeries(const std::vector<DatasetSpec>& series,
              const BenchFlags& flags) {
  TablePrinter table({"dataset", "|V|", "WRIS_s", "RR_s", "IRR_s",
                      "RR_sets_RR", "RR_sets_IRR"});
  for (const DatasetSpec& base : series) {
    const DatasetSpec spec = ScaleSpec(base, flags.scale);
    auto env_or = Environment::Create(spec);
    if (!env_or.ok()) {
      std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
      return 1;
    }
    auto env = std::move(*env_or);
    IndexBuildOptions build = DefaultBuildOptions(flags);
    IndexBuildReport report;
    const std::string tag = spec.name + "_ic_pfor_e" +
                            FormatDouble(flags.epsilon, 2) + "_t" +
                            std::to_string(flags.topics);
    auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
    if (!dir.ok()) {
      std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
      return 1;
    }
    auto rr = RrIndex::Open(*dir);
    auto irr = IrrIndex::Open(*dir);
    if (!rr.ok() || !irr.ok()) return 1;

    OnlineSolverOptions wopts;
    wopts.epsilon = flags.epsilon;
    wopts.num_threads = flags.threads;
    WrisSolver wris(env->graph(), env->tfidf(),
                    PropagationModel::kIndependentCascade,
                    env->ic_probs(), wopts);

    QueryGeneratorOptions qopts;
    qopts.queries_per_length = flags.queries;
    qopts.min_keywords = 5;
    qopts.max_keywords = 5;
    qopts.k = 30;
    qopts.seed = 800;
    auto queries = env->Queries(qopts);
    if (!queries.ok()) return 1;

    QueryAggregator rr_agg, irr_agg, wris_agg;
    for (size_t i = 0; i < queries->size(); ++i) {
      const Query& q = (*queries)[i];
      auto rr_result = rr->Query(q);
      auto irr_result = irr->Query(q);
      if (!rr_result.ok() || !irr_result.ok()) return 1;
      rr_agg.Add(*rr_result);
      irr_agg.Add(*irr_result);
      if (i < 1) {  // one WRIS sample per size: the slow baseline
        auto wris_result = wris.Solve(q);
        if (wris_result.ok()) wris_agg.Add(*wris_result);
      }
    }
    const QueryAggregate ra = rr_agg.Finish();
    const QueryAggregate ia = irr_agg.Finish();
    const QueryAggregate wa = wris_agg.Finish();
    table.AddRow({spec.name, std::to_string(env->graph().num_vertices()),
                  FormatDouble(wa.mean_seconds, 3),
                  FormatDouble(ra.mean_seconds, 4),
                  FormatDouble(ia.mean_seconds, 4),
                  FormatDouble(ra.mean_rr_sets_loaded, 0),
                  FormatDouble(ia.mean_rr_sets_loaded, 0)});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 7: vary graph size |V|", flags);
  std::cout << "(news-like series)\n";
  if (RunSeries(NewsLikeSeries(flags.topics), flags) != 0) return 1;
  std::cout << "(twitter-like series)\n";
  if (RunSeries(TwitterLikeSeries(flags.topics), flags) != 0) return 1;
  std::cout << "expected shape: RR/IRR beat WRIS by wide margins at every "
               "size; IRR's advantage grows with graph size on the "
               "twitter-like series (paper Figure 7)\n";
  return 0;
}

// Table 6 reproduction: number of disk I/O operations the IRR query incurs
// as Q.k grows (one read per incrementally loaded partition plus one
// preamble read per keyword). For contrast the RR index's I/O count is
// printed too: constant in k (a fixed number of sequential reads per
// keyword), which is the trade-off the paper discusses in §6.3.
#include <iostream>

#include "bench_common.h"
#include "index/irr_index.h"
#include "index/rr_index.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table 6: IRR disk I/Os when varying Q.k", flags);

  for (const DatasetSpec& base :
       {DefaultNewsSpec(flags.topics), DefaultTwitterSpec(flags.topics)}) {
    const DatasetSpec spec = ScaleSpec(base, flags.scale);
    auto env_or = Environment::Create(spec);
    if (!env_or.ok()) {
      std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
      return 1;
    }
    auto env = std::move(*env_or);
    IndexBuildOptions build = DefaultBuildOptions(flags);
    IndexBuildReport report;
    const std::string tag = spec.name + "_ic_pfor_e" +
                            FormatDouble(flags.epsilon, 2) + "_t" +
                            std::to_string(flags.topics);
    auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
    if (!dir.ok()) {
      std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
      return 1;
    }
    std::cout << "(" << spec.name << ")  |Q.T| = 5, mean over "
              << flags.queries << " queries\n";
    TablePrinter table({"Q.k", "IRR_IOs", "RR_IOs"});
    for (uint32_t k = 10; k <= 50; k += 5) {
      QueryGeneratorOptions qopts;
      qopts.queries_per_length = flags.queries;
      qopts.min_keywords = 5;
      qopts.max_keywords = 5;
      qopts.k = k;
      qopts.seed = 600 + k;
      auto queries = env->Queries(qopts);
      if (!queries.ok()) return 1;
      QueryAggregator rr_agg, irr_agg;
      for (const Query& q : *queries) {
        // Table 6 is about COLD per-query I/O, so each query gets a fresh
        // handle (fresh KeywordCache); the warm path is measured by
        // bench/warm_cold_query.cc. Prefetch is pinned off: the paper
        // counts demand reads, and the pipeline's speculative window
        // would inflate them (bench/pipeline_query.cc measures that
        // trade).
        KeywordCacheOptions demand_only;
        demand_only.prefetch_threads = 0;
        auto rr = RrIndex::Open(*dir, demand_only);
        auto irr = IrrIndex::Open(*dir, demand_only);
        if (!rr.ok() || !irr.ok()) return 1;
        auto rr_result = rr->Query(q);
        auto irr_result = irr->Query(q);
        if (!rr_result.ok() || !irr_result.ok()) return 1;
        rr_agg.Add(*rr_result);
        irr_agg.Add(*irr_result);
      }
      table.AddRow({std::to_string(k),
                    FormatDouble(irr_agg.Finish().mean_io_reads, 2),
                    FormatDouble(rr_agg.Finish().mean_io_reads, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "expected shape: IRR I/Os grow with Q.k (more partitions "
               "pulled in); RR I/Os constant (paper Table 6 + §6.3)\n";
  return 0;
}

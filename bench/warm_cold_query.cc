// Warm-vs-cold query engine benchmark (this repo's addition on top of the
// paper's Table 6): an ad platform answers a stream of overlapping queries
// against one index, so what matters in steady state is the *warm* path —
// file handles, preambles and decoded partitions served by KeywordCache,
// and WRIS sampling workers reused across solves.
//
// Measures, and writes to BENCH_warm_cold.json:
//   * IRR/RR cold query: fresh cache per query (latency + I/O read ops)
//   * IRR/RR warm query: repeated query on one handle (latency + I/O);
//     warm I/O must be 0 when the working set fits the block cache
//   * WRIS repeated-solve: first-solve vs steady-state latency and global
//     heap allocation counts (pooled workers + reused samplers mean the
//     steady state allocates far less than the first solve)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <new>

#include "bench_common.h"
#include "common/timer.h"
#include "index/irr_index.h"
#include "index/rr_index.h"
#include "sampling/wris_solver.h"
#include "storage/io_counter.h"

// Global allocation counter: every operator new in the process bumps it,
// which is exactly what a "zero steady-state allocation" claim is about.
namespace {
std::atomic<uint64_t> g_allocs{0};

void* CountedAlloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace kbtim {
namespace bench {
namespace {

struct PathStats {
  double cold_ms_mean = 0.0;
  double warm_ms_mean = 0.0;
  double cold_io_reads_mean = 0.0;
  double warm_io_reads_mean = 0.0;
  double warm_cache_hits_mean = 0.0;
};

template <typename IndexT>
StatusOr<PathStats> MeasureIndexPath(const std::string& dir,
                                     const std::vector<Query>& queries) {
  PathStats out;
  // Cold: a fresh handle (fresh KeywordCache) per query. The I/O window
  // closes only after the prefetch pipeline drains, so speculative reads
  // still in flight at Query return are charged to the cold pass.
  for (const Query& q : queries) {
    KBTIM_ASSIGN_OR_RETURN(IndexT index, IndexT::Open(dir));
    const IoStats io_before = IoCounter::Snapshot();
    WallTimer t;
    KBTIM_RETURN_IF_ERROR(index.Query(q).status());
    out.cold_ms_mean += t.ElapsedSeconds() * 1e3;
    index.cache()->WaitForPrefetches();
    out.cold_io_reads_mean += static_cast<double>(
        (IoCounter::Snapshot() - io_before).read_ops);
  }
  // Warm: one shared handle; pass 1 primes the cache, pass 2 is measured.
  // Drain the background pipeline so a trailing prefetch read from the
  // priming pass cannot land inside the measured window.
  KBTIM_ASSIGN_OR_RETURN(IndexT warm_index, IndexT::Open(dir));
  for (const Query& q : queries) {
    KBTIM_RETURN_IF_ERROR(warm_index.Query(q).status());
  }
  warm_index.cache()->WaitForPrefetches();
  for (const Query& q : queries) {
    WallTimer t;
    KBTIM_ASSIGN_OR_RETURN(SeedSetResult r, warm_index.Query(q));
    out.warm_ms_mean += t.ElapsedSeconds() * 1e3;
    out.warm_io_reads_mean += static_cast<double>(r.stats.io_reads);
    out.warm_cache_hits_mean += static_cast<double>(r.stats.cache_hits);
  }
  const double n = static_cast<double>(queries.size());
  out.cold_ms_mean /= n;
  out.warm_ms_mean /= n;
  out.cold_io_reads_mean /= n;
  out.warm_io_reads_mean /= n;
  out.warm_cache_hits_mean /= n;
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace kbtim

int main(int argc, char** argv) {
  using namespace kbtim;
  using namespace kbtim::bench;
  BenchFlags flags = ParseFlags(argc, argv);
  bool assert_warm_zero_io = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-warm-zero-io") == 0) {
      assert_warm_zero_io = true;
    }
  }
  PrintHeader("Warm vs cold query engine", flags);

  const DatasetSpec spec = ScaleSpec(DefaultNewsSpec(flags.topics),
                                     flags.scale);
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  IndexBuildOptions build = DefaultBuildOptions(flags);
  IndexBuildReport report;
  const std::string tag = spec.name + "_warmcold_e" +
                          FormatDouble(flags.epsilon, 2) + "_t" +
                          std::to_string(flags.topics);
  auto dir = EnsureIndex(*env, build, tag, flags.no_cache, &report);
  if (!dir.ok()) {
    std::fprintf(stderr, "%s\n", dir.status().ToString().c_str());
    return 1;
  }

  QueryGeneratorOptions qopts;
  qopts.queries_per_length = flags.queries;
  qopts.min_keywords = 2;
  qopts.max_keywords = 2;
  qopts.k = 20;
  qopts.seed = 2026;
  auto queries = env->Queries(qopts);
  if (!queries.ok()) return 1;

  auto irr = MeasureIndexPath<IrrIndex>(*dir, *queries);
  auto rr = MeasureIndexPath<RrIndex>(*dir, *queries);
  if (!irr.ok() || !rr.ok()) {
    std::fprintf(stderr, "index path failed\n");
    return 1;
  }

  // WRIS repeated-solve: pooled workers + reusable samplers.
  OnlineSolverOptions wopts;
  wopts.epsilon = flags.epsilon;
  wopts.num_threads = flags.threads;
  wopts.seed = 31337;
  wopts.opt_estimate.pilot_initial = 1024;
  WrisSolver wris(env->graph(), env->tfidf(),
                  PropagationModel::kIndependentCascade, env->ic_probs(),
                  wopts);
  const Query wq = (*queries)[0];
  uint64_t allocs_before = g_allocs.load();
  WallTimer first_timer;
  if (!wris.Solve(wq).ok()) return 1;
  const double wris_first_ms = first_timer.ElapsedSeconds() * 1e3;
  const uint64_t wris_first_allocs = g_allocs.load() - allocs_before;

  constexpr int kSteadyRounds = 10;
  allocs_before = g_allocs.load();
  WallTimer steady_timer;
  for (int i = 0; i < kSteadyRounds; ++i) {
    if (!wris.Solve(wq).ok()) return 1;
  }
  const double wris_steady_ms =
      steady_timer.ElapsedSeconds() * 1e3 / kSteadyRounds;
  const double wris_steady_allocs =
      static_cast<double>(g_allocs.load() - allocs_before) / kSteadyRounds;

  TablePrinter table({"path", "cold_ms", "warm_ms", "cold_IOs",
                      "warm_IOs", "warm_hits"});
  table.AddRow({"IRR", FormatDouble(irr->cold_ms_mean, 3),
                FormatDouble(irr->warm_ms_mean, 3),
                FormatDouble(irr->cold_io_reads_mean, 1),
                FormatDouble(irr->warm_io_reads_mean, 1),
                FormatDouble(irr->warm_cache_hits_mean, 1)});
  table.AddRow({"RR", FormatDouble(rr->cold_ms_mean, 3),
                FormatDouble(rr->warm_ms_mean, 3),
                FormatDouble(rr->cold_io_reads_mean, 1),
                FormatDouble(rr->warm_io_reads_mean, 1),
                FormatDouble(rr->warm_cache_hits_mean, 1)});
  table.Print(std::cout);
  std::printf(
      "\nWRIS repeated solve: first %.3f ms / %llu allocs, steady %.3f ms "
      "/ %.1f allocs per solve (threads=%u)\n",
      wris_first_ms, static_cast<unsigned long long>(wris_first_allocs),
      wris_steady_ms, wris_steady_allocs, flags.threads);
  std::printf("expected shape: warm_IOs == 0 (cache-resident working "
              "set); steady allocs well below the first solve\n");

  std::FILE* json = std::fopen("BENCH_warm_cold.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_warm_cold.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"params\": {\"scale\": %.2f, \"topics\": %u, "
               "\"epsilon\": %.2f, \"queries\": %u, \"threads\": %u, "
               "\"k\": %u, \"keywords\": 2},\n",
               flags.scale, flags.topics, flags.epsilon, flags.queries,
               flags.threads, qopts.k);
  auto emit_path = [json](const char* name, const PathStats& s) {
    std::fprintf(json,
                 "  \"%s\": {\"cold_ms_mean\": %.4f, \"warm_ms_mean\": "
                 "%.4f, \"cold_io_reads_mean\": %.2f, "
                 "\"warm_io_reads_mean\": %.2f, \"warm_cache_hits_mean\": "
                 "%.2f},\n",
                 name, s.cold_ms_mean, s.warm_ms_mean, s.cold_io_reads_mean,
                 s.warm_io_reads_mean, s.warm_cache_hits_mean);
  };
  emit_path("irr", *irr);
  emit_path("rr", *rr);
  std::fprintf(json,
               "  \"wris\": {\"first_solve_ms\": %.4f, \"first_allocs\": "
               "%llu, \"steady_ms_mean\": %.4f, \"steady_allocs_mean\": "
               "%.1f}\n}\n",
               wris_first_ms,
               static_cast<unsigned long long>(wris_first_allocs),
               wris_steady_ms, wris_steady_allocs);
  std::fclose(json);
  std::printf("wrote BENCH_warm_cold.json\n");
  if (assert_warm_zero_io &&
      (irr->warm_io_reads_mean != 0.0 || rr->warm_io_reads_mean != 0.0)) {
    std::fprintf(stderr,
                 "FAIL: warm-path regression — IRR %.2f / RR %.2f read ops "
                 "per repeat query (expected 0)\n",
                 irr->warm_io_reads_mean, rr->warm_io_reads_mean);
    return 1;
  }
  return 0;
}

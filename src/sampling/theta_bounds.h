// Sample-size (θ) bounds from the paper.
//
//   Theorem 2 (θ for a query, online WRIS):
//     θ  ≥ (8+2ε) · φ_Q · (ln|V| + ln C(|V|, Q.k) + ln 2) / (OPT^{Q.T}_{Q.k} · ε²)
//   Lemma 3 (per-keyword bound with OPT^{w}_1, "θ̂_w"):
//     θ̂_w = (8+2ε) · (Σ_v tf_{w,v}) · (ln|V| + ln C(|V|, K) + ln 2) / (OPT^{w}_1 · ε²)
//   Lemma 4 (compact per-keyword bound with OPT^{w}_K, "θ_w"):
//     θ_w  = (8+2ε) · (Σ_v tf_{w,v}) · (ln|V| + ln C(|V|, K) + ln 2) / (OPT^{w}_K · ε²)
//   Eqn. 11 (query budget from an index):
//     θ^Q = min{ θ_w / p_w : w ∈ Q.T },  θ^Q_w = θ^Q · p_w
//
// OPT quantities are supplied by the caller (see opt_estimator.h). All
// bounds return ceil'd integer sample counts.
#ifndef KBTIM_SAMPLING_THETA_BOUNDS_H_
#define KBTIM_SAMPLING_THETA_BOUNDS_H_

#include <cstdint>
#include <span>
#include <utility>

namespace kbtim {

/// Shared logarithmic factor ln|V| + ln C(|V|, k) + ln 2.
double ThetaLogFactor(uint64_t num_vertices, uint64_t k);

/// Theorem 2's θ for online WRIS. `phi_q` is φ_Q, `opt` is (an estimate of
/// a lower bound on) OPT^{Q.T}_{Q.k} in the same units as φ_Q.
uint64_t ThetaForQuery(double epsilon, double phi_q, uint64_t num_vertices,
                       uint64_t k, double opt);

/// Lemma 3 / Lemma 4 per-keyword bound. `tf_sum_w` is Σ_v tf_{w,v} and
/// `opt_w` is OPT^{w}_1 (Lemma 3) or OPT^{w}_K (Lemma 4), measured in tf
/// units (no idf; it cancels per the Lemma 3 proof).
uint64_t ThetaForKeyword(double epsilon, double tf_sum_w,
                         uint64_t num_vertices, uint64_t max_k,
                         double opt_w);

/// Eqn. 11: given per-query-keyword (θ_w, p_w) pairs, the query's total
/// RR-set budget θ^Q = min θ_w / p_w. Entries with p_w == 0 are skipped
/// (keyword contributes no relevance mass). Returns 0 if all are 0.
uint64_t ThetaQFromIndex(
    std::span<const std::pair<uint64_t, double>> theta_and_pw);

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_THETA_BOUNDS_H_

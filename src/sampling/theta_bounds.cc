#include "sampling/theta_bounds.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace kbtim {
namespace {

uint64_t CeilToCount(double x) {
  if (!(x > 0.0)) return 0;
  // Cap at 2^40 samples: beyond any practical budget, and keeps callers'
  // size arithmetic far from overflow.
  const double capped = std::min(x, std::ldexp(1.0, 40));
  return static_cast<uint64_t>(std::ceil(capped));
}

}  // namespace

double ThetaLogFactor(uint64_t num_vertices, uint64_t k) {
  const uint64_t kk = std::min(k, num_vertices);
  return std::log(static_cast<double>(std::max<uint64_t>(2, num_vertices))) +
         LogNChooseK(num_vertices, kk) + std::log(2.0);
}

uint64_t ThetaForQuery(double epsilon, double phi_q, uint64_t num_vertices,
                       uint64_t k, double opt) {
  if (epsilon <= 0.0 || phi_q <= 0.0 || opt <= 0.0 || num_vertices == 0) {
    return 0;
  }
  const double log_factor = ThetaLogFactor(num_vertices, k);
  return CeilToCount((8.0 + 2.0 * epsilon) * phi_q * log_factor /
                     (opt * epsilon * epsilon));
}

uint64_t ThetaForKeyword(double epsilon, double tf_sum_w,
                         uint64_t num_vertices, uint64_t max_k,
                         double opt_w) {
  if (epsilon <= 0.0 || tf_sum_w <= 0.0 || opt_w <= 0.0 ||
      num_vertices == 0) {
    return 0;
  }
  const double log_factor = ThetaLogFactor(num_vertices, max_k);
  return CeilToCount((8.0 + 2.0 * epsilon) * tf_sum_w * log_factor /
                     (opt_w * epsilon * epsilon));
}

uint64_t ThetaQFromIndex(
    std::span<const std::pair<uint64_t, double>> theta_and_pw) {
  double best = -1.0;
  for (const auto& [theta_w, pw] : theta_and_pw) {
    if (pw <= 0.0) continue;
    const double budget = static_cast<double>(theta_w) / pw;
    if (best < 0.0 || budget < best) best = budget;
  }
  if (best < 0.0) return 0;
  return static_cast<uint64_t>(best);
}

}  // namespace kbtim

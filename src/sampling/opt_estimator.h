// Lower-bound estimation of OPT (the optimal expected weighted spread).
//
// The θ bounds need OPT in their denominator, and any LOWER bound keeps
// them valid (θ only grows). The paper adopts the iterative estimation of
// TIM [21] adapted to weighted sampling; we implement the same idea as a
// pilot-sampling/greedy doubling scheme:
//   1. sample a pilot batch of RR sets with the target root distribution;
//   2. run greedy k-cover; F(S)/θ_pilot · W (W = total weight mass) is an
//      unbiased estimate of E[I^w(S_greedy)] ≤ OPT_k;
//   3. double the pilot size until the estimate stabilizes, then shrink it
//      by the configured slack to absorb residual sampling noise.
// The estimate never falls below the trivial floor Σ(top-k vertex weights),
// which is itself a valid lower bound (seeding v yields at least weight(v)).
#ifndef KBTIM_SAMPLING_OPT_ESTIMATOR_H_
#define KBTIM_SAMPLING_OPT_ESTIMATOR_H_

#include <cstdint>

#include "common/statusor.h"
#include "graph/graph.h"
#include "propagation/rr_sampler.h"
#include "sampling/vertex_sampler.h"

namespace kbtim {

/// Options for pilot-based OPT estimation.
struct OptEstimateOptions {
  /// Seed-set size k whose OPT_k is being bounded.
  uint32_t k = 1;

  /// Initial pilot batch size (doubled each refinement round).
  uint64_t pilot_initial = 2048;

  /// Hard cap on pilot RR sets.
  uint64_t pilot_max = 1 << 20;

  /// Relative-change threshold that ends the doubling loop.
  double rel_tol = 0.1;

  /// Safety slack: the returned bound is estimate / (1 + slack).
  double slack = 0.25;

  /// Floor on the returned bound (e.g. Σ top-k vertex weights); pass 0 to
  /// disable.
  double floor = 0.0;

  /// RNG seed.
  uint64_t seed = 9001;
};

/// Estimates a lower bound for OPT_k of the weighted influence objective
/// whose root distribution is `roots` (total mass roots.total_weight()).
/// `sampler` must match the propagation model under study.
StatusOr<double> EstimateOptLowerBound(const Graph& graph,
                                       RrSampler& sampler,
                                       const WeightedVertexSampler& roots,
                                       const OptEstimateOptions& options);

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_OPT_ESTIMATOR_H_

// Root-vertex samplers for the three sampling regimes in the paper:
//  * uniform            — classic RIS (Definition 2),
//  * query-weighted     — WRIS with ps(v, Q) = φ(v, Q) / φ_Q (Eqn. 3),
//  * keyword-weighted   — discriminative WRIS with ps(v, w) =
//                         tf_{w,v} / Σ_v tf_{w,v} (Eqn. 7), used offline.
#ifndef KBTIM_SAMPLING_VERTEX_SAMPLER_H_
#define KBTIM_SAMPLING_VERTEX_SAMPLER_H_

#include <span>
#include <utility>
#include <vector>

#include "common/alias_table.h"
#include "common/rng.h"
#include "common/statusor.h"
#include "graph/graph.h"
#include "topics/tfidf.h"

namespace kbtim {

/// Samples root vertices from a fixed weighted distribution over V.
class WeightedVertexSampler {
 public:
  WeightedVertexSampler() = default;

  /// Uniform over [0, num_vertices).
  static StatusOr<WeightedVertexSampler> Uniform(VertexId num_vertices);

  /// ps(v, Q) ∝ φ(v, Q); only users relevant to the query can be drawn.
  /// Fails if no user carries any query keyword.
  static StatusOr<WeightedVertexSampler> ForQuery(const TfIdfModel& model,
                                                  const Query& query);

  /// ForQuery over an already-computed sparse relevance vector ((user, φ)
  /// pairs, e.g. TfIdfModel::SparsePhi output). Lets a caller that also
  /// needs the φ values — WrisSolver feeds the same vector into its OPT
  /// floor — evaluate SparsePhi once instead of twice per solve. Fails
  /// like ForQuery when the vector is empty.
  static StatusOr<WeightedVertexSampler> FromWeightedVertices(
      std::span<const std::pair<VertexId, double>> sparse);

  /// ps(v, w) ∝ tf_{w,v}; only users with the topic can be drawn.
  /// Fails if the topic has no users.
  static StatusOr<WeightedVertexSampler> ForTopic(
      const ProfileStore& profiles, TopicId topic);

  /// Draws one root. Inline: called once per sampled RR set.
  VertexId Sample(Rng& rng) const {
    if (uniform_n_ > 0) return rng.NextU32Below(uniform_n_);
    return vertices_[alias_.Sample(rng)];
  }

  /// Total weight mass of the distribution before normalization
  /// (φ_Q for ForQuery, Σ_v tf_{w,v} for ForTopic, n for Uniform).
  double total_weight() const { return total_weight_; }

  /// Number of distinct sampleable vertices.
  size_t support_size() const {
    return uniform_n_ > 0 ? uniform_n_ : vertices_.size();
  }

 private:
  // Uniform mode when uniform_n_ > 0; otherwise alias over vertices_.
  VertexId uniform_n_ = 0;
  std::vector<VertexId> vertices_;
  AliasTable alias_;
  double total_weight_ = 0.0;
};

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_VERTEX_SAMPLER_H_

#include "sampling/wris_solver.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "sampling/theta_bounds.h"
#include "sampling/vertex_sampler.h"

namespace kbtim {
namespace {

Status ValidateQuery(const Query& query, const Graph& graph,
                     uint32_t num_topics) {
  KBTIM_RETURN_IF_ERROR(ValidateQueryShape(query, num_topics));
  if (query.k > graph.num_vertices()) {
    return Status::InvalidArgument("query k out of range");
  }
  return Status::OK();
}

}  // namespace

WrisSolver::WrisSolver(const Graph& graph, const TfIdfModel& tfidf,
                       PropagationModel model,
                       const std::vector<float>& in_edge_weights,
                       OnlineSolverOptions options,
                       std::shared_ptr<const BucketedAdjacency> adjacency)
    : graph_(graph),
      tfidf_(tfidf),
      model_(model),
      in_edge_weights_(in_edge_weights),
      options_(options),
      adjacency_(adjacency != nullptr
                     ? std::move(adjacency)
                     : BucketedAdjacency::BuildShared(graph,
                                                      in_edge_weights)) {
  const uint32_t nthreads = std::max<uint32_t>(1, options_.num_threads);
  slots_.resize(nthreads);
  if (nthreads > 1) pool_ = std::make_unique<ThreadPool>(nthreads);
}

RrSampler& WrisSolver::SlotSampler(uint32_t tid) const {
  SamplerSlot& slot = slots_[tid];
  if (slot.sampler == nullptr) {
    slot.sampler = MakeRrSampler(model_, adjacency_);
  }
  return *slot.sampler;
}

StatusOr<SeedSetResult> WrisSolver::Solve(const Query& query,
                                          uint64_t max_theta_override) const {
  KBTIM_RETURN_IF_ERROR(
      ValidateQuery(query, graph_, tfidf_.profiles().num_topics()));
  MutexLock solve_lock(&solve_mu_);
  WallTimer total_timer;

  // One SparsePhi evaluation feeds both the root distribution and the
  // OPT floor (it was computed twice per solve before PR 5).
  const auto sparse = tfidf_.SparsePhi(query);
  KBTIM_ASSIGN_OR_RETURN(
      WeightedVertexSampler roots,
      WeightedVertexSampler::FromWeightedVertices(sparse));
  const double phi_q = roots.total_weight();

  // OPT lower-bound floor: the top-k relevance weights (seeding a user v
  // always contributes at least φ(v, Q)).
  std::vector<double> phis;
  phis.reserve(sparse.size());
  for (const auto& [v, phi] : sparse) phis.push_back(phi);
  const size_t topk = std::min<size_t>(query.k, phis.size());
  std::partial_sort(phis.begin(), phis.begin() + topk, phis.end(),
                    std::greater<>());
  double floor = 0.0;
  for (size_t i = 0; i < topk; ++i) floor += phis[i];

  OptEstimateOptions opt_options = options_.opt_estimate;
  opt_options.k = query.k;
  opt_options.floor = floor;
  opt_options.seed = options_.seed ^ 0x5EEDF00DULL;
  // The pilot reuses slot 0's sampler (workers run strictly after it).
  KBTIM_ASSIGN_OR_RETURN(
      double opt_lb,
      EstimateOptLowerBound(graph_, SlotSampler(0), roots, opt_options));

  uint64_t theta = ThetaForQuery(options_.epsilon, phi_q,
                                 graph_.num_vertices(), query.k, opt_lb);
  theta = std::max<uint64_t>(theta, 1);
  uint64_t theta_cap = options_.max_theta;
  if (max_theta_override > 0) {
    theta_cap = std::min(theta_cap, max_theta_override);
  }
  if (theta > theta_cap) {
    KBTIM_LOG(Warning) << "WRIS theta " << theta << " clipped to "
                       << theta_cap
                       << "; the (1-1/e-eps) bound no longer applies";
    theta = theta_cap;
  }
  theta = std::max<uint64_t>(theta, 1);

  // Parallel weighted sampling on the persistent pool. Slot state
  // (sampler, partial collection, scratch) is reused: a steady-state
  // query stream allocates nothing in this loop.
  WallTimer sampling_timer;
  const uint32_t nthreads = static_cast<uint32_t>(slots_.size());
  auto run_slot = [&](uint32_t tid) {
    SamplerSlot& slot = slots_[tid];
    RrSampler& sampler = SlotSampler(tid);
    // One RNG stream per RR-set INDEX, not per worker: sample i draws the
    // same walk no matter which thread runs it, and the tid-ordered merge
    // below restores the global i order — so the solved seed set is
    // identical for any thread count (the determinism tests pin this).
    const Rng base(options_.seed);
    const uint64_t lo = tid * theta / nthreads;
    const uint64_t hi = (tid + 1) * theta / nthreads;
    // partial was cleared by the previous solve's merge loop (Clear on an
    // already-empty collection would shrink the arena to the floor and
    // force a realloc here, breaking zero steady-state allocation).
    slot.partial.Reserve(hi - lo, (hi - lo) * 4);
    slot.max_scratch = 0;
    for (uint64_t i = lo; i < hi; ++i) {
      Rng rng = base.Fork(i + 17);
      sampler.Sample(roots.Sample(rng), rng, &slot.scratch);
      slot.max_scratch = std::max(slot.max_scratch, slot.scratch.size());
      slot.partial.Add(slot.scratch);
    }
  };
  if (nthreads == 1) {
    run_slot(0);
  } else {
    for (uint32_t t = 0; t < nthreads; ++t) {
      pool_->Submit([&run_slot, t] { run_slot(t); });
    }
    pool_->Wait();
  }
  sets_.Clear();
  for (uint32_t t = 0; t < nthreads; ++t) {
    SamplerSlot& slot = slots_[t];
    sets_.Append(slot.partial);
    // Release outlier-query growth now instead of pinning it until the
    // next solve (Clear caps retained capacity; see RrCollection::Clear).
    // The scratch cap keys off the LARGEST sample this query drew, not
    // the (tiny) final one, and shrinks TO the policy floor rather than
    // to the final sample's size, so ordinary heavy-tailed samples never
    // cause per-query shrink/regrow churn.
    slot.partial.Clear();
    const size_t scratch_cap =
        std::max(RrCollection::kRetainSlack * slot.max_scratch,
                 RrCollection::kMinRetainedItems);
    if (slot.scratch.capacity() > scratch_cap) {
      std::vector<VertexId> fresh;
      fresh.reserve(scratch_cap);
      slot.scratch.swap(fresh);
    }
  }
  const double sampling_seconds = sampling_timer.ElapsedSeconds();

  WallTimer greedy_timer;
  // The sampling pool is idle by now; the workspace reuses it for the
  // parallel incidence build.
  const MaxCoverResult cover =
      cover_ws_.Solve(sets_, graph_.num_vertices(), query.k, pool_.get());
  const double greedy_seconds = greedy_timer.ElapsedSeconds();

  SeedSetResult result;
  result.seeds = cover.seeds;
  const double scale =
      phi_q / static_cast<double>(std::max<uint64_t>(1, sets_.size()));
  result.marginal_gains.reserve(cover.marginal_coverage.size());
  for (uint64_t c : cover.marginal_coverage) {
    result.marginal_gains.push_back(static_cast<double>(c) * scale);
  }
  result.estimated_influence =
      static_cast<double>(cover.total_covered) * scale;
  result.stats.theta = theta;
  result.stats.rr_sets_loaded = sets_.size();
  result.stats.opt_lower_bound = opt_lb;
  result.stats.sampling_seconds = sampling_seconds;
  result.stats.greedy_seconds = greedy_seconds;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  // Same anti-ratchet policy for the seed-selection scratch: keep it warm
  // at the scale this query needed, not the largest query ever seen.
  cover_ws_.ShrinkRetained(
      std::max<size_t>(RrCollection::kRetainSlack * sets_.total_items(),
                       RrCollection::kMinRetainedItems));
  return result;
}

}  // namespace kbtim

#include "sampling/wris_solver.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "coverage/celf_greedy.h"
#include "coverage/rr_collection.h"
#include "sampling/theta_bounds.h"
#include "sampling/vertex_sampler.h"

namespace kbtim {
namespace {

Status ValidateQuery(const Query& query, const Graph& graph,
                     uint32_t num_topics) {
  if (query.topics.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (query.k == 0 || query.k > graph.num_vertices()) {
    return Status::InvalidArgument("query k out of range");
  }
  for (size_t i = 0; i < query.topics.size(); ++i) {
    if (query.topics[i] >= num_topics) {
      return Status::InvalidArgument("query topic id out of range");
    }
    for (size_t j = 0; j < i; ++j) {
      if (query.topics[j] == query.topics[i]) {
        return Status::InvalidArgument("duplicate query keyword");
      }
    }
  }
  return Status::OK();
}

}  // namespace

WrisSolver::WrisSolver(const Graph& graph, const TfIdfModel& tfidf,
                       PropagationModel model,
                       const std::vector<float>& in_edge_weights,
                       OnlineSolverOptions options)
    : graph_(graph),
      tfidf_(tfidf),
      model_(model),
      in_edge_weights_(in_edge_weights),
      options_(options) {}

StatusOr<SeedSetResult> WrisSolver::Solve(const Query& query) const {
  KBTIM_RETURN_IF_ERROR(
      ValidateQuery(query, graph_, tfidf_.profiles().num_topics()));
  WallTimer total_timer;

  KBTIM_ASSIGN_OR_RETURN(WeightedVertexSampler roots,
                         WeightedVertexSampler::ForQuery(tfidf_, query));
  const double phi_q = roots.total_weight();

  // OPT lower-bound floor: the top-k relevance weights (seeding a user v
  // always contributes at least φ(v, Q)).
  auto sparse = tfidf_.SparsePhi(query);
  std::vector<double> phis;
  phis.reserve(sparse.size());
  for (const auto& [v, phi] : sparse) phis.push_back(phi);
  const size_t topk = std::min<size_t>(query.k, phis.size());
  std::partial_sort(phis.begin(), phis.begin() + topk, phis.end(),
                    std::greater<>());
  double floor = 0.0;
  for (size_t i = 0; i < topk; ++i) floor += phis[i];

  OptEstimateOptions opt_options = options_.opt_estimate;
  opt_options.k = query.k;
  opt_options.floor = floor;
  opt_options.seed = options_.seed ^ 0x5EEDF00DULL;
  auto pilot_sampler = MakeRrSampler(model_, graph_, in_edge_weights_);
  KBTIM_ASSIGN_OR_RETURN(
      double opt_lb,
      EstimateOptLowerBound(graph_, *pilot_sampler, roots, opt_options));

  uint64_t theta = ThetaForQuery(options_.epsilon, phi_q,
                                 graph_.num_vertices(), query.k, opt_lb);
  theta = std::max<uint64_t>(theta, 1);
  if (theta > options_.max_theta) {
    KBTIM_LOG(Warning) << "WRIS theta " << theta << " clipped to "
                       << options_.max_theta
                       << "; the (1-1/e-eps) bound no longer applies";
    theta = options_.max_theta;
  }

  // Parallel weighted sampling.
  WallTimer sampling_timer;
  const uint32_t nthreads = std::max<uint32_t>(1, options_.num_threads);
  std::vector<RrCollection> partials(nthreads);
  auto worker = [&](uint32_t tid) {
    Rng rng = Rng(options_.seed).Fork(tid + 17);
    auto sampler = MakeRrSampler(model_, graph_, in_edge_weights_);
    const uint64_t lo = tid * theta / nthreads;
    const uint64_t hi = (tid + 1) * theta / nthreads;
    std::vector<VertexId> scratch;
    partials[tid].Reserve(hi - lo, (hi - lo) * 4);
    for (uint64_t i = lo; i < hi; ++i) {
      sampler->Sample(roots.Sample(rng), rng, &scratch);
      partials[tid].Add(scratch);
    }
  };
  if (nthreads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (uint32_t t = 0; t < nthreads; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();
  }
  RrCollection sets = std::move(partials[0]);
  for (uint32_t t = 1; t < nthreads; ++t) sets.Append(partials[t]);
  const double sampling_seconds = sampling_timer.ElapsedSeconds();

  WallTimer greedy_timer;
  InvertedRrIndex inverted(sets, graph_.num_vertices());
  const MaxCoverResult cover = CelfGreedyMaxCover(sets, inverted, query.k);
  const double greedy_seconds = greedy_timer.ElapsedSeconds();

  SeedSetResult result;
  result.seeds = cover.seeds;
  const double scale =
      phi_q / static_cast<double>(std::max<uint64_t>(1, sets.size()));
  result.marginal_gains.reserve(cover.marginal_coverage.size());
  for (uint64_t c : cover.marginal_coverage) {
    result.marginal_gains.push_back(static_cast<double>(c) * scale);
  }
  result.estimated_influence =
      static_cast<double>(cover.total_covered) * scale;
  result.stats.theta = theta;
  result.stats.rr_sets_loaded = sets.size();
  result.stats.opt_lower_bound = opt_lb;
  result.stats.sampling_seconds = sampling_seconds;
  result.stats.greedy_seconds = greedy_seconds;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kbtim

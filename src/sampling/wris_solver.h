// WRIS: online Weighted Reverse Influence Set sampling (paper §3.2).
//
// For a query Q the solver:
//   1. builds the ps(v, Q)-weighted root distribution (Eqn. 3),
//   2. estimates a lower bound on OPT^{Q.T}_{Q.k},
//   3. samples θ RR sets per Theorem 2,
//   4. runs greedy maximum coverage; F_θ(S)/θ · φ_Q estimates E[I^Q(S)]
//      (Lemma 1's unbiased estimator).
// Result quality: (1 − 1/e − ε)-approximate with probability ≥ 1 − 1/|V|.
//
// This is the paper's baseline — correct but slow; the RR/IRR indexes
// (src/index/) answer the same queries from precomputed samples.
#ifndef KBTIM_SAMPLING_WRIS_SOLVER_H_
#define KBTIM_SAMPLING_WRIS_SOLVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "coverage/flat_celf.h"
#include "coverage/rr_collection.h"
#include "graph/graph.h"
#include "propagation/model.h"
#include "propagation/rr_sampler.h"
#include "sampling/opt_estimator.h"
#include "sampling/solver_result.h"
#include "topics/tfidf.h"

namespace kbtim {

/// Options shared by the online sampling solvers (WRIS and RIS).
struct OnlineSolverOptions {
  /// Approximation slack ε of the (1 − 1/e − ε) guarantee. The paper used
  /// 0.1 on a 60 GB server; θ scales as 1/ε², so scale accordingly.
  double epsilon = 0.3;

  /// Sampling worker threads.
  uint32_t num_threads = 1;

  /// RNG seed. Sampling derives one stream per RR set (not per worker),
  /// so a fixed seed produces identical results for ANY num_threads.
  uint64_t seed = 2024;

  /// Guardrail on θ; a warning is logged when the bound is clipped.
  uint64_t max_theta = uint64_t{1} << 26;

  /// Pilot-estimation tuning (k is overridden per query).
  OptEstimateOptions opt_estimate{};
};

/// Online weighted-RIS solver for KB-TIM queries.
///
/// Built for query streams: sampling workers come from a solver-owned
/// ThreadPool (spawned once, never per query) and each worker slot keeps
/// its sampler (whose epoch-stamped visited marks survive reuse), RR-set
/// buffer and scratch arena across queries, so the steady-state sampling
/// loop performs no allocation and no thread creation. Solve is safe to
/// call from multiple threads; calls are serialized internally.
class WrisSolver {
 public:
  /// All referenced objects must outlive the solver. `in_edge_weights` is
  /// aligned with graph.InEdgeRange and must match `model`. When
  /// `adjacency` is supplied it must be built from the same graph and
  /// weights; pass one to share the bucketed reverse adjacency across
  /// solvers (e.g. QueryService worker slots) instead of paying an O(E)
  /// build per solver. Either way every sampler slot of this solver reads
  /// the same immutable adjacency.
  WrisSolver(const Graph& graph, const TfIdfModel& tfidf,
             PropagationModel model,
             const std::vector<float>& in_edge_weights,
             OnlineSolverOptions options = {},
             std::shared_ptr<const BucketedAdjacency> adjacency = nullptr);

  /// Answers a KB-TIM query. Fails if the query is malformed or no user is
  /// relevant to its keywords.
  ///
  /// `max_theta_override` (when nonzero) caps θ below options().max_theta
  /// for this call only — the serving layer's per-query budget knob. A
  /// capped θ weakens the (1 − 1/e − ε) guarantee exactly as the global
  /// clip does; the applied θ is reported in stats.theta either way.
  StatusOr<SeedSetResult> Solve(const Query& query,
                                uint64_t max_theta_override = 0) const
      EXCLUDES(solve_mu_);

  const OnlineSolverOptions& options() const { return options_; }

 private:
  /// Per-worker reusable sampling state (one slot per pool thread).
  struct SamplerSlot {
    std::unique_ptr<RrSampler> sampler;  // lazily created, then reused
    RrCollection partial;
    std::vector<VertexId> scratch;
    size_t max_scratch = 0;  // largest sample this query (shrink policy)
  };

  /// slots_[tid].sampler, created on first use.
  RrSampler& SlotSampler(uint32_t tid) const;

  const Graph& graph_;
  const TfIdfModel& tfidf_;
  PropagationModel model_;
  const std::vector<float>& in_edge_weights_;
  OnlineSolverOptions options_;
  /// Shared immutable skip-sampling substrate (one per graph, not per
  /// slot; see bucketed_adjacency.h).
  std::shared_ptr<const BucketedAdjacency> adjacency_;

  /// Query-stream state reused across Solve calls. solve_mu_ serializes
  /// Solve; sets_ and cover_ws_ are touched only by the Solve thread under
  /// it. slots_ and pool_ are logically owned by the same critical section
  /// but cannot carry GUARDED_BY: each slot is handed to exactly one pool
  /// worker per solve (synchronized by ThreadPool Submit/Wait, which the
  /// analysis cannot see), and the workers run without solve_mu_.
  mutable Mutex solve_mu_;
  mutable std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  mutable std::vector<SamplerSlot> slots_;
  /// Merged RR sets of the current query.
  mutable RrCollection sets_ GUARDED_BY(solve_mu_);
  /// Flat CELF seed-selection scratch.
  mutable CoverageWorkspace cover_ws_ GUARDED_BY(solve_mu_);
};

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_WRIS_SOLVER_H_

// Common result type returned by every KB-TIM solver (WRIS, RIS, RR index,
// IRR index) so that benchmarks and tests can compare them uniformly.
#ifndef KBTIM_SAMPLING_SOLVER_RESULT_H_
#define KBTIM_SAMPLING_SOLVER_RESULT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "topics/vocabulary.h"

namespace kbtim {

/// Measurements of one Solve/Query call.
struct SolverStats {
  /// RR sets the theoretical bound demanded (θ or θ^Q).
  uint64_t theta = 0;

  /// RR sets actually materialized in memory (== theta for online solvers;
  /// the incrementally loaded count for IRR — Figures 5-7's right columns).
  uint64_t rr_sets_loaded = 0;

  /// Disk read operations performed (Table 6); 0 for online solvers.
  /// For a batch-executed query this is the query's amortized share of the
  /// batch's reads (see batch_size): summing over the batch's results
  /// yields the true total, so aggregators never multiple-count.
  uint64_t io_reads = 0;

  /// Bytes read from disk; 0 for online solvers. Amortized like io_reads.
  uint64_t io_bytes = 0;

  /// Queries that shared this result's physical load (1 for a lone
  /// query; the batch size under RrIndex::BatchQuery). Batch-level I/O
  /// and cache-delta counters are split across the batch's results.
  uint32_t batch_size = 1;

  /// Lower bound on OPT used to size θ (online solvers only).
  double opt_lower_bound = 0.0;

  /// KeywordCache block hits/misses this query (index solvers only; a
  /// fully warm query has misses == 0 and io_reads == 0). Amortized over
  /// the batch like io_reads.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// Decoded bytes resident in the keyword cache after the query.
  uint64_t cache_bytes = 0;

  /// Blocks this query decoded but the cache admission policy refused to
  /// keep (KeywordCacheOptions::max_block_fraction).
  uint64_t cache_admission_bypasses = 0;

  /// IRR partition prefetches scheduled on the background pipeline, and
  /// foreground loads served by joining an in-flight prefetch.
  uint64_t prefetches_issued = 0;
  uint64_t prefetches_served = 0;

  double sampling_seconds = 0.0;
  double greedy_seconds = 0.0;
  double total_seconds = 0.0;
};

/// A solved seed set with its estimated (targeted) influence.
struct SeedSetResult {
  /// Seeds in selection order.
  std::vector<VertexId> seeds;

  /// Estimated marginal influence per seed, in expected-influence units
  /// (coverage fraction × total weight mass), aligned with seeds.
  std::vector<double> marginal_gains;

  /// Estimated total expected influence of the seed set.
  double estimated_influence = 0.0;

  /// Partial-result degradation (QueryService failure domains): true when
  /// one or more query keywords were dropped — quarantined by a circuit
  /// breaker or identified as the culprit of a read/decode failure — and
  /// the seed set was solved over the surviving keywords only. The
  /// influence estimate then covers the degraded query, not the original.
  bool degraded = false;

  /// The keywords dropped when degraded (empty otherwise).
  std::vector<TopicId> dropped_keywords;

  SolverStats stats;
};

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_SOLVER_RESULT_H_

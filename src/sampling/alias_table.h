// Walker's alias method: O(n) construction, O(1) weighted sampling.
//
// This is the workhorse behind WRIS's ps(v, Q)-weighted root selection
// (Eqn. 3) and the per-keyword ps(v, w) offline sampling (Eqn. 7).
#ifndef KBTIM_SAMPLING_ALIAS_TABLE_H_
#define KBTIM_SAMPLING_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"

namespace kbtim {

/// Immutable alias table over indices [0, n) with given nonnegative weights.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table. Weights must be nonnegative with a positive sum.
  static StatusOr<AliasTable> FromWeights(std::span<const double> weights);

  /// Draws an index with probability weight[i] / Σ weights.
  uint32_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_ALIAS_TABLE_H_

#include "sampling/ris_solver.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "coverage/flat_celf.h"
#include "coverage/rr_collection.h"
#include "sampling/opt_estimator.h"
#include "sampling/theta_bounds.h"
#include "sampling/vertex_sampler.h"

namespace kbtim {

RisSolver::RisSolver(const Graph& graph, PropagationModel model,
                     const std::vector<float>& in_edge_weights,
                     OnlineSolverOptions options)
    : graph_(graph),
      model_(model),
      in_edge_weights_(in_edge_weights),
      options_(options),
      adjacency_(BucketedAdjacency::BuildShared(graph, in_edge_weights)) {}

StatusOr<SeedSetResult> RisSolver::Solve(uint32_t k) const {
  if (k == 0 || k > graph_.num_vertices()) {
    return Status::InvalidArgument("k out of range");
  }
  WallTimer total_timer;
  KBTIM_ASSIGN_OR_RETURN(WeightedVertexSampler roots,
                         WeightedVertexSampler::Uniform(
                             graph_.num_vertices()));

  OptEstimateOptions opt_options = options_.opt_estimate;
  opt_options.k = k;
  opt_options.floor = static_cast<double>(k);  // every seed influences itself
  opt_options.seed = options_.seed ^ 0x0415EEDULL;
  auto pilot_sampler = MakeRrSampler(model_, adjacency_);
  KBTIM_ASSIGN_OR_RETURN(
      double opt_lb,
      EstimateOptLowerBound(graph_, *pilot_sampler, roots, opt_options));

  uint64_t theta =
      ThetaForQuery(options_.epsilon, static_cast<double>(
                                          graph_.num_vertices()),
                    graph_.num_vertices(), k, opt_lb);
  theta = std::max<uint64_t>(theta, 1);
  if (theta > options_.max_theta) {
    KBTIM_LOG(Warning) << "RIS theta " << theta << " clipped to "
                       << options_.max_theta;
    theta = options_.max_theta;
  }

  WallTimer sampling_timer;
  const uint32_t nthreads = std::max<uint32_t>(1, options_.num_threads);
  std::vector<RrCollection> partials(nthreads);
  auto worker = [&](uint32_t tid) {
    // One RNG stream per RR-set index (same scheme as WrisSolver): the
    // tid-ordered merge below restores global index order, so results
    // are identical for any thread count, as OnlineSolverOptions::seed
    // promises.
    const Rng base(options_.seed);
    auto sampler = MakeRrSampler(model_, adjacency_);
    const uint64_t lo = tid * theta / nthreads;
    const uint64_t hi = (tid + 1) * theta / nthreads;
    std::vector<VertexId> scratch;
    for (uint64_t i = lo; i < hi; ++i) {
      Rng rng = base.Fork(i + 31);
      sampler->Sample(roots.Sample(rng), rng, &scratch);
      partials[tid].Add(scratch);
    }
  };
  if (nthreads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < nthreads; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();
  }
  RrCollection sets = std::move(partials[0]);
  for (uint32_t t = 1; t < nthreads; ++t) sets.Append(partials[t]);
  const double sampling_seconds = sampling_timer.ElapsedSeconds();

  WallTimer greedy_timer;
  CoverageWorkspace cover_ws;
  const MaxCoverResult cover =
      cover_ws.Solve(sets, graph_.num_vertices(), k);

  SeedSetResult result;
  result.seeds = cover.seeds;
  const double scale = static_cast<double>(graph_.num_vertices()) /
                       static_cast<double>(std::max<uint64_t>(1, sets.size()));
  for (uint64_t c : cover.marginal_coverage) {
    result.marginal_gains.push_back(static_cast<double>(c) * scale);
  }
  result.estimated_influence =
      static_cast<double>(cover.total_covered) * scale;
  result.stats.theta = theta;
  result.stats.rr_sets_loaded = sets.size();
  result.stats.opt_lower_bound = opt_lb;
  result.stats.sampling_seconds = sampling_seconds;
  result.stats.greedy_seconds = greedy_timer.ElapsedSeconds();
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kbtim

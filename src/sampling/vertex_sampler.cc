#include "sampling/vertex_sampler.h"

namespace kbtim {

StatusOr<WeightedVertexSampler> WeightedVertexSampler::Uniform(
    VertexId num_vertices) {
  if (num_vertices == 0) {
    return Status::InvalidArgument("uniform sampler over empty vertex set");
  }
  WeightedVertexSampler s;
  s.uniform_n_ = num_vertices;
  s.total_weight_ = static_cast<double>(num_vertices);
  return s;
}

StatusOr<WeightedVertexSampler> WeightedVertexSampler::ForQuery(
    const TfIdfModel& model, const Query& query) {
  return FromWeightedVertices(model.SparsePhi(query));
}

StatusOr<WeightedVertexSampler> WeightedVertexSampler::FromWeightedVertices(
    std::span<const std::pair<VertexId, double>> sparse) {
  if (sparse.empty()) {
    return Status::FailedPrecondition(
        "no user is relevant to the query keywords");
  }
  WeightedVertexSampler s;
  std::vector<double> weights;
  weights.reserve(sparse.size());
  s.vertices_.reserve(sparse.size());
  for (const auto& [v, phi] : sparse) {
    s.vertices_.push_back(v);
    weights.push_back(phi);
    s.total_weight_ += phi;
  }
  KBTIM_ASSIGN_OR_RETURN(s.alias_, AliasTable::FromWeights(weights));
  return s;
}

StatusOr<WeightedVertexSampler> WeightedVertexSampler::ForTopic(
    const ProfileStore& profiles, TopicId topic) {
  if (topic >= profiles.num_topics()) {
    return Status::InvalidArgument("topic id out of range");
  }
  auto users = profiles.TopicUsers(topic);
  auto tfs = profiles.TopicTfs(topic);
  if (users.empty()) {
    return Status::FailedPrecondition("topic has no users");
  }
  WeightedVertexSampler s;
  s.vertices_.assign(users.begin(), users.end());
  std::vector<double> weights(tfs.begin(), tfs.end());
  for (double w : weights) s.total_weight_ += w;
  KBTIM_ASSIGN_OR_RETURN(s.alias_, AliasTable::FromWeights(weights));
  return s;
}

}  // namespace kbtim

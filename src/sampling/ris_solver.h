// RIS: classic untargeted reverse-influence sampling (paper §2.2, the
// Borgs et al. / TIM framework). Used as the non-target-aware comparator in
// Table 8: it returns the same seeds regardless of the advertisement.
#ifndef KBTIM_SAMPLING_RIS_SOLVER_H_
#define KBTIM_SAMPLING_RIS_SOLVER_H_

#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "propagation/model.h"
#include "sampling/solver_result.h"
#include "sampling/wris_solver.h"

namespace kbtim {

/// Online uniform-RIS solver for the classic IM problem (Definition 1).
class RisSolver {
 public:
  RisSolver(const Graph& graph, PropagationModel model,
            const std::vector<float>& in_edge_weights,
            OnlineSolverOptions options = {});

  /// Finds the k most influential users (query-independent).
  StatusOr<SeedSetResult> Solve(uint32_t k) const;

 private:
  const Graph& graph_;
  PropagationModel model_;
  const std::vector<float>& in_edge_weights_;
  OnlineSolverOptions options_;
  /// One immutable bucketed adjacency shared by the pilot and every
  /// sampling worker (built once in the constructor, not per Solve).
  std::shared_ptr<const BucketedAdjacency> adjacency_;
};

}  // namespace kbtim

#endif  // KBTIM_SAMPLING_RIS_SOLVER_H_

#include "sampling/opt_estimator.h"

#include <algorithm>

#include "coverage/celf_greedy.h"
#include "coverage/rr_collection.h"

namespace kbtim {

StatusOr<double> EstimateOptLowerBound(const Graph& graph,
                                       RrSampler& sampler,
                                       const WeightedVertexSampler& roots,
                                       const OptEstimateOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("OPT estimation requires k >= 1");
  }
  if (options.pilot_initial == 0) {
    return Status::InvalidArgument("pilot_initial must be >= 1");
  }
  Rng rng(options.seed);
  RrCollection sets;
  std::vector<VertexId> scratch;
  const double total_weight = roots.total_weight();

  double prev = -1.0;
  double estimate = 0.0;
  uint64_t target = options.pilot_initial;
  for (;;) {
    while (sets.size() < target) {
      sampler.Sample(roots.Sample(rng), rng, &scratch);
      sets.Add(scratch);
    }
    InvertedRrIndex inverted(sets, graph.num_vertices());
    const MaxCoverResult cover = CelfGreedyMaxCover(sets, inverted,
                                                    options.k);
    estimate = static_cast<double>(cover.total_covered) /
               static_cast<double>(sets.size()) * total_weight;
    const bool stable =
        prev > 0.0 && std::abs(estimate - prev) <= options.rel_tol * estimate;
    if (stable || target >= options.pilot_max) break;
    prev = estimate;
    target *= 2;
  }
  double bound = estimate / (1.0 + std::max(0.0, options.slack));
  bound = std::max(bound, options.floor);
  if (bound <= 0.0) {
    return Status::FailedPrecondition(
        "OPT estimate is zero: weighted spread has no mass");
  }
  return bound;
}

}  // namespace kbtim

// Engine-class scheduler backing the QueryService queue.
//
// PR 3's single FIFO let one ~10x-slower WRIS solve head-of-line-block a
// stream of cheap index queries. This scheduler replaces it:
//
//   Submit ──route by engine──► fast lane (kIrr/kRr)  ┐ weighted deficit
//                               slow lane (kWris)     ┘ round-robin pickup
//        each lane: one FIFO deque per RequestPriority (high > normal > low)
//
//   * Deficit round robin: each lane accrues `weight` deficit per top-up
//     round and pays `cost` per pickup (index_cost vs wris_cost, the
//     measured ~10x gap). With both lanes backlogged the fast lane gets
//     fast_lane_weight : slow_lane_weight of the worker COST budget — a
//     WRIS backlog can delay an index query by at most one in-flight solve
//     per unreserved worker, never by the whole backlog.
//   * Worker reservations: the service caps concurrent WRIS pickups
//     (max_wris_workers); Pop(wris_allowed=false) skips the slow lane and
//     counts a deferral, so the fast lane always has at least one worker.
//   * Batch mates: PopRrBatchMates pulls queued kRr requests whose keyword
//     sets overlap a just-popped head, feeding RrIndex::BatchQuery — the
//     coalesced requests ride along at the cost of ~one query.
//   * kFifo mode reproduces the PR 3 single queue exactly (strict
//     submission order, no lanes, no reservations, no coalescing) — the
//     bench baseline and A/B switch.
//
// The scheduler is NOT thread-safe: QueryService drives it under its
// queue mutex. It owns no condition variables and never blocks.
#ifndef KBTIM_SERVING_LANE_SCHEDULER_H_
#define KBTIM_SERVING_LANE_SCHEDULER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <optional>
#include <vector>

#include "common/statusor.h"
#include "sampling/solver_result.h"
#include "serving/service_request.h"

namespace kbtim {

/// Queue discipline of the service.
enum class SchedulingMode : uint8_t {
  kLanes = 0,  ///< Priority lanes + deficit RR (the default).
  kFifo = 1,   ///< PR 3's single FIFO (baseline / ablation).
};

/// Scheduler knobs (defaults follow the measured ~10x WRIS:index cost gap).
struct SchedulerOptions {
  SchedulingMode mode = SchedulingMode::kLanes;

  /// Deficit quantum added per top-up round. With both lanes backlogged
  /// the lanes split worker cost 4:1 in favor of index queries.
  uint32_t fast_lane_weight = 4;
  uint32_t slow_lane_weight = 1;

  /// Deficit charge per pickup — the relative cost of one request.
  uint32_t index_cost = 1;
  uint32_t wris_cost = 10;

  /// Cap on concurrently executing WRIS requests; 0 = auto
  /// (num_workers - 1, floored at 1) so WRIS can never occupy every slot.
  uint32_t max_wris_workers = 0;

  /// Batch-aware RR dispatch: a worker popping a kRr request also takes up
  /// to rr_max_batch - 1 queued kRr requests with overlapping keyword sets
  /// and answers them in one RrIndex::BatchQuery. 1 disables coalescing.
  uint32_t rr_max_batch = 8;

  /// Extra milliseconds a worker holding an underfull RR batch waits for
  /// more batchable arrivals before dispatching. 0 = coalesce only what is
  /// already queued (no added latency).
  double rr_batch_window_ms = 0.0;

  /// EWMA auto-tuning of the slow lane's deficit cost. The static
  /// wris_cost encodes the ~10x WRIS:index gap measured once on one
  /// machine; with auto_tune_costs the service feeds measured per-class
  /// service times into RecordServiceTime and WRIS pickups charge the
  /// OBSERVED ratio round(slow_ewma / fast_ewma · index_cost) instead —
  /// clamped to [1, max_auto_cost] and engaged only once both lanes have
  /// kCostWarmupSamples (the static cost remains the tested baseline and
  /// the cold-start fallback).
  bool auto_tune_costs = false;

  /// Weight of the newest service-time sample in the EWMA, in (0, 1].
  double cost_ewma_alpha = 0.2;

  /// Clamp on the auto-tuned WRIS pickup cost.
  uint32_t max_auto_cost = 256;
};

/// A queued request with its resolution promise and admission timestamps.
struct PendingRequest {
  ServiceRequest request;
  std::promise<StatusOr<SeedSetResult>> promise;
  std::chrono::steady_clock::time_point submitted_at;
  /// When a worker removed it from the queue. The queue deadline is
  /// evaluated submitted_at -> picked_at: time the SERVICE holds a
  /// picked request (e.g. an open batch window) never expires it.
  std::chrono::steady_clock::time_point picked_at;
  double deadline_ms = 0.0;  // resolved against the service default

  /// Solve or RR-block fetch. Fetches carry their payload in `fetch` and
  /// resolve `fetch_promise` instead of `promise` (request.engine is set
  /// to kRr so lane routing and batching predicates stay uniform).
  RequestKind kind = RequestKind::kSolve;
  RrFetchRequest fetch;
  std::promise<StatusOr<RrFetchResult>> fetch_promise;

  /// Absolute end-to-end expiry (request_deadline_ms resolved at Submit);
  /// a request picked past it is dropped at dequeue.
  std::optional<std::chrono::steady_clock::time_point> expires_at;

  /// Retry-with-backoff state (see LaneScheduler::Park): a transiently
  /// failed request is re-queued with a not-before time instead of
  /// blocking its worker slot in a sleep. The accumulated retry state
  /// rides along so the next pickup resumes where the attempt left off.
  std::chrono::steady_clock::time_point not_before{};
  uint32_t retries_used = 0;
  double next_backoff_ms = 0.0;
  std::vector<TopicId> dropped_so_far;
};

/// The lane/priority/deficit queue structure. Externally synchronized.
class LaneScheduler {
 public:
  explicit LaneScheduler(SchedulerOptions options);

  /// Enqueues by engine lane and priority (kFifo: one global FIFO).
  void Push(PendingRequest pending);

  /// True when Pop would return a request given the reservation state.
  bool HasEligible(bool wris_allowed) const;

  /// Deficit-RR pickup. Returns nullopt when nothing is eligible. While
  /// the slow lane holds work a reservation keeps off-limits, every pop
  /// that serves the fast lane instead counts one wris_deferral.
  std::optional<PendingRequest> Pop(bool wris_allowed);

  /// Removes up to max_mates queued kRr requests whose keyword sets share
  /// at least one topic with `head`, highest priority first, FIFO within a
  /// priority. kFifo mode never coalesces and returns empty.
  std::vector<PendingRequest> PopRrBatchMates(const Query& head,
                                              size_t max_mates);

  /// Parks a request until `pending.not_before` passes (retry backoff
  /// without a sleeping worker). Parked requests count toward size() —
  /// they are still owed a resolution — but are not eligible until
  /// PromoteReady moves them back into their lane.
  void Park(PendingRequest pending);

  /// Moves parked requests whose not_before has passed into their lanes.
  /// Returns how many were promoted.
  size_t PromoteReady(std::chrono::steady_clock::time_point now);

  /// Earliest not_before among parked requests (nullopt when none) — the
  /// worker wait loop's timed-wait deadline.
  std::optional<std::chrono::steady_clock::time_point> NextNotBefore() const;

  size_t parked_size() const { return parked_.size(); }

  /// Removes everything (shutdown: the service fails each promise),
  /// parked requests included.
  std::deque<PendingRequest> DrainAll();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t lane_size(EngineLane lane) const;

  /// Fast-lane pops made while reserved-out slow work waited.
  uint64_t wris_deferrals() const { return wris_deferrals_; }

  /// Feeds one measured service time (execution only, queueing excluded)
  /// into the lane's EWMA. No-op unless auto_tune_costs is set.
  void RecordServiceTime(EngineLane lane, double service_ms);

  /// Deficit cost charged per slow-lane pickup: the static wris_cost, or
  /// the EWMA-tuned ratio once auto-tuning is enabled and warm.
  uint32_t EffectiveWrisCost() const;

  /// Current per-lane service-time EWMA in ms (0 until a sample lands).
  double ServiceTimeEwmaMs(EngineLane lane) const;

  /// Service-time samples each lane needs before the tuned cost engages.
  static constexpr uint64_t kCostWarmupSamples = 8;

  const SchedulerOptions& options() const { return options_; }

 private:
  struct Lane {
    std::array<std::deque<PendingRequest>, kNumPriorities> by_priority;
    uint64_t deficit = 0;
    size_t size = 0;
  };

  PendingRequest PopFromLane(Lane& lane);

  SchedulerOptions options_;
  std::array<Lane, kNumLanes> lanes_;
  /// Requests waiting out a retry backoff (unordered; promotion scans).
  std::vector<PendingRequest> parked_;
  size_t cursor_ = 0;  // lane the deficit pickup examines first
  size_t size_ = 0;
  uint64_t wris_deferrals_ = 0;
  /// Per-lane service-time EWMA state (auto_tune_costs).
  double ewma_ms_[kNumLanes] = {0.0, 0.0};
  uint64_t ewma_samples_[kNumLanes] = {0, 0};
};

}  // namespace kbtim

#endif  // KBTIM_SERVING_LANE_SCHEDULER_H_

// QueryService: the multi-client serving layer over one shared
// KeywordCache.
//
// The paper's premise is ad-hoc advertiser queries answered in real time;
// a platform faces a *stream* of them, from many campaigns at once. PR 1/2
// made the cache and both index query paths thread-safe, but nothing in
// the tree actually exercised them concurrently. This layer makes
// concurrency a first-class execution mode:
//
//   clients ──Submit()──► bounded request queue ──► worker pool
//                           │ (admission control:      │ per-slot state:
//                           │  queue-full rejects,     │  WrisSolver (own
//                           │  queue deadlines)        │  sampler slots +
//                           │                          │  CoverageWorkspace)
//                           ▼                          ▼
//                      ServiceStats ◄──── IrrIndex / RrIndex / WrisSolver
//                  (latency percentiles,          │
//                   drops, cache roll-up)   KeywordCache (ONE per service,
//                                           shared by every worker)
//
// Execution engines per request: the IRR index (Algorithm 4), the RR index
// (Algorithm 2), or online WRIS sampling (§3.2, when an OnlineBackend is
// attached). IRR/RR handles are stateless over the shared cache, so one of
// each serves every worker; WRIS solvers serialize internally, so each
// worker slot owns one (its sampler slots, RR arenas and CoverageWorkspace
// scratch are reused across that slot's queries — concurrent queries never
// allocate a solver or stomp each other's scratch).
//
// Admission control and budgets:
//   * max_pending — Submit() rejects (Unavailable) once this many requests
//     wait; the client sheds load instead of growing an unbounded queue.
//   * queue_deadline_ms — a request still queued past its deadline is
//     dropped (DeadlineExceeded) when a worker reaches it: under overload
//     the service does stale-work shedding instead of serving dead
//     requests late.
//   * max_theta — per-request θ budget. Index queries whose computed θ^Q
//     exceeds it are rejected (FailedPrecondition) before touching disk;
//     WRIS clamps its sample count to the budget (weakening the
//     approximation guarantee exactly like OnlineSolverOptions::max_theta).
//
// Thread safety: every public method may be called from any thread.
// Destruction fails all still-queued requests with Unavailable, then joins
// the workers (in-flight queries finish).
#ifndef KBTIM_SERVING_QUERY_SERVICE_H_
#define KBTIM_SERVING_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/statusor.h"
#include "index/irr_index.h"
#include "index/keyword_cache.h"
#include "index/rr_index.h"
#include "propagation/model.h"
#include "sampling/solver_result.h"
#include "sampling/wris_solver.h"
#include "topics/query.h"
#include "topics/tfidf.h"

namespace kbtim {

/// Which solver answers a request.
enum class QueryEngine : uint8_t {
  kIrr = 0,   ///< Incremental RR index (paper §5, the real-time path).
  kRr = 1,    ///< Disk RR index (paper §4).
  kWris = 2,  ///< Online sampling (§3.2; needs an OnlineBackend).
};

/// One client request: the query plus its serving budgets.
struct ServiceRequest {
  Query query;
  QueryEngine engine = QueryEngine::kIrr;

  /// Score-refinement mode for QueryEngine::kIrr (ignored otherwise).
  IrrQueryMode irr_mode = IrrQueryMode::kLazy;

  /// Queue-wait budget in milliseconds; a request not STARTED within it is
  /// dropped with DeadlineExceeded. 0 uses the service default (whose own
  /// 0 means no deadline).
  double queue_deadline_ms = 0.0;

  /// Per-request θ budget; 0 = unlimited. Index engines reject queries
  /// whose θ^Q exceeds it, WRIS clamps (see file comment).
  uint64_t max_theta = 0;
};

/// Serving knobs (see file comment for the admission-control semantics).
struct QueryServiceOptions {
  /// Worker threads executing queries (>= 1).
  uint32_t num_workers = 2;

  /// Bound on queued (not yet started) requests before Submit rejects.
  size_t max_pending = 64;

  /// Default ServiceRequest::queue_deadline_ms (0 = no deadline).
  double default_queue_deadline_ms = 0.0;

  /// Construct with workers paused (requests queue but do not execute
  /// until Resume()); used by tests and maintenance windows.
  bool start_paused = false;

  /// Options of the service-owned shared KeywordCache (ignored when the
  /// service attaches to an existing cache).
  KeywordCacheOptions cache;

  /// Per-slot WRIS configuration when an OnlineBackend is attached.
  /// num_threads here is the sampling parallelism INSIDE one slot's
  /// solver; cross-query parallelism comes from num_workers.
  OnlineSolverOptions wris;
};

/// Point-in-time service counters. Latency percentiles and mean_queue_ms
/// cover the most recent window (kLatencyWindow samples) of FINISHED
/// requests — completed, engine-failed, or deadline-dropped — measured
/// Submit -> resolution, so overload tails include the requests that
/// were shed, not just the ones that were lucky. Everything else is a
/// lifetime total.
struct ServiceStats {
  uint64_t submitted = 0;        ///< Accepted into the queue.
  uint64_t completed = 0;        ///< Finished with an OK result.
  uint64_t failed = 0;           ///< Finished with an engine error.
  uint64_t admission_drops = 0;  ///< Rejected at Submit (queue full).
  uint64_t deadline_drops = 0;   ///< Expired in queue before starting.
  uint64_t queue_peak = 0;       ///< High-water mark of pending requests.

  uint64_t irr_queries = 0;   ///< Completed per engine.
  uint64_t rr_queries = 0;
  uint64_t wris_queries = 0;

  double p50_ms = 0.0;  ///< Median latency over the recent window.
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;        ///< Max latency over the recent window.
  double mean_queue_ms = 0.0; ///< Lifetime mean time spent queued.

  /// SolverStats roll-up over completed requests.
  uint64_t rr_sets_loaded = 0;
  uint64_t io_reads = 0;

  /// Shared-cache state (KeywordCache counters at snapshot time; the
  /// hit rate is hits / (hits + misses), 0 when idle).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_admission_bypasses = 0;
  uint64_t prefetches_issued = 0;
  double cache_hit_rate = 0.0;
};

/// Multiplexes concurrent IRR/RR/WRIS queries over one KeywordCache.
class QueryService {
 public:
  /// Online-sampling backend (all pointees must outlive the service).
  /// Without one, QueryEngine::kWris requests fail FailedPrecondition.
  struct OnlineBackend {
    const Graph* graph = nullptr;
    const TfIdfModel* tfidf = nullptr;
    PropagationModel model = PropagationModel::kIndependentCascade;
    /// Aligned with graph->InEdgeRange, matching `model`.
    const std::vector<float>* in_edge_weights = nullptr;
  };

  /// Opens `dir` with a fresh service-owned KeywordCache.
  static StatusOr<std::unique_ptr<QueryService>> Create(
      const std::string& dir, QueryServiceOptions options = {},
      std::optional<OnlineBackend> online = std::nullopt);

  /// Attaches to an existing cache (options.cache is ignored).
  static StatusOr<std::unique_ptr<QueryService>> Create(
      std::shared_ptr<KeywordCache> cache, QueryServiceOptions options = {},
      std::optional<OnlineBackend> online = std::nullopt);

  /// Fails queued requests with Unavailable, finishes in-flight ones,
  /// joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a request. The future resolves to the seed set or to the
  /// admission/deadline/engine error. Queue-full rejection resolves the
  /// future immediately (Unavailable) and counts an admission drop.
  std::future<StatusOr<SeedSetResult>> Submit(ServiceRequest request);

  /// Submit + wait: the closed-loop client call.
  StatusOr<SeedSetResult> Execute(ServiceRequest request);

  /// Blocks until the queue is empty and no worker is mid-query. Only
  /// workers drain the queue, so calling this on a Pause()d service with
  /// queued requests blocks until someone calls Resume().
  void Drain();

  /// Stops dequeuing (queued + new requests wait); Resume() restarts.
  void Pause();
  void Resume();

  /// Requests queued but not yet started.
  size_t pending() const;

  ServiceStats stats() const;

  /// Clears the latency/queue-wait window (lifetime counters survive), so
  /// percentiles cover only what follows — call after a warm-up pass.
  void ResetLatencyWindow();

  const std::shared_ptr<KeywordCache>& cache() const { return cache_; }
  const IndexMeta& meta() const { return cache_->meta(); }

  /// Latency samples retained for the percentile window.
  static constexpr size_t kLatencyWindow = 4096;

 private:
  struct PendingRequest {
    ServiceRequest request;
    std::promise<StatusOr<SeedSetResult>> promise;
    std::chrono::steady_clock::time_point submitted_at;
    double deadline_ms = 0.0;  // resolved against the service default
  };

  /// Per-worker reusable solver state (only WRIS keeps mutable scratch;
  /// the index handles are stateless over the shared cache).
  struct WorkerSlot {
    std::unique_ptr<WrisSolver> wris;  // null without an OnlineBackend
  };

  QueryService(std::shared_ptr<KeywordCache> cache,
               QueryServiceOptions options);

  void StartWorkers(std::optional<OnlineBackend> online);
  void WorkerLoop(uint32_t slot_id);
  StatusOr<SeedSetResult> Dispatch(WorkerSlot& slot,
                                   const ServiceRequest& request);
  /// Pushes one sample into the latency/queue-wait window. stats_mu_ held.
  void RecordLatencyLocked(double latency_ms, double queue_ms);
  void RecordOutcome(const ServiceRequest& request,
                     const StatusOr<SeedSetResult>& result,
                     double latency_ms, double queue_ms);

  const std::shared_ptr<KeywordCache> cache_;
  const QueryServiceOptions options_;
  std::optional<IrrIndex> irr_;  // engaged when meta().has_irr
  std::optional<RrIndex> rr_;    // engaged when meta().has_rr

  mutable std::mutex mu_;  // queue + lifecycle state
  std::condition_variable work_ready_;
  std::condition_variable idle_;  // Drain(): queue empty && none in flight
  std::deque<PendingRequest> queue_;
  size_t in_flight_ = 0;
  bool paused_ = false;
  bool shutdown_ = false;

  mutable std::mutex stats_mu_;
  ServiceStats counters_;  // percentile/cache fields filled at snapshot
  std::vector<float> latency_ring_;  // last kLatencyWindow latencies (ms)
  size_t latency_next_ = 0;
  uint64_t latency_total_ = 0;
  double queue_ms_sum_ = 0.0;

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace kbtim

#endif  // KBTIM_SERVING_QUERY_SERVICE_H_

// QueryService: the multi-client serving layer over one shared
// KeywordCache.
//
// The paper's premise is ad-hoc advertiser queries answered in real time;
// a platform faces a *stream* of them, from many campaigns at once. PR 3
// made concurrency a first-class execution mode behind one FIFO queue;
// PR 4 replaces that FIFO with an engine-class scheduler, because a WRIS
// solve is ~10x an index query and one slow class must not head-of-line-
// block the cheap one:
//
//   clients ──Submit()──► LaneScheduler ─────────► worker pool
//                │          fast lane kIrr/kRr       │ per-slot state:
//                │          slow lane kWris          │  WrisSolver (own
//                │          3 priorities per lane    │  sampler slots +
//                │          weighted deficit RR      │  CoverageWorkspace)
//                │ (admission control:                │ WRIS reservation:
//                │  queue-full rejects,               │  ≤ max_wris_workers
//                │  queue deadlines)                  │  solves in flight
//                ▼                                    ▼
//           ServiceStats ◄──────── IrrIndex / RrIndex / WrisSolver
//       (per-lane percentiles,             │
//        drops, batch counters,      KeywordCache (ONE per service,
//        cache roll-up)              shared by every worker)
//
// Scheduling (see lane_scheduler.h for the discipline itself):
//   * Lanes + priorities — index queries and WRIS solves queue separately;
//     a per-request RequestPriority reorders within a lane only.
//   * Weighted deficit round robin — with both lanes backlogged, workers
//     split their cost budget fast:slow = fast_lane_weight:slow_lane_weight
//     (WRIS pickups charge wris_cost ≈ the measured 10x).
//   * Worker reservations — at most max_wris_workers WRIS solves run
//     concurrently (auto: num_workers - 1), so the fast lane always has a
//     worker even under a WRIS flood.
//   * Batch-aware RR dispatch — a worker popping a kRr request coalesces
//     up to rr_max_batch - 1 queued kRr requests with overlapping keyword
//     sets into ONE RrIndex::BatchQuery (optionally waiting
//     rr_batch_window_ms for more), then fans the per-query results back
//     out to each caller's future. Results are bit-identical to serial
//     execution; batch-level I/O is amortized across the results so
//     ServiceStats sums stay exact.
//   * SchedulingMode::kFifo restores the PR 3 queue — the bench baseline.
//
// Execution engines per request: the IRR index (Algorithm 4), the RR index
// (Algorithm 2), or online WRIS sampling (§3.2, when an OnlineBackend is
// attached). IRR/RR handles are stateless over the shared cache, so one of
// each serves every worker; WRIS solvers serialize internally, so each
// worker slot owns one (its sampler slots, RR arenas and CoverageWorkspace
// scratch are reused across that slot's queries — concurrent queries never
// allocate a solver or stomp each other's scratch).
//
// Admission control and budgets:
//   * max_pending — Submit() rejects (Unavailable) once this many requests
//     wait; the client sheds load instead of growing an unbounded queue.
//   * queue_deadline_ms — a request still queued past its deadline is
//     dropped (DeadlineExceeded) when a worker reaches it: under overload
//     the service does stale-work shedding instead of serving dead
//     requests late.
//   * max_theta — per-request θ budget. Index queries whose computed θ^Q
//     exceeds it are rejected (FailedPrecondition) before touching disk;
//     WRIS clamps its sample count to the budget (weakening the
//     approximation guarantee exactly like OnlineSolverOptions::max_theta).
//
// Drain vs Pause:
//   * Pause() stops workers from STARTING queued requests; Submit still
//     accepts. Resume() restarts pickup.
//   * Drain() blocks until the queue is empty and no worker is mid-query.
//     Drain DRAINS THROUGH a pause: while any Drain is waiting, workers
//     execute queued requests even on a Pause()d service, then honor the
//     pause again once the drain completes. (Before PR 4 a Drain on a
//     paused, non-empty service deadlocked.) Use Pause+Drain to quiesce
//     into a maintenance window: queued work finishes, new work queues.
//
// Thread safety: every public method may be called from any thread.
// Destruction fails all still-queued requests with Unavailable, then joins
// the workers (in-flight queries finish).
#ifndef KBTIM_SERVING_QUERY_SERVICE_H_
#define KBTIM_SERVING_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "index/index_scrubber.h"
#include "index/irr_index.h"
#include "index/keyword_cache.h"
#include "index/rr_index.h"
#include "propagation/model.h"
#include "sampling/solver_result.h"
#include "sampling/wris_solver.h"
#include "serving/failure_domain.h"
#include "serving/lane_scheduler.h"
#include "serving/service_request.h"
#include "topics/query.h"
#include "topics/tfidf.h"

namespace kbtim {

/// Fault-handling knobs: what the service does when the storage layer
/// fails underneath it (as opposed to overload, which admission control
/// and deadlines own).
struct FailureHandlingOptions {
  /// Per-topic circuit breakers: consecutive kIOError/kCorruption on one
  /// keyword quarantine it (requests answer kUnavailable in O(1), no
  /// disk), with half-open probes re-admitting it after backoff.
  bool enable_failure_domains = true;
  FailureDomainOptions breaker;

  /// Extra attempts for a request that failed with a transient kIOError
  /// (0 disables retrying). kCorruption is never retried: the cache has
  /// already invalidated the topic and re-reading the same bytes cannot
  /// help within one request's latency budget.
  uint32_t io_retries = 2;

  /// Backoff before the first retry, doubled per retry. 0 retries
  /// immediately — the determinism suite runs that way so wall-clock
  /// never enters the transcript.
  double retry_backoff_ms = 5.0;

  /// Multi-keyword degradation: when some keywords are quarantined or
  /// identified as the culprits of a failure, re-solve over the healthy
  /// remainder and return it flagged degraded=true instead of failing the
  /// whole query. Disabled, any sick keyword fails the request.
  bool partial_results = true;
};

/// Serving knobs (see file comment for the admission-control semantics).
struct QueryServiceOptions {
  /// Worker threads executing queries (>= 1).
  uint32_t num_workers = 2;

  /// Bound on queued (not yet started) requests before Submit rejects,
  /// summed across lanes.
  size_t max_pending = 64;

  /// Default ServiceRequest::queue_deadline_ms (0 = no deadline).
  double default_queue_deadline_ms = 0.0;

  /// Construct with workers paused (requests queue but do not execute
  /// until Resume()); used by tests and maintenance windows.
  bool start_paused = false;

  /// Lane/priority/batching discipline (see lane_scheduler.h).
  SchedulerOptions scheduler;

  /// Options of the service-owned shared KeywordCache (ignored when the
  /// service attaches to an existing cache).
  KeywordCacheOptions cache;

  /// Per-slot WRIS configuration when an OnlineBackend is attached.
  /// num_threads here is the sampling parallelism INSIDE one slot's
  /// solver; cross-query parallelism comes from num_workers.
  OnlineSolverOptions wris;

  /// Breaker / retry / degradation behavior under storage faults.
  FailureHandlingOptions failure;
};

/// Point-in-time service counters. Latency percentiles and mean_queue_ms
/// cover the most recent window (kLatencyWindow samples) of FINISHED
/// requests — completed, engine-failed, or deadline-dropped — measured
/// Submit -> resolution, so overload tails include the requests that
/// were shed, not just the ones that were lucky. The fast_/slow_ fields
/// are the same measurement split by scheduler lane (index vs WRIS).
/// Everything else is a lifetime total.
struct ServiceStats {
  uint64_t submitted = 0;        ///< Accepted into the queue.
  uint64_t completed = 0;        ///< Finished with an OK result.
  uint64_t failed = 0;           ///< Finished with an engine error.
  uint64_t admission_drops = 0;  ///< Rejected at Submit (queue full).
  uint64_t deadline_drops = 0;   ///< Expired in queue before starting.
  /// Requests whose END-TO-END deadline (request_deadline_ms, e.g. the
  /// router's wire-propagated budget) had already passed when a worker
  /// dequeued them: the caller gave up, so the answer is never computed.
  uint64_t deadline_expired_at_dequeue = 0;
  uint64_t queue_peak = 0;       ///< High-water mark of pending requests.

  uint64_t irr_queries = 0;   ///< Completed per engine.
  uint64_t rr_queries = 0;
  uint64_t wris_queries = 0;

  /// Batch-aware RR dispatch: coalesced BatchQuery dispatches (>= 2
  /// requests) and the requests answered inside them.
  uint64_t rr_batches = 0;
  uint64_t rr_batched_queries = 0;

  /// Fast-lane pickups made while the WRIS reservation cap kept queued
  /// slow-lane work waiting (how often the reservation actually bit).
  uint64_t wris_deferrals = 0;

  /// Deficit cost a slow-lane pickup currently charges: the static
  /// wris_cost, or the EWMA-tuned ratio when auto_tune_costs is warm.
  /// The per-lane service-time EWMAs (ms) it derives from ride along
  /// (0 until auto-tuning has seen a sample).
  uint32_t wris_cost_effective = 0;
  double fast_service_ewma_ms = 0.0;
  double slow_service_ewma_ms = 0.0;

  double p50_ms = 0.0;  ///< Median latency over the recent window.
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;        ///< Max latency over the recent window.
  double mean_queue_ms = 0.0; ///< Lifetime mean time spent queued.

  /// Per-lane latency percentiles over each lane's own recent window.
  double fast_p50_ms = 0.0;  ///< Index lane (kIrr + kRr).
  double fast_p99_ms = 0.0;
  double slow_p50_ms = 0.0;  ///< WRIS lane.
  double slow_p99_ms = 0.0;

  /// SolverStats roll-up over completed requests. Batch-executed RR
  /// requests carry amortized per-result shares, so these sums equal the
  /// true totals (no per-batch multiple counting).
  uint64_t rr_sets_loaded = 0;
  uint64_t io_reads = 0;

  /// Shared-cache state (KeywordCache counters at snapshot time; the
  /// hit rate is hits / (hits + misses), 0 when idle).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_admission_bypasses = 0;
  uint64_t prefetches_issued = 0;
  double cache_hit_rate = 0.0;

  /// ---- Fault-domain observability (PR 6) ----
  /// Requests that FINALLY failed with each fault class (after retries
  /// and degradation were exhausted; a retried-then-successful request
  /// counts under retry_successes instead).
  uint64_t io_error_failures = 0;
  uint64_t corruption_failures = 0;
  /// Transient-I/O retry attempts made on the worker path, and requests
  /// that succeeded only thanks to at least one retry.
  uint64_t transient_retries = 0;
  uint64_t retry_successes = 0;
  /// Retrying requests re-queued with a not-before time instead of
  /// holding their worker slot through the backoff sleep (PR 10 fix: a
  /// burst of retrying requests used to idle the whole pool).
  uint64_t retry_requeues = 0;
  /// RR-block fetches served to remote routers (RequestKind::kFetchRr).
  uint64_t rr_fetches = 0;
  /// OK results served with degraded=true (some keywords dropped).
  uint64_t degraded_results = 0;
  /// Requests answered kUnavailable purely from quarantine state — shed
  /// in O(1) without touching the engines or disk.
  uint64_t quarantine_rejections = 0;
  /// Circuit-breaker transition counters (FailureDomainTable roll-up).
  uint64_t breaker_opens = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_closes = 0;
  uint64_t breaker_rejections = 0;
  /// KeywordCache fault counters at snapshot time.
  uint64_t cache_io_errors = 0;
  uint64_t cache_decode_failures = 0;
  uint64_t cache_prefetch_failures = 0;
  uint64_t cache_topic_invalidations = 0;

  /// ---- Checksum integrity (PR 7) ----
  /// Verify-on-read: stored CRC32C comparisons made by the shared cache
  /// and how many caught corrupted bytes (counted before any decode ran).
  uint64_t cache_crc_checks = 0;
  uint64_t cache_crc_failures = 0;
  /// Online scrubber roll-up (0 until SetScrubStatsProvider is wired).
  uint64_t scrub_blocks = 0;        ///< CRC units verified in background.
  uint64_t scrub_crc_failures = 0;  ///< Latent corruption detected.
  uint64_t scrub_quarantines = 0;   ///< Topics renamed aside.
  uint64_t scrub_rebuilds = 0;      ///< Topics rebuilt and re-verified.
};

/// Multiplexes concurrent IRR/RR/WRIS queries over one KeywordCache.
class QueryService {
 public:
  /// Online-sampling backend (all pointees must outlive the service).
  /// Without one, QueryEngine::kWris requests fail FailedPrecondition.
  struct OnlineBackend {
    const Graph* graph = nullptr;
    const TfIdfModel* tfidf = nullptr;
    PropagationModel model = PropagationModel::kIndependentCascade;
    /// Aligned with graph->InEdgeRange, matching `model`.
    const std::vector<float>* in_edge_weights = nullptr;
  };

  /// Opens `dir` with a fresh service-owned KeywordCache.
  static StatusOr<std::unique_ptr<QueryService>> Create(
      const std::string& dir, QueryServiceOptions options = {},
      std::optional<OnlineBackend> online = std::nullopt);

  /// Attaches to an existing cache (options.cache is ignored).
  static StatusOr<std::unique_ptr<QueryService>> Create(
      std::shared_ptr<KeywordCache> cache, QueryServiceOptions options = {},
      std::optional<OnlineBackend> online = std::nullopt);

  /// Fails queued requests with Unavailable, finishes in-flight ones,
  /// joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a request. The future resolves to the seed set or to the
  /// admission/deadline/engine error. Queue-full rejection resolves the
  /// future immediately (Unavailable) and counts an admission drop.
  std::future<StatusOr<SeedSetResult>> Submit(ServiceRequest request)
      EXCLUDES(mu_, stats_mu_);

  /// Submit + wait: the closed-loop client call.
  StatusOr<SeedSetResult> Execute(ServiceRequest request)
      EXCLUDES(mu_, stats_mu_);

  /// Enqueues an RR-block fetch (the network scatter-gather unit; see
  /// RrFetchRequest). Rides the fast lane with the same admission
  /// control, deadline shedding and per-keyword breaker screening as a
  /// query, but returns the raw blocks instead of running the greedy.
  std::future<StatusOr<RrFetchResult>> SubmitFetch(RrFetchRequest request)
      EXCLUDES(mu_, stats_mu_);

  /// SubmitFetch + wait.
  StatusOr<RrFetchResult> ExecuteFetch(RrFetchRequest request)
      EXCLUDES(mu_, stats_mu_);

  /// Blocks until the queue is empty and no worker is mid-query. Drains
  /// through a Pause(): paused workers execute queued requests while any
  /// Drain waits, then pause again (see the Drain-vs-Pause file comment).
  void Drain() EXCLUDES(mu_);

  /// Stops dequeuing (queued + new requests wait); Resume() restarts.
  /// A concurrent Drain() overrides the pause until it returns.
  void Pause() EXCLUDES(mu_);
  void Resume() EXCLUDES(mu_);

  /// Requests queued but not yet started.
  size_t pending() const EXCLUDES(mu_);

  /// Takes stats_mu_, mu_ and scrub_mu_ strictly in sequence — never
  /// nested (the PR 4 lock-order contract, now annotation-enforced).
  ServiceStats stats() const EXCLUDES(mu_, stats_mu_, scrub_mu_);

  /// Clears the latency/queue-wait windows, overall and per lane
  /// (lifetime counters survive), so percentiles cover only what follows
  /// — call after a warm-up pass.
  void ResetLatencyWindow() EXCLUDES(stats_mu_);

  const std::shared_ptr<KeywordCache>& cache() const { return cache_; }
  const IndexMeta& meta() const { return cache_->meta(); }

  /// Wires an IndexScrubber's counters into stats() (scrub_* fields).
  /// The provider must stay callable for the service's lifetime; pass
  /// nullptr to unwire before tearing the scrubber down.
  void SetScrubStatsProvider(std::function<IndexScrubberStats()> provider)
      EXCLUDES(scrub_mu_);

  /// READ-ONLY breaker probe for the scrubber's admit hook: true when
  /// `topic` may be touched (breaker disabled, or its state is not open).
  /// Unlike FailureDomainTable::Admit this never consumes a half-open
  /// probe, so polling it cannot perturb the breaker state machine.
  bool TopicHealthy(TopicId topic) const;

  /// Latency samples retained per percentile window.
  static constexpr size_t kLatencyWindow = 4096;

 private:
  /// Per-worker reusable solver state (only WRIS keeps mutable scratch;
  /// the index handles are stateless over the shared cache).
  struct WorkerSlot {
    std::unique_ptr<WrisSolver> wris;  // null without an OnlineBackend
  };

  /// One latency percentile ring (overall or per lane). stats_mu_ held.
  struct LatencyWindowState {
    std::vector<float> ring;
    size_t next = 0;
    uint64_t total = 0;
  };

  QueryService(std::shared_ptr<KeywordCache> cache,
               QueryServiceOptions options);

  void StartWorkers(std::optional<OnlineBackend> online);
  void WorkerLoop(uint32_t slot_id) EXCLUDES(mu_, stats_mu_);

  /// True when workers may dequeue: not paused, or a Drain is waiting.
  bool RunnableLocked() const REQUIRES(mu_) {
    return !paused_ || draining_ > 0;
  }
  /// True when a WRIS pickup fits under the reservation cap. mu_ held.
  bool WrisAllowedLocked() const REQUIRES(mu_);

  /// Collects overlapping queued kRr requests for a just-popped head,
  /// optionally waiting rr_batch_window_ms for more arrivals (mu_ is
  /// released while waiting, as with any CondVar wait); in_flight_ is
  /// bumped for every mate taken.
  void CollectRrBatchLocked(const PendingRequest& head,
                            std::vector<PendingRequest>& mates)
      REQUIRES(mu_);

  /// Executes one non-coalesced request end to end (deadline check,
  /// dispatch, stats, promise). Returns true when an engine actually ran
  /// (false = deadline drop), so only real service times feed the
  /// scheduler's cost EWMA.
  bool ProcessSingle(WorkerSlot& slot, PendingRequest pending)
      EXCLUDES(mu_, stats_mu_);
  /// Executes one RR-block fetch: deadline check, per-keyword breaker
  /// screening, cache loads, per-topic drop bookkeeping, promise.
  bool ProcessFetch(PendingRequest pending) EXCLUDES(mu_, stats_mu_);
  /// Executes a coalesced kRr batch: per-request deadline/θ screening,
  /// one RrIndex::BatchQuery, per-query promise fan-out. Returns true
  /// when the batch reached the engine.
  bool ProcessRrBatch(PendingRequest head, std::vector<PendingRequest> mates)
      EXCLUDES(mu_, stats_mu_);

  /// kRr engine availability, shared by the single and batched paths.
  Status CheckRrAvailable() const;
  /// Per-request θ^Q admission (index engines; see file comment).
  Status CheckThetaBudget(const ServiceRequest& request) const;
  StatusOr<SeedSetResult> Dispatch(WorkerSlot& slot,
                                   const ServiceRequest& request);

  /// Dispatch wrapped in the failure-domain policy: breaker admission
  /// (quarantined keywords shed in O(1)), bounded retry on transient
  /// kIOError, and culprit-keyword degradation for multi-keyword queries
  /// (see FailureHandlingOptions). The fast path — no breaker, no
  /// retries — is a tail call into Dispatch. Returns true with `*out`
  /// resolved, or FALSE when the request was re-queued for a backoff
  /// retry (retry state stashed on `pending`; the caller must neither
  /// resolve the promise nor record an outcome). With backoff 0 retries
  /// stay inline, so deterministic suites never see a requeue.
  bool DispatchResilient(WorkerSlot& slot, PendingRequest& pending,
                         StatusOr<SeedSetResult>* out)
      EXCLUDES(mu_, stats_mu_);
  /// Parks `pending` on the scheduler with not_before = now + backoff_ms
  /// (counted in retry_requeues); resolves it Unavailable on shutdown.
  void RequeueWithBackoff(PendingRequest pending, double backoff_ms)
      EXCLUDES(mu_, stats_mu_);
  /// Breaker admission for one request's keywords: splits them into
  /// admitted and quarantined. No-op (all admitted) without a breaker.
  void ScreenTopics(const std::vector<TopicId>& topics,
                    std::vector<TopicId>* admitted,
                    std::vector<TopicId>* quarantined);
  /// Listener-observed fault count per topic (culprit identification:
  /// snapshot before an engine attempt, diff after a failure).
  std::vector<uint64_t> SnapshotTopicFaults(
      const std::vector<TopicId>& topics) const;
  /// Resolves breaker verdicts after a finished engine attempt: topics
  /// whose fault count moved are the culprits (the cache listener already
  /// recorded their failures); the rest record success when `ok` or when
  /// they were read clean in a failed attempt. Returns the culprits.
  std::vector<TopicId> ResolveAttempt(const std::vector<TopicId>& topics,
                                      const std::vector<uint64_t>& before,
                                      bool ok, bool blame_unattributed);
  /// Pushes one sample into the overall + per-lane windows. stats_mu_ held.
  void RecordLatencyLocked(double latency_ms, double queue_ms,
                           EngineLane lane) REQUIRES(stats_mu_);
  /// EXCLUDES(mu_): the PR 4 rule — outcome accounting takes stats_mu_,
  /// which must never nest under the queue lock.
  void RecordOutcome(const ServiceRequest& request,
                     const StatusOr<SeedSetResult>& result,
                     double latency_ms, double queue_ms)
      EXCLUDES(mu_, stats_mu_);
  /// Resolves a deadline-expired request (stats + promise). Queue-wait
  /// deadlines are judged submitted_at -> picked_at; the end-to-end
  /// expires_at is judged against picked_at (deadline_expired_at_dequeue).
  /// Returns true when the request dropped.
  bool DropIfExpired(PendingRequest& pending) EXCLUDES(mu_, stats_mu_);
  /// Resolves whichever promise `pending`'s kind owns with `status`.
  static void ResolvePending(PendingRequest& pending, Status status);

  /// Breaker + per-topic fault counts, fed by the KeywordCache failure
  /// listener (which may fire from prefetch-pool threads, including after
  /// this service unregistered — the listener captures this state by
  /// shared_ptr, never `this`, so a straggling callback touches live
  /// memory even mid-/post-destruction).
  struct FaultDomainState {
    std::unique_ptr<FailureDomainTable> breaker;  // null when disabled
    mutable Mutex mu;
    std::unordered_map<TopicId, uint64_t> topic_faults GUARDED_BY(mu);

    void OnCacheFailure(TopicId topic, const Status& status) EXCLUDES(mu) {
      {
        MutexLock lock(&mu);
        ++topic_faults[topic];
      }
      if (breaker != nullptr) breaker->RecordFailure(topic);
    }
  };

  const std::shared_ptr<KeywordCache> cache_;
  const QueryServiceOptions options_;
  uint32_t wris_worker_cap_ = 1;  // resolved max_wris_workers
  std::optional<IrrIndex> irr_;   // engaged when meta().has_irr
  std::optional<RrIndex> rr_;     // engaged when meta().has_rr
  std::shared_ptr<FaultDomainState> fault_state_;

  mutable Mutex mu_;  // queue + lifecycle state
  CondVar work_ready_;
  CondVar idle_;  // Drain(): queue empty && none in flight
  /// LaneScheduler is not itself thread-safe; guarding the member makes
  /// "QueryService drives it under its queue mutex" compiler-checked.
  LaneScheduler scheduler_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  size_t wris_in_flight_ GUARDED_BY(mu_) = 0;
  /// Drains currently waiting (drain-through-pause).
  int draining_ GUARDED_BY(mu_) = 0;
  /// Workers inside a batch window wait.
  size_t coalesce_waiters_ GUARDED_BY(mu_) = 0;
  bool paused_ GUARDED_BY(mu_) = false;
  bool shutdown_ GUARDED_BY(mu_) = false;

  /// Scrubber stats hook; own mutex so snapshotting it never nests with
  /// the queue or stats locks.
  mutable Mutex scrub_mu_;
  std::function<IndexScrubberStats()> scrub_stats_ GUARDED_BY(scrub_mu_);

  mutable Mutex stats_mu_;
  /// Percentile/cache fields filled at snapshot.
  ServiceStats counters_ GUARDED_BY(stats_mu_);
  LatencyWindowState latency_ GUARDED_BY(stats_mu_);  // overall
  LatencyWindowState lane_latency_[kNumLanes] GUARDED_BY(stats_mu_);
  double queue_ms_sum_ GUARDED_BY(stats_mu_) = 0.0;

  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace kbtim

#endif  // KBTIM_SERVING_QUERY_SERVICE_H_

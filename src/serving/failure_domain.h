// Per-topic circuit breakers: the serving tier's failure domains.
//
// Each topic (keyword) is an independent failure domain — its index files
// fail independently, so one topic's bad sector must not consume retry
// budget or worker time that healthy topics need. The classic breaker
// state machine:
//
//   closed ──(threshold consecutive kIOError/kCorruption)──> open
//   open   ──(backoff deadline passed, one probe admitted)──> half-open
//   half-open ──(probe succeeds)──> closed   (backoff + failures reset)
//   half-open ──(probe fails)────> open      (backoff doubled, jittered)
//
// While open, Admit() answers false in O(1) — no disk, no decode, no
// retry; QueryService converts that into kUnavailable immediately.
// Backoff is exponential with deterministic seeded jitter (so two topics
// opened by the same burst do not probe in lockstep, and so tests replay
// exactly). backoff_ms = 0 makes reopen eligibility immediate, turning
// the state machine attempt-count-driven — the determinism suite runs it
// that way so wall-clock never enters the transcript.
#ifndef KBTIM_SERVING_FAILURE_DOMAIN_H_
#define KBTIM_SERVING_FAILURE_DOMAIN_H_

#include <chrono>
#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "topics/vocabulary.h"

namespace kbtim {

enum class BreakerState : uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

struct FailureDomainOptions {
  /// Consecutive recorded failures that trip closed -> open.
  uint32_t failure_threshold = 3;

  /// First open-state backoff; doubled on every failed probe. 0 makes a
  /// tripped breaker immediately probe-eligible (deterministic tests).
  double backoff_ms = 100.0;
  double max_backoff_ms = 5000.0;

  /// Backoff is scaled by a seeded uniform draw from
  /// [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.2;
  uint64_t seed = 1;
};

/// Monotonic transition counters across every domain in the table.
struct FailureDomainStats {
  uint64_t failures_recorded = 0;
  uint64_t successes_recorded = 0;
  uint64_t opens = 0;        ///< closed/half-open -> open transitions.
  uint64_t probes = 0;       ///< open -> half-open probe admissions.
  uint64_t closes = 0;       ///< half-open -> closed recoveries.
  uint64_t rejections = 0;   ///< Admit() == false (request shed in O(1)).
};

/// Thread-safe breaker table keyed by topic. One instance per
/// QueryService; all methods are O(1) per call (one hash lookup under a
/// mutex — never any I/O).
class FailureDomainTable {
 public:
  explicit FailureDomainTable(FailureDomainOptions options = {});

  /// True when a request on `topic` may touch the engines. While open,
  /// answers false until the backoff deadline, then flips to half-open;
  /// half-open admits requests as trials until one reports an outcome
  /// (success closes, failure reopens with doubled backoff).
  bool Admit(TopicId topic) EXCLUDES(mu_);

  /// Probe or regular success: half-open -> closed; closed resets the
  /// consecutive-failure streak.
  void RecordSuccess(TopicId topic) EXCLUDES(mu_);

  /// A kIOError/kCorruption on `topic` (only record those — overload and
  /// validation errors are not fault-domain signals). Trips the breaker
  /// at `failure_threshold` consecutive failures; fails a half-open probe
  /// back to open with doubled backoff.
  void RecordFailure(TopicId topic) EXCLUDES(mu_);

  BreakerState state(TopicId topic) const EXCLUDES(mu_);
  FailureDomainStats stats() const EXCLUDES(mu_);

 private:
  struct Domain {
    BreakerState state = BreakerState::kClosed;
    uint32_t consecutive_failures = 0;
    double backoff_ms = 0.0;  // backoff used for the current open period
    std::chrono::steady_clock::time_point reopen_at;
  };

  /// Jittered next backoff (deterministic: seeded counter hash).
  double NextBackoffLocked(double base_ms) REQUIRES(mu_);

  const FailureDomainOptions options_;
  mutable Mutex mu_;
  std::unordered_map<TopicId, Domain> domains_ GUARDED_BY(mu_);
  FailureDomainStats stats_ GUARDED_BY(mu_);
  uint64_t jitter_counter_ GUARDED_BY(mu_) = 0;
};

}  // namespace kbtim

#endif  // KBTIM_SERVING_FAILURE_DOMAIN_H_

// Request vocabulary of the serving layer: which engine answers a query,
// which scheduler lane that engine belongs to, and the per-request
// budgets/priority a client attaches. Split out of query_service.h so the
// LaneScheduler can be built and tested without the service itself.
#ifndef KBTIM_SERVING_SERVICE_REQUEST_H_
#define KBTIM_SERVING_SERVICE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/irr_index.h"
#include "index/keyword_cache.h"
#include "topics/query.h"

namespace kbtim {

/// Which solver answers a request.
enum class QueryEngine : uint8_t {
  kIrr = 0,   ///< Incremental RR index (paper §5, the real-time path).
  kRr = 1,    ///< Disk RR index (paper §4).
  kWris = 2,  ///< Online sampling (§3.2; needs an OnlineBackend).
};

/// Scheduler lane of an engine class. Index queries are ~10x cheaper than
/// a WRIS solve, so they ride a separate fast lane that a WRIS backlog can
/// never head-of-line-block.
enum class EngineLane : uint8_t {
  kFast = 0,  ///< kIrr + kRr.
  kSlow = 1,  ///< kWris.
};

inline constexpr size_t kNumLanes = 2;

inline EngineLane LaneOf(QueryEngine engine) {
  return engine == QueryEngine::kWris ? EngineLane::kSlow : EngineLane::kFast;
}

/// Within-lane ordering. Priority never lets one lane preempt the other
/// (cross-lane fairness is the deficit-round-robin's job); it reorders
/// requests INSIDE a lane, higher first, FIFO among equals.
enum class RequestPriority : uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

inline constexpr size_t kNumPriorities = 3;

/// One client request: the query plus its serving budgets.
struct ServiceRequest {
  Query query;
  QueryEngine engine = QueryEngine::kIrr;

  /// Score-refinement mode for QueryEngine::kIrr (ignored otherwise).
  IrrQueryMode irr_mode = IrrQueryMode::kLazy;

  /// Within-lane scheduling priority (see RequestPriority).
  RequestPriority priority = RequestPriority::kNormal;

  /// Queue-wait budget in milliseconds; a request not STARTED within it is
  /// dropped with DeadlineExceeded. 0 uses the service default (whose own
  /// 0 means no deadline).
  double queue_deadline_ms = 0.0;

  /// Per-request θ budget; 0 = unlimited. Index engines reject queries
  /// whose θ^Q exceeds it, WRIS clamps (see query_service.h).
  uint64_t max_theta = 0;

  /// End-to-end deadline in milliseconds, measured from Submit; 0 = none.
  /// Unlike queue_deadline_ms (a queue-WAIT budget), this is the total
  /// budget the CALLER still has — the network router propagates its
  /// remaining per-attempt budget here, and a shard that dequeues an
  /// already-expired request drops it instead of burning a worker slot
  /// computing an answer nobody reads (deadline_expired_at_dequeue).
  double request_deadline_ms = 0.0;
};

/// What a queued PendingRequest asks the worker to do: solve a query, or
/// serve the raw per-keyword RR blocks a remote Router gathers (PR 10).
/// Fetches ride the fast lane with full admission control, deadline-at-
/// dequeue shedding and per-keyword breaker screening, but skip the
/// greedy — the router runs it once, over blocks from every shard.
enum class RequestKind : uint8_t {
  kSolve = 0,
  kFetchRr = 1,
};

/// One per-keyword RR block fetch (the network scatter-gather unit).
struct RrFetchRequest {
  /// Requested keywords and their minimum RR budgets, aligned.
  std::vector<TopicId> topics;
  std::vector<uint64_t> budgets;

  RequestPriority priority = RequestPriority::kNormal;
  double queue_deadline_ms = 0.0;    ///< As ServiceRequest.
  double request_deadline_ms = 0.0;  ///< As ServiceRequest.
};

/// Fetch outcome. A topic the shard could not serve — breaker-quarantined
/// or failed with kIOError/kCorruption after the cache's own handling —
/// comes back as a null block and a dropped entry instead of failing the
/// whole fetch; the router decides whether to hedge or degrade.
struct RrFetchResult {
  /// Aligned with the request's topics; null = dropped.
  std::vector<std::shared_ptr<const RrKeywordBlock>> blocks;
  std::vector<TopicId> dropped;
};

}  // namespace kbtim

#endif  // KBTIM_SERVING_SERVICE_REQUEST_H_

// Request vocabulary of the serving layer: which engine answers a query,
// which scheduler lane that engine belongs to, and the per-request
// budgets/priority a client attaches. Split out of query_service.h so the
// LaneScheduler can be built and tested without the service itself.
#ifndef KBTIM_SERVING_SERVICE_REQUEST_H_
#define KBTIM_SERVING_SERVICE_REQUEST_H_

#include <cstdint>

#include "index/irr_index.h"
#include "topics/query.h"

namespace kbtim {

/// Which solver answers a request.
enum class QueryEngine : uint8_t {
  kIrr = 0,   ///< Incremental RR index (paper §5, the real-time path).
  kRr = 1,    ///< Disk RR index (paper §4).
  kWris = 2,  ///< Online sampling (§3.2; needs an OnlineBackend).
};

/// Scheduler lane of an engine class. Index queries are ~10x cheaper than
/// a WRIS solve, so they ride a separate fast lane that a WRIS backlog can
/// never head-of-line-block.
enum class EngineLane : uint8_t {
  kFast = 0,  ///< kIrr + kRr.
  kSlow = 1,  ///< kWris.
};

inline constexpr size_t kNumLanes = 2;

inline EngineLane LaneOf(QueryEngine engine) {
  return engine == QueryEngine::kWris ? EngineLane::kSlow : EngineLane::kFast;
}

/// Within-lane ordering. Priority never lets one lane preempt the other
/// (cross-lane fairness is the deficit-round-robin's job); it reorders
/// requests INSIDE a lane, higher first, FIFO among equals.
enum class RequestPriority : uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

inline constexpr size_t kNumPriorities = 3;

/// One client request: the query plus its serving budgets.
struct ServiceRequest {
  Query query;
  QueryEngine engine = QueryEngine::kIrr;

  /// Score-refinement mode for QueryEngine::kIrr (ignored otherwise).
  IrrQueryMode irr_mode = IrrQueryMode::kLazy;

  /// Within-lane scheduling priority (see RequestPriority).
  RequestPriority priority = RequestPriority::kNormal;

  /// Queue-wait budget in milliseconds; a request not STARTED within it is
  /// dropped with DeadlineExceeded. 0 uses the service default (whose own
  /// 0 means no deadline).
  double queue_deadline_ms = 0.0;

  /// Per-request θ budget; 0 = unlimited. Index engines reject queries
  /// whose θ^Q exceeds it, WRIS clamps (see query_service.h).
  uint64_t max_theta = 0;
};

}  // namespace kbtim

#endif  // KBTIM_SERVING_SERVICE_REQUEST_H_

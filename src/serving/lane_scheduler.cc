#include "serving/lane_scheduler.h"

#include <algorithm>

namespace kbtim {
namespace {

constexpr size_t kFast = static_cast<size_t>(EngineLane::kFast);
constexpr size_t kSlow = static_cast<size_t>(EngineLane::kSlow);

bool KeywordsOverlap(const Query& a, const Query& b) {
  // Queries hold a handful of distinct topics; a nested scan beats any
  // set machinery at these sizes.
  for (TopicId t : a.topics) {
    if (std::find(b.topics.begin(), b.topics.end(), t) != b.topics.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

LaneScheduler::LaneScheduler(SchedulerOptions options) : options_(options) {
  // A zero weight or cost would stall the deficit loop; clamp rather than
  // error so a zeroed-out struct still schedules.
  options_.fast_lane_weight = std::max<uint32_t>(1, options_.fast_lane_weight);
  options_.slow_lane_weight = std::max<uint32_t>(1, options_.slow_lane_weight);
  options_.index_cost = std::max<uint32_t>(1, options_.index_cost);
  options_.wris_cost = std::max<uint32_t>(1, options_.wris_cost);
  options_.rr_max_batch = std::max<uint32_t>(1, options_.rr_max_batch);
  options_.max_auto_cost = std::max<uint32_t>(1, options_.max_auto_cost);
  if (options_.cost_ewma_alpha <= 0.0 || options_.cost_ewma_alpha > 1.0) {
    options_.cost_ewma_alpha = 0.2;
  }
}

void LaneScheduler::RecordServiceTime(EngineLane lane, double service_ms) {
  if (!options_.auto_tune_costs || service_ms < 0.0) return;
  const auto li = static_cast<size_t>(lane);
  if (ewma_samples_[li] == 0) {
    ewma_ms_[li] = service_ms;
  } else {
    ewma_ms_[li] = options_.cost_ewma_alpha * service_ms +
                   (1.0 - options_.cost_ewma_alpha) * ewma_ms_[li];
  }
  ++ewma_samples_[li];
}

uint32_t LaneScheduler::EffectiveWrisCost() const {
  if (!options_.auto_tune_costs ||
      ewma_samples_[kFast] < kCostWarmupSamples ||
      ewma_samples_[kSlow] < kCostWarmupSamples ||
      ewma_ms_[kFast] <= 0.0) {
    return options_.wris_cost;
  }
  const double ratio = ewma_ms_[kSlow] / ewma_ms_[kFast] *
                       static_cast<double>(options_.index_cost);
  if (ratio <= 1.0) return 1;
  if (ratio >= static_cast<double>(options_.max_auto_cost)) {
    return options_.max_auto_cost;
  }
  return static_cast<uint32_t>(ratio + 0.5);
}

double LaneScheduler::ServiceTimeEwmaMs(EngineLane lane) const {
  return ewma_ms_[static_cast<size_t>(lane)];
}

void LaneScheduler::Push(PendingRequest pending) {
  size_t lane = kFast;
  size_t priority = static_cast<size_t>(RequestPriority::kNormal);
  if (options_.mode == SchedulingMode::kLanes) {
    lane = static_cast<size_t>(LaneOf(pending.request.engine));
    priority = std::min<size_t>(
        static_cast<size_t>(pending.request.priority), kNumPriorities - 1);
  }
  lanes_[lane].by_priority[priority].push_back(std::move(pending));
  ++lanes_[lane].size;
  ++size_;
}

bool LaneScheduler::HasEligible(bool wris_allowed) const {
  if (options_.mode == SchedulingMode::kFifo) return size_ > 0;
  return lanes_[kFast].size > 0 || (wris_allowed && lanes_[kSlow].size > 0);
}

PendingRequest LaneScheduler::PopFromLane(Lane& lane) {
  for (auto& queue : lane.by_priority) {
    if (queue.empty()) continue;
    PendingRequest pending = std::move(queue.front());
    queue.pop_front();
    --lane.size;
    --size_;
    return pending;
  }
  // Callers only reach here with lane.size > 0.
  __builtin_unreachable();
}

std::optional<PendingRequest> LaneScheduler::Pop(bool wris_allowed) {
  if (options_.mode == SchedulingMode::kFifo) {
    if (size_ == 0) return std::nullopt;
    return PopFromLane(lanes_[kFast]);
  }
  if (!HasEligible(wris_allowed)) return std::nullopt;
  const bool slow_deferred = !wris_allowed && lanes_[kSlow].size > 0;
  // Deficit round robin: serve the first lane (in cursor order) that can
  // afford its per-pickup cost; when none can, top every eligible lane up
  // by its weight and retry. An empty lane forfeits its deficit (the
  // classic DRR rule — idle lanes must not bank credit).
  for (;;) {
    for (size_t i = 0; i < kNumLanes; ++i) {
      const size_t li = (cursor_ + i) % kNumLanes;
      Lane& lane = lanes_[li];
      if (lane.size == 0) {
        lane.deficit = 0;
        continue;
      }
      if (li == kSlow && !wris_allowed) continue;
      const uint32_t cost =
          li == kSlow ? EffectiveWrisCost() : options_.index_cost;
      if (lane.deficit < cost) continue;
      lane.deficit -= cost;
      cursor_ = li;  // keep serving this lane while its deficit lasts
      if (slow_deferred && li == kFast) ++wris_deferrals_;
      return PopFromLane(lane);
    }
    for (size_t li = 0; li < kNumLanes; ++li) {
      Lane& lane = lanes_[li];
      if (lane.size == 0) continue;
      if (li == kSlow && !wris_allowed) continue;
      lane.deficit +=
          li == kSlow ? options_.slow_lane_weight : options_.fast_lane_weight;
    }
  }
}

void LaneScheduler::Park(PendingRequest pending) {
  parked_.push_back(std::move(pending));
  ++size_;
}

size_t LaneScheduler::PromoteReady(std::chrono::steady_clock::time_point now) {
  size_t promoted = 0;
  for (size_t i = 0; i < parked_.size();) {
    if (parked_[i].not_before > now) {
      ++i;
      continue;
    }
    PendingRequest ready = std::move(parked_[i]);
    parked_[i] = std::move(parked_.back());
    parked_.pop_back();
    --size_;  // Push re-counts it
    Push(std::move(ready));
    ++promoted;
  }
  return promoted;
}

std::optional<std::chrono::steady_clock::time_point>
LaneScheduler::NextNotBefore() const {
  std::optional<std::chrono::steady_clock::time_point> next;
  for (const PendingRequest& pending : parked_) {
    if (!next.has_value() || pending.not_before < *next) {
      next = pending.not_before;
    }
  }
  return next;
}

std::vector<PendingRequest> LaneScheduler::PopRrBatchMates(
    const Query& head, size_t max_mates) {
  std::vector<PendingRequest> mates;
  if (options_.mode == SchedulingMode::kFifo || max_mates == 0) return mates;
  Lane& fast = lanes_[kFast];
  for (auto& queue : fast.by_priority) {
    for (auto it = queue.begin();
         it != queue.end() && mates.size() < max_mates;) {
      if (it->kind == RequestKind::kSolve &&
          it->request.engine == QueryEngine::kRr &&
          KeywordsOverlap(head, it->request.query)) {
        mates.push_back(std::move(*it));
        it = queue.erase(it);
        --fast.size;
        --size_;
      } else {
        ++it;
      }
    }
    if (mates.size() >= max_mates) break;
  }
  return mates;
}

std::deque<PendingRequest> LaneScheduler::DrainAll() {
  std::deque<PendingRequest> drained;
  for (PendingRequest& pending : parked_) {
    drained.push_back(std::move(pending));
  }
  parked_.clear();
  for (Lane& lane : lanes_) {
    for (auto& queue : lane.by_priority) {
      for (PendingRequest& pending : queue) {
        drained.push_back(std::move(pending));
      }
      queue.clear();
    }
    lane.size = 0;
    lane.deficit = 0;
  }
  size_ = 0;
  return drained;
}

size_t LaneScheduler::lane_size(EngineLane lane) const {
  return lanes_[static_cast<size_t>(lane)].size;
}

}  // namespace kbtim

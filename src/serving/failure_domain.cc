#include "serving/failure_domain.h"

#include <algorithm>

namespace kbtim {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FailureDomainTable::FailureDomainTable(FailureDomainOptions options)
    : options_(options) {}

double FailureDomainTable::NextBackoffLocked(double base_ms) {
  if (base_ms <= 0.0) return 0.0;
  const double unit =
      static_cast<double>(Mix64(options_.seed ^ ++jitter_counter_) >> 11) *
      0x1.0p-53;
  const double scale =
      1.0 + options_.jitter_fraction * (2.0 * unit - 1.0);
  return std::min(base_ms * scale, options_.max_backoff_ms);
}

bool FailureDomainTable::Admit(TopicId topic) {
  MutexLock lock(&mu_);
  auto it = domains_.find(topic);
  if (it == domains_.end()) return true;  // never failed: closed
  Domain& d = it->second;
  switch (d.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (std::chrono::steady_clock::now() < d.reopen_at) {
        ++stats_.rejections;
        return false;
      }
      // Backoff elapsed: this request becomes the single half-open probe.
      d.state = BreakerState::kHalfOpen;
      ++stats_.probes;
      return true;
    case BreakerState::kHalfOpen:
      // Trial mode: requests are admitted while the probe's verdict is
      // pending. Admitting (rather than shedding) here means a request
      // that was admitted but never dispatched — degraded away, rejected
      // for another keyword — can never strand the domain in a state no
      // one is allowed to resolve; the first real outcome closes or
      // reopens it.
      return true;
  }
  return true;
}

void FailureDomainTable::RecordSuccess(TopicId topic) {
  MutexLock lock(&mu_);
  ++stats_.successes_recorded;
  auto it = domains_.find(topic);
  if (it == domains_.end()) return;
  Domain& d = it->second;
  if (d.state == BreakerState::kHalfOpen) {
    ++stats_.closes;
  }
  // Success in any state fully heals the domain (an open-state success
  // can only come from a request admitted before the trip; the topic
  // evidently works, so re-admitting is the availability-preserving
  // choice).
  d.state = BreakerState::kClosed;
  d.consecutive_failures = 0;
  d.backoff_ms = 0.0;
}

void FailureDomainTable::RecordFailure(TopicId topic) {
  MutexLock lock(&mu_);
  ++stats_.failures_recorded;
  Domain& d = domains_[topic];
  switch (d.state) {
    case BreakerState::kClosed:
      if (++d.consecutive_failures < options_.failure_threshold) return;
      d.backoff_ms = options_.backoff_ms;
      break;
    case BreakerState::kHalfOpen:
      // Failed probe: back off harder.
      d.backoff_ms = d.backoff_ms > 0.0 ? d.backoff_ms * 2.0
                                        : options_.backoff_ms;
      break;
    case BreakerState::kOpen:
      // Stragglers admitted before the trip (or async prefetch failures)
      // land here; they carry no new information about recovery, so they
      // must not extend the backoff window.
      return;
  }
  d.state = BreakerState::kOpen;
  ++stats_.opens;
  const double wait_ms = NextBackoffLocked(d.backoff_ms);
  d.reopen_at = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(wait_ms));
}

BreakerState FailureDomainTable::state(TopicId topic) const {
  MutexLock lock(&mu_);
  const auto it = domains_.find(topic);
  return it == domains_.end() ? BreakerState::kClosed : it->second.state;
}

FailureDomainStats FailureDomainTable::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace kbtim

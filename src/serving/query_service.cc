#include "serving/query_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "index/index_format.h"

namespace kbtim {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

std::chrono::steady_clock::duration MillisDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

StatusOr<std::unique_ptr<QueryService>> QueryService::Create(
    const std::string& dir, QueryServiceOptions options,
    std::optional<OnlineBackend> online) {
  KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<KeywordCache> cache,
                         KeywordCache::Create(dir, options.cache));
  return Create(std::move(cache), std::move(options), online);
}

StatusOr<std::unique_ptr<QueryService>> QueryService::Create(
    std::shared_ptr<KeywordCache> cache, QueryServiceOptions options,
    std::optional<OnlineBackend> online) {
  if (cache == nullptr) {
    return Status::InvalidArgument("QueryService needs a KeywordCache");
  }
  options.num_workers = std::max<uint32_t>(1, options.num_workers);
  options.max_pending = std::max<size_t>(1, options.max_pending);
  if (online.has_value() &&
      (online->graph == nullptr || online->tfidf == nullptr ||
       online->in_edge_weights == nullptr)) {
    return Status::InvalidArgument(
        "OnlineBackend must name a graph, a tf-idf model and edge weights");
  }
  std::unique_ptr<QueryService> service(
      new QueryService(std::move(cache), options));
  if (service->meta().has_irr) {
    KBTIM_ASSIGN_OR_RETURN(IrrIndex irr, IrrIndex::Open(service->cache_));
    service->irr_.emplace(std::move(irr));
  }
  if (service->meta().has_rr) {
    KBTIM_ASSIGN_OR_RETURN(RrIndex rr, RrIndex::Open(service->cache_));
    service->rr_.emplace(std::move(rr));
  }
  service->StartWorkers(online);
  // Subscribe to storage-fault notifications (prefetch decode failures
  // included) AFTER the service is fully constructed. The listener holds
  // the fault state by shared_ptr, never the service itself, so a
  // callback racing destruction touches live memory. One listener slot
  // per cache: a cache shared by several services reports to the
  // latest-created one.
  std::shared_ptr<FaultDomainState> state = service->fault_state_;
  service->cache_->SetFailureListener(
      [state](TopicId topic, const Status& status) {
        state->OnCacheFailure(topic, status);
      });
  return service;
}

QueryService::QueryService(std::shared_ptr<KeywordCache> cache,
                           QueryServiceOptions options)
    : cache_(std::move(cache)),
      options_(options),
      fault_state_(std::make_shared<FaultDomainState>()),
      scheduler_(options.scheduler),
      paused_(options.start_paused) {
  if (options_.failure.enable_failure_domains) {
    fault_state_->breaker =
        std::make_unique<FailureDomainTable>(options_.failure.breaker);
  }
  wris_worker_cap_ =
      options_.scheduler.max_wris_workers > 0
          ? std::min<uint32_t>(options_.scheduler.max_wris_workers,
                               options_.num_workers)
          : std::max<uint32_t>(1, options_.num_workers - 1);
  latency_.ring.resize(kLatencyWindow, 0.0f);
  for (LatencyWindowState& lane : lane_latency_) {
    lane.ring.resize(kLatencyWindow, 0.0f);
  }
}

void QueryService::StartWorkers(std::optional<OnlineBackend> online) {
  slots_.resize(options_.num_workers);
  if (online.has_value()) {
    // All worker-slot solvers sample over ONE immutable bucketed
    // adjacency (skip-ahead substrate) instead of building a per-solver
    // copy of the reverse adjacency.
    const auto adjacency = BucketedAdjacency::BuildShared(
        *online->graph, *online->in_edge_weights);
    for (WorkerSlot& slot : slots_) {
      slot.wris = std::make_unique<WrisSolver>(
          *online->graph, *online->tfidf, online->model,
          *online->in_edge_weights, options_.wris, adjacency);
    }
  }
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() {
  // Stop routing cache failures to this service first. A prefetch-thread
  // callback already past the unregister still lands safely: it holds the
  // fault state by shared_ptr, not the service.
  cache_->SetFailureListener(nullptr);
  std::deque<PendingRequest> orphaned;
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    orphaned = scheduler_.DrainAll();
  }
  work_ready_.NotifyAll();
  for (PendingRequest& pending : orphaned) {
    ResolvePending(pending,
                   Status::Unavailable("query service shutting down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

void QueryService::ResolvePending(PendingRequest& pending, Status status) {
  if (pending.kind == RequestKind::kFetchRr) {
    pending.fetch_promise.set_value(std::move(status));
  } else {
    pending.promise.set_value(std::move(status));
  }
}

std::future<StatusOr<SeedSetResult>> QueryService::Submit(
    ServiceRequest request) {
  // Promise construction, routing, and any rejection fulfillment happen
  // outside the locks: mu_ covers only the queue mutation and stats_mu_ is
  // never nested under it.
  PendingRequest pending;
  pending.request = std::move(request);
  pending.submitted_at = std::chrono::steady_clock::now();
  pending.deadline_ms = pending.request.queue_deadline_ms > 0
                            ? pending.request.queue_deadline_ms
                            : options_.default_queue_deadline_ms;
  if (pending.request.request_deadline_ms > 0) {
    pending.expires_at = pending.submitted_at +
                         MillisDuration(pending.request.request_deadline_ms);
  }
  std::future<StatusOr<SeedSetResult>> future =
      pending.promise.get_future();
  // Count the submission BEFORE the request becomes visible to workers:
  // once it is pushed a worker may finish it at any moment, and stats()
  // must never observe completed > submitted. A rejection compensates.
  {
    MutexLock stats_lock(&stats_mu_);
    ++counters_.submitted;
  }
  enum class Rejection { kNone, kShutdown, kQueueFull };
  Rejection rejection = Rejection::kNone;
  size_t depth = 0;
  bool wake_all = false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      rejection = Rejection::kShutdown;
    } else if (scheduler_.size() >= options_.max_pending) {
      rejection = Rejection::kQueueFull;
    } else {
      scheduler_.Push(std::move(pending));
      depth = scheduler_.size();
      // A worker holding an RR batch open swallows notify_one; reach an
      // idle worker too.
      wake_all = coalesce_waiters_ > 0;
    }
  }
  if (rejection != Rejection::kNone) {
    {
      MutexLock stats_lock(&stats_mu_);
      --counters_.submitted;
      if (rejection == Rejection::kQueueFull) ++counters_.admission_drops;
    }
    pending.promise.set_value(Status::Unavailable(
        rejection == Rejection::kShutdown
            ? "query service shutting down"
            : "query service queue full (" +
                  std::to_string(options_.max_pending) + " pending)"));
    return future;
  }
  {
    MutexLock stats_lock(&stats_mu_);
    counters_.queue_peak = std::max<uint64_t>(counters_.queue_peak, depth);
  }
  if (wake_all) {
    work_ready_.NotifyAll();
  } else {
    work_ready_.NotifyOne();
  }
  return future;
}

StatusOr<SeedSetResult> QueryService::Execute(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

std::future<StatusOr<RrFetchResult>> QueryService::SubmitFetch(
    RrFetchRequest request) {
  PendingRequest pending;
  pending.kind = RequestKind::kFetchRr;
  pending.fetch = std::move(request);
  // Fast-lane routing and the batching predicates key off the engine.
  pending.request.engine = QueryEngine::kRr;
  pending.request.priority = pending.fetch.priority;
  pending.submitted_at = std::chrono::steady_clock::now();
  pending.deadline_ms = pending.fetch.queue_deadline_ms > 0
                            ? pending.fetch.queue_deadline_ms
                            : options_.default_queue_deadline_ms;
  if (pending.fetch.request_deadline_ms > 0) {
    pending.expires_at = pending.submitted_at +
                         MillisDuration(pending.fetch.request_deadline_ms);
  }
  std::future<StatusOr<RrFetchResult>> future =
      pending.fetch_promise.get_future();
  // Shape validation before the queue: a malformed fetch never costs a
  // worker slot.
  Status invalid;
  if (pending.fetch.topics.size() != pending.fetch.budgets.size() ||
      pending.fetch.topics.empty()) {
    invalid = Status::InvalidArgument(
        "fetch topics and budgets must align and be non-empty");
  } else if (!meta().has_rr) {
    invalid = Status::FailedPrecondition(
        "index directory has no RR structures: " + cache_->dir());
  } else {
    for (TopicId topic : pending.fetch.topics) {
      if (topic >= meta().num_topics) {
        invalid = Status::InvalidArgument(
            "fetch topic " + std::to_string(topic) + " out of range");
        break;
      }
    }
  }
  if (!invalid.ok()) {
    pending.fetch_promise.set_value(std::move(invalid));
    return future;
  }
  {
    MutexLock stats_lock(&stats_mu_);
    ++counters_.submitted;
  }
  enum class Rejection { kNone, kShutdown, kQueueFull };
  Rejection rejection = Rejection::kNone;
  size_t depth = 0;
  bool wake_all = false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      rejection = Rejection::kShutdown;
    } else if (scheduler_.size() >= options_.max_pending) {
      rejection = Rejection::kQueueFull;
    } else {
      scheduler_.Push(std::move(pending));
      depth = scheduler_.size();
      wake_all = coalesce_waiters_ > 0;
    }
  }
  if (rejection != Rejection::kNone) {
    {
      MutexLock stats_lock(&stats_mu_);
      --counters_.submitted;
      if (rejection == Rejection::kQueueFull) ++counters_.admission_drops;
    }
    pending.fetch_promise.set_value(Status::Unavailable(
        rejection == Rejection::kShutdown
            ? "query service shutting down"
            : "query service queue full (" +
                  std::to_string(options_.max_pending) + " pending)"));
    return future;
  }
  {
    MutexLock stats_lock(&stats_mu_);
    counters_.queue_peak = std::max<uint64_t>(counters_.queue_peak, depth);
  }
  if (wake_all) {
    work_ready_.NotifyAll();
  } else {
    work_ready_.NotifyOne();
  }
  return future;
}

StatusOr<RrFetchResult> QueryService::ExecuteFetch(RrFetchRequest request) {
  return SubmitFetch(std::move(request)).get();
}

bool QueryService::WrisAllowedLocked() const {
  if (options_.scheduler.mode == SchedulingMode::kFifo) return true;
  return wris_in_flight_ < wris_worker_cap_;
}

void QueryService::CollectRrBatchLocked(const PendingRequest& head,
                                        std::vector<PendingRequest>& mates) {
  const SchedulerOptions& sched = scheduler_.options();
  if (sched.mode != SchedulingMode::kLanes || sched.rr_max_batch <= 1) {
    return;
  }
  const size_t max_mates = sched.rr_max_batch - 1;
  auto take = [&] {
    std::vector<PendingRequest> more = scheduler_.PopRrBatchMates(
        head.request.query, max_mates - mates.size());
    in_flight_ += more.size();
    const auto now = std::chrono::steady_clock::now();
    for (PendingRequest& mate : more) {
      mate.picked_at = now;
      mates.push_back(std::move(mate));
    }
  };
  take();
  if (sched.rr_batch_window_ms <= 0 || mates.size() >= max_mates) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              sched.rr_batch_window_ms));
  ++coalesce_waiters_;
  while (!shutdown_ && mates.size() < max_mates) {
    if (work_ready_.WaitUntil(&mu_, deadline) == std::cv_status::timeout) {
      break;
    }
    if (shutdown_) break;
    // A Pause() landed mid-window: stop collecting (starting queued work
    // during a pause would violate the Pause contract) and dispatch what
    // the batch already holds.
    if (!RunnableLocked()) break;
    take();
    // A notification this wait swallowed might have been meant for an
    // idle worker; hand it on when non-batchable work is runnable.
    if (scheduler_.HasEligible(WrisAllowedLocked())) {
      work_ready_.NotifyOne();
    }
  }
  --coalesce_waiters_;
}

void QueryService::WorkerLoop(uint32_t slot_id) {
  WorkerSlot& slot = slots_[slot_id];
  for (;;) {
    PendingRequest pending;
    std::vector<PendingRequest> mates;
    bool is_wris = false;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (shutdown_) return;
        // Parked backoff retries come back into their lanes here; when
        // only parked work exists the wait below is timed so a worker
        // wakes exactly when the earliest not-before passes.
        scheduler_.PromoteReady(std::chrono::steady_clock::now());
        if (RunnableLocked() &&
            scheduler_.HasEligible(WrisAllowedLocked())) {
          break;
        }
        const std::optional<std::chrono::steady_clock::time_point> parked =
            scheduler_.NextNotBefore();
        if (parked.has_value() && RunnableLocked()) {
          work_ready_.WaitUntil(&mu_, *parked);
        } else {
          work_ready_.Wait(&mu_);
        }
      }
      std::optional<PendingRequest> popped =
          scheduler_.Pop(WrisAllowedLocked());
      if (!popped.has_value()) continue;
      pending = std::move(*popped);
      pending.picked_at = std::chrono::steady_clock::now();
      is_wris = pending.kind == RequestKind::kSolve &&
                pending.request.engine == QueryEngine::kWris;
      ++in_flight_;
      if (is_wris) ++wris_in_flight_;
      if (pending.kind == RequestKind::kSolve &&
          pending.request.engine == QueryEngine::kRr) {
        CollectRrBatchLocked(pending, mates);
      }
    }

    const size_t taken = mates.size();
    const EngineLane lane = LaneOf(pending.request.engine);
    const auto exec_start = std::chrono::steady_clock::now();
    bool executed;
    if (pending.kind == RequestKind::kFetchRr) {
      executed = ProcessFetch(std::move(pending));
    } else if (taken > 0) {
      executed = ProcessRrBatch(std::move(pending), std::move(mates));
    } else {
      executed = ProcessSingle(slot, std::move(pending));
    }
    const double exec_ms =
        MillisSince(exec_start, std::chrono::steady_clock::now());

    bool wris_slot_freed = false;
    {
      MutexLock lock(&mu_);
      // Engine time only (deadline drops excluded): this is the per-class
      // cost signal the auto-tuned deficit charge derives from.
      if (executed) scheduler_.RecordServiceTime(lane, exec_ms);
      in_flight_ -= 1 + taken;
      if (is_wris) {
        --wris_in_flight_;
        wris_slot_freed = scheduler_.lane_size(EngineLane::kSlow) > 0;
      }
      if (scheduler_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
    // Freeing a WRIS reservation may unblock workers that found no
    // eligible work while the cap was reached.
    if (wris_slot_freed) work_ready_.NotifyAll();
  }
}

bool QueryService::DropIfExpired(PendingRequest& pending) {
  const double queue_ms =
      MillisSince(pending.submitted_at, pending.picked_at);
  // End-to-end expiry first: the caller (e.g. a remote router) has
  // already given up on this request, so computing its answer would only
  // burn the worker slot.
  const bool wire_expired =
      pending.expires_at.has_value() && pending.picked_at > *pending.expires_at;
  const bool queue_expired =
      pending.deadline_ms > 0 && queue_ms > pending.deadline_ms;
  if (!wire_expired && !queue_expired) return false;
  {
    // Dropped requests still spent their queue time as far as the client
    // is concerned: they land in the latency windows so overload
    // percentiles include what was shed.
    MutexLock stats_lock(&stats_mu_);
    if (wire_expired) {
      ++counters_.deadline_expired_at_dequeue;
    } else {
      ++counters_.deadline_drops;
    }
    RecordLatencyLocked(queue_ms, queue_ms, LaneOf(pending.request.engine));
  }
  ResolvePending(
      pending,
      Status::DeadlineExceeded(
          wire_expired
              ? "request deadline expired before dequeue (" +
                    std::to_string(queue_ms) + " ms queued)"
              : "queued " + std::to_string(queue_ms) + " ms past the " +
                    std::to_string(pending.deadline_ms) + " ms deadline"));
  return true;
}

bool QueryService::ProcessSingle(WorkerSlot& slot, PendingRequest pending) {
  if (DropIfExpired(pending)) return false;
  const double queue_ms =
      MillisSince(pending.submitted_at, pending.picked_at);
  StatusOr<SeedSetResult> result{
      Status::Internal("dispatch left the result unset")};
  if (!DispatchResilient(slot, pending, &result)) {
    // Re-queued for a backoff retry: the promise travels with it, and the
    // outcome is recorded by whichever pickup finishes it. The engine DID
    // run (and fail), so the service-time sample still counts.
    return true;
  }
  const double latency_ms =
      MillisSince(pending.submitted_at, std::chrono::steady_clock::now());
  RecordOutcome(pending.request, result, latency_ms, queue_ms);
  pending.promise.set_value(std::move(result));
  return true;
}

bool QueryService::ProcessFetch(PendingRequest pending) {
  if (DropIfExpired(pending)) return false;
  const double queue_ms =
      MillisSince(pending.submitted_at, pending.picked_at);
  const RrFetchRequest& fetch = pending.fetch;
  RrFetchResult out;
  out.blocks.assign(fetch.topics.size(), nullptr);
  FailureDomainTable* breaker = fault_state_->breaker.get();
  for (size_t i = 0; i < fetch.topics.size(); ++i) {
    const TopicId topic = fetch.topics[i];
    if (fetch.budgets[i] == 0) continue;  // no index mass: nothing to ship
    if (breaker != nullptr && !breaker->Admit(topic)) {
      // Quarantined keyword: shed in O(1), the router hedges or degrades.
      out.dropped.push_back(topic);
      continue;
    }
    StatusOr<std::shared_ptr<const RrKeywordBlock>> block =
        cache_->GetRrKeyword(topic, fetch.budgets[i]);
    if (block.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess(topic);
      out.blocks[i] = std::move(*block);
    } else {
      // The cache already classified the failure (handles dropped /
      // topic invalidated) and its listener recorded it against the
      // breaker; the fetch answer just marks the keyword dropped.
      out.dropped.push_back(topic);
    }
  }
  {
    MutexLock stats_lock(&stats_mu_);
    ++counters_.rr_fetches;
    ++counters_.completed;
    RecordLatencyLocked(
        MillisSince(pending.submitted_at, std::chrono::steady_clock::now()),
        queue_ms, EngineLane::kFast);
  }
  pending.fetch_promise.set_value(std::move(out));
  return true;
}

bool QueryService::ProcessRrBatch(PendingRequest head,
                                  std::vector<PendingRequest> mates) {
  std::vector<PendingRequest> all;
  all.reserve(1 + mates.size());
  all.push_back(std::move(head));
  for (PendingRequest& mate : mates) all.push_back(std::move(mate));

  // Per-request screening: expired or over-budget requests resolve
  // individually and drop out of the batch. Deadlines and queue time are
  // measured submitted_at -> picked_at, so the batch window the service
  // itself held the requests open for never expires them.
  std::vector<PendingRequest> live;
  std::vector<double> queue_ms;
  std::vector<Query> queries;
  std::vector<std::vector<TopicId>> dropped_for;  // aligned with live
  live.reserve(all.size());
  for (PendingRequest& pending : all) {
    if (DropIfExpired(pending)) continue;
    Status budget = CheckThetaBudget(pending.request);
    if (budget.ok()) budget = CheckRrAvailable();
    if (!budget.ok()) {
      StatusOr<SeedSetResult> failure{std::move(budget)};
      const double ms = MillisSince(pending.submitted_at,
                                    std::chrono::steady_clock::now());
      const double waited =
          MillisSince(pending.submitted_at, pending.picked_at);
      RecordOutcome(pending.request, failure, ms, waited);
      pending.promise.set_value(std::move(failure));
      continue;
    }
    // Breaker admission, per request. A batch member whose keywords are
    // partly quarantined degrades individually (its rewritten query still
    // overlaps the batch); fully-quarantined members shed in O(1). Unlike
    // the single path there is no intra-batch retry — a failed BatchQuery
    // fails its members, and the breakers make the NEXT batch avoid the
    // sick keyword.
    std::vector<TopicId> admitted;
    std::vector<TopicId> quarantined;
    ScreenTopics(pending.request.query.topics, &admitted, &quarantined);
    if (admitted.empty() ||
        (!quarantined.empty() && !options_.failure.partial_results)) {
      {
        MutexLock stats_lock(&stats_mu_);
        ++counters_.quarantine_rejections;
      }
      StatusOr<SeedSetResult> failure{Status::Unavailable(
          admitted.empty()
              ? "all query keywords are quarantined (circuit open)"
              : "a query keyword is quarantined (circuit open)")};
      const double ms = MillisSince(pending.submitted_at,
                                    std::chrono::steady_clock::now());
      const double waited =
          MillisSince(pending.submitted_at, pending.picked_at);
      RecordOutcome(pending.request, failure, ms, waited);
      pending.promise.set_value(std::move(failure));
      continue;
    }
    pending.request.query.topics = std::move(admitted);
    dropped_for.push_back(std::move(quarantined));
    queue_ms.push_back(MillisSince(pending.submitted_at, pending.picked_at));
    queries.push_back(pending.request.query);
    live.push_back(std::move(pending));
  }
  if (live.empty()) return false;

  // One shared load + greedy pass; per-query results are bit-identical to
  // serial Query() calls and carry amortized batch stats.
  StatusOr<std::vector<SeedSetResult>> results = rr_->BatchQuery(queries);
  if (!results.ok()) {
    // Culprit keywords were already recorded against their breakers by
    // the cache failure listener as the load failed; untouched keywords
    // carry no new evidence, so no success verdicts here.
    for (size_t i = 0; i < live.size(); ++i) {
      StatusOr<SeedSetResult> failure{results.status()};
      const double ms = MillisSince(live[i].submitted_at,
                                    std::chrono::steady_clock::now());
      RecordOutcome(live[i].request, failure, ms, queue_ms[i]);
      live[i].promise.set_value(std::move(failure));
    }
    return true;
  }
  if (fault_state_->breaker != nullptr) {
    for (const Query& query : queries) {
      for (TopicId topic : query.topics) {
        fault_state_->breaker->RecordSuccess(topic);
      }
    }
  }
  for (size_t i = 0; i < live.size(); ++i) {
    if (!dropped_for[i].empty()) {
      (*results)[i].degraded = true;
      (*results)[i].dropped_keywords = std::move(dropped_for[i]);
    }
    StatusOr<SeedSetResult> result{std::move((*results)[i])};
    const double ms = MillisSince(live[i].submitted_at,
                                  std::chrono::steady_clock::now());
    RecordOutcome(live[i].request, result, ms, queue_ms[i]);
    live[i].promise.set_value(std::move(result));
  }
  if (live.size() >= 2) {
    MutexLock stats_lock(&stats_mu_);
    ++counters_.rr_batches;
    counters_.rr_batched_queries += live.size();
  }
  return true;
}

Status QueryService::CheckRrAvailable() const {
  if (rr_.has_value()) return Status::OK();
  return Status::FailedPrecondition(
      "index directory has no RR structures: " + cache_->dir());
}

Status QueryService::CheckThetaBudget(const ServiceRequest& request) const {
  // Per-request θ budget: index queries are costed (Eqn. 11) before any
  // keyword file is touched; WRIS clamps inside Solve. The engine Query
  // recomputes the same budget internally — a few-keyword arithmetic
  // loop, accepted over widening the index Query signatures.
  if (request.max_theta == 0 || request.engine == QueryEngine::kWris) {
    return Status::OK();
  }
  StatusOr<QueryBudget> budget = ComputeQueryBudget(meta(), request.query);
  if (!budget.ok()) return budget.status();
  if (budget->theta_q > request.max_theta) {
    return Status::FailedPrecondition(
        "query theta " + std::to_string(budget->theta_q) +
        " exceeds the per-request budget " +
        std::to_string(request.max_theta));
  }
  return Status::OK();
}

StatusOr<SeedSetResult> QueryService::Dispatch(
    WorkerSlot& slot, const ServiceRequest& request) {
  KBTIM_RETURN_IF_ERROR(CheckThetaBudget(request));
  switch (request.engine) {
    case QueryEngine::kIrr:
      if (!irr_.has_value()) {
        return Status::FailedPrecondition(
            "index directory has no IRR structures: " + cache_->dir());
      }
      return irr_->Query(request.query, request.irr_mode);
    case QueryEngine::kRr:
      KBTIM_RETURN_IF_ERROR(CheckRrAvailable());
      return rr_->Query(request.query);
    case QueryEngine::kWris:
      if (slot.wris == nullptr) {
        return Status::FailedPrecondition(
            "no OnlineBackend attached for WRIS queries");
      }
      return slot.wris->Solve(request.query, request.max_theta);
  }
  return Status::Internal("unknown query engine");
}

bool QueryService::DispatchResilient(WorkerSlot& slot,
                                     PendingRequest& pending,
                                     StatusOr<SeedSetResult>* out) {
  const FailureHandlingOptions& fh = options_.failure;
  const ServiceRequest& request = pending.request;
  // WRIS samples in memory — there is no storage underneath to fault. And
  // a service with every failure feature off keeps the bare dispatch path.
  if (request.engine == QueryEngine::kWris ||
      (fault_state_->breaker == nullptr && fh.io_retries == 0 &&
       !fh.partial_results)) {
    *out = Dispatch(slot, request);
    return true;
  }
  // Resume any retry state a previous pickup parked with the request: the
  // already-shrunken keyword set lives in pending.request, the keywords it
  // shed in dropped_so_far, and the consumed retry budget in retries_used.
  ServiceRequest attempt = request;
  std::vector<TopicId> dropped = std::move(pending.dropped_so_far);
  uint32_t retries_left = fh.io_retries > pending.retries_used
                              ? fh.io_retries - pending.retries_used
                              : 0;
  double backoff_ms = pending.retries_used == 0 ? fh.retry_backoff_ms
                                                : pending.next_backoff_ms;
  for (;;) {
    std::vector<TopicId> admitted;
    std::vector<TopicId> quarantined;
    ScreenTopics(attempt.query.topics, &admitted, &quarantined);
    if (admitted.empty() ||
        (!quarantined.empty() && !fh.partial_results)) {
      // Shed in O(1): quarantine verdicts cost one hash lookup per
      // keyword, never disk (the chaos suite asserts a zero IoCounter
      // delta on this path).
      {
        MutexLock stats_lock(&stats_mu_);
        ++counters_.quarantine_rejections;
      }
      *out = Status::Unavailable(
          admitted.empty()
              ? "all query keywords are quarantined (circuit open)"
              : "a query keyword is quarantined (circuit open)");
      return true;
    }
    dropped.insert(dropped.end(), quarantined.begin(), quarantined.end());
    attempt.query.topics = std::move(admitted);

    const std::vector<uint64_t> before =
        SnapshotTopicFaults(attempt.query.topics);
    StatusOr<SeedSetResult> result = Dispatch(slot, attempt);
    if (result.ok()) {
      ResolveAttempt(attempt.query.topics, before, /*ok=*/true,
                     /*blame_unattributed=*/false);
      if (retries_left < fh.io_retries || pending.retries_used > 0) {
        MutexLock stats_lock(&stats_mu_);
        ++counters_.retry_successes;
      }
      if (!dropped.empty()) {
        result->degraded = true;
        result->dropped_keywords = std::move(dropped);
      }
      *out = std::move(result);
      return true;
    }
    const StatusCode code = result.status().code();
    if (code != StatusCode::kIOError && code != StatusCode::kCorruption) {
      // Overload, validation and budget failures are not fault-domain
      // signals: no breaker verdicts, no retries, fail as before PR 6.
      *out = std::move(result);
      return true;
    }
    if (code == StatusCode::kIOError && retries_left > 0) {
      // Transient read failure: the cache dropped the topic's file
      // handles, so the retry reopens them. kCorruption never retries —
      // the cache already invalidated the topic, and re-decoding the same
      // bytes cannot succeed within this request's latency budget.
      --retries_left;
      {
        MutexLock stats_lock(&stats_mu_);
        ++counters_.transient_retries;
      }
      if (backoff_ms > 0.0) {
        // Park the request with a not-before time instead of sleeping in
        // this worker slot: a burst of retrying requests used to idle the
        // whole pool for their combined backoff. Retry state rides on the
        // request; the next pickup resumes it with a fresh fault snapshot.
        pending.retries_used = fh.io_retries - retries_left;
        pending.next_backoff_ms = backoff_ms * 2.0;
        pending.dropped_so_far = std::move(dropped);
        pending.request.query.topics = std::move(attempt.query.topics);
        RequeueWithBackoff(std::move(pending), backoff_ms);
        return false;
      }
      continue;  // same keyword set, fresh fault snapshot next round
    }
    // Retries exhausted (or unretryable): identify which keywords broke
    // and, when allowed, re-solve around them.
    const std::vector<TopicId> culprits =
        ResolveAttempt(attempt.query.topics, before, /*ok=*/false,
                       /*blame_unattributed=*/true);
    if (!fh.partial_results ||
        culprits.size() >= attempt.query.topics.size()) {
      *out = std::move(result);
      return true;
    }
    std::vector<TopicId> healthy;
    healthy.reserve(attempt.query.topics.size() - culprits.size());
    for (TopicId topic : attempt.query.topics) {
      if (std::find(culprits.begin(), culprits.end(), topic) ==
          culprits.end()) {
        healthy.push_back(topic);
      }
    }
    if (healthy.empty()) {
      *out = std::move(result);
      return true;
    }
    dropped.insert(dropped.end(), culprits.begin(), culprits.end());
    attempt.query.topics = std::move(healthy);
    // Loop: the keyword set strictly shrinks every degradation pass, so
    // the walk ends after at most |topics| rounds.
  }
}

void QueryService::RequeueWithBackoff(PendingRequest pending,
                                      double backoff_ms) {
  pending.not_before =
      std::chrono::steady_clock::now() + MillisDuration(backoff_ms);
  bool parked = false;
  {
    MutexLock lock(&mu_);
    if (!shutdown_) {
      scheduler_.Park(std::move(pending));
      parked = true;
    }
  }
  if (!parked) {
    // Shutdown raced the retry; the request was still in flight from the
    // destructor's point of view, so resolve it here.
    ResolvePending(pending,
                   Status::Unavailable("query service shutting down"));
    return;
  }
  {
    MutexLock stats_lock(&stats_mu_);
    ++counters_.retry_requeues;
  }
  // Every worker recomputes its timed wait against the new earliest
  // not-before (NotifyOne could wake one that immediately sleeps forever).
  work_ready_.NotifyAll();
}

void QueryService::ScreenTopics(const std::vector<TopicId>& topics,
                                std::vector<TopicId>* admitted,
                                std::vector<TopicId>* quarantined) {
  FailureDomainTable* breaker = fault_state_->breaker.get();
  if (breaker == nullptr) {
    *admitted = topics;
    return;
  }
  for (TopicId topic : topics) {
    (breaker->Admit(topic) ? admitted : quarantined)->push_back(topic);
  }
}

std::vector<uint64_t> QueryService::SnapshotTopicFaults(
    const std::vector<TopicId>& topics) const {
  std::vector<uint64_t> counts;
  counts.reserve(topics.size());
  MutexLock lock(&fault_state_->mu);
  for (TopicId topic : topics) {
    const auto it = fault_state_->topic_faults.find(topic);
    counts.push_back(it == fault_state_->topic_faults.end() ? 0
                                                            : it->second);
  }
  return counts;
}

std::vector<TopicId> QueryService::ResolveAttempt(
    const std::vector<TopicId>& topics, const std::vector<uint64_t>& before,
    bool ok, bool blame_unattributed) {
  FailureDomainTable* breaker = fault_state_->breaker.get();
  if (ok) {
    if (breaker != nullptr) {
      for (TopicId topic : topics) breaker->RecordSuccess(topic);
    }
    return {};
  }
  const std::vector<uint64_t> after = SnapshotTopicFaults(topics);
  std::vector<TopicId> culprits;
  for (size_t i = 0; i < topics.size(); ++i) {
    // Moved fault count == the cache listener attributed a failure to
    // this keyword during the attempt; its breaker already heard it.
    if (after[i] > before[i]) culprits.push_back(topics[i]);
  }
  if (culprits.empty() && blame_unattributed) {
    // The failure never passed through the cache (e.g. detected inside
    // an already-cached block): no keyword can be singled out, so every
    // attempted keyword takes the blame — the breakers still learn, but
    // degradation cannot narrow the query.
    culprits = topics;
    if (breaker != nullptr) {
      for (TopicId topic : topics) breaker->RecordFailure(topic);
    }
  }
  return culprits;
}

void QueryService::RecordLatencyLocked(double latency_ms, double queue_ms,
                                       EngineLane lane) {
  queue_ms_sum_ += queue_ms;
  latency_.ring[latency_.next] = static_cast<float>(latency_ms);
  latency_.next = (latency_.next + 1) % kLatencyWindow;
  ++latency_.total;
  LatencyWindowState& lw = lane_latency_[static_cast<size_t>(lane)];
  lw.ring[lw.next] = static_cast<float>(latency_ms);
  lw.next = (lw.next + 1) % kLatencyWindow;
  ++lw.total;
}

void QueryService::RecordOutcome(const ServiceRequest& request,
                                 const StatusOr<SeedSetResult>& result,
                                 double latency_ms, double queue_ms) {
  MutexLock lock(&stats_mu_);
  RecordLatencyLocked(latency_ms, queue_ms, LaneOf(request.engine));
  if (!result.ok()) {
    ++counters_.failed;
    switch (result.status().code()) {
      case StatusCode::kIOError: ++counters_.io_error_failures; break;
      case StatusCode::kCorruption: ++counters_.corruption_failures; break;
      default: break;
    }
    return;
  }
  ++counters_.completed;
  if (result->degraded) ++counters_.degraded_results;
  switch (request.engine) {
    case QueryEngine::kIrr: ++counters_.irr_queries; break;
    case QueryEngine::kRr: ++counters_.rr_queries; break;
    case QueryEngine::kWris: ++counters_.wris_queries; break;
  }
  counters_.rr_sets_loaded += result->stats.rr_sets_loaded;
  counters_.io_reads += result->stats.io_reads;
}

void QueryService::Drain() {
  MutexLock lock(&mu_);
  ++draining_;
  // Wake workers that went to sleep on a pause: while this drain waits
  // they run the queue down even on a Pause()d service
  // (drain-through-pause), then honor the pause again.
  work_ready_.NotifyAll();
  while (!(scheduler_.empty() && in_flight_ == 0)) {
    idle_.Wait(&mu_);
  }
  --draining_;
}

void QueryService::Pause() {
  MutexLock lock(&mu_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    MutexLock lock(&mu_);
    paused_ = false;
  }
  work_ready_.NotifyAll();
}

void QueryService::ResetLatencyWindow() {
  MutexLock lock(&stats_mu_);
  latency_.next = 0;
  latency_.total = 0;
  for (LatencyWindowState& lane : lane_latency_) {
    lane.next = 0;
    lane.total = 0;
  }
  queue_ms_sum_ = 0.0;
}

size_t QueryService::pending() const {
  MutexLock lock(&mu_);
  return scheduler_.size();
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<float> window;
  std::vector<float> lane_window[kNumLanes];
  double queue_sum = 0.0;
  uint64_t finished = 0;
  {
    MutexLock lock(&stats_mu_);
    out = counters_;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(latency_.total, kLatencyWindow));
    window.assign(latency_.ring.begin(), latency_.ring.begin() + n);
    for (size_t li = 0; li < kNumLanes; ++li) {
      const LatencyWindowState& lw = lane_latency_[li];
      const size_t ln = static_cast<size_t>(
          std::min<uint64_t>(lw.total, kLatencyWindow));
      lane_window[li].assign(lw.ring.begin(), lw.ring.begin() + ln);
    }
    queue_sum = queue_ms_sum_;
    finished = latency_.total;
  }
  auto percentile = [](std::vector<float>& w, double q) {
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(w.size() - 1) + 0.5);
    return static_cast<double>(w[idx]);
  };
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    out.p50_ms = percentile(window, 0.50);
    out.p90_ms = percentile(window, 0.90);
    out.p99_ms = percentile(window, 0.99);
    out.max_ms = static_cast<double>(window.back());
  }
  auto& fast = lane_window[static_cast<size_t>(EngineLane::kFast)];
  if (!fast.empty()) {
    std::sort(fast.begin(), fast.end());
    out.fast_p50_ms = percentile(fast, 0.50);
    out.fast_p99_ms = percentile(fast, 0.99);
  }
  auto& slow = lane_window[static_cast<size_t>(EngineLane::kSlow)];
  if (!slow.empty()) {
    std::sort(slow.begin(), slow.end());
    out.slow_p50_ms = percentile(slow, 0.50);
    out.slow_p99_ms = percentile(slow, 0.99);
  }
  if (finished > 0) {
    out.mean_queue_ms = queue_sum / static_cast<double>(finished);
  }
  {
    // Scheduler counters live under the queue mutex; never nested with
    // stats_mu_.
    MutexLock lock(&mu_);
    out.wris_deferrals = scheduler_.wris_deferrals();
    out.wris_cost_effective = scheduler_.EffectiveWrisCost();
    out.fast_service_ewma_ms =
        scheduler_.ServiceTimeEwmaMs(EngineLane::kFast);
    out.slow_service_ewma_ms =
        scheduler_.ServiceTimeEwmaMs(EngineLane::kSlow);
  }
  const KeywordCacheStats cache = cache_->stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_bytes = cache.bytes_cached;
  out.cache_admission_bypasses = cache.admission_bypasses;
  out.prefetches_issued = cache.prefetches_issued;
  const uint64_t lookups = cache.hits + cache.misses;
  out.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(cache.hits) / static_cast<double>(lookups)
          : 0.0;
  out.cache_io_errors = cache.io_errors;
  out.cache_decode_failures = cache.decode_failures;
  out.cache_prefetch_failures = cache.prefetch_failures;
  out.cache_topic_invalidations = cache.topic_invalidations;
  out.cache_crc_checks = cache.crc_checks;
  out.cache_crc_failures = cache.crc_failures;
  if (fault_state_->breaker != nullptr) {
    const FailureDomainStats breaker = fault_state_->breaker->stats();
    out.breaker_opens = breaker.opens;
    out.breaker_probes = breaker.probes;
    out.breaker_closes = breaker.closes;
    out.breaker_rejections = breaker.rejections;
  }
  std::function<IndexScrubberStats()> scrub_provider;
  {
    MutexLock lock(&scrub_mu_);
    scrub_provider = scrub_stats_;
  }
  if (scrub_provider) {
    const IndexScrubberStats scrub = scrub_provider();
    out.scrub_blocks = scrub.blocks_scrubbed;
    out.scrub_crc_failures = scrub.crc_failures;
    out.scrub_quarantines = scrub.quarantines;
    out.scrub_rebuilds = scrub.rebuilds;
  }
  return out;
}

void QueryService::SetScrubStatsProvider(
    std::function<IndexScrubberStats()> provider) {
  MutexLock lock(&scrub_mu_);
  scrub_stats_ = std::move(provider);
}

bool QueryService::TopicHealthy(TopicId topic) const {
  if (fault_state_->breaker == nullptr) return true;
  return fault_state_->breaker->state(topic) != BreakerState::kOpen;
}

}  // namespace kbtim

#include "serving/query_service.h"

#include <algorithm>
#include <utility>

#include "index/index_format.h"

namespace kbtim {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

std::future<StatusOr<SeedSetResult>> ImmediateError(Status status) {
  std::promise<StatusOr<SeedSetResult>> promise;
  promise.set_value(std::move(status));
  return promise.get_future();
}

}  // namespace

StatusOr<std::unique_ptr<QueryService>> QueryService::Create(
    const std::string& dir, QueryServiceOptions options,
    std::optional<OnlineBackend> online) {
  KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<KeywordCache> cache,
                         KeywordCache::Create(dir, options.cache));
  return Create(std::move(cache), std::move(options), online);
}

StatusOr<std::unique_ptr<QueryService>> QueryService::Create(
    std::shared_ptr<KeywordCache> cache, QueryServiceOptions options,
    std::optional<OnlineBackend> online) {
  if (cache == nullptr) {
    return Status::InvalidArgument("QueryService needs a KeywordCache");
  }
  options.num_workers = std::max<uint32_t>(1, options.num_workers);
  options.max_pending = std::max<size_t>(1, options.max_pending);
  if (online.has_value() &&
      (online->graph == nullptr || online->tfidf == nullptr ||
       online->in_edge_weights == nullptr)) {
    return Status::InvalidArgument(
        "OnlineBackend must name a graph, a tf-idf model and edge weights");
  }
  std::unique_ptr<QueryService> service(
      new QueryService(std::move(cache), options));
  if (service->meta().has_irr) {
    KBTIM_ASSIGN_OR_RETURN(IrrIndex irr, IrrIndex::Open(service->cache_));
    service->irr_.emplace(std::move(irr));
  }
  if (service->meta().has_rr) {
    KBTIM_ASSIGN_OR_RETURN(RrIndex rr, RrIndex::Open(service->cache_));
    service->rr_.emplace(std::move(rr));
  }
  service->StartWorkers(online);
  return service;
}

QueryService::QueryService(std::shared_ptr<KeywordCache> cache,
                           QueryServiceOptions options)
    : cache_(std::move(cache)),
      options_(options),
      paused_(options.start_paused) {
  latency_ring_.resize(kLatencyWindow, 0.0f);
}

void QueryService::StartWorkers(std::optional<OnlineBackend> online) {
  slots_.resize(options_.num_workers);
  if (online.has_value()) {
    for (WorkerSlot& slot : slots_) {
      slot.wris = std::make_unique<WrisSolver>(
          *online->graph, *online->tfidf, online->model,
          *online->in_edge_weights, options_.wris);
    }
  }
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() {
  std::deque<PendingRequest> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    orphaned.swap(queue_);
  }
  work_ready_.notify_all();
  for (PendingRequest& pending : orphaned) {
    pending.promise.set_value(
        Status::Unavailable("query service shutting down"));
  }
  for (std::thread& worker : workers_) worker.join();
}

std::future<StatusOr<SeedSetResult>> QueryService::Submit(
    ServiceRequest request) {
  PendingRequest pending;
  pending.request = std::move(request);
  pending.submitted_at = std::chrono::steady_clock::now();
  pending.deadline_ms = pending.request.queue_deadline_ms > 0
                            ? pending.request.queue_deadline_ms
                            : options_.default_queue_deadline_ms;
  std::future<StatusOr<SeedSetResult>> future =
      pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return ImmediateError(
          Status::Unavailable("query service shutting down"));
    }
    if (queue_.size() >= options_.max_pending) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++counters_.admission_drops;
      return ImmediateError(Status::Unavailable(
          "query service queue full (" +
          std::to_string(options_.max_pending) + " pending)"));
    }
    queue_.push_back(std::move(pending));
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++counters_.submitted;
    counters_.queue_peak =
        std::max<uint64_t>(counters_.queue_peak, queue_.size());
  }
  work_ready_.notify_one();
  return future;
}

StatusOr<SeedSetResult> QueryService::Execute(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

void QueryService::WorkerLoop(uint32_t slot_id) {
  WorkerSlot& slot = slots_[slot_id];
  for (;;) {
    PendingRequest pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (shutdown_) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    const auto started_at = std::chrono::steady_clock::now();
    const double queue_ms = MillisSince(pending.submitted_at, started_at);
    if (pending.deadline_ms > 0 && queue_ms > pending.deadline_ms) {
      {
        // Dropped requests still spent their queue time as far as the
        // client is concerned: they land in the latency window so
        // overload percentiles include what was shed.
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++counters_.deadline_drops;
        RecordLatencyLocked(queue_ms, queue_ms);
      }
      pending.promise.set_value(Status::DeadlineExceeded(
          "queued " + std::to_string(queue_ms) + " ms past the " +
          std::to_string(pending.deadline_ms) + " ms deadline"));
    } else {
      StatusOr<SeedSetResult> result = Dispatch(slot, pending.request);
      const double latency_ms = MillisSince(
          pending.submitted_at, std::chrono::steady_clock::now());
      RecordOutcome(pending.request, result, latency_ms, queue_ms);
      pending.promise.set_value(std::move(result));
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

StatusOr<SeedSetResult> QueryService::Dispatch(
    WorkerSlot& slot, const ServiceRequest& request) {
  // Per-request θ budget: index queries are costed (Eqn. 11) before any
  // keyword file is touched; WRIS clamps inside Solve. The engine Query
  // recomputes the same budget internally — a few-keyword arithmetic
  // loop, accepted over widening the index Query signatures.
  if (request.max_theta > 0 && request.engine != QueryEngine::kWris) {
    KBTIM_ASSIGN_OR_RETURN(QueryBudget budget,
                           ComputeQueryBudget(meta(), request.query));
    if (budget.theta_q > request.max_theta) {
      return Status::FailedPrecondition(
          "query theta " + std::to_string(budget.theta_q) +
          " exceeds the per-request budget " +
          std::to_string(request.max_theta));
    }
  }
  switch (request.engine) {
    case QueryEngine::kIrr:
      if (!irr_.has_value()) {
        return Status::FailedPrecondition(
            "index directory has no IRR structures: " + cache_->dir());
      }
      return irr_->Query(request.query, request.irr_mode);
    case QueryEngine::kRr:
      if (!rr_.has_value()) {
        return Status::FailedPrecondition(
            "index directory has no RR structures: " + cache_->dir());
      }
      return rr_->Query(request.query);
    case QueryEngine::kWris:
      if (slot.wris == nullptr) {
        return Status::FailedPrecondition(
            "no OnlineBackend attached for WRIS queries");
      }
      return slot.wris->Solve(request.query, request.max_theta);
  }
  return Status::Internal("unknown query engine");
}

void QueryService::RecordLatencyLocked(double latency_ms,
                                       double queue_ms) {
  queue_ms_sum_ += queue_ms;
  latency_ring_[latency_next_] = static_cast<float>(latency_ms);
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  ++latency_total_;
}

void QueryService::RecordOutcome(const ServiceRequest& request,
                                 const StatusOr<SeedSetResult>& result,
                                 double latency_ms, double queue_ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  RecordLatencyLocked(latency_ms, queue_ms);
  if (!result.ok()) {
    ++counters_.failed;
    return;
  }
  ++counters_.completed;
  switch (request.engine) {
    case QueryEngine::kIrr: ++counters_.irr_queries; break;
    case QueryEngine::kRr: ++counters_.rr_queries; break;
    case QueryEngine::kWris: ++counters_.wris_queries; break;
  }
  counters_.rr_sets_loaded += result->stats.rr_sets_loaded;
  counters_.io_reads += result->stats.io_reads;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock,
             [this] { return queue_.empty() && in_flight_ == 0; });
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_ready_.notify_all();
}

void QueryService::ResetLatencyWindow() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latency_next_ = 0;
  latency_total_ = 0;
  queue_ms_sum_ = 0.0;
}

size_t QueryService::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  std::vector<float> window;
  double queue_sum = 0.0;
  uint64_t finished = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = counters_;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(latency_total_, kLatencyWindow));
    window.assign(latency_ring_.begin(), latency_ring_.begin() + n);
    queue_sum = queue_ms_sum_;
    finished = latency_total_;
  }
  if (!window.empty()) {
    std::sort(window.begin(), window.end());
    auto percentile = [&](double q) {
      const size_t idx = static_cast<size_t>(
          q * static_cast<double>(window.size() - 1) + 0.5);
      return static_cast<double>(window[idx]);
    };
    out.p50_ms = percentile(0.50);
    out.p90_ms = percentile(0.90);
    out.p99_ms = percentile(0.99);
    out.max_ms = static_cast<double>(window.back());
  }
  if (finished > 0) {
    out.mean_queue_ms = queue_sum / static_cast<double>(finished);
  }
  const KeywordCacheStats cache = cache_->stats();
  out.cache_hits = cache.hits;
  out.cache_misses = cache.misses;
  out.cache_bytes = cache.bytes_cached;
  out.cache_admission_bypasses = cache.admission_bypasses;
  out.prefetches_issued = cache.prefetches_issued;
  const uint64_t lookups = cache.hits + cache.misses;
  out.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(cache.hits) / static_cast<double>(lookups)
          : 0.0;
  return out;
}

}  // namespace kbtim

// Immutable directed graph in compressed-sparse-row form.
//
// The graph stores both forward (out-) and reverse (in-) adjacency because
// reverse-reachable-set sampling walks incoming edges while forward influence
// simulation walks outgoing ones. Vertices are dense uint32 ids [0, n).
#ifndef KBTIM_GRAPH_GRAPH_H_
#define KBTIM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace kbtim {

using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// A directed edge u -> v meaning "u influences v".
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable CSR digraph with both adjacency directions materialized.
///
/// Construction deduplicates parallel edges and drops self-loops (the IC/LT
/// models give them no effect). Neighbor lists are sorted ascending.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph over `num_vertices` vertices from an edge list.
  /// Fails with InvalidArgument if any endpoint is out of range.
  static StatusOr<Graph> FromEdges(VertexId num_vertices,
                                   std::span<const Edge> edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }
  uint64_t num_edges() const { return out_neighbors_.size(); }

  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  uint32_t InDegree(VertexId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Vertices that v points at (v influences them), sorted ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_neighbors_.data() + out_offsets_[v],
            out_neighbors_.data() + out_offsets_[v + 1]};
  }

  /// Vertices pointing at v (they influence v), sorted ascending.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_neighbors_.data() + in_offsets_[v],
            in_neighbors_.data() + in_offsets_[v + 1]};
  }

  /// Global index range [first, last) of v's incoming edges. Per-in-edge
  /// attribute arrays (e.g. IC probabilities, LT weights) are aligned with
  /// this indexing.
  std::pair<uint64_t, uint64_t> InEdgeRange(VertexId v) const {
    return {in_offsets_[v], in_offsets_[v + 1]};
  }

  /// Average out-degree (== average in-degree), 0 for the empty graph.
  double AverageDegree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices();
  }

  /// True if the edge u -> v exists (binary search over out-neighbors).
  bool HasEdge(VertexId u, VertexId v) const;

  // Raw array access for serialization; offsets have n+1 entries.
  const std::vector<uint64_t>& out_offsets() const { return out_offsets_; }
  const std::vector<VertexId>& out_neighbors() const { return out_neighbors_; }
  const std::vector<uint64_t>& in_offsets() const { return in_offsets_; }
  const std::vector<VertexId>& in_neighbors() const { return in_neighbors_; }

  /// Rebuilds a graph directly from CSR arrays (used by the binary loader).
  /// Validates shape invariants; returns Corruption on mismatch.
  static StatusOr<Graph> FromCsr(std::vector<uint64_t> out_offsets,
                                 std::vector<VertexId> out_neighbors,
                                 std::vector<uint64_t> in_offsets,
                                 std::vector<VertexId> in_neighbors);

 private:
  std::vector<uint64_t> out_offsets_;
  std::vector<VertexId> out_neighbors_;
  std::vector<uint64_t> in_offsets_;
  std::vector<VertexId> in_neighbors_;
};

}  // namespace kbtim

#endif  // KBTIM_GRAPH_GRAPH_H_

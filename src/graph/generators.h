// Synthetic social-graph generators.
//
// These stand in for the paper's SNAP Twitter / News datasets (see DESIGN.md,
// substitutions table). The main generator is a directed preferential-
// attachment process with planted communities:
//   * in- and out-degree distributions are heavy-tailed (Figure 4's shape),
//   * a tunable fraction of edges stays inside a vertex's community, which
//     lets topic profiles correlate with graph structure (Table 8's
//     "relevant communities" effect).
#ifndef KBTIM_GRAPH_GENERATORS_H_
#define KBTIM_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace kbtim {

/// Options for the preferential-attachment community generator.
struct SocialGraphOptions {
  /// Number of vertices; must be > 0.
  uint32_t num_vertices = 10000;

  /// Target average out-degree; each arriving vertex creates about this many
  /// edges. Must be > 0.
  double avg_degree = 8.0;

  /// Number of planted communities (>= 1). Vertices are assigned uniformly.
  uint32_t num_communities = 16;

  /// Probability that a new edge stays inside the source's community.
  double intra_community_fraction = 0.7;

  /// Probability that a preferential edge also gets a reciprocal edge,
  /// mimicking mutual follows. Reciprocal edges count toward avg_degree.
  double reciprocity = 0.3;

  /// Mixing weight of preferential attachment vs uniform target choice.
  /// 1.0 = pure preferential (steepest power law), 0.0 = uniform.
  double preferential_weight = 0.85;

  /// RNG seed; equal options + seed give identical graphs.
  uint64_t seed = 42;
};

/// A generated graph plus its planted community assignment (one label per
/// vertex, in [0, num_communities)).
struct SocialGraph {
  Graph graph;
  std::vector<uint32_t> community;
};

/// Generates a directed heavy-tailed community graph per `options`.
StatusOr<SocialGraph> GenerateSocialGraph(const SocialGraphOptions& options);

/// Generates a directed Erdős–Rényi G(n, m) graph with m ≈ n * avg_degree.
/// Used by tests and as a no-power-law ablation baseline.
StatusOr<Graph> GenerateErdosRenyi(uint32_t num_vertices, double avg_degree,
                                   uint64_t seed);

/// Builds the 7-vertex graph of the paper's Figure 1 (vertices a..g mapped
/// to ids 0..6) together with its exact IC edge probabilities. Used by unit
/// tests that check the paper's worked examples.
struct Figure1Graph {
  Graph graph;
  /// Probability per in-edge, aligned with Graph::InEdgeRange indexing.
  std::vector<float> in_edge_prob;
};
Figure1Graph MakeFigure1Graph();

}  // namespace kbtim

#endif  // KBTIM_GRAPH_GENERATORS_H_

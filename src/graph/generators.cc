#include "graph/generators.h"

#include <algorithm>
#include <cmath>

namespace kbtim {

StatusOr<SocialGraph> GenerateSocialGraph(const SocialGraphOptions& options) {
  if (options.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be > 0");
  }
  if (options.avg_degree <= 0.0) {
    return Status::InvalidArgument("avg_degree must be > 0");
  }
  if (options.num_communities == 0) {
    return Status::InvalidArgument("num_communities must be >= 1");
  }

  const uint32_t n = options.num_vertices;
  const uint32_t ncomm = std::min(options.num_communities, n);
  Rng rng(options.seed);

  std::vector<uint32_t> community(n);
  for (uint32_t v = 0; v < n; ++v) community[v] = rng.NextU32Below(ncomm);

  // Reciprocal edges inflate the edge count; compensate in the per-vertex
  // edge budget so the realized average degree tracks options.avg_degree.
  const double recip = std::clamp(options.reciprocity, 0.0, 1.0);
  const double m_target = options.avg_degree / (1.0 + recip);
  const auto m_floor = static_cast<uint32_t>(m_target);
  const double m_frac = m_target - m_floor;

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(
      static_cast<double>(n) * options.avg_degree * 1.1));

  // Degree-proportional endpoint pools: every edge endpoint is appended, so
  // a uniform draw from a pool is a draw proportional to (current degree).
  std::vector<VertexId> pool_global;
  std::vector<std::vector<VertexId>> pool_comm(ncomm);
  std::vector<std::vector<VertexId>> members(ncomm);
  members[community[0]].push_back(0);

  auto add_edge = [&](VertexId src, VertexId dst) {
    edges.push_back({src, dst});
    pool_global.push_back(src);
    pool_global.push_back(dst);
    pool_comm[community[src]].push_back(src);
    pool_comm[community[dst]].push_back(dst);
  };

  for (VertexId v = 1; v < n; ++v) {
    const uint32_t budget = m_floor + (rng.Bernoulli(m_frac) ? 1u : 0u);
    for (uint32_t j = 0; j < budget; ++j) {
      const bool intra = rng.Bernoulli(options.intra_community_fraction);
      const uint32_t c = community[v];
      VertexId t = kInvalidVertex;

      if (rng.Bernoulli(options.preferential_weight)) {
        const auto& pool = (intra && !pool_comm[c].empty())
                               ? pool_comm[c]
                               : pool_global;
        if (!pool.empty()) {
          t = pool[rng.NextU64Below(pool.size())];
        }
      }
      if (t == kInvalidVertex) {
        if (intra && !members[c].empty()) {
          t = members[c][rng.NextU64Below(members[c].size())];
        } else {
          t = static_cast<VertexId>(rng.NextU32Below(v));
        }
      }
      if (t == v) continue;

      // Random orientation keeps both in- and out-degree heavy-tailed.
      if (rng.Bernoulli(0.5)) {
        add_edge(v, t);
      } else {
        add_edge(t, v);
      }
      if (rng.Bernoulli(recip)) {
        add_edge(t, v);  // duplicate reciprocal edges are deduped later
      }
    }
    members[community[v]].push_back(v);
  }

  KBTIM_ASSIGN_OR_RETURN(Graph graph, Graph::FromEdges(n, edges));
  return SocialGraph{std::move(graph), std::move(community)};
}

StatusOr<Graph> GenerateErdosRenyi(uint32_t num_vertices, double avg_degree,
                                   uint64_t seed) {
  if (num_vertices < 2) {
    return Status::InvalidArgument("Erdős–Rényi needs >= 2 vertices");
  }
  Rng rng(seed);
  const auto m = static_cast<uint64_t>(
      static_cast<double>(num_vertices) * avg_degree);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    const VertexId u = rng.NextU32Below(num_vertices);
    VertexId v = rng.NextU32Below(num_vertices);
    while (v == u) v = rng.NextU32Below(num_vertices);
    edges.push_back({u, v});
  }
  return Graph::FromEdges(num_vertices, edges);
}

Figure1Graph MakeFigure1Graph() {
  // Reconstruction of the paper's Figure 1 from its worked examples:
  // e->a is the single probability-1.0 edge; all others carry 0.5.
  // Vertex ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6.
  constexpr VertexId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6;
  struct ProbEdge {
    VertexId src, dst;
    float p;
  };
  const ProbEdge prob_edges[] = {
      {e, a, 1.0f}, {e, b, 0.5f}, {g, b, 0.5f}, {a, b, 0.5f},
      {e, c, 0.5f}, {b, c, 0.5f}, {b, d, 0.5f}, {f, d, 0.5f},
  };
  std::vector<Edge> edges;
  edges.reserve(std::size(prob_edges));
  for (const auto& pe : prob_edges) edges.push_back({pe.src, pe.dst});
  auto graph_or = Graph::FromEdges(7, edges);
  // The static edge list above is valid by construction.
  Graph graph = std::move(graph_or).value();

  std::vector<float> probs(graph.num_edges(), 0.0f);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto [first, last] = graph.InEdgeRange(v);
    auto in = graph.InNeighbors(v);
    for (uint64_t i = first; i < last; ++i) {
      const VertexId u = in[i - first];
      for (const auto& pe : prob_edges) {
        if (pe.src == u && pe.dst == v) probs[i] = pe.p;
      }
    }
  }
  return Figure1Graph{std::move(graph), std::move(probs)};
}

}  // namespace kbtim

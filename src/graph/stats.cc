#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace kbtim {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const VertexId n = graph.num_vertices();
  if (n == 0) return stats;
  uint64_t isolated = 0;
  for (VertexId v = 0; v < n; ++v) {
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    if (graph.InDegree(v) == 0) ++isolated;
  }
  stats.avg_degree = graph.AverageDegree();
  stats.frac_in_isolated =
      static_cast<double>(isolated) / static_cast<double>(n);
  return stats;
}

std::vector<std::pair<uint32_t, uint64_t>> InDegreeHistogram(
    const Graph& graph) {
  std::map<uint32_t, uint64_t> hist;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ++hist[graph.InDegree(v)];
  }
  return {hist.begin(), hist.end()};
}

std::vector<std::pair<double, uint64_t>> LogBinnedInDegreeHistogram(
    const Graph& graph, double base) {
  if (base <= 1.0) base = 2.0;
  std::map<uint32_t, uint64_t> bins;  // bin index -> count
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const uint32_t d = graph.InDegree(v);
    if (d == 0) continue;
    const auto bin = static_cast<uint32_t>(
        std::floor(std::log(static_cast<double>(d)) / std::log(base)));
    ++bins[bin];
  }
  std::vector<std::pair<double, uint64_t>> out;
  out.reserve(bins.size());
  for (const auto& [bin, count] : bins) {
    const double lo = std::pow(base, bin);
    const double hi = std::pow(base, bin + 1);
    out.emplace_back(std::sqrt(lo * hi), count);
  }
  return out;
}

double PowerLawSlope(const Graph& graph) {
  const auto bins = LogBinnedInDegreeHistogram(graph);
  if (bins.size() < 2) return 0.0;
  // Least squares on (log degree, log count).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(bins.size());
  for (const auto& [deg, count] : bins) {
    const double x = std::log(deg);
    const double y = std::log(static_cast<double>(count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace kbtim

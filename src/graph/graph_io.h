// Binary graph serialization (fast reload of generated datasets).
#ifndef KBTIM_GRAPH_GRAPH_IO_H_
#define KBTIM_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace kbtim {

/// Writes `graph` in the native binary format (magic "KBGR", version 1,
/// little-endian CSR arrays).
Status SaveGraphBinary(const Graph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraphBinary. Validates the magic,
/// version, and CSR invariants; returns Corruption on any mismatch.
StatusOr<Graph> LoadGraphBinary(const std::string& path);

}  // namespace kbtim

#endif  // KBTIM_GRAPH_GRAPH_IO_H_

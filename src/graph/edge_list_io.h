// Text edge-list I/O (SNAP-compatible: one "src dst" pair per line,
// '#'-prefixed comment lines ignored).
#ifndef KBTIM_GRAPH_EDGE_LIST_IO_H_
#define KBTIM_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace kbtim {

/// Loads a directed graph from a SNAP-style text edge list. Vertex ids may
/// be sparse in the file; they are remapped to dense [0, n) by first
/// occurrence order. Returns IOError / Corruption on failure.
StatusOr<Graph> LoadEdgeListText(const std::string& path);

/// Writes `graph` as "src dst" lines with a small header comment.
Status SaveEdgeListText(const Graph& graph, const std::string& path);

}  // namespace kbtim

#endif  // KBTIM_GRAPH_EDGE_LIST_IO_H_

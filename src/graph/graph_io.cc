#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>

namespace kbtim {
namespace {

constexpr char kMagic[4] = {'K', 'B', 'G', 'R'};
constexpr uint32_t kVersion = 1;

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  const auto count = static_cast<uint64_t>(v.size());
  if (std::fwrite(&count, sizeof(count), 1, f) != 1) return false;
  if (count == 0) return true;
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>* v) {
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1) return false;
  // Guard against absurd allocations from corrupt headers (16 GiB cap).
  if (count > (uint64_t{1} << 34) / sizeof(T)) return false;
  v->resize(count);
  if (count == 0) return true;
  return std::fread(v->data(), sizeof(T), v->size(), f) == v->size();
}

}  // namespace

Status SaveGraphBinary(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4 &&
            std::fwrite(&kVersion, sizeof(kVersion), 1, f) == 1 &&
            WriteVec(f, graph.out_offsets()) &&
            WriteVec(f, graph.out_neighbors()) &&
            WriteVec(f, graph.in_offsets()) &&
            WriteVec(f, graph.in_neighbors());
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Graph> LoadGraphBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[4];
  uint32_t version = 0;
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  if (std::fread(&version, sizeof(version), 1, f) != 1 ||
      version != kVersion) {
    std::fclose(f);
    return Status::Corruption("unsupported graph file version in " + path);
  }
  std::vector<uint64_t> out_offsets, in_offsets;
  std::vector<VertexId> out_neighbors, in_neighbors;
  const bool ok = ReadVec(f, &out_offsets) && ReadVec(f, &out_neighbors) &&
                  ReadVec(f, &in_offsets) && ReadVec(f, &in_neighbors);
  std::fclose(f);
  if (!ok) return Status::Corruption("truncated graph file: " + path);
  return Graph::FromCsr(std::move(out_offsets), std::move(out_neighbors),
                        std::move(in_offsets), std::move(in_neighbors));
}

}  // namespace kbtim

#include "graph/graph.h"

#include <algorithm>
#include <string>

namespace kbtim {

StatusOr<Graph> Graph::FromEdges(VertexId num_vertices,
                                 std::span<const Edge> edges) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return Status::InvalidArgument(
          "edge endpoint out of range: " + std::to_string(e.src) + "->" +
          std::to_string(e.dst) + " with num_vertices=" +
          std::to_string(num_vertices));
    }
  }

  // Copy, drop self-loops, sort by (src, dst), dedupe.
  std::vector<Edge> sorted;
  sorted.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.src != e.dst) sorted.push_back(e);
  }
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  Graph g;
  const size_t n = num_vertices;
  const size_t m = sorted.size();

  g.out_offsets_.assign(n + 1, 0);
  g.out_neighbors_.resize(m);
  for (const Edge& e : sorted) ++g.out_offsets_[e.src + 1];
  for (size_t v = 0; v < n; ++v) g.out_offsets_[v + 1] += g.out_offsets_[v];
  for (size_t i = 0; i < m; ++i) g.out_neighbors_[i] = sorted[i].dst;

  g.in_offsets_.assign(n + 1, 0);
  g.in_neighbors_.resize(m);
  for (const Edge& e : sorted) ++g.in_offsets_[e.dst + 1];
  for (size_t v = 0; v < n; ++v) g.in_offsets_[v + 1] += g.in_offsets_[v];
  {
    std::vector<uint64_t> cursor(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
    for (const Edge& e : sorted) {
      g.in_neighbors_[cursor[e.dst]++] = e.src;
    }
  }
  // Edges were sorted by (src, dst), so each in-list was appended in
  // ascending source order already; keep the invariant explicit anyway.
  for (size_t v = 0; v < n; ++v) {
    auto* begin = g.in_neighbors_.data() + g.in_offsets_[v];
    auto* end = g.in_neighbors_.data() + g.in_offsets_[v + 1];
    if (!std::is_sorted(begin, end)) std::sort(begin, end);
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

StatusOr<Graph> Graph::FromCsr(std::vector<uint64_t> out_offsets,
                               std::vector<VertexId> out_neighbors,
                               std::vector<uint64_t> in_offsets,
                               std::vector<VertexId> in_neighbors) {
  if (out_offsets.empty() || in_offsets.empty() ||
      out_offsets.size() != in_offsets.size()) {
    return Status::Corruption("CSR offset arrays malformed");
  }
  if (out_offsets.front() != 0 || in_offsets.front() != 0 ||
      out_offsets.back() != out_neighbors.size() ||
      in_offsets.back() != in_neighbors.size() ||
      out_neighbors.size() != in_neighbors.size()) {
    return Status::Corruption("CSR arrays inconsistent with edge count");
  }
  if (!std::is_sorted(out_offsets.begin(), out_offsets.end()) ||
      !std::is_sorted(in_offsets.begin(), in_offsets.end())) {
    return Status::Corruption("CSR offsets not monotone");
  }
  const auto n = static_cast<VertexId>(out_offsets.size() - 1);
  for (VertexId v : out_neighbors) {
    if (v >= n) return Status::Corruption("out-neighbor id out of range");
  }
  for (VertexId v : in_neighbors) {
    if (v >= n) return Status::Corruption("in-neighbor id out of range");
  }
  Graph g;
  g.out_offsets_ = std::move(out_offsets);
  g.out_neighbors_ = std::move(out_neighbors);
  g.in_offsets_ = std::move(in_offsets);
  g.in_neighbors_ = std::move(in_neighbors);
  return g;
}

}  // namespace kbtim

// Degree statistics used by Table 2 (dataset summary) and Figure 4
// (in-degree distributions).
#ifndef KBTIM_GRAPH_STATS_H_
#define KBTIM_GRAPH_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kbtim {

/// Summary degree statistics of a graph.
struct DegreeStats {
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
  double avg_degree = 0.0;
  /// Fraction of vertices with in-degree 0.
  double frac_in_isolated = 0.0;
};

/// Computes summary statistics in one pass.
DegreeStats ComputeDegreeStats(const Graph& graph);

/// Exact in-degree histogram: (degree, #vertices with that in-degree),
/// ascending by degree, zero-count degrees omitted.
std::vector<std::pair<uint32_t, uint64_t>> InDegreeHistogram(
    const Graph& graph);

/// Log-binned in-degree histogram for plotting Figure 4 on log-log axes:
/// (representative degree = geometric bin center, #vertices in bin).
/// `base` > 1 controls bin growth.
std::vector<std::pair<double, uint64_t>> LogBinnedInDegreeHistogram(
    const Graph& graph, double base = 2.0);

/// Least-squares slope of log(count) vs log(degree) over the log-binned
/// histogram; a heavy-tailed (power-law-like) graph has slope notably below
/// -1. Returns 0 if fewer than two non-empty bins.
double PowerLawSlope(const Graph& graph);

}  // namespace kbtim

#endif  // KBTIM_GRAPH_STATS_H_

#include "graph/edge_list_io.h"

#include <cstdio>
#include <unordered_map>
#include <vector>

namespace kbtim {

StatusOr<Graph> LoadEdgeListText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open edge list: " + path);
  }
  std::vector<Edge> edges;
  std::unordered_map<uint64_t, VertexId> remap;
  auto intern = [&remap](uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };

  char line[256];
  size_t lineno = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\r') continue;
    unsigned long long src = 0, dst = 0;
    if (std::sscanf(line, "%llu %llu", &src, &dst) != 2) {
      std::fclose(f);
      return Status::Corruption("bad edge at " + path + ":" +
                                std::to_string(lineno));
    }
    edges.push_back({intern(src), intern(dst)});
  }
  std::fclose(f);
  return Graph::FromEdges(static_cast<VertexId>(remap.size()), edges);
}

Status SaveEdgeListText(const Graph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot create edge list: " + path);
  }
  std::fprintf(f, "# kbtim edge list: %u vertices, %llu edges\n",
               graph.num_vertices(),
               static_cast<unsigned long long>(graph.num_edges()));
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (VertexId v : graph.OutNeighbors(u)) {
      std::fprintf(f, "%u %u\n", u, v);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace kbtim

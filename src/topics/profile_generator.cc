#include "topics/profile_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace kbtim {
namespace {

// Draws an index in [0, weights_cdf.size()) by inverse-CDF lookup.
uint32_t SampleCdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.NextDouble() * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<uint32_t>(
      std::min<size_t>(cdf.size() - 1,
                       static_cast<size_t>(it - cdf.begin())));
}

}  // namespace

StatusOr<ProfileStore> GenerateProfiles(
    uint32_t num_users, const std::vector<uint32_t>& community,
    const ProfileGeneratorOptions& options) {
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be > 0");
  }
  if (options.mean_topics_per_user < 1.0) {
    return Status::InvalidArgument("mean_topics_per_user must be >= 1");
  }
  if (!community.empty() && community.size() != num_users) {
    return Status::InvalidArgument(
        "community labels must be empty or one per user");
  }

  Rng rng(options.seed);
  const uint32_t t = options.num_topics;

  // Global Zipf popularity CDF over topic ids (topic 0 most popular).
  std::vector<double> zipf_cdf(t);
  double acc = 0.0;
  for (uint32_t w = 0; w < t; ++w) {
    acc += 1.0 / std::pow(static_cast<double>(w + 1), options.zipf_exponent);
    zipf_cdf[w] = acc;
  }

  // Preferred topics per community, themselves drawn by popularity so that
  // popular topics span several communities.
  uint32_t ncomm = 0;
  for (uint32_t c : community) ncomm = std::max(ncomm, c + 1);
  std::vector<std::vector<TopicId>> preferred(ncomm);
  for (uint32_t c = 0; c < ncomm; ++c) {
    std::unordered_set<TopicId> chosen;
    const uint32_t want = std::max<uint32_t>(1, options.topics_per_community);
    while (chosen.size() < std::min(want, t)) {
      chosen.insert(SampleCdf(zipf_cdf, rng));
    }
    preferred[c].assign(chosen.begin(), chosen.end());
  }

  const double extra_mean = options.mean_topics_per_user - 1.0;
  std::vector<ProfileTriplet> triplets;
  triplets.reserve(static_cast<size_t>(
      static_cast<double>(num_users) * options.mean_topics_per_user));

  std::vector<TopicId> user_topics;
  std::vector<double> weights;
  for (VertexId v = 0; v < num_users; ++v) {
    // Topic count: 1 + geometric-ish extra draws around the requested mean.
    uint32_t count = 1;
    while (extra_mean > 0.0 &&
           rng.Bernoulli(extra_mean / (1.0 + extra_mean)) &&
           count < 4 * options.mean_topics_per_user + 4) {
      ++count;
    }
    count = std::min(count, t);

    user_topics.clear();
    std::unordered_set<TopicId> seen;
    uint32_t attempts = 0;
    while (user_topics.size() < count && attempts < 20 * count) {
      ++attempts;
      TopicId w;
      const bool use_community = !community.empty() && ncomm > 0 &&
                                 rng.Bernoulli(options.community_affinity);
      if (use_community) {
        const auto& pref = preferred[community[v]];
        w = pref[rng.NextU64Below(pref.size())];
      } else {
        w = SampleCdf(zipf_cdf, rng);
      }
      if (seen.insert(w).second) user_topics.push_back(w);
    }

    // Exponential weights normalized to sum 1, matching the paper's
    // per-user preference vectors (Figure 1 profiles sum to 1).
    weights.clear();
    double wsum = 0.0;
    for (size_t i = 0; i < user_topics.size(); ++i) {
      const double x = -std::log(1.0 - rng.NextDouble());
      weights.push_back(x);
      wsum += x;
    }
    for (size_t i = 0; i < user_topics.size(); ++i) {
      const auto tf = static_cast<float>(weights[i] / wsum);
      if (tf > 0.0f) {
        triplets.push_back({v, user_topics[i], tf});
      }
    }
  }
  return ProfileStore::FromTriplets(num_users, t, triplets);
}

}  // namespace kbtim

// Sparse user-topic preference matrix (the tf part of the tf-idf model).
//
// Stored twice for the two access patterns the algorithms need:
//  * row-major (user -> [(topic, tf)...])      for φ(v, Q) scoring, and
//  * column-major (topic -> users + tfs)       for per-keyword offline
//    sampling with ps(v, w) = tf_{w,v} / Σ_v tf_{w,v} (Eqn. 7).
#ifndef KBTIM_TOPICS_PROFILE_STORE_H_
#define KBTIM_TOPICS_PROFILE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "topics/vocabulary.h"

namespace kbtim {

/// One nonzero entry of a user profile.
struct ProfileEntry {
  TopicId topic;
  float tf;

  friend bool operator==(const ProfileEntry&, const ProfileEntry&) = default;
};

/// A (user, topic, tf) triplet used to build a ProfileStore.
struct ProfileTriplet {
  VertexId user;
  TopicId topic;
  float tf;
};

/// Immutable sparse user x topic matrix with both orientations materialized.
class ProfileStore {
 public:
  ProfileStore() = default;

  /// Builds from triplets. Rejects out-of-range ids, non-positive tf, and
  /// duplicate (user, topic) pairs.
  static StatusOr<ProfileStore> FromTriplets(
      uint32_t num_users, uint32_t num_topics,
      std::span<const ProfileTriplet> triplets);

  uint32_t num_users() const {
    return static_cast<uint32_t>(row_offsets_.empty()
                                     ? 0
                                     : row_offsets_.size() - 1);
  }
  uint32_t num_topics() const { return num_topics_; }
  uint64_t num_entries() const { return row_entries_.size(); }

  /// The nonzero (topic, tf) entries of user v, sorted by topic id.
  std::span<const ProfileEntry> UserProfile(VertexId v) const {
    return {row_entries_.data() + row_offsets_[v],
            row_entries_.data() + row_offsets_[v + 1]};
  }

  /// tf_{w,v}; 0 if the user has no preference for the topic.
  float Tf(VertexId v, TopicId w) const;

  /// Users with nonzero tf for topic w, ascending by id.
  std::span<const VertexId> TopicUsers(TopicId w) const {
    return {col_users_.data() + col_offsets_[w],
            col_users_.data() + col_offsets_[w + 1]};
  }

  /// tf values aligned with TopicUsers(w).
  std::span<const float> TopicTfs(TopicId w) const {
    return {col_tfs_.data() + col_offsets_[w],
            col_tfs_.data() + col_offsets_[w + 1]};
  }

  /// Σ_v tf_{w,v} (the mass that Lemma 3/4's θ bounds multiply by).
  double TopicTfSum(TopicId w) const { return topic_tf_sum_[w]; }

  /// Document frequency: number of users with tf_{w,v} > 0.
  uint64_t TopicDf(TopicId w) const {
    return col_offsets_[w + 1] - col_offsets_[w];
  }

 private:
  uint32_t num_topics_ = 0;
  std::vector<uint64_t> row_offsets_;
  std::vector<ProfileEntry> row_entries_;
  std::vector<uint64_t> col_offsets_;
  std::vector<VertexId> col_users_;
  std::vector<float> col_tfs_;
  std::vector<double> topic_tf_sum_;
};

}  // namespace kbtim

#endif  // KBTIM_TOPICS_PROFILE_STORE_H_

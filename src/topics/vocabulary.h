// Topic vocabulary: maps dense topic ids to human-readable names.
//
// The paper extracts 200 latent topics per dataset; here topics are synthetic
// but named, so example programs and Table-8-style output stay readable.
#ifndef KBTIM_TOPICS_VOCABULARY_H_
#define KBTIM_TOPICS_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace kbtim {

using TopicId = uint32_t;

/// Sentinel for "no topic".
inline constexpr TopicId kInvalidTopic = static_cast<TopicId>(-1);

/// An immutable id <-> name mapping for the topic space T.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Builds a vocabulary from explicit names. Names must be unique.
  static StatusOr<Vocabulary> FromNames(std::vector<std::string> names);

  /// Builds a synthetic vocabulary of `num_topics` topics. The first topics
  /// reuse a list of realistic ad keywords ("music", "software", ...);
  /// the remainder are generated ("topic_42").
  static Vocabulary Synthetic(uint32_t num_topics);

  uint32_t num_topics() const { return static_cast<uint32_t>(names_.size()); }

  /// Name of a topic id; id must be < num_topics().
  const std::string& Name(TopicId id) const { return names_[id]; }

  /// Id for a name, or kInvalidTopic if absent.
  TopicId Find(const std::string& name) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace kbtim

#endif  // KBTIM_TOPICS_VOCABULARY_H_

#include "topics/profile_io.h"

#include <cstring>

#include "storage/block_file.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

constexpr char kMagic[4] = {'K', 'B', 'P', 'R'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveProfilesBinary(const ProfileStore& profiles,
                          const std::string& path) {
  std::string buf;
  buf.append(kMagic, 4);
  buf.append(reinterpret_cast<const char*>(&kVersion), 4);
  const uint32_t num_users = profiles.num_users();
  const uint32_t num_topics = profiles.num_topics();
  buf.append(reinterpret_cast<const char*>(&num_users), 4);
  buf.append(reinterpret_cast<const char*>(&num_topics), 4);
  PutVarint64(&buf, profiles.num_entries());
  for (VertexId v = 0; v < num_users; ++v) {
    const auto row = profiles.UserProfile(v);
    PutVarint32(&buf, static_cast<uint32_t>(row.size()));
    TopicId prev = 0;
    for (const auto& entry : row) {
      PutVarint32(&buf, entry.topic - prev);  // rows are topic-ascending
      prev = entry.topic;
      buf.append(reinterpret_cast<const char*>(&entry.tf),
                 sizeof(entry.tf));
    }
  }
  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::Create(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(buf));
  return writer->Close();
}

StatusOr<ProfileStore> LoadProfilesBinary(const std::string& path) {
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::string buf;
  KBTIM_RETURN_IF_ERROR(file->Read(0, file->size(), &buf));
  if (buf.size() < 16 || std::memcmp(buf.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad profile file magic: " + path);
  }
  uint32_t version = 0, num_users = 0, num_topics = 0;
  std::memcpy(&version, buf.data() + 4, 4);
  std::memcpy(&num_users, buf.data() + 8, 4);
  std::memcpy(&num_topics, buf.data() + 12, 4);
  if (version != kVersion) {
    return Status::Corruption("unsupported profile file version: " + path);
  }
  const char* p = buf.data() + 16;
  const char* limit = buf.data() + buf.size();
  uint64_t num_entries = 0;
  p = GetVarint64(p, limit, &num_entries);
  if (p == nullptr) return Status::Corruption("truncated header: " + path);

  std::vector<ProfileTriplet> triplets;
  triplets.reserve(num_entries);
  for (VertexId v = 0; v < num_users; ++v) {
    uint32_t row_len = 0;
    p = GetVarint32(p, limit, &row_len);
    if (p == nullptr) return Status::Corruption("truncated row: " + path);
    TopicId topic = 0;
    for (uint32_t i = 0; i < row_len; ++i) {
      uint32_t delta = 0;
      p = GetVarint32(p, limit, &delta);
      if (p == nullptr || p + sizeof(float) > limit) {
        return Status::Corruption("truncated entry: " + path);
      }
      topic += delta;
      float tf = 0;
      std::memcpy(&tf, p, sizeof(tf));
      p += sizeof(tf);
      triplets.push_back({v, topic, tf});
    }
  }
  if (triplets.size() != num_entries) {
    return Status::Corruption("entry count mismatch: " + path);
  }
  if (p != limit) {
    return Status::Corruption("trailing bytes: " + path);
  }
  auto store = ProfileStore::FromTriplets(num_users, num_topics, triplets);
  if (!store.ok()) {
    return Status::Corruption("invalid profile data in " + path + ": " +
                              store.status().message());
  }
  return store;
}

}  // namespace kbtim

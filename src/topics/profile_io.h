// Binary serialization of user-topic profiles, so generated datasets can
// be persisted next to the graph (graph.bin + profiles.bin) and reloaded
// without regeneration.
#ifndef KBTIM_TOPICS_PROFILE_IO_H_
#define KBTIM_TOPICS_PROFILE_IO_H_

#include <string>

#include "common/statusor.h"
#include "topics/profile_store.h"

namespace kbtim {

/// Writes the store in the native binary format (magic "KBPR", version 1,
/// varint-delta row encoding).
Status SaveProfilesBinary(const ProfileStore& profiles,
                          const std::string& path);

/// Reads a store written by SaveProfilesBinary. Returns Corruption on any
/// structural mismatch.
StatusOr<ProfileStore> LoadProfilesBinary(const std::string& path);

}  // namespace kbtim

#endif  // KBTIM_TOPICS_PROFILE_IO_H_

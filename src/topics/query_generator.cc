#include "topics/query_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace kbtim {

StatusOr<std::vector<Query>> GenerateQueries(
    const ProfileStore& profiles, const QueryGeneratorOptions& options) {
  if (options.min_keywords == 0 ||
      options.min_keywords > options.max_keywords) {
    return Status::InvalidArgument("invalid keyword count range");
  }
  const uint32_t t = profiles.num_topics();
  uint32_t usable = 0;
  for (TopicId w = 0; w < t; ++w) {
    if (profiles.TopicTfSum(w) > 0.0) ++usable;
  }
  if (usable < options.max_keywords) {
    return Status::FailedPrecondition(
        "not enough non-empty topics for the requested query length");
  }

  std::vector<double> cdf(t);
  double acc = 0.0;
  for (TopicId w = 0; w < t; ++w) {
    acc += profiles.TopicTfSum(w);
    cdf[w] = acc;
  }

  Rng rng(options.seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(options.queries_per_length) *
                  (options.max_keywords - options.min_keywords + 1));
  for (uint32_t len = options.min_keywords; len <= options.max_keywords;
       ++len) {
    for (uint32_t q = 0; q < options.queries_per_length; ++q) {
      std::unordered_set<TopicId> chosen;
      while (chosen.size() < len) {
        const double u = rng.NextDouble() * cdf.back();
        const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
        const auto w = static_cast<TopicId>(
            std::min<size_t>(cdf.size() - 1,
                             static_cast<size_t>(it - cdf.begin())));
        if (profiles.TopicTfSum(w) > 0.0) chosen.insert(w);
      }
      Query query;
      query.topics.assign(chosen.begin(), chosen.end());
      std::sort(query.topics.begin(), query.topics.end());
      query.k = options.k;
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

}  // namespace kbtim

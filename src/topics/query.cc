#include "topics/query.h"

#include <algorithm>

namespace kbtim {

Status ValidateQueryShape(const Query& query, uint32_t num_topics) {
  if (query.topics.empty()) {
    return Status::InvalidArgument("query has no keywords");
  }
  if (query.k == 0) {
    return Status::InvalidArgument("query k must be >= 1");
  }
  for (TopicId w : query.topics) {
    if (w >= num_topics) {
      return Status::InvalidArgument("query topic id out of range");
    }
  }
  std::vector<TopicId> sorted(query.topics);
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("duplicate query keyword");
  }
  return Status::OK();
}

}  // namespace kbtim

// tf-idf relevance model (paper Eqn. 1):
//   φ(v, Q) = Σ_{w ∈ Q.T} tf_{w,v} · idf_w
// plus the derived per-topic aggregates the θ bounds and the discriminative
// sampling decomposition (Eqn. 7) need:
//   φ_w  = idf_w · Σ_v tf_{w,v}
//   φ_Q  = Σ_{w ∈ Q.T} φ_w
//   p_w  = φ_w / φ_Q
#ifndef KBTIM_TOPICS_TFIDF_H_
#define KBTIM_TOPICS_TFIDF_H_

#include <span>
#include <vector>

#include "topics/profile_store.h"
#include "topics/query.h"

namespace kbtim {

/// Immutable tf-idf scoring model over a ProfileStore.
///
/// idf_w = ln(1 + N / df_w) where N is the number of users and df_w the
/// number of users with tf_{w,v} > 0; topics nobody mentions get idf 0 so
/// they contribute nothing (the paper considers users without any query
/// keyword "not impacted").
class TfIdfModel {
 public:
  explicit TfIdfModel(const ProfileStore* profiles);

  const ProfileStore& profiles() const { return *profiles_; }

  /// idf_w.
  double Idf(TopicId w) const { return idf_[w]; }

  /// φ(v, Q): relevance of user v to the query's keyword set.
  double Phi(VertexId v, const Query& query) const;

  /// φ_w = idf_w · Σ_v tf_{w,v}.
  double PhiTopic(TopicId w) const { return phi_topic_[w]; }

  /// φ_Q = Σ_{w ∈ Q.T} φ_w.
  double PhiQ(const Query& query) const;

  /// p_w = φ_w / φ_Q: the share of RR samples keyword w contributes to a
  /// query's sample budget (Lemma 2). Returns 0 if φ_Q is 0.
  double Pw(TopicId w, const Query& query) const;

  /// Scores every user against the query; only users carrying at least one
  /// query keyword appear (sparse result, (user, φ) pairs ascending by user).
  std::vector<std::pair<VertexId, double>> SparsePhi(const Query& query) const;

 private:
  const ProfileStore* profiles_;
  std::vector<double> idf_;
  std::vector<double> phi_topic_;
};

}  // namespace kbtim

#endif  // KBTIM_TOPICS_TFIDF_H_

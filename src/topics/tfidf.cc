#include "topics/tfidf.h"

#include <algorithm>
#include <cmath>

namespace kbtim {

TfIdfModel::TfIdfModel(const ProfileStore* profiles) : profiles_(profiles) {
  const uint32_t t = profiles_->num_topics();
  const double n = profiles_->num_users();
  idf_.resize(t);
  phi_topic_.resize(t);
  for (TopicId w = 0; w < t; ++w) {
    const auto df = static_cast<double>(profiles_->TopicDf(w));
    idf_[w] = df > 0 ? std::log(1.0 + n / df) : 0.0;
    phi_topic_[w] = idf_[w] * profiles_->TopicTfSum(w);
  }
}

double TfIdfModel::Phi(VertexId v, const Query& query) const {
  double phi = 0.0;
  for (TopicId w : query.topics) {
    const float tf = profiles_->Tf(v, w);
    if (tf > 0.0f) phi += static_cast<double>(tf) * idf_[w];
  }
  return phi;
}

double TfIdfModel::PhiQ(const Query& query) const {
  double sum = 0.0;
  for (TopicId w : query.topics) sum += phi_topic_[w];
  return sum;
}

double TfIdfModel::Pw(TopicId w, const Query& query) const {
  const double phi_q = PhiQ(query);
  return phi_q > 0.0 ? phi_topic_[w] / phi_q : 0.0;
}

std::vector<std::pair<VertexId, double>> TfIdfModel::SparsePhi(
    const Query& query) const {
  // Merge the per-keyword postings; accumulate idf-weighted tf per user.
  std::vector<std::pair<VertexId, double>> acc;
  for (TopicId w : query.topics) {
    auto users = profiles_->TopicUsers(w);
    auto tfs = profiles_->TopicTfs(w);
    for (size_t i = 0; i < users.size(); ++i) {
      acc.emplace_back(users[i], static_cast<double>(tfs[i]) * idf_[w]);
    }
  }
  std::sort(acc.begin(), acc.end());
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(acc.size());
  for (const auto& [user, phi] : acc) {
    if (!out.empty() && out.back().first == user) {
      out.back().second += phi;
    } else {
      out.emplace_back(user, phi);
    }
  }
  return out;
}

}  // namespace kbtim

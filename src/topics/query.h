// KB-TIM query (paper Definition 3): an advertisement keyword set Q.T plus
// the number of seed users Q.k.
#ifndef KBTIM_TOPICS_QUERY_H_
#define KBTIM_TOPICS_QUERY_H_

#include <cstdint>
#include <vector>

#include "topics/vocabulary.h"

namespace kbtim {

/// A KB-TIM query Q = (Q.T, Q.k).
struct Query {
  /// Advertisement keywords (distinct topic ids).
  std::vector<TopicId> topics;

  /// Seed-set size.
  uint32_t k = 1;
};

}  // namespace kbtim

#endif  // KBTIM_TOPICS_QUERY_H_

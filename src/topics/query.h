// KB-TIM query (paper Definition 3): an advertisement keyword set Q.T plus
// the number of seed users Q.k.
#ifndef KBTIM_TOPICS_QUERY_H_
#define KBTIM_TOPICS_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "topics/vocabulary.h"

namespace kbtim {

/// A KB-TIM query Q = (Q.T, Q.k).
struct Query {
  /// Advertisement keywords (distinct topic ids).
  std::vector<TopicId> topics;

  /// Seed-set size.
  uint32_t k = 1;
};

/// Validates the query shape every KB-TIM entry point (WRIS solver, RR
/// index, IRR index) agrees on: a nonempty keyword set, k >= 1, every
/// topic id below `num_topics`, and no duplicate keywords (checked via a
/// sorted copy in O(|Q| log |Q|)). Callers add their own upper bound on k
/// (|V| online, the index's K offline).
Status ValidateQueryShape(const Query& query, uint32_t num_topics);

}  // namespace kbtim

#endif  // KBTIM_TOPICS_QUERY_H_

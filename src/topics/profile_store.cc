#include "topics/profile_store.h"

#include <algorithm>
#include <string>

namespace kbtim {

StatusOr<ProfileStore> ProfileStore::FromTriplets(
    uint32_t num_users, uint32_t num_topics,
    std::span<const ProfileTriplet> triplets) {
  for (const auto& t : triplets) {
    if (t.user >= num_users) {
      return Status::InvalidArgument("profile user id out of range: " +
                                     std::to_string(t.user));
    }
    if (t.topic >= num_topics) {
      return Status::InvalidArgument("profile topic id out of range: " +
                                     std::to_string(t.topic));
    }
    if (!(t.tf > 0.0f)) {
      return Status::InvalidArgument("profile tf must be > 0");
    }
  }
  std::vector<ProfileTriplet> sorted(triplets.begin(), triplets.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const ProfileTriplet& a, const ProfileTriplet& b) {
              return a.user != b.user ? a.user < b.user : a.topic < b.topic;
            });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].user == sorted[i - 1].user &&
        sorted[i].topic == sorted[i - 1].topic) {
      return Status::InvalidArgument(
          "duplicate (user, topic) profile entry for user " +
          std::to_string(sorted[i].user));
    }
  }

  ProfileStore store;
  store.num_topics_ = num_topics;

  store.row_offsets_.assign(num_users + 1, 0);
  store.row_entries_.resize(sorted.size());
  for (const auto& t : sorted) ++store.row_offsets_[t.user + 1];
  for (uint32_t v = 0; v < num_users; ++v) {
    store.row_offsets_[v + 1] += store.row_offsets_[v];
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    store.row_entries_[i] = {sorted[i].topic, sorted[i].tf};
  }

  store.col_offsets_.assign(num_topics + 1, 0);
  store.col_users_.resize(sorted.size());
  store.col_tfs_.resize(sorted.size());
  store.topic_tf_sum_.assign(num_topics, 0.0);
  for (const auto& t : sorted) ++store.col_offsets_[t.topic + 1];
  for (uint32_t w = 0; w < num_topics; ++w) {
    store.col_offsets_[w + 1] += store.col_offsets_[w];
  }
  {
    std::vector<uint64_t> cursor(store.col_offsets_.begin(),
                                 store.col_offsets_.end() - 1);
    for (const auto& t : sorted) {
      const uint64_t at = cursor[t.topic]++;
      store.col_users_[at] = t.user;
      store.col_tfs_[at] = t.tf;
      store.topic_tf_sum_[t.topic] += t.tf;
    }
  }
  return store;
}

float ProfileStore::Tf(VertexId v, TopicId w) const {
  auto row = UserProfile(v);
  auto it = std::lower_bound(
      row.begin(), row.end(), w,
      [](const ProfileEntry& e, TopicId topic) { return e.topic < topic; });
  if (it != row.end() && it->topic == w) return it->tf;
  return 0.0f;
}

}  // namespace kbtim

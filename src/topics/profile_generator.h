// Synthetic user-profile generator (substitute for the paper's LDA topics
// inferred from tweets / news text; see DESIGN.md).
//
// Properties matched to the paper's setting:
//  * profiles are sparse (a handful of topics per user) and per-user tf
//    weights sum to 1, like the Figure 1 examples;
//  * topic popularity is Zipfian (few popular topics, long tail);
//  * topics correlate with planted graph communities, so a targeted query
//    concentrates influence mass inside topic-relevant regions (the effect
//    Table 8 demonstrates qualitatively).
#ifndef KBTIM_TOPICS_PROFILE_GENERATOR_H_
#define KBTIM_TOPICS_PROFILE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "topics/profile_store.h"

namespace kbtim {

/// Options for the synthetic profile generator.
struct ProfileGeneratorOptions {
  /// Size of the topic space T.
  uint32_t num_topics = 50;

  /// Mean number of distinct topics per user (at least 1 is assigned).
  double mean_topics_per_user = 4.0;

  /// Zipf exponent of global topic popularity (topic 0 most popular).
  double zipf_exponent = 1.0;

  /// Probability that a user's topic is drawn from the preferred topics of
  /// the user's community instead of the global Zipf distribution.
  double community_affinity = 0.7;

  /// Number of preferred topics per community.
  uint32_t topics_per_community = 3;

  /// RNG seed.
  uint64_t seed = 7;
};

/// Generates profiles for `num_users` users. `community` may be empty (no
/// structure) or hold one label per user (as produced by
/// GenerateSocialGraph), in which case topic choice is community-biased.
StatusOr<ProfileStore> GenerateProfiles(
    uint32_t num_users, const std::vector<uint32_t>& community,
    const ProfileGeneratorOptions& options);

}  // namespace kbtim

#endif  // KBTIM_TOPICS_PROFILE_GENERATOR_H_

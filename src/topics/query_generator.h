// Synthetic keyword-query workload (substitute for the paper's AOL query
// log: 100 real queries per keyword-count 1..6, filtered to the topic
// vocabulary).
#ifndef KBTIM_TOPICS_QUERY_GENERATOR_H_
#define KBTIM_TOPICS_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "topics/profile_store.h"
#include "topics/query.h"

namespace kbtim {

/// Options for the query-workload generator.
struct QueryGeneratorOptions {
  /// Number of queries to generate per keyword count.
  uint32_t queries_per_length = 20;

  /// Smallest and largest keyword count (inclusive); the paper used 1..6.
  uint32_t min_keywords = 1;
  uint32_t max_keywords = 6;

  /// Seed-set size attached to every query.
  uint32_t k = 30;

  /// RNG seed.
  uint64_t seed = 11;
};

/// Generates queries whose keywords are drawn (without replacement within a
/// query) proportionally to each topic's total tf mass, mimicking the skew
/// of a real ad-keyword workload. Queries are ordered by keyword count.
StatusOr<std::vector<Query>> GenerateQueries(
    const ProfileStore& profiles, const QueryGeneratorOptions& options);

}  // namespace kbtim

#endif  // KBTIM_TOPICS_QUERY_GENERATOR_H_

#include "topics/vocabulary.h"

#include <unordered_set>

namespace kbtim {
namespace {

// Seed names echo the paper's running examples and §6.6 case study.
const char* const kSeedNames[] = {
    "music",    "book",     "sport",   "car",      "travel",  "software",
    "journal",  "movie",    "food",    "fashion",  "finance", "health",
    "games",    "politics", "science", "art",      "photo",   "fitness",
    "pets",     "education"};

}  // namespace

StatusOr<Vocabulary> Vocabulary::FromNames(std::vector<std::string> names) {
  std::unordered_set<std::string> seen;
  for (const auto& n : names) {
    if (!seen.insert(n).second) {
      return Status::InvalidArgument("duplicate topic name: " + n);
    }
  }
  Vocabulary v;
  v.names_ = std::move(names);
  return v;
}

Vocabulary Vocabulary::Synthetic(uint32_t num_topics) {
  Vocabulary v;
  v.names_.reserve(num_topics);
  const uint32_t seeded = std::size(kSeedNames);
  for (uint32_t i = 0; i < num_topics; ++i) {
    if (i < seeded) {
      v.names_.emplace_back(kSeedNames[i]);
    } else {
      v.names_.push_back("topic_" + std::to_string(i));
    }
  }
  return v;
}

TopicId Vocabulary::Find(const std::string& name) const {
  for (TopicId i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return kInvalidTopic;
}

}  // namespace kbtim

// LEB128 variable-length integer coding (RocksDB/LevelDB-style API).
#ifndef KBTIM_STORAGE_VARINT_H_
#define KBTIM_STORAGE_VARINT_H_

#include <cstdint>
#include <string>

namespace kbtim {

/// Appends v to *dst using 1-5 bytes.
void PutVarint32(std::string* dst, uint32_t v);

/// Appends v to *dst using 1-10 bytes.
void PutVarint64(std::string* dst, uint64_t v);

/// Parses a varint32 from [p, limit). Returns the pointer just past the
/// value, or nullptr if the input is truncated or malformed.
const char* GetVarint32(const char* p, const char* limit, uint32_t* value);

/// Parses a varint64 from [p, limit); same contract as GetVarint32.
const char* GetVarint64(const char* p, const char* limit, uint64_t* value);

/// Encoded size in bytes of v as a varint.
size_t VarintLength(uint64_t v);

}  // namespace kbtim

#endif  // KBTIM_STORAGE_VARINT_H_

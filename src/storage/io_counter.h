// Global disk-I/O accounting.
//
// The paper reports the number of I/O operations per query (Table 6) and
// the number of RR sets loaded (Figures 5-7). All index reads go through
// RandomAccessFile, which records one read operation plus the byte count
// here; benchmarks snapshot/reset around each query.
#ifndef KBTIM_STORAGE_IO_COUNTER_H_
#define KBTIM_STORAGE_IO_COUNTER_H_

#include <cstdint>

namespace kbtim {

/// A snapshot of I/O counters.
struct IoStats {
  uint64_t read_ops = 0;
  uint64_t read_bytes = 0;

  IoStats operator-(const IoStats& other) const {
    return {read_ops - other.read_ops, read_bytes - other.read_bytes};
  }
};

/// Process-wide atomic I/O counters.
class IoCounter {
 public:
  /// Records one read operation of `bytes` bytes.
  static void RecordRead(uint64_t bytes);

  /// Current totals.
  static IoStats Snapshot();

  /// Zeroes the counters.
  static void Reset();
};

}  // namespace kbtim

#endif  // KBTIM_STORAGE_IO_COUNTER_H_

// Batch integer-decode kernels: the hot loops under the index codecs.
//
// The per-integer decode paths (LEB128 byte-at-a-time, bit-unpack with a
// shift register) cost a branch per byte; on the cold query path they sit
// between the disk read and the NRA loop, so they gate end-to-end latency.
// These kernels dispatch ONCE per block and then run branch-free inner
// loops over whole groups:
//   * BitUnpackBatch — fixed-width unpack via unaligned 64-bit loads, one
//     load+shift+mask per value (unrolled, auto-vectorizable), with byte-
//     granular specializations for widths 8/16/32;
//   * GroupVarintEncode/Decode — Google-style group varint: one control
//     byte per 4 values (2 bits each = byte length - 1) followed by the
//     1-4 byte little-endian payloads, decoded with a masked 32-bit load
//     per value instead of a byte loop.
// Every kernel has a scalar fallback with identical output; the global
// batch switch exists so benchmarks can ablate batch vs scalar on the
// same binary (BENCH_pipeline.json) and tests can assert equivalence.
#ifndef KBTIM_STORAGE_DECODE_KERNELS_H_
#define KBTIM_STORAGE_DECODE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/varint.h"

namespace kbtim {

/// Unrolled varint fast path: with 5 readable bytes there is no per-byte
/// limit check; the general decoder handles buffer tails. Byte-identical
/// results to GetVarint32 on valid input.
inline const char* FastVarint32(const char* p, const char* limit,
                                uint32_t* v) {
  if (limit - p >= 5) {
    uint32_t b = static_cast<uint8_t>(p[0]);
    if (b < 0x80) {
      *v = b;
      return p + 1;
    }
    uint32_t result = b & 0x7F;
    b = static_cast<uint8_t>(p[1]);
    if (b < 0x80) {
      *v = result | (b << 7);
      return p + 2;
    }
    result |= (b & 0x7F) << 7;
    b = static_cast<uint8_t>(p[2]);
    if (b < 0x80) {
      *v = result | (b << 14);
      return p + 3;
    }
    result |= (b & 0x7F) << 14;
    b = static_cast<uint8_t>(p[3]);
    if (b < 0x80) {
      *v = result | (b << 21);
      return p + 4;
    }
    result |= (b & 0x7F) << 21;
    b = static_cast<uint8_t>(p[4]);
    if (b > 0x0F) return nullptr;  // overflow
    *v = result | (b << 28);
    return p + 5;
  }
  return GetVarint32(p, limit, v);
}

inline const char* FastVarint64(const char* p, const char* limit,
                                uint64_t* v) {
  if (p < limit) {
    const auto byte = static_cast<uint8_t>(*p);
    if (byte < 0x80) {
      *v = byte;
      return p + 1;
    }
  }
  return GetVarint64(p, limit, v);
}

/// Process-wide switch between the batch kernels and the scalar fallbacks.
/// Defaults to batch; flip for ablation runs. Thread-safe (relaxed atomic);
/// both settings produce bit-identical decodes.
void SetBatchDecodeEnabled(bool enabled);
bool BatchDecodeEnabled();

/// Fixed-width unpack of n values of `bits` bits (little-endian bit order,
/// same layout as BitPack). Returns bytes consumed, or 0 if `avail` is too
/// small. Requires bits <= 32. This is the batch kernel; callers normally
/// go through BitUnpack, which dispatches on BatchDecodeEnabled().
size_t BitUnpackBatch(const char* p, size_t avail, size_t n, uint32_t bits,
                      uint32_t* out);

/// Appends the group-varint encoding of `values` to *out: full groups of 4
/// as control byte + payloads, then a final partial group (same control
/// byte layout, unused lanes encode nothing). Self-delimiting only
/// together with a known count.
void GroupVarintEncode(std::span<const uint32_t> values, std::string* out);

/// Decodes `count` group-varint values from [p, limit) into out. Returns
/// the pointer just past the last payload byte, or nullptr on truncation.
/// Dispatches between the masked-load fast path and the scalar fallback
/// on BatchDecodeEnabled().
const char* GroupVarintDecode(const char* p, const char* limit,
                              size_t count, uint32_t* out);

namespace decode_detail {
inline uint64_t Load64(const char* p) {
  uint64_t v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
}  // namespace decode_detail

/// Decodes ONE PforCodec-framed list starting at p (count varint, then
/// 128-value blocks of width byte + packed payload + exceptions),
/// APPENDING the values to `out` — the monomorphic hot path under the
/// index partition decoders, which parse thousands of few-element lists
/// per partition and cannot afford the virtual-dispatch + sub-view +
/// temp-buffer-then-copy framing of PforCodec::Decode (defined inline so
/// the whole decode stack flattens into the partition loops). `limit` is
/// the enclosing buffer's end (bounds checks run against it, so no
/// per-list sub-view is needed); block bodies with 8 slack bytes before
/// `limit` unpack inline, branch-free per value. Returns the pointer just
/// past the list and sets *added to the value count, or returns nullptr
/// on corruption (out is restored to its prior size). Appended values are
/// bit-identical to PforCodec::Decode on the same bytes.
inline const char* PforDecodeAppend(const char* p, const char* limit,
                                    std::vector<uint32_t>& out,
                                    size_t* added) {
  uint64_t count = 0;
  p = FastVarint64(p, limit, &count);
  // Anti-OOM sanity bound before the resize: every 128-value block costs
  // at least 2 bytes (width byte + exception count), even at width 0.
  if (p == nullptr ||
      count > static_cast<uint64_t>(limit - p) * 64 + 128) {
    return nullptr;
  }
  const size_t old_size = out.size();
  out.resize(old_size + count);
  uint32_t* dst = out.data() + old_size;
  size_t produced = 0;
  while (produced < count) {
    const size_t len = count - produced < 128 ? count - produced : 128;
    if (p >= limit) break;
    const uint32_t bits = static_cast<uint8_t>(*p++);
    if (bits > 32) break;
    if (bits == 0) {
      __builtin_memset(dst + produced, 0, len * sizeof(uint32_t));
    } else {
      const size_t need = (len * bits + 7) >> 3;
      if (bits <= 25 && static_cast<size_t>(limit - p) >= need + 8) {
        // Inline unpack: one unaligned 64-bit load + shift + mask per
        // value (the 8 slack bytes make every load safe). This is the
        // dominant case — short lists parsed out of a large buffer.
        const uint32_t mask = (uint32_t{1} << bits) - 1;
        uint32_t* o = dst + produced;
        uint64_t bit = 0;
        size_t i = 0;
        for (; i + 4 <= len; i += 4, bit += 4 * bits) {
          using decode_detail::Load64;
          o[i] = static_cast<uint32_t>(Load64(p + (bit >> 3)) >>
                                       (bit & 7)) &
                 mask;
          o[i + 1] = static_cast<uint32_t>(
                         Load64(p + ((bit + bits) >> 3)) >>
                         ((bit + bits) & 7)) &
                     mask;
          o[i + 2] = static_cast<uint32_t>(
                         Load64(p + ((bit + 2 * bits) >> 3)) >>
                         ((bit + 2 * bits) & 7)) &
                     mask;
          o[i + 3] = static_cast<uint32_t>(
                         Load64(p + ((bit + 3 * bits) >> 3)) >>
                         ((bit + 3 * bits) & 7)) &
                     mask;
        }
        for (; i < len; ++i, bit += bits) {
          o[i] = static_cast<uint32_t>(
                     decode_detail::Load64(p + (bit >> 3)) >> (bit & 7)) &
                 mask;
        }
        p += need;
      } else {
        const size_t used = BitUnpackBatch(
            p, static_cast<size_t>(limit - p), len, bits, dst + produced);
        if (used == 0) break;
        p += used;
      }
    }
    uint32_t num_exceptions = 0;
    p = FastVarint32(p, limit, &num_exceptions);
    if (p == nullptr) break;
    bool bad_exception = false;
    for (uint32_t e = 0; e < num_exceptions; ++e) {
      uint32_t pos = 0, overflow = 0;
      p = FastVarint32(p, limit, &pos);
      if (p == nullptr) break;
      p = FastVarint32(p, limit, &overflow);
      if (p == nullptr || pos >= len) {
        bad_exception = p == nullptr || pos >= len;
        break;
      }
      dst[produced + pos] |= bits >= 32 ? 0 : overflow << bits;
    }
    if (p == nullptr || bad_exception) break;
    produced += len;
  }
  if (produced != count) {
    out.resize(old_size);  // corruption: leave the caller's data intact
    return nullptr;
  }
  *added = count;
  return p;
}

/// PforDecodeAppend into buf[0, *out_len) (cleared first).
const char* PforDecodeList(const char* p, const char* limit,
                           std::vector<uint32_t>& buf, size_t* out_len);

}  // namespace kbtim

#endif  // KBTIM_STORAGE_DECODE_KERNELS_H_

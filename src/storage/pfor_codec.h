// Integer-sequence codecs for the on-disk RR / inverted-list payloads.
//
// The paper compresses its indexes with FastPFOR (as shipped in Lucene
// 4.6); we implement the same codec family from scratch:
//  * RawCodec    — little-endian u32s, the "uncompressed" mode of Table 4;
//  * VarintCodec — LEB128 per value (fallback / tiny lists);
//  * PforCodec   — patched frame-of-reference: 128-value blocks, per-block
//    bit width chosen by exhaustive cost search, out-of-range values stored
//    as (position, overflow) exception pairs;
//  * GroupVarintCodec — byte-aligned groups of 4 with a control byte,
//    decoded whole-group-at-a-time (decode_kernels.h).
// Sorted id lists should be delta-encoded first (DeltaEncode/DeltaDecode);
// the index layer does this for inverted lists and sorted RR sets.
#ifndef KBTIM_STORAGE_PFOR_CODEC_H_
#define KBTIM_STORAGE_PFOR_CODEC_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kbtim {

/// Abstract reversible u32-sequence codec.
class IntCodec {
 public:
  virtual ~IntCodec() = default;

  /// Appends the encoding of `values` to *out (self-delimiting).
  virtual void Encode(std::span<const uint32_t> values,
                      std::string* out) const = 0;

  /// Decodes a full buffer previously produced by Encode into *out
  /// (cleared first). Returns Corruption on malformed input.
  virtual Status Decode(std::string_view data,
                        std::vector<uint32_t>* out) const = 0;

  /// Stable codec name ("raw", "varint", "pfor").
  virtual const char* Name() const = 0;
};

/// Identity coding: 4 bytes per value.
class RawCodec final : public IntCodec {
 public:
  void Encode(std::span<const uint32_t> values,
              std::string* out) const override;
  Status Decode(std::string_view data,
                std::vector<uint32_t>* out) const override;
  const char* Name() const override { return "raw"; }
};

/// LEB128 per value.
class VarintCodec final : public IntCodec {
 public:
  void Encode(std::span<const uint32_t> values,
              std::string* out) const override;
  Status Decode(std::string_view data,
                std::vector<uint32_t>* out) const override;
  const char* Name() const override { return "varint"; }
};

/// Patched frame-of-reference with 128-value blocks.
class PforCodec final : public IntCodec {
 public:
  void Encode(std::span<const uint32_t> values,
              std::string* out) const override;
  Status Decode(std::string_view data,
                std::vector<uint32_t>* out) const override;
  const char* Name() const override { return "pfor"; }

  /// Values per block.
  static constexpr size_t kBlockSize = 128;
};

/// Group varint (Google style): one control byte per 4 values holding the
/// byte length (1-4) of each, then the little-endian payloads. Decodes a
/// whole group per dispatch with masked 32-bit loads (decode_kernels.h),
/// trading a little space vs LEB128 for much higher decode throughput.
class GroupVarintCodec final : public IntCodec {
 public:
  void Encode(std::span<const uint32_t> values,
              std::string* out) const override;
  Status Decode(std::string_view data,
                std::vector<uint32_t>* out) const override;
  const char* Name() const override { return "gvarint"; }
};

/// Codec selection for index files.
enum class CodecKind : uint8_t {
  kRaw = 0,
  kVarint = 1,
  kPfor = 2,
  kGroupVarint = 3,
};

/// Factory; never returns null.
std::unique_ptr<IntCodec> MakeCodec(CodecKind kind);

/// In-place delta coding of a non-decreasing sequence: {a0, a1, ...} ->
/// {a0, a1-a0, ...}. Inputs must be sorted ascending.
void DeltaEncode(std::vector<uint32_t>* values);

/// Inverse of DeltaEncode.
void DeltaDecode(std::vector<uint32_t>* values);

}  // namespace kbtim

#endif  // KBTIM_STORAGE_PFOR_CODEC_H_

// Counted file I/O primitives for the disk-based indexes.
#ifndef KBTIM_STORAGE_BLOCK_FILE_H_
#define KBTIM_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace kbtim {

/// Sequential append-only writer.
class FileWriter {
 public:
  /// Creates (truncates) the file.
  static StatusOr<std::unique_ptr<FileWriter>> Create(
      const std::string& path);

  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Appends bytes.
  Status Append(std::string_view data);

  /// Current file offset (== bytes written).
  uint64_t offset() const { return offset_; }

  /// Flushes and closes; further Appends fail.
  Status Close();

 private:
  FileWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
  uint64_t offset_ = 0;
};

/// Positional reader; every Read records one I/O op in IoCounter.
class RandomAccessFile {
 public:
  /// Opens an existing file.
  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly n bytes at `offset` into *out (resized). Returns
  /// IOError / OutOfRange on short reads.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

}  // namespace kbtim

#endif  // KBTIM_STORAGE_BLOCK_FILE_H_

// Counted file I/O primitives for the disk-based indexes.
#ifndef KBTIM_STORAGE_BLOCK_FILE_H_
#define KBTIM_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace kbtim {

/// Sequential append-only writer.
class FileWriter {
 public:
  /// Creates (truncates) the file.
  static StatusOr<std::unique_ptr<FileWriter>> Create(
      const std::string& path);

  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Appends bytes.
  Status Append(std::string_view data);

  /// Current file offset (== bytes written).
  uint64_t offset() const { return offset_; }

  /// Flushes and closes; further Appends fail.
  Status Close();

 private:
  FileWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
  uint64_t offset_ = 0;
};

/// Positional reader; every Read/ReadView records one logical I/O op in
/// IoCounter (even when served zero-copy from the mapping), so Table-6
/// style benchmarks keep measuring the logical read pattern.
class RandomAccessFile {
 public:
  /// Opens an existing file. When `prefer_mmap` is true the whole file is
  /// additionally mapped read-only; ReadView then serves zero-copy views.
  /// mmap failure (or an empty file) silently degrades to pread-only mode.
  /// Caveat inherent to mmap: truncating the file while it is mapped turns
  /// later view accesses into SIGBUS — index files are immutable once
  /// written, so only external tampering can trigger this.
  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path, bool prefer_mmap = false);

  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly n bytes at `offset` into *out (resized). Returns
  /// IOError / OutOfRange on short reads.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  /// Zero-copy read: returns a view of [offset, offset+n) into the mapping,
  /// valid for the lifetime of this file. FailedPrecondition when the file
  /// is not mmapped (use ReadOrCopy for transparent fallback).
  StatusOr<std::string_view> ReadView(uint64_t offset, size_t n) const;

  /// ReadView when mmapped, otherwise the copying Read into *scratch with
  /// the returned view pointing at the scratch buffer.
  StatusOr<std::string_view> ReadOrCopy(uint64_t offset, size_t n,
                                        std::string* scratch) const;

  /// True when ReadView is available.
  bool mmapped() const { return map_ != nullptr; }

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size, void* map)
      : path_(std::move(path)), fd_(fd), size_(size), map_(map) {}

  std::string path_;
  int fd_;
  uint64_t size_;
  void* map_ = nullptr;  // read-only whole-file mapping, or nullptr
};

}  // namespace kbtim

#endif  // KBTIM_STORAGE_BLOCK_FILE_H_

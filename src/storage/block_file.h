// Counted file I/O primitives for the disk-based indexes.
//
// Fault seam: when FaultInjector::Enabled(), every logical op (Append,
// Read, ReadView, ReadOrCopy) consults the process-global injector exactly
// once and applies its decision — error statuses, payload bit-flips (on
// copying paths only; a read-only mapping is never mutated), or latency.
// Disabled, the seam costs one relaxed atomic load per op.
#ifndef KBTIM_STORAGE_BLOCK_FILE_H_
#define KBTIM_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace kbtim {

/// Sequential append-only writer.
class FileWriter {
 public:
  /// Creates (truncates) the file.
  static StatusOr<std::unique_ptr<FileWriter>> Create(
      const std::string& path);

  /// Crash-safe variant: writes to `<path>.tmp`; Close() fsyncs the data,
  /// atomically renames the temp file over `path`, and fsyncs the parent
  /// directory, so readers only ever observe the old file, no file, or
  /// the complete new file — never a torn prefix. Destroying the writer
  /// without a successful Close unlinks the temp file.
  static StatusOr<std::unique_ptr<FileWriter>> CreateAtomic(
      const std::string& path);

  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Appends bytes.
  Status Append(std::string_view data);

  /// Current file offset (== bytes written).
  uint64_t offset() const { return offset_; }

  /// Flushes and closes; further Appends fail. For CreateAtomic writers
  /// this is the publication point (fsync + rename + dir fsync); any
  /// failure unlinks the temp file and leaves the destination untouched.
  Status Close();

 private:
  FileWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;        // the file being written (temp path if atomic)
  std::string final_path_;  // atomic mode: rename target; empty otherwise
  std::FILE* file_;
  uint64_t offset_ = 0;
};

/// Positional reader; every Read/ReadView records one logical I/O op in
/// IoCounter (even when served zero-copy from the mapping), so Table-6
/// style benchmarks keep measuring the logical read pattern.
class RandomAccessFile {
 public:
  /// Opens an existing file. When `prefer_mmap` is true the whole file is
  /// additionally mapped read-only; ReadView then serves zero-copy views.
  /// mmap failure (or an empty file) silently degrades to pread-only mode.
  /// The mapped size is recorded at Open; if the file later shrinks under
  /// the map (external truncation), ReadView fails closed with kIOError
  /// instead of letting a view access SIGBUS, and ReadOrCopy degrades to
  /// the pread path, which reports a clean error for the missing range.
  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path, bool prefer_mmap = false);

  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly n bytes at `offset` into *out (resized). Returns
  /// IOError / OutOfRange on short reads.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  /// Zero-copy read: returns a view of [offset, offset+n) into the mapping,
  /// valid for the lifetime of this file. FailedPrecondition when the file
  /// is not mmapped (use ReadOrCopy for transparent fallback); kIOError when
  /// the file shrank under the map and the range is no longer backed.
  StatusOr<std::string_view> ReadView(uint64_t offset, size_t n) const;

  /// ReadView when mmapped, otherwise the copying Read into *scratch with
  /// the returned view pointing at the scratch buffer. Also takes the
  /// copying path when the mapping is stale (truncated under us) or when
  /// an injected bit-flip must materialize in a mutable buffer.
  StatusOr<std::string_view> ReadOrCopy(uint64_t offset, size_t n,
                                        std::string* scratch) const;

  /// True when ReadView is available.
  bool mmapped() const { return map_ != nullptr; }

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size, void* map)
      : path_(std::move(path)), fd_(fd), size_(size), map_(map) {}

  /// kIOError if the file has shrunk below [offset, offset+n) since Open —
  /// accessing that range through the map would SIGBUS.
  Status CheckMapBacked(uint64_t offset, size_t n) const;

  // Fault-free primitives; the public wrappers consult the injector once
  // and delegate here, so a fallback inside ReadOrCopy never double-counts
  // an op against the fault schedule.
  Status ReadNoFault(uint64_t offset, size_t n, std::string* out) const;
  StatusOr<std::string_view> ViewNoFault(uint64_t offset, size_t n) const;

  std::string path_;
  int fd_;
  uint64_t size_;  // size at Open == mapped length when mmapped
  void* map_ = nullptr;  // read-only whole-file mapping, or nullptr
};

}  // namespace kbtim

#endif  // KBTIM_STORAGE_BLOCK_FILE_H_

#include "storage/crc32c.h"

#include <cstring>

namespace kbtim {
namespace crc32c {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[8][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? kPoly ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFFu];
      }
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = T();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;

  // Byte-at-a-time until the pointer is 8-byte aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xFFu];
    --n;
  }
  // Slice-by-8: fold one 64-bit word per iteration. The memcpy load is
  // little-endian; the table construction assumes it (x86-64/AArch64).
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= c;
    c = tb.t[7][w & 0xFFu] ^ tb.t[6][(w >> 8) & 0xFFu] ^
        tb.t[5][(w >> 16) & 0xFFu] ^ tb.t[4][(w >> 24) & 0xFFu] ^
        tb.t[3][(w >> 32) & 0xFFu] ^ tb.t[2][(w >> 40) & 0xFFu] ^
        tb.t[1][(w >> 48) & 0xFFu] ^ tb.t[0][(w >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xFFu];
    --n;
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace kbtim

#include "storage/varint.h"

namespace kbtim {

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

const char* GetVarint32(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    const auto byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    } else {
      if (shift == 28 && byte > 0x0F) return nullptr;  // overflow
      result |= static_cast<uint32_t>(byte) << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    const auto byte = static_cast<uint8_t>(*p++);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      if (shift == 63 && byte > 0x01) return nullptr;  // overflow
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace kbtim

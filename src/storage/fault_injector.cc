#include "storage/fault_injector.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

namespace kbtim {
namespace {

// Armed flag lives outside the singleton so Enabled() is a single relaxed
// load with no function-local-static guard on the hot path.
std::atomic<bool> g_fault_injection_armed{false};

// splitmix64: cheap, well-mixed stateless hash for (seed, rule, match)
// keyed decisions. Stateless keying is what makes the random mode replay
// exactly for an identical match sequence.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a hash value.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

bool FaultInjector::Enabled() {
  return g_fault_injection_armed.load(std::memory_order_relaxed);
}

void FaultInjector::Arm(FaultPlan plan) {
  MutexLock lock(&mu_);
  rules_.clear();
  rules_.reserve(plan.rules.size());
  for (FaultRule& rule : plan.rules) {
    RuleState state;
    state.rule = std::move(rule);
    rules_.push_back(std::move(state));
  }
  seed_ = plan.seed;
  stats_ = FaultInjectorStats{};
  g_fault_injection_armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  g_fault_injection_armed.store(false, std::memory_order_relaxed);
}

FaultDecision FaultInjector::Consult(FaultOp op, const std::string& path,
                                     size_t n) {
  FaultDecision decision;
  MutexLock lock(&mu_);
  ++stats_.consults;
  for (size_t i = 0; i < rules_.size(); ++i) {
    RuleState& state = rules_[i];
    const FaultRule& rule = state.rule;
    if (rule.op != op) continue;
    if (!rule.path_substring.empty() &&
        path.find(rule.path_substring) == std::string::npos) {
      continue;
    }
    const uint64_t match = state.matched++;
    if (match < rule.first_op) continue;
    if (rule.max_faults != 0 && state.fired >= rule.max_faults) continue;
    if (rule.probability < 1.0) {
      const uint64_t h = Mix64(seed_ ^ Mix64(i + 1) ^ Mix64(match));
      if (ToUnit(h) >= rule.probability) continue;
    }
    ++state.fired;
    switch (rule.kind) {
      case FaultKind::kIOError:
        ++stats_.io_errors;
        decision.status =
            Status::IOError("injected I/O error on " + path);
        return decision;
      case FaultKind::kShortRead:
        ++stats_.short_reads;
        decision.status =
            Status::IOError("injected short read on " + path);
        return decision;
      case FaultKind::kBitFlip: {
        ++stats_.bit_flips;
        const uint64_t h = Mix64(seed_ ^ Mix64((i + 1) * 0x51ed) ^
                                 Mix64(state.fired));
        decision.flip = true;
        decision.flip_offset = n == 0 ? 0 : h % n;
        decision.flip_mask =
            static_cast<uint8_t>(1u << ((h >> 17) & 7u));
        if (decision.flip_mask == 0) decision.flip_mask = 1;
        return decision;
      }
      case FaultKind::kLatency:
        ++stats_.latencies;
        decision.sleep_ms = rule.latency_ms;
        return decision;
    }
  }
  return decision;
}

void FaultInjector::ApplyLatency(const FaultDecision& decision) const {
  if (decision.sleep_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(decision.sleep_ms));
}

FaultInjectorStats FaultInjector::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace kbtim

#include "storage/bitpacking.h"

#include "storage/decode_kernels.h"

namespace kbtim {

size_t BitPackedSize(size_t n, uint32_t bits) {
  return (n * bits + 7) / 8;
}

void BitPack(const uint32_t* values, size_t n, uint32_t bits,
             std::string* out) {
  if (bits == 0 || n == 0) return;
  const uint32_t mask =
      bits >= 32 ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1);
  uint64_t buffer = 0;
  uint32_t filled = 0;
  for (size_t i = 0; i < n; ++i) {
    buffer |= static_cast<uint64_t>(values[i] & mask) << filled;
    filled += bits;
    while (filled >= 8) {
      out->push_back(static_cast<char>(buffer & 0xFF));
      buffer >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) out->push_back(static_cast<char>(buffer & 0xFF));
}

size_t BitUnpack(const char* p, size_t avail, size_t n, uint32_t bits,
                 uint32_t* out) {
  if (BatchDecodeEnabled()) return BitUnpackBatch(p, avail, n, bits, out);
  if (bits == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return 0;
  }
  const size_t need = BitPackedSize(n, bits);
  if (avail < need) return 0;
  const uint32_t mask =
      bits >= 32 ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1);
  uint64_t buffer = 0;
  uint32_t filled = 0;
  size_t consumed = 0;
  for (size_t i = 0; i < n; ++i) {
    while (filled < bits) {
      buffer |= static_cast<uint64_t>(static_cast<uint8_t>(p[consumed++]))
                << filled;
      filled += 8;
    }
    out[i] = static_cast<uint32_t>(buffer) & mask;
    buffer >>= bits;
    filled -= bits;
  }
  return need;
}

}  // namespace kbtim

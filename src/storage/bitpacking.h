// Fixed-width little-endian bit packing, the kernel under the PFOR codec.
#ifndef KBTIM_STORAGE_BITPACKING_H_
#define KBTIM_STORAGE_BITPACKING_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace kbtim {

/// Bytes needed to pack n values at `bits` bits each.
size_t BitPackedSize(size_t n, uint32_t bits);

/// Appends the low `bits` bits of each of the n values to *out
/// (little-endian bit order). `bits` must be <= 32. Values are masked; the
/// caller handles overflow (PFOR stores overflow as exceptions).
void BitPack(const uint32_t* values, size_t n, uint32_t bits,
             std::string* out);

/// Unpacks n values of `bits` bits from p (with `avail` readable bytes)
/// into out. Returns the number of bytes consumed, or 0 if `avail` is too
/// small.
size_t BitUnpack(const char* p, size_t avail, size_t n, uint32_t bits,
                 uint32_t* out);

}  // namespace kbtim

#endif  // KBTIM_STORAGE_BITPACKING_H_

// CRC32C (Castagnoli) checksums for the on-disk index formats.
//
// Software slice-by-8 kernel: eight 256-entry lookup tables let the inner
// loop consume 8 bytes per iteration, which keeps verification well under
// the decode cost of a block (the cold-path budget in BENCH_pipeline.json
// allows <= 5% p50 regression from verify-on-read). Checksums are stored
// *masked* (RocksDB idiom): rotating and offsetting the raw CRC prevents
// the degenerate case where a file region that itself contains CRCs is
// re-CRC'd to a fixed point.
#ifndef KBTIM_STORAGE_CRC32C_H_
#define KBTIM_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace kbtim {
namespace crc32c {

/// Extends `crc` — the checksum of some preceding byte string A — with
/// data[0, n), returning the checksum of the concatenation A + data.
/// Extend(Extend(0, a), b) == Value(a + b).
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// Checksum of data[0, n).
inline uint32_t Value(const void* data, size_t n) {
  return Extend(0, data, n);
}

/// Masks a raw CRC for storage.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8u;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace kbtim

#endif  // KBTIM_STORAGE_CRC32C_H_

// Deterministic fault injection for the storage layer.
//
// Every logical I/O op (RandomAccessFile reads, FileWriter appends)
// consults the process-global FaultInjector when it is armed. A fault
// plan is a list of rules; each rule scopes itself by path substring and
// op direction, then fires on a deterministic schedule over the sequence
// of ops that match it:
//
//   * [first_op, first_op + max_faults) with probability 1.0 — an exact
//     op-count window (the schedule tests and the determinism suite use
//     this: the same serial op stream always hits the same faults), or
//   * probability p < 1.0 — a seeded coin keyed on (seed, rule, match
//     index), so even the random mode replays identically for an
//     identical match sequence.
//
// Fault kinds model the failure taxonomy the serving stack hardens
// against (see README "Failure model"):
//   * kIOError    — the op fails with Status::IOError (transient: nothing
//                   about the file changed, a retry may succeed).
//   * kShortRead  — the op fails like a torn read (also kIOError to the
//                   caller, distinct message + counter).
//   * kBitFlip    — the op succeeds but one payload byte is corrupted
//                   (reads: in the returned copy, never in the backing
//                   file or mmap; writes: in the bytes that hit disk).
//                   Decoders must fail closed with kCorruption.
//   * kLatency    — the op succeeds after sleeping `latency_ms` (tail
//                   amplification; no error surfaced).
//
// Cost when disarmed: one relaxed atomic load per logical op — the same
// global-toggle idiom as SetBatchDecodeEnabled / SetSkipSamplingEnabled.
// Arm()/Disarm() are test/bench entry points; production code never arms.
#ifndef KBTIM_STORAGE_FAULT_INJECTOR_H_
#define KBTIM_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace kbtim {

/// Which direction of I/O a rule applies to. File ops are consulted by the
/// storage primitives; socket ops by src/net's Socket (the "path" of a
/// socket op is its peer label "host:port", so rules scope to one shard).
enum class FaultOp : uint8_t {
  kRead = 0,      ///< RandomAccessFile::Read / ReadView / ReadOrCopy.
  kWrite = 1,     ///< FileWriter::Append.
  kConnect = 2,   ///< Socket::Connect (TCP connect + handshake).
  kNetRead = 3,   ///< Socket::RecvAll.
  kNetWrite = 4,  ///< Socket::SendAll.
};

/// What happens when a rule fires (see file comment for semantics).
enum class FaultKind : uint8_t {
  kIOError = 0,
  kShortRead = 1,
  kBitFlip = 2,
  kLatency = 3,
};

/// One injection rule. Ops that contain `path_substring` in their path and
/// match `op` advance the rule's private match counter; the schedule below
/// decides which of those matches fire.
struct FaultRule {
  std::string path_substring;  ///< "" matches every path.
  FaultOp op = FaultOp::kRead;
  FaultKind kind = FaultKind::kIOError;

  /// Matches [first_op, first_op + max_faults) are fault candidates.
  uint64_t first_op = 0;
  /// Cap on fired faults for this rule (0 = unlimited).
  uint64_t max_faults = 0;
  /// Candidate matches fire with this probability (1.0 = always; < 1.0
  /// draws a seeded, match-indexed coin — deterministic for a fixed
  /// match sequence).
  double probability = 1.0;

  /// kLatency only: how long the op sleeps.
  double latency_ms = 0.0;
};

/// A full plan: rules plus the seed for coins / bit positions.
struct FaultPlan {
  std::vector<FaultRule> rules;
  uint64_t seed = 1;
};

/// Monotonic injection counters (since the last Arm).
struct FaultInjectorStats {
  uint64_t consults = 0;      ///< Ops that consulted an armed injector.
  uint64_t io_errors = 0;     ///< kIOError faults fired.
  uint64_t short_reads = 0;   ///< kShortRead faults fired.
  uint64_t bit_flips = 0;     ///< kBitFlip faults fired.
  uint64_t latencies = 0;     ///< kLatency faults fired.

  uint64_t total_faults() const {
    return io_errors + short_reads + bit_flips + latencies;
  }
};

/// What the I/O primitive must do for one op. At most one of the error /
/// mutation effects is set.
struct FaultDecision {
  Status status;           ///< Non-OK: fail the op with this status.
  bool flip = false;       ///< Corrupt one byte of the payload copy.
  uint64_t flip_offset = 0;  ///< Byte index to corrupt (caller mods by n).
  uint8_t flip_mask = 1;     ///< XOR mask (never 0).
  double sleep_ms = 0.0;   ///< Sleep before serving the op.
};

/// Process-global injector. Thread-safe; consult order across threads is
/// whatever the op interleaving is, so determinism guarantees hold for
/// deterministic op sequences (serial query streams, fixed schedules).
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// True when a plan is armed (relaxed atomic; the only cost when off).
  static bool Enabled();

  /// Installs `plan`, resets rule counters + stats, enables injection.
  void Arm(FaultPlan plan) EXCLUDES(mu_);

  /// Disables injection (stats survive until the next Arm).
  void Disarm();

  /// Decides what happens to one logical op. Only call when Enabled().
  FaultDecision Consult(FaultOp op, const std::string& path, size_t n)
      EXCLUDES(mu_);

  /// Convenience for callers that want the sleep applied here.
  void ApplyLatency(const FaultDecision& decision) const;

  FaultInjectorStats stats() const EXCLUDES(mu_);

 private:
  FaultInjector() = default;

  struct RuleState {
    FaultRule rule;
    uint64_t matched = 0;  ///< Ops that matched this rule so far.
    uint64_t fired = 0;    ///< Faults this rule has injected.
  };

  mutable Mutex mu_;
  std::vector<RuleState> rules_ GUARDED_BY(mu_);
  uint64_t seed_ GUARDED_BY(mu_) = 1;
  FaultInjectorStats stats_ GUARDED_BY(mu_);
};

}  // namespace kbtim

#endif  // KBTIM_STORAGE_FAULT_INJECTOR_H_

#include "storage/block_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "storage/fault_injector.h"
#include "storage/io_counter.h"

namespace kbtim {
namespace {

// fsyncs the directory containing `path` so a just-renamed entry survives
// a crash. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

StatusOr<std::unique_ptr<FileWriter>> FileWriter::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  return std::unique_ptr<FileWriter>(new FileWriter(path, f));
}

StatusOr<std::unique_ptr<FileWriter>> FileWriter::CreateAtomic(
    const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + tmp);
  auto writer = std::unique_ptr<FileWriter>(new FileWriter(tmp, f));
  writer->final_path_ = path;
  return writer;
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    // An atomic writer abandoned before Close never publishes — and never
    // leaves a torn temp file for a later opendir scan to trip over.
    if (!final_path_.empty()) ::unlink(path_.c_str());
  }
}

Status FileWriter::Append(std::string_view data) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer closed: " + path_);
  }
  if (FaultInjector::Enabled()) {
    FaultInjector& injector = FaultInjector::Instance();
    const FaultDecision decision =
        injector.Consult(FaultOp::kWrite, path_, data.size());
    if (!decision.status.ok()) return decision.status;
    injector.ApplyLatency(decision);
    if (decision.flip && !data.empty()) {
      std::string corrupted(data);
      corrupted[decision.flip_offset % corrupted.size()] ^=
          static_cast<char>(decision.flip_mask);
      if (std::fwrite(corrupted.data(), 1, corrupted.size(), file_) !=
          corrupted.size()) {
        return Status::IOError("short write: " + path_);
      }
      offset_ += corrupted.size();
      return Status::OK();
    }
  }
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IOError("short write: " + path_);
  }
  offset_ += data.size();
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  if (final_path_.empty()) {
    const int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::IOError("close failed: " + path_);
    return Status::OK();
  }
  // Atomic publication: data fsync -> close -> rename -> dir fsync. Any
  // failure before the rename leaves the destination untouched.
  Status failed;
  if (std::fflush(file_) != 0) {
    failed = Status::IOError("flush failed: " + path_);
  } else if (::fsync(::fileno(file_)) != 0) {
    failed = Status::IOError("fsync failed: " + path_);
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (failed.ok() && rc != 0) {
    failed = Status::IOError("close failed: " + path_);
  }
  if (failed.ok() && ::rename(path_.c_str(), final_path_.c_str()) != 0) {
    failed = Status::IOError("rename failed: " + path_ + " -> " +
                             final_path_);
  }
  if (!failed.ok()) {
    ::unlink(path_.c_str());
    return failed;
  }
  SyncParentDir(final_path_);
  return Status::OK();
}

StatusOr<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path, bool prefer_mmap) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed: " + path);
  }
  const auto size = static_cast<uint64_t>(st.st_size);
  void* map = nullptr;
  if (prefer_mmap && size > 0) {
    map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (map == MAP_FAILED) map = nullptr;  // degrade to pread-only
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(path, fd, size, map));
}

RandomAccessFile::~RandomAccessFile() {
  if (map_ != nullptr) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::CheckMapBacked(uint64_t offset, size_t n) const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed: " + path_);
  }
  const auto current = static_cast<uint64_t>(st.st_size);
  if (current < size_ && offset + n > current) {
    return Status::IOError("file truncated under mapping: " + path_);
  }
  return Status::OK();
}

Status RandomAccessFile::ReadNoFault(uint64_t offset, size_t n,
                                     std::string* out) const {
  // Overflow-safe: `offset + n` could wrap for corrupt directory offsets.
  if (n > size_ || offset > size_ - n) {
    return Status::OutOfRange("read past EOF: " + path_);
  }
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, out->data() + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) return Status::IOError("pread failed: " + path_);
    if (got == 0) return Status::IOError("unexpected EOF: " + path_);
    done += static_cast<size_t>(got);
  }
  IoCounter::RecordRead(n);
  return Status::OK();
}

StatusOr<std::string_view> RandomAccessFile::ViewNoFault(uint64_t offset,
                                                         size_t n) const {
  if (map_ == nullptr) {
    return Status::FailedPrecondition("file not mmapped: " + path_);
  }
  if (n > size_ || offset > size_ - n) {
    return Status::OutOfRange("read past EOF: " + path_);
  }
  KBTIM_RETURN_IF_ERROR(CheckMapBacked(offset, n));
  IoCounter::RecordRead(n);
  return std::string_view(static_cast<const char*>(map_) + offset, n);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* out) const {
  if (FaultInjector::Enabled()) {
    FaultInjector& injector = FaultInjector::Instance();
    const FaultDecision decision =
        injector.Consult(FaultOp::kRead, path_, n);
    if (!decision.status.ok()) return decision.status;
    injector.ApplyLatency(decision);
    if (decision.flip) {
      KBTIM_RETURN_IF_ERROR(ReadNoFault(offset, n, out));
      if (!out->empty()) {
        (*out)[decision.flip_offset % out->size()] ^=
            static_cast<char>(decision.flip_mask);
      }
      return Status::OK();
    }
  }
  return ReadNoFault(offset, n, out);
}

StatusOr<std::string_view> RandomAccessFile::ReadView(uint64_t offset,
                                                      size_t n) const {
  if (FaultInjector::Enabled()) {
    FaultInjector& injector = FaultInjector::Instance();
    const FaultDecision decision =
        injector.Consult(FaultOp::kRead, path_, n);
    if (!decision.status.ok()) return decision.status;
    injector.ApplyLatency(decision);
    // A bit-flip cannot materialize in a read-only mapping; flips only
    // take effect on copying paths (Read / ReadOrCopy). The fault is
    // still counted so schedules stay aligned across access paths.
  }
  return ViewNoFault(offset, n);
}

StatusOr<std::string_view> RandomAccessFile::ReadOrCopy(
    uint64_t offset, size_t n, std::string* scratch) const {
  if (FaultInjector::Enabled()) {
    FaultInjector& injector = FaultInjector::Instance();
    const FaultDecision decision =
        injector.Consult(FaultOp::kRead, path_, n);
    if (!decision.status.ok()) return decision.status;
    injector.ApplyLatency(decision);
    if (decision.flip) {
      // Force the copying path so the flip lands in a mutable buffer,
      // never in the shared mapping other readers see.
      KBTIM_RETURN_IF_ERROR(ReadNoFault(offset, n, scratch));
      if (!scratch->empty()) {
        (*scratch)[decision.flip_offset % scratch->size()] ^=
            static_cast<char>(decision.flip_mask);
      }
      return std::string_view(*scratch);
    }
  }
  if (map_ != nullptr) {
    auto view = ViewNoFault(offset, n);
    // A stale mapping (file truncated under us) degrades to pread, which
    // reports a clean error for the missing range instead of a SIGBUS.
    if (view.ok() || view.status().code() != StatusCode::kIOError) {
      return view;
    }
  }
  KBTIM_RETURN_IF_ERROR(ReadNoFault(offset, n, scratch));
  return std::string_view(*scratch);
}

}  // namespace kbtim

#include "storage/block_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "storage/io_counter.h"

namespace kbtim {

StatusOr<std::unique_ptr<FileWriter>> FileWriter::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  return std::unique_ptr<FileWriter>(new FileWriter(path, f));
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWriter::Append(std::string_view data) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer closed: " + path_);
  }
  if (!data.empty() &&
      std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IOError("short write: " + path_);
  }
  offset_ += data.size();
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

StatusOr<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path, bool prefer_mmap) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat failed: " + path);
  }
  const auto size = static_cast<uint64_t>(st.st_size);
  void* map = nullptr;
  if (prefer_mmap && size > 0) {
    map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (map == MAP_FAILED) map = nullptr;  // degrade to pread-only
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(path, fd, size, map));
}

RandomAccessFile::~RandomAccessFile() {
  if (map_ != nullptr) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* out) const {
  // Overflow-safe: `offset + n` could wrap for corrupt directory offsets.
  if (n > size_ || offset > size_ - n) {
    return Status::OutOfRange("read past EOF: " + path_);
  }
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, out->data() + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) return Status::IOError("pread failed: " + path_);
    if (got == 0) return Status::IOError("unexpected EOF: " + path_);
    done += static_cast<size_t>(got);
  }
  IoCounter::RecordRead(n);
  return Status::OK();
}

StatusOr<std::string_view> RandomAccessFile::ReadView(uint64_t offset,
                                                      size_t n) const {
  if (map_ == nullptr) {
    return Status::FailedPrecondition("file not mmapped: " + path_);
  }
  if (n > size_ || offset > size_ - n) {
    return Status::OutOfRange("read past EOF: " + path_);
  }
  IoCounter::RecordRead(n);
  return std::string_view(static_cast<const char*>(map_) + offset, n);
}

StatusOr<std::string_view> RandomAccessFile::ReadOrCopy(
    uint64_t offset, size_t n, std::string* scratch) const {
  if (map_ != nullptr) return ReadView(offset, n);
  KBTIM_RETURN_IF_ERROR(Read(offset, n, scratch));
  return std::string_view(*scratch);
}

}  // namespace kbtim

#include "storage/io_counter.h"

#include <atomic>

namespace kbtim {
namespace {

std::atomic<uint64_t> g_read_ops{0};
std::atomic<uint64_t> g_read_bytes{0};

}  // namespace

void IoCounter::RecordRead(uint64_t bytes) {
  g_read_ops.fetch_add(1, std::memory_order_relaxed);
  g_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

IoStats IoCounter::Snapshot() {
  return {g_read_ops.load(std::memory_order_relaxed),
          g_read_bytes.load(std::memory_order_relaxed)};
}

void IoCounter::Reset() {
  g_read_ops.store(0, std::memory_order_relaxed);
  g_read_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace kbtim

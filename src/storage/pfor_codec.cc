#include "storage/pfor_codec.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"
#include "storage/bitpacking.h"
#include "storage/decode_kernels.h"
#include "storage/varint.h"

namespace kbtim {

void RawCodec::Encode(std::span<const uint32_t> values,
                      std::string* out) const {
  PutVarint64(out, values.size());
  const size_t old = out->size();
  out->resize(old + values.size() * sizeof(uint32_t));
  if (!values.empty()) {
    std::memcpy(out->data() + old, values.data(),
                values.size() * sizeof(uint32_t));
  }
}

Status RawCodec::Decode(std::string_view data,
                        std::vector<uint32_t>* out) const {
  out->clear();
  uint64_t count = 0;
  const char* p = GetVarint64(data.data(), data.data() + data.size(),
                              &count);
  if (p == nullptr) return Status::Corruption("raw codec: bad count");
  const size_t avail = static_cast<size_t>(data.data() + data.size() - p);
  if (avail < count * sizeof(uint32_t)) {
    return Status::Corruption("raw codec: truncated payload");
  }
  out->resize(count);
  if (count > 0) std::memcpy(out->data(), p, count * sizeof(uint32_t));
  return Status::OK();
}

void VarintCodec::Encode(std::span<const uint32_t> values,
                         std::string* out) const {
  PutVarint64(out, values.size());
  for (uint32_t v : values) PutVarint32(out, v);
}

Status VarintCodec::Decode(std::string_view data,
                           std::vector<uint32_t>* out) const {
  out->clear();
  const char* p = data.data();
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("varint codec: bad count");
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    p = GetVarint32(p, limit, &v);
    if (p == nullptr) return Status::Corruption("varint codec: truncated");
    out->push_back(v);
  }
  return Status::OK();
}

namespace {

// Chooses the bit width minimizing packed size + exception cost for one
// block. Exceptions cost ~1 byte position + varint overflow.
uint32_t ChooseWidth(std::span<const uint32_t> block) {
  uint32_t width_count[33] = {0};
  for (uint32_t v : block) ++width_count[BitWidth(v)];
  uint32_t best_bits = 32;
  size_t best_cost = BitPackedSize(block.size(), 32);
  for (uint32_t b = 0; b <= 32; ++b) {
    size_t exceptions = 0;
    for (uint32_t w = b + 1; w <= 32; ++w) exceptions += width_count[w];
    // Rough exception cost: 1 byte position + 2 bytes overflow varint.
    const size_t cost = BitPackedSize(block.size(), b) + exceptions * 3;
    if (cost < best_cost) {
      best_cost = cost;
      best_bits = b;
    }
  }
  return best_bits;
}

}  // namespace

void PforCodec::Encode(std::span<const uint32_t> values,
                       std::string* out) const {
  PutVarint64(out, values.size());
  for (size_t begin = 0; begin < values.size(); begin += kBlockSize) {
    const size_t len = std::min(kBlockSize, values.size() - begin);
    const auto block = values.subspan(begin, len);
    const uint32_t bits = ChooseWidth(block);
    out->push_back(static_cast<char>(bits));
    BitPack(block.data(), len, bits, out);
    // Exceptions: indices whose value needs more than `bits` bits.
    std::string exceptions;
    uint32_t num_exceptions = 0;
    for (size_t i = 0; i < len; ++i) {
      if (BitWidth(block[i]) > bits) {
        PutVarint32(&exceptions, static_cast<uint32_t>(i));
        PutVarint32(&exceptions,
                    bits >= 32 ? 0 : block[i] >> bits);
        ++num_exceptions;
      }
    }
    PutVarint32(out, num_exceptions);
    out->append(exceptions);
  }
  if (values.empty()) return;
}

Status PforCodec::Decode(std::string_view data,
                         std::vector<uint32_t>* out) const {
  out->clear();
  const char* p = data.data();
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("pfor: bad count");
  out->resize(count);
  size_t produced = 0;
  while (produced < count) {
    const size_t len = std::min<uint64_t>(kBlockSize, count - produced);
    if (p >= limit) return Status::Corruption("pfor: truncated block");
    const auto bits = static_cast<uint8_t>(*p++);
    if (bits > 32) return Status::Corruption("pfor: bad bit width");
    const size_t used = BitUnpack(
        p, static_cast<size_t>(limit - p), len, bits, out->data() + produced);
    if (bits != 0 && used == 0) {
      return Status::Corruption("pfor: truncated packed payload");
    }
    p += used;
    uint32_t num_exceptions = 0;
    p = GetVarint32(p, limit, &num_exceptions);
    if (p == nullptr) return Status::Corruption("pfor: bad exception count");
    for (uint32_t e = 0; e < num_exceptions; ++e) {
      uint32_t pos = 0, overflow = 0;
      p = GetVarint32(p, limit, &pos);
      if (p == nullptr) return Status::Corruption("pfor: bad exception pos");
      p = GetVarint32(p, limit, &overflow);
      if (p == nullptr) return Status::Corruption("pfor: bad exception val");
      if (pos >= len) return Status::Corruption("pfor: exception pos range");
      (*out)[produced + pos] |= overflow << bits;
    }
    produced += len;
  }
  return Status::OK();
}

void GroupVarintCodec::Encode(std::span<const uint32_t> values,
                              std::string* out) const {
  PutVarint64(out, values.size());
  GroupVarintEncode(values, out);
}

Status GroupVarintCodec::Decode(std::string_view data,
                                std::vector<uint32_t>* out) const {
  out->clear();
  const char* limit = data.data() + data.size();
  uint64_t count = 0;
  const char* p = GetVarint64(data.data(), limit, &count);
  if (p == nullptr) return Status::Corruption("gvarint codec: bad count");
  // Each value consumes at least one payload byte and each group of 4 one
  // control byte, so corrupt huge counts fail before allocating.
  const auto avail = static_cast<uint64_t>(limit - p);
  if (count > avail * 4) {
    return Status::Corruption("gvarint codec: count exceeds payload");
  }
  out->resize(count);
  if (GroupVarintDecode(p, limit, count, out->data()) == nullptr) {
    return Status::Corruption("gvarint codec: truncated");
  }
  return Status::OK();
}

std::unique_ptr<IntCodec> MakeCodec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kRaw:
      return std::make_unique<RawCodec>();
    case CodecKind::kVarint:
      return std::make_unique<VarintCodec>();
    case CodecKind::kPfor:
      return std::make_unique<PforCodec>();
    case CodecKind::kGroupVarint:
      return std::make_unique<GroupVarintCodec>();
  }
  return std::make_unique<RawCodec>();
}

void DeltaEncode(std::vector<uint32_t>* values) {
  for (size_t i = values->size(); i > 1; --i) {
    (*values)[i - 1] -= (*values)[i - 2];
  }
}

void DeltaDecode(std::vector<uint32_t>* values) {
  for (size_t i = 1; i < values->size(); ++i) {
    (*values)[i] += (*values)[i - 1];
  }
}

}  // namespace kbtim

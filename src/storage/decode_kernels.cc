#include "storage/decode_kernels.h"

#include <atomic>
#include <cstring>

#include "storage/bitpacking.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

std::atomic<bool> g_batch_decode{true};

inline uint64_t Load64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Scalar shift-register unpack, identical to the pre-batch BitUnpack body
/// (kept as the fallback and as the tail path of the batch kernel).
void UnpackScalar(const char* p, size_t n, uint32_t bits, uint32_t mask,
                  uint64_t start_bit, uint32_t* out) {
  const char* q = p + (start_bit >> 3);
  uint64_t buffer = 0;
  uint32_t filled = 0;
  // Pre-load the partial byte the first value starts in.
  uint32_t skip = static_cast<uint32_t>(start_bit & 7);
  if (skip != 0) {
    buffer = static_cast<uint8_t>(*q++) >> skip;
    filled = 8 - skip;
  }
  for (size_t i = 0; i < n; ++i) {
    while (filled < bits) {
      buffer |= static_cast<uint64_t>(static_cast<uint8_t>(*q++)) << filled;
      filled += 8;
    }
    out[i] = static_cast<uint32_t>(buffer) & mask;
    buffer >>= bits;
    filled -= bits;
  }
}

}  // namespace

void SetBatchDecodeEnabled(bool enabled) {
  g_batch_decode.store(enabled, std::memory_order_relaxed);
}

bool BatchDecodeEnabled() {
  return g_batch_decode.load(std::memory_order_relaxed);
}

size_t BitUnpackBatch(const char* p, size_t avail, size_t n, uint32_t bits,
                      uint32_t* out) {
  if (bits == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return 0;
  }
  const size_t need = BitPackedSize(n, bits);
  if (avail < need) return 0;
  if (n == 0) return need;

  // Byte-aligned widths decode as plain little-endian widening copies —
  // the compiler vectorizes these loops.
  if (bits == 32) {
    std::memcpy(out, p, n * sizeof(uint32_t));
    return need;
  }
  if (bits == 16) {
    for (size_t i = 0; i < n; ++i) {
      uint16_t v;
      std::memcpy(&v, p + 2 * i, 2);
      out[i] = v;
    }
    return need;
  }
  if (bits == 8) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(p[i]);
    }
    return need;
  }

  const uint32_t mask = (uint32_t{1} << bits) - 1;
  // Generic kernel: each value is extracted with ONE unaligned 64-bit load
  // at its starting byte plus a shift and mask (bits <= 25 guarantees the
  // value fits the loaded word even at bit offset 7; wider widths fall
  // back below). The loop is branch-free and unrolled 4x.
  //
  // A value starting at bit b reads bytes [b/8, b/8 + 8); stop the fast
  // path early enough that no load overruns `avail`.
  size_t fast = 0;
  if (bits <= 25 && avail >= 8) {
    // Value i loads bytes [(i*bits)/8, +8); when 8 slack bytes follow the
    // packed data every load is safe (the common case — short lists parsed
    // out of a large partition buffer — skips the division entirely).
    if (avail >= need + 8) {
      fast = n;
    } else {
      const uint64_t max_idx = (8 * (avail - 8) + 7) / bits;
      fast = max_idx + 1 < n ? static_cast<size_t>(max_idx + 1) : n;
    }
    size_t i = 0;
    for (; i + 4 <= fast; i += 4) {
      const uint64_t b0 = static_cast<uint64_t>(i) * bits;
      const uint64_t b1 = b0 + bits;
      const uint64_t b2 = b1 + bits;
      const uint64_t b3 = b2 + bits;
      out[i] = static_cast<uint32_t>(Load64(p + (b0 >> 3)) >> (b0 & 7)) &
               mask;
      out[i + 1] =
          static_cast<uint32_t>(Load64(p + (b1 >> 3)) >> (b1 & 7)) & mask;
      out[i + 2] =
          static_cast<uint32_t>(Load64(p + (b2 >> 3)) >> (b2 & 7)) & mask;
      out[i + 3] =
          static_cast<uint32_t>(Load64(p + (b3 >> 3)) >> (b3 & 7)) & mask;
    }
    for (; i < fast; ++i) {
      const uint64_t b = static_cast<uint64_t>(i) * bits;
      out[i] = static_cast<uint32_t>(Load64(p + (b >> 3)) >> (b & 7)) & mask;
    }
  }
  if (fast < n) {
    // Tail (or widths 26..31): scalar shift register from the exact bit
    // position, so no load ever touches past `avail`.
    UnpackScalar(p, n - fast, bits, mask, static_cast<uint64_t>(fast) * bits,
                 out + fast);
  }
  return need;
}

const char* PforDecodeList(const char* p, const char* limit,
                           std::vector<uint32_t>& buf, size_t* out_len) {
  buf.clear();
  return PforDecodeAppend(p, limit, buf, out_len);
}

void GroupVarintEncode(std::span<const uint32_t> values, std::string* out) {
  size_t i = 0;
  char payload[16];
  for (; i + 4 <= values.size(); i += 4) {
    uint8_t control = 0;
    size_t len = 0;
    for (size_t j = 0; j < 4; ++j) {
      const uint32_t v = values[i + j];
      const uint32_t bytes = v < (1u << 8)    ? 1
                             : v < (1u << 16) ? 2
                             : v < (1u << 24) ? 3
                                              : 4;
      control |= static_cast<uint8_t>((bytes - 1) << (2 * j));
      std::memcpy(payload + len, &v, 4);  // little-endian; keep low `bytes`
      len += bytes;
    }
    out->push_back(static_cast<char>(control));
    out->append(payload, len);
  }
  if (i < values.size()) {
    // Partial final group: same control byte, unused lanes stay length 1
    // in the control bits but emit no payload (the count delimits them).
    uint8_t control = 0;
    size_t len = 0;
    for (size_t j = 0; i + j < values.size(); ++j) {
      const uint32_t v = values[i + j];
      const uint32_t bytes = v < (1u << 8)    ? 1
                             : v < (1u << 16) ? 2
                             : v < (1u << 24) ? 3
                                              : 4;
      control |= static_cast<uint8_t>((bytes - 1) << (2 * j));
      std::memcpy(payload + len, &v, 4);
      len += bytes;
    }
    out->push_back(static_cast<char>(control));
    out->append(payload, len);
  }
}

namespace {

constexpr uint32_t kLenMask[5] = {0, 0xFFu, 0xFFFFu, 0xFFFFFFu, 0xFFFFFFFFu};

/// Scalar group decode: byte-accumulates each lane; never reads past the
/// exact payload bytes, so it doubles as the tail path.
const char* GroupDecodeScalar(const char* p, const char* limit, size_t count,
                              uint32_t* out) {
  size_t produced = 0;
  while (produced < count) {
    if (p >= limit) return nullptr;
    const uint8_t control = static_cast<uint8_t>(*p++);
    const size_t lanes = count - produced < 4 ? count - produced : 4;
    for (size_t j = 0; j < lanes; ++j) {
      const uint32_t bytes = ((control >> (2 * j)) & 3) + 1;
      if (p + bytes > limit) return nullptr;
      uint32_t v = 0;
      for (uint32_t b = 0; b < bytes; ++b) {
        v |= static_cast<uint32_t>(static_cast<uint8_t>(p[b])) << (8 * b);
      }
      p += bytes;
      out[produced + j] = v;
    }
    produced += lanes;
  }
  return p;
}

}  // namespace

const char* GroupVarintDecode(const char* p, const char* limit, size_t count,
                              uint32_t* out) {
  if (!BatchDecodeEnabled()) return GroupDecodeScalar(p, limit, count, out);
  // Fast path: a full group needs at most 1 + 16 payload bytes; each lane
  // decodes with one unaligned 32-bit load + mask. Stop before any load
  // could cross `limit` and finish with the exact scalar decoder.
  size_t produced = 0;
  while (produced + 4 <= count && p + 1 + 16 + 3 <= limit) {
    const uint8_t control = static_cast<uint8_t>(*p++);
    const uint32_t l0 = (control & 3) + 1;
    const uint32_t l1 = ((control >> 2) & 3) + 1;
    const uint32_t l2 = ((control >> 4) & 3) + 1;
    const uint32_t l3 = ((control >> 6) & 3) + 1;
    out[produced] = Load32(p) & kLenMask[l0];
    p += l0;
    out[produced + 1] = Load32(p) & kLenMask[l1];
    p += l1;
    out[produced + 2] = Load32(p) & kLenMask[l2];
    p += l2;
    out[produced + 3] = Load32(p) & kLenMask[l3];
    p += l3;
    produced += 4;
  }
  return GroupDecodeScalar(p, limit, count - produced, out + produced);
}

}  // namespace kbtim

#include "propagation/ic_rr_sampler.h"

#include <cmath>

namespace kbtim {

IcRrSampler::IcRrSampler(std::shared_ptr<const BucketedAdjacency> adjacency)
    : adjacency_(std::move(adjacency)),
      graph_(adjacency_->graph()),
      in_edge_prob_(adjacency_->edge_values()),
      visited_epoch_(graph_.num_vertices(), 0) {}

void IcRrSampler::ExpandBucketed(VertexId x, Rng& rng,
                                 std::vector<VertexId>* out) {
  using BucketKind = BucketedAdjacency::BucketKind;
  for (const BucketedAdjacency::Bucket& bucket : adjacency_->Buckets(x)) {
    const VertexId* t = adjacency_->BucketTargets(bucket);
    const uint32_t count = bucket.count();
    switch (bucket.kind()) {
      case BucketKind::kAll:
        for (uint32_t i = 0; i < count; ++i) Visit(t[i], out);
        break;
      case BucketKind::kThreshold: {
        // Two integer-threshold coins per 64-bit draw.
        const uint32_t threshold = bucket.threshold();
        uint32_t i = 0;
        for (; i + 2 <= count; i += 2) {
          const uint64_t draw = rng.NextU64();
          if (static_cast<uint32_t>(draw) < threshold) Visit(t[i], out);
          if (static_cast<uint32_t>(draw >> 32) < threshold) {
            Visit(t[i + 1], out);
          }
        }
        if (i < count &&
            static_cast<uint32_t>(rng.NextU64()) < threshold) {
          Visit(t[i], out);
        }
        break;
      }
      case BucketKind::kGeometric: {
        // Jump straight to the next accepted edge: the gap before it is
        // Geometric(p), i.e. floor(log U / log(1-p)) for U in (0, 1].
        // Single precision throughout — logf is the kernel's critical
        // path and float granularity only perturbs the effective p at
        // ~1e-7 relative. Positions advance in floats so an
        // astronomically large skip (U -> 0) stays finite-safe.
        const float inv_log1m = bucket.inv_log1m();
        const auto fcount = static_cast<float>(count);
        float pos = std::floor(std::log(1.0f - rng.NextFloat()) *
                               inv_log1m);
        while (pos < fcount) {
          Visit(t[static_cast<uint32_t>(pos)], out);
          pos += 1.0f + std::floor(std::log(1.0f - rng.NextFloat()) *
                                   inv_log1m);
        }
        break;
      }
    }
  }
}

void IcRrSampler::ExpandScalar(VertexId x, Rng& rng,
                               std::vector<VertexId>* out) {
  auto in = graph_.InNeighbors(x);
  const auto [first, last] = graph_.InEdgeRange(x);
  for (uint64_t i = first; i < last; ++i) {
    const VertexId u = in[i - first];
    if (visited_epoch_[u] == epoch_) continue;
    if (!rng.Bernoulli(in_edge_prob_[i])) continue;
    visited_epoch_[u] = epoch_;
    out->push_back(u);
  }
}

void IcRrSampler::Sample(VertexId root, Rng& rng,
                         std::vector<VertexId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: reset all marks once
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  visited_epoch_[root] = epoch_;
  out->push_back(root);
  const bool skip = SkipSamplingEnabled();
  // The growing RR set is the BFS queue (members are appended in
  // traversal order and never removed).
  size_t head = 0;
  while (head < out->size()) {
    const VertexId x = (*out)[head++];
    if (skip) {
      ExpandBucketed(x, rng, out);
    } else {
      ExpandScalar(x, rng, out);
    }
  }
}

}  // namespace kbtim

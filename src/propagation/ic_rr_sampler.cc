#include "propagation/ic_rr_sampler.h"

namespace kbtim {

IcRrSampler::IcRrSampler(const Graph& graph,
                         const std::vector<float>& in_edge_prob)
    : graph_(graph),
      in_edge_prob_(in_edge_prob),
      visited_epoch_(graph.num_vertices(), 0) {}

void IcRrSampler::Sample(VertexId root, Rng& rng,
                         std::vector<VertexId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: reset all marks once
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  visited_epoch_[root] = epoch_;
  out->push_back(root);
  queue_.clear();
  queue_.push_back(root);
  size_t head = 0;
  while (head < queue_.size()) {
    const VertexId x = queue_[head++];
    auto in = graph_.InNeighbors(x);
    const auto [first, last] = graph_.InEdgeRange(x);
    for (uint64_t i = first; i < last; ++i) {
      const VertexId u = in[i - first];
      if (visited_epoch_[u] == epoch_) continue;
      if (!rng.Bernoulli(in_edge_prob_[i])) continue;
      visited_epoch_[u] = epoch_;
      out->push_back(u);
      queue_.push_back(u);
    }
  }
}

}  // namespace kbtim

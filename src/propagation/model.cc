#include "propagation/model.h"

namespace kbtim {

const char* PropagationModelName(PropagationModel model) {
  switch (model) {
    case PropagationModel::kIndependentCascade:
      return "IC";
    case PropagationModel::kLinearThreshold:
      return "LT";
  }
  return "?";
}

std::vector<float> UniformIcProbabilities(const Graph& graph) {
  std::vector<float> probs(graph.num_edges(), 0.0f);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const uint32_t deg = graph.InDegree(v);
    if (deg == 0) continue;
    const float p = 1.0f / static_cast<float>(deg);
    auto [first, last] = graph.InEdgeRange(v);
    for (uint64_t i = first; i < last; ++i) probs[i] = p;
  }
  return probs;
}

std::vector<float> TrivalencyIcProbabilities(const Graph& graph, Rng& rng) {
  static constexpr float kLevels[3] = {0.1f, 0.01f, 0.001f};
  std::vector<float> probs(graph.num_edges());
  for (auto& p : probs) p = kLevels[rng.NextU32Below(3)];
  return probs;
}

std::vector<float> RandomLtWeights(const Graph& graph, Rng& rng) {
  std::vector<float> weights(graph.num_edges(), 0.0f);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto [first, last] = graph.InEdgeRange(v);
    if (first == last) continue;
    double sum = 0.0;
    for (uint64_t i = first; i < last; ++i) {
      const double x = rng.NextDouble() + 1e-9;
      weights[i] = static_cast<float>(x);
      sum += x;
    }
    for (uint64_t i = first; i < last; ++i) {
      weights[i] = static_cast<float>(weights[i] / sum);
    }
  }
  return weights;
}

}  // namespace kbtim

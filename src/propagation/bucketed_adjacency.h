// Probability-bucketed reverse adjacency: the shared substrate of the
// skip-ahead RR samplers.
//
// The scalar RR kernels pay one RNG draw (IC) or one weight load (LT) per
// SCANNED in-edge. On the graphs this system targets the per-vertex
// in-edge probabilities are heavily repeated — the weighted-cascade model
// assigns every in-edge of v the same 1/indeg(v), and trivalency draws
// from three constants — so grouping each vertex's in-edges by shared
// probability lets the samplers do work proportional to ACCEPTED edges:
//
//   * IC: within a bucket of m edges sharing probability p the accepted
//     positions form a Bernoulli(p) process; a geometric skip
//     k = floor(log(U) / log(1 - p)) jumps straight to the next accepted
//     edge (expected draws per bucket: m·p + 1, not m). Buckets where
//     skipping cannot win are classified at build time: p >= 1 buckets
//     accept everything with zero draws, and small/high-p buckets use an
//     integer-threshold Bernoulli that packs two edges per 64-bit draw.
//   * LT: the O(indeg) linear inversion scan becomes an O(1) alias-table
//     draw; the per-vertex tables are built lazily (first walk through a
//     vertex) into this shared structure and reused by every sampler.
//
// One immutable BucketedAdjacency is built next to the graph and shared by
// every sampler slot of every solver (WRIS worker slots, RIS workers, the
// index builder's keyword tasks, QueryService's per-worker solvers). Reads
// are wait-free; the lazy LT alias slots are published with a CAS, so
// concurrent walkers race benignly. The structure keeps references to the
// graph and the per-edge value array — both must outlive it.
#ifndef KBTIM_PROPAGATION_BUCKETED_ADJACENCY_H_
#define KBTIM_PROPAGATION_BUCKETED_ADJACENCY_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/alias_table.h"
#include "graph/graph.h"

namespace kbtim {

/// Immutable probability-bucketed reverse CSR with lazily materialized
/// per-vertex LT alias tables. Thread-safe for concurrent readers.
class BucketedAdjacency {
 public:
  /// Acceptance kernel chosen per bucket at build time (the choice is a
  /// pure function of (prob, count), so sampling stays deterministic).
  enum class BucketKind : uint8_t {
    kAll,        ///< prob >= 1: accept every edge, no RNG.
    kThreshold,  ///< per-edge integer-threshold Bernoulli (2 per draw).
    kGeometric,  ///< geometric skip to the next accepted edge.
  };

  /// One group of in-edges of a vertex sharing a probability value,
  /// packed to 16 bytes — sparse graphs are one bucket per vertex, and
  /// keeping the per-vertex metadata under the size of the per-edge
  /// probability array it replaces is what lets the skip path touch LESS
  /// memory than the scalar scan, not more:
  ///   * count/kind/flag share one word (in-degree < 2^29);
  ///   * aux is the kThreshold acceptance threshold OR the bit-cast
  ///     float 1/log(1-p) of kGeometric — never both;
  ///   * when a vertex's kept edges are exactly its CSR in-edge list
  ///     (single bucket, nothing dropped — the weighted-cascade common
  ///     case) `begin` indexes the graph's own in-neighbor array and no
  ///     copy is stored at all.
  struct Bucket {
    uint32_t begin = 0;       ///< Into BucketTargets()'s backing array.
    uint32_t count_kind = 0;  ///< count << 3 | targets_in_graph << 2 | kind.
    float prob = 0.0f;
    uint32_t aux = 0;

    uint32_t count() const { return count_kind >> 3; }
    BucketKind kind() const {
      return static_cast<BucketKind>(count_kind & 3u);
    }
    bool targets_in_graph() const { return (count_kind & 4u) != 0; }
    uint32_t threshold() const { return aux; }  ///< round(prob · 2^32).
    float inv_log1m() const { return std::bit_cast<float>(aux); }
  };
  static_assert(sizeof(Bucket) == 16);

  /// Buckets with p <= kGeoMaxProb and at least kGeoMinCount edges use the
  /// geometric skip; denser buckets fall back to the threshold kernel,
  /// whose per-edge cost is below the skip's log(). Tuned with
  /// bench_sampling_kernels' bucket-size sweep.
  static constexpr float kGeoMaxProb = 0.35f;
  static constexpr uint32_t kGeoMinCount = 8;

  /// LT walks consult the O(1) alias table only for vertices with at
  /// least this many in-edges; below it the O(d) linear inversion scan
  /// wins — it stops at the selected edge (~d/2 sequential floats, which
  /// hardware prefetch makes nearly free) while the alias lookup costs a
  /// handful of DEPENDENT cache misses. bench_sampling_kernels' LT sweep
  /// puts the crossover between d=32 (scan 0.85x of alias... i.e. scan
  /// faster) and d=128 (alias 1.4x) on this hardware. The threshold is
  /// on InDegree, so both kernels agree on which vertices diverge.
  static constexpr uint32_t kLtAliasMinDegree = 128;

  BucketedAdjacency() = default;
  BucketedAdjacency(BucketedAdjacency&&) = default;
  /// No move-assignment: the destructor owns the lazily published alias
  /// tables, and a defaulted assignment would drop the target's without
  /// deleting them. The type is immutable after Build — construct fresh.
  BucketedAdjacency& operator=(BucketedAdjacency&&) = delete;
  ~BucketedAdjacency();

  /// Groups every vertex's in-edges by probability value (stable: buckets
  /// are ordered by ascending probability, edges inside a bucket keep CSR
  /// order). Edges with value <= 0 are dropped — neither model can ever
  /// select them. `edge_values` is aligned with graph.InEdgeRange (IC
  /// probabilities or LT weights) and, like the graph, must outlive the
  /// structure.
  static BucketedAdjacency Build(const Graph& graph,
                                 const std::vector<float>& edge_values);

  /// Build() wrapped for sharing across sampler slots / solvers.
  static std::shared_ptr<const BucketedAdjacency> BuildShared(
      const Graph& graph, const std::vector<float>& edge_values);

  const Graph& graph() const { return *graph_; }
  const std::vector<float>& edge_values() const { return *edge_values_; }

  /// The probability buckets of v's in-edges (empty if none are > 0).
  std::span<const Bucket> Buckets(VertexId v) const {
    return {buckets_.data() + bucket_offsets_[v],
            buckets_.data() + bucket_offsets_[v + 1]};
  }

  /// The bucket's in-neighbors (count() entries, bucket edge order).
  const VertexId* BucketTargets(const Bucket& bucket) const {
    return (bucket.targets_in_graph() ? graph_->in_neighbors().data()
                                      : targets_.data()) +
           bucket.begin;
  }

  /// v's kept in-edges, contiguous across its buckets (the LT alias
  /// index space). Only meaningful when v has at least one bucket.
  const VertexId* VertexTargets(VertexId v) const {
    return BucketTargets(buckets_[bucket_offsets_[v]]);
  }

  /// Σ of v's in-edge values, accumulated in CSR order exactly like the
  /// linear LT scan — the residual-stop comparison of the alias walk and
  /// the scalar fallback agree bit for bit.
  double WeightSum(VertexId v) const { return weight_sum_[v]; }

  /// The alias table over v's kept in-edges (LT selection, Eqn. ∝ weight).
  /// Built on first use and cached; safe to call concurrently. Requires
  /// WeightSum(v) > 0. The returned index is local: the selected
  /// in-neighbor is targets(TargetBase(v))[index].
  const AliasTable& LtAlias(VertexId v) const;

 private:
  const Graph* graph_ = nullptr;
  const std::vector<float>* edge_values_ = nullptr;
  std::vector<uint32_t> bucket_offsets_;  ///< n + 1 entries into buckets_.
  std::vector<Bucket> buckets_;
  /// Reordered in-neighbors — ONLY for vertices whose kept edges are not
  /// their CSR list (multiple probability values, or zero-prob drops).
  std::vector<VertexId> targets_;
  std::vector<double> weight_sum_;
  /// Lazily published per-vertex alias tables (null until first LT walk).
  mutable std::unique_ptr<std::atomic<const AliasTable*>[]> lt_alias_;
};

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_BUCKETED_ADJACENCY_H_

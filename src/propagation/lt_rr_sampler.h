// LT-model RR sampler: reverse random walk.
//
// Under the linear threshold model's live-edge interpretation (Kempe et al.),
// each vertex independently selects at most one incoming edge, with edge
// (u -> v) chosen with probability w(u -> v) (and none with the residual
// 1 - Σw). The RR set of a root is therefore the path obtained by repeatedly
// stepping to the selected in-neighbor until a vertex with no selection is
// reached or the walk revisits a vertex.
#ifndef KBTIM_PROPAGATION_LT_RR_SAMPLER_H_
#define KBTIM_PROPAGATION_LT_RR_SAMPLER_H_

#include <vector>

#include "propagation/rr_sampler.h"

namespace kbtim {

/// Samples RR sets under linear threshold via the reverse-walk equivalence.
class LtRrSampler final : public RrSampler {
 public:
  LtRrSampler(const Graph& graph, const std::vector<float>& in_edge_weights);

  void Sample(VertexId root, Rng& rng, std::vector<VertexId>* out) override;

 private:
  const Graph& graph_;
  const std::vector<float>& in_edge_weights_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_LT_RR_SAMPLER_H_

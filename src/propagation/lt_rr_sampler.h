// LT-model RR sampler: reverse random walk.
//
// Under the linear threshold model's live-edge interpretation (Kempe et al.),
// each vertex independently selects at most one incoming edge, with edge
// (u -> v) chosen with probability w(u -> v) (and none with the residual
// 1 - Σw). The RR set of a root is therefore the path obtained by repeatedly
// stepping to the selected in-neighbor until a vertex with no selection is
// reached or the walk revisits a vertex.
//
// The default kernel makes each step O(1): one uniform draw decides the
// residual stop, and its renormalized value feeds the vertex's alias table
// (built lazily into the shared BucketedAdjacency) through
// AliasTable::SampleAt. Vertices below
// BucketedAdjacency::kLtAliasMinDegree keep the linear scan in both modes
// (the prefetch-friendly sequential scan beats the alias indirections
// until in-degrees reach the hundreds — see the bench's LT sweep).
// SetSkipSamplingEnabled(false) pins the original O(indeg) linear
// inversion scan everywhere. Both kernels consume exactly one draw per
// step — they stay in RNG lockstep, stop identically, select with
// identical probabilities, and pick the exact same edge whenever a
// vertex's in-weights are uniform.
#ifndef KBTIM_PROPAGATION_LT_RR_SAMPLER_H_
#define KBTIM_PROPAGATION_LT_RR_SAMPLER_H_

#include <memory>
#include <vector>

#include "propagation/rr_sampler.h"

namespace kbtim {

/// Samples RR sets under linear threshold via the reverse-walk equivalence.
class LtRrSampler final : public RrSampler {
 public:
  explicit LtRrSampler(std::shared_ptr<const BucketedAdjacency> adjacency);

  void Sample(VertexId root, Rng& rng, std::vector<VertexId>* out) override;

 private:
  std::shared_ptr<const BucketedAdjacency> adjacency_;
  const Graph& graph_;
  const std::vector<float>& in_edge_weights_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_LT_RR_SAMPLER_H_

#include "propagation/bucketed_adjacency.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kbtim {
namespace {

/// 32-bit acceptance threshold: P((uint32)draw < t) = t / 2^32 ≈ p. The
/// quantization error is <= 2^-32, far below anything the distribution
/// tests (or the solvers) can resolve.
uint32_t AcceptThreshold(float p) {
  const double scaled = static_cast<double>(p) * 4294967296.0;
  auto t = static_cast<uint64_t>(std::llround(scaled));
  if (t == 0) t = 1;  // p > 0 must stay acceptable
  if (t > 0xFFFFFFFFull) t = 0xFFFFFFFFull;
  return static_cast<uint32_t>(t);
}

constexpr uint32_t kKindMask = 3;
constexpr uint32_t kInGraphFlag = 4;
constexpr uint32_t kCountShift = 3;

}  // namespace

BucketedAdjacency::~BucketedAdjacency() {
  if (lt_alias_ == nullptr || graph_ == nullptr) return;
  const VertexId n = graph_->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    delete lt_alias_[v].load(std::memory_order_acquire);
  }
}

BucketedAdjacency BucketedAdjacency::Build(
    const Graph& graph, const std::vector<float>& edge_values) {
  // The packed 16-byte bucket limits the structure to < 2^32 edges and
  // < 2^29 in-degree — far beyond anything an in-memory uint32-vertex
  // CSR reaches before the neighbor arrays themselves blow the budget.
  assert(graph.num_edges() < (uint64_t{1} << 32));

  BucketedAdjacency adj;
  adj.graph_ = &graph;
  adj.edge_values_ = &edge_values;
  const VertexId n = graph.num_vertices();
  adj.bucket_offsets_.resize(n + 1, 0);
  adj.weight_sum_.resize(n, 0.0);
  adj.buckets_.reserve(n);
  adj.lt_alias_.reset(new std::atomic<const AliasTable*>[n]);
  for (VertexId v = 0; v < n; ++v) {
    adj.lt_alias_[v].store(nullptr, std::memory_order_relaxed);
  }

  // (value, local edge index) scratch, sorted per vertex: ascending value,
  // CSR order within a value — deterministic and stable, so a vertex whose
  // in-edges share one value keeps its CSR edge order exactly.
  std::vector<std::pair<float, uint32_t>> scratch;
  for (VertexId v = 0; v < n; ++v) {
    adj.bucket_offsets_[v] = static_cast<uint32_t>(adj.buckets_.size());
    const auto [first, last] = graph.InEdgeRange(v);
    const auto in = graph.InNeighbors(v);
    double sum = 0.0;
    scratch.clear();
    for (uint64_t i = first; i < last; ++i) {
      const float value = edge_values[i];
      sum += static_cast<double>(value);  // CSR order, like the linear scan
      if (value > 0.0f) {
        scratch.emplace_back(value, static_cast<uint32_t>(i - first));
      }
    }
    adj.weight_sum_[v] = sum;
    if (scratch.empty()) continue;
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second < b.second;
              });
    // Common case: every CSR in-edge kept under one probability — the
    // bucket aliases the graph's own neighbor slice, no copy.
    const bool csr_aliased =
        scratch.size() == in.size() && scratch.front().first ==
                                           scratch.back().first;
    size_t i = 0;
    while (i < scratch.size()) {
      const float p = scratch[i].first;
      size_t j = i;
      Bucket bucket;
      bucket.prob = p;
      if (csr_aliased) {
        bucket.begin = static_cast<uint32_t>(first);
        j = scratch.size();
      } else {
        bucket.begin = static_cast<uint32_t>(adj.targets_.size());
        while (j < scratch.size() && scratch[j].first == p) {
          adj.targets_.push_back(in[scratch[j].second]);
          ++j;
        }
      }
      const auto count = static_cast<uint32_t>(j - i);
      assert(count < (1u << 29));
      BucketKind kind;
      if (p >= 1.0f) {
        kind = BucketKind::kAll;
      } else if (p <= kGeoMaxProb && count >= kGeoMinCount &&
                 count < (1u << 24)) {
        // The float position arithmetic of the geometric kernel is exact
        // only below 2^24 edges per bucket; beyond that (never seen in
        // practice) the threshold kernel stays correct.
        kind = BucketKind::kGeometric;
        bucket.aux = std::bit_cast<uint32_t>(
            static_cast<float>(1.0 / std::log1p(-static_cast<double>(p))));
      } else {
        kind = BucketKind::kThreshold;
        bucket.aux = AcceptThreshold(p);
      }
      bucket.count_kind = (count << kCountShift) |
                          (csr_aliased ? kInGraphFlag : 0) |
                          static_cast<uint32_t>(kind);
      adj.buckets_.push_back(bucket);
      i = j;
    }
  }
  adj.bucket_offsets_[n] = static_cast<uint32_t>(adj.buckets_.size());
  adj.targets_.shrink_to_fit();
  return adj;
}

std::shared_ptr<const BucketedAdjacency> BucketedAdjacency::BuildShared(
    const Graph& graph, const std::vector<float>& edge_values) {
  return std::make_shared<const BucketedAdjacency>(
      Build(graph, edge_values));
}

const AliasTable& BucketedAdjacency::LtAlias(VertexId v) const {
  std::atomic<const AliasTable*>& slot = lt_alias_[v];
  const AliasTable* table = slot.load(std::memory_order_acquire);
  if (table != nullptr) return *table;

  // Build from the bucketed edge order (dropped zero-weight edges can
  // never be selected; the local index maps through VertexTargets(v)).
  // The table is a pure function of the weights, so racing builders
  // produce identical tables and the CAS loser's copy is discarded.
  std::vector<double> weights;
  for (const Bucket& bucket : Buckets(v)) {
    for (uint32_t i = 0; i < bucket.count(); ++i) {
      weights.push_back(static_cast<double>(bucket.prob));
    }
  }
  auto built = AliasTable::FromWeights(weights);
  auto* fresh = new AliasTable(std::move(built).value());
  const AliasTable* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;
  return *expected;
}

}  // namespace kbtim

#include "propagation/triggering.h"

#include <algorithm>

namespace kbtim {

void IcTriggering::Sample(const Graph& graph, VertexId v, Rng& rng,
                          std::vector<uint32_t>* positions) const {
  positions->clear();
  const auto [first, last] = graph.InEdgeRange(v);
  for (uint64_t i = first; i < last; ++i) {
    if (rng.Bernoulli(in_edge_prob_[i])) {
      positions->push_back(static_cast<uint32_t>(i - first));
    }
  }
}

void LtTriggering::Sample(const Graph& graph, VertexId v, Rng& rng,
                          std::vector<uint32_t>* positions) const {
  positions->clear();
  const auto [first, last] = graph.InEdgeRange(v);
  if (first == last) return;
  const double u = rng.NextDouble();
  double acc = 0.0;
  for (uint64_t i = first; i < last; ++i) {
    acc += in_edge_weights_[i];
    if (u < acc) {
      positions->push_back(static_cast<uint32_t>(i - first));
      return;
    }
  }
  // residual mass: empty triggering set
}

void CappedIcTriggering::Sample(const Graph& graph, VertexId v, Rng& rng,
                                std::vector<uint32_t>* positions) const {
  positions->clear();
  const auto [first, last] = graph.InEdgeRange(v);
  for (uint64_t i = first; i < last; ++i) {
    if (rng.Bernoulli(in_edge_prob_[i])) {
      positions->push_back(static_cast<uint32_t>(i - first));
    }
  }
  if (positions->size() <= cap_) return;
  // Keep a uniformly random subset of size cap_ (partial Fisher-Yates).
  for (uint32_t i = 0; i < cap_; ++i) {
    const auto j = i + static_cast<uint32_t>(rng.NextU64Below(
                           positions->size() - i));
    std::swap((*positions)[i], (*positions)[j]);
  }
  positions->resize(cap_);
  std::sort(positions->begin(), positions->end());
}

TriggeringRrSampler::TriggeringRrSampler(
    const Graph& graph, const TriggeringDistribution& distribution)
    : graph_(graph),
      distribution_(distribution),
      visited_epoch_(graph.num_vertices(), 0) {}

void TriggeringRrSampler::Sample(VertexId root, Rng& rng,
                                 std::vector<VertexId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }
  visited_epoch_[root] = epoch_;
  out->push_back(root);
  queue_.clear();
  queue_.push_back(root);
  size_t head = 0;
  while (head < queue_.size()) {
    const VertexId x = queue_[head++];
    // Each vertex is dequeued once per sample, so its triggering set is
    // drawn exactly once per world, as the model requires.
    distribution_.Sample(graph_, x, rng, &positions_);
    auto in = graph_.InNeighbors(x);
    for (uint32_t pos : positions_) {
      const VertexId u = in[pos];
      if (visited_epoch_[u] == epoch_) continue;
      visited_epoch_[u] = epoch_;
      out->push_back(u);
      queue_.push_back(u);
    }
  }
}

double EstimateTriggeringSpread(const Graph& graph,
                                const TriggeringDistribution& distribution,
                                std::span<const VertexId> seeds,
                                const SpreadEstimateOptions& options,
                                std::span<const double> vertex_weight) {
  if (seeds.empty() || options.num_simulations == 0) return 0.0;
  Rng rng(options.seed);
  const VertexId n = graph.num_vertices();
  std::vector<uint32_t> active_epoch(n, 0);
  std::vector<uint32_t> trig_epoch(n, 0);
  std::vector<std::vector<uint32_t>> trig_sets(n);
  std::vector<VertexId> frontier, next;
  uint32_t epoch = 0;

  double total = 0.0;
  for (uint32_t s = 0; s < options.num_simulations; ++s) {
    ++epoch;
    if (epoch == 0) {
      std::fill(active_epoch.begin(), active_epoch.end(), 0);
      std::fill(trig_epoch.begin(), trig_epoch.end(), 0);
      epoch = 1;
    }
    double world = 0.0;
    frontier.clear();
    for (VertexId v : seeds) {
      if (active_epoch[v] == epoch) continue;
      active_epoch[v] = epoch;
      frontier.push_back(v);
      world += vertex_weight.empty() ? 1.0 : vertex_weight[v];
    }
    while (!frontier.empty()) {
      next.clear();
      for (VertexId u : frontier) {
        for (VertexId y : graph.OutNeighbors(u)) {
          if (active_epoch[y] == epoch) continue;
          if (trig_epoch[y] != epoch) {
            trig_epoch[y] = epoch;
            distribution.Sample(graph, y, rng, &trig_sets[y]);
            std::sort(trig_sets[y].begin(), trig_sets[y].end());
          }
          // Does u sit in y's triggering set? Map u to its in-position.
          auto in = graph.InNeighbors(y);
          const auto it = std::lower_bound(in.begin(), in.end(), u);
          const auto pos = static_cast<uint32_t>(it - in.begin());
          if (!std::binary_search(trig_sets[y].begin(), trig_sets[y].end(),
                                  pos)) {
            continue;
          }
          active_epoch[y] = epoch;
          next.push_back(y);
          world += vertex_weight.empty() ? 1.0 : vertex_weight[y];
        }
      }
      frontier.swap(next);
    }
    total += world;
  }
  return total / static_cast<double>(options.num_simulations);
}

}  // namespace kbtim

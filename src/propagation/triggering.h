// The general triggering model (Kempe et al. [15]).
//
// Each vertex v independently draws a triggering set T_v from a
// distribution over subsets of its in-neighbors; v activates when any
// member of T_v is active. IC (independent per-edge coins) and LT (at most
// one in-neighbor, chosen by weight) are the two classic instances. The
// paper (§6.6) notes its RIS-based machinery supports any triggering
// model because vertex sampling is independent of the propagation model —
// this module makes that concrete: TriggeringRrSampler plugs into the same
// RrSampler interface the WRIS/RR/IRR stack consumes.
#ifndef KBTIM_PROPAGATION_TRIGGERING_H_
#define KBTIM_PROPAGATION_TRIGGERING_H_

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "propagation/forward_simulator.h"
#include "propagation/rr_sampler.h"

namespace kbtim {

/// Distribution over triggering sets: for a vertex v, samples which of its
/// in-neighbor POSITIONS (indices into Graph::InNeighbors(v)) belong to
/// T_v in this world.
class TriggeringDistribution {
 public:
  virtual ~TriggeringDistribution() = default;

  /// Clears *positions and fills it with the sampled triggering-set
  /// positions for v (each in [0, InDegree(v))).
  virtual void Sample(const Graph& graph, VertexId v, Rng& rng,
                      std::vector<uint32_t>* positions) const = 0;
};

/// IC as a triggering model: each in-edge joins T_v independently with its
/// probability. `in_edge_prob` is aligned with Graph::InEdgeRange.
class IcTriggering final : public TriggeringDistribution {
 public:
  explicit IcTriggering(const std::vector<float>& in_edge_prob)
      : in_edge_prob_(in_edge_prob) {}
  void Sample(const Graph& graph, VertexId v, Rng& rng,
              std::vector<uint32_t>* positions) const override;

 private:
  const std::vector<float>& in_edge_prob_;
};

/// LT as a triggering model: at most one in-neighbor, edge (u -> v) chosen
/// with probability w(u -> v), none with the residual mass.
class LtTriggering final : public TriggeringDistribution {
 public:
  explicit LtTriggering(const std::vector<float>& in_edge_weights)
      : in_edge_weights_(in_edge_weights) {}
  void Sample(const Graph& graph, VertexId v, Rng& rng,
              std::vector<uint32_t>* positions) const override;

 private:
  const std::vector<float>& in_edge_weights_;
};

/// A third instance beyond the paper's two: IC with attention capacity —
/// each edge flips its coin as in IC, but a user can be influenced by at
/// most `cap` sources per world (a uniformly random subset of the
/// successful coins is kept). cap = UINT32_MAX degenerates to plain IC.
class CappedIcTriggering final : public TriggeringDistribution {
 public:
  CappedIcTriggering(const std::vector<float>& in_edge_prob, uint32_t cap)
      : in_edge_prob_(in_edge_prob), cap_(cap) {}
  void Sample(const Graph& graph, VertexId v, Rng& rng,
              std::vector<uint32_t>* positions) const override;

 private:
  const std::vector<float>& in_edge_prob_;
  uint32_t cap_;
};

/// RR-set sampler for any triggering distribution: reverse BFS expanding
/// each visited vertex's sampled triggering set. With IcTriggering /
/// LtTriggering it is distribution-identical to the dedicated samplers.
class TriggeringRrSampler final : public RrSampler {
 public:
  /// Both references must outlive the sampler.
  TriggeringRrSampler(const Graph& graph,
                      const TriggeringDistribution& distribution);

  void Sample(VertexId root, Rng& rng, std::vector<VertexId>* out) override;

 private:
  const Graph& graph_;
  const TriggeringDistribution& distribution_;
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> queue_;
  std::vector<uint32_t> positions_;
};

/// Forward Monte-Carlo spread estimation under a triggering distribution:
/// triggering sets are sampled lazily on first contact per world. When
/// `vertex_weight` is non-empty it weights each activated vertex
/// (targeted spread); otherwise every vertex counts 1.
double EstimateTriggeringSpread(const Graph& graph,
                                const TriggeringDistribution& distribution,
                                std::span<const VertexId> seeds,
                                const SpreadEstimateOptions& options,
                                std::span<const double> vertex_weight = {});

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_TRIGGERING_H_

// Reverse-reachable (RR) set sampling (paper Definition 2).
//
// An RR set for root v on a random live-edge world G' contains every vertex
// that reaches v in G'. Samplers hold per-instance scratch state and are NOT
// thread-safe; create one per worker thread. Since PR 5 the model samplers
// run skip-ahead kernels over a shared probability-bucketed reverse
// adjacency (see bucketed_adjacency.h); the per-edge scalar kernels remain
// available behind SetSkipSamplingEnabled(false).
#ifndef KBTIM_PROPAGATION_RR_SAMPLER_H_
#define KBTIM_PROPAGATION_RR_SAMPLER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "propagation/bucketed_adjacency.h"
#include "propagation/model.h"

namespace kbtim {

/// Interface for model-specific RR-set samplers.
class RrSampler {
 public:
  virtual ~RrSampler() = default;

  /// Clears *out and fills it with one random RR set for `root` (always
  /// including the root itself). Order is traversal order, not sorted.
  virtual void Sample(VertexId root, Rng& rng,
                      std::vector<VertexId>* out) = 0;
};

/// Process-wide switch between the skip-ahead kernels (geometric IC
/// skipping + alias-table LT steps) and the scalar per-edge fallbacks.
/// Mirrors SetBatchDecodeEnabled: defaults to skip-ahead; flip for
/// ablation runs. Thread-safe (relaxed atomic). Both settings sample the
/// exact same RR-set distribution, but — unlike the decode switch — the
/// IC kernels consume the RNG stream differently, so a fixed seed draws
/// DIFFERENT (identically distributed) sets under each setting: pin one
/// setting when comparing golden seed sets. The LT kernels consume one
/// draw per walk step under both settings and coincide exactly whenever a
/// vertex's in-weights are uniform.
void SetSkipSamplingEnabled(bool enabled);
bool SkipSamplingEnabled();

/// Creates a sampler over a shared immutable bucketed adjacency — the
/// solver hot path: every sampler slot reuses ONE adjacency instead of
/// building per-slot state. The adjacency's model (IC probabilities vs LT
/// weights in its edge values) must match `model`.
std::unique_ptr<RrSampler> MakeRrSampler(
    PropagationModel model,
    std::shared_ptr<const BucketedAdjacency> adjacency);

/// Convenience overload that builds a private bucketed adjacency for this
/// one sampler (an O(E) build — fine for tests and one-shot tools; query
/// streams share one via the overload above). `in_edge_weights` must be
/// aligned with graph.InEdgeRange and outlive the sampler, as must the
/// graph.
std::unique_ptr<RrSampler> MakeRrSampler(
    PropagationModel model, const Graph& graph,
    const std::vector<float>& in_edge_weights);

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_RR_SAMPLER_H_

// Reverse-reachable (RR) set sampling (paper Definition 2).
//
// An RR set for root v on a random live-edge world G' contains every vertex
// that reaches v in G'. Samplers hold per-instance scratch state and are NOT
// thread-safe; create one per worker thread.
#ifndef KBTIM_PROPAGATION_RR_SAMPLER_H_
#define KBTIM_PROPAGATION_RR_SAMPLER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "propagation/model.h"

namespace kbtim {

/// Interface for model-specific RR-set samplers.
class RrSampler {
 public:
  virtual ~RrSampler() = default;

  /// Clears *out and fills it with one random RR set for `root` (always
  /// including the root itself). Order is traversal order, not sorted.
  virtual void Sample(VertexId root, Rng& rng,
                      std::vector<VertexId>* out) = 0;
};

/// Creates a sampler for the given model. `in_edge_weights` must be aligned
/// with graph.InEdgeRange (IC probabilities or LT weights) and outlive the
/// sampler, as must the graph.
std::unique_ptr<RrSampler> MakeRrSampler(
    PropagationModel model, const Graph& graph,
    const std::vector<float>& in_edge_weights);

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_RR_SAMPLER_H_

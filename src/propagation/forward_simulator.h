// Forward Monte-Carlo estimation of (targeted) influence spread.
//
// Used to evaluate result quality (the paper's Table 7): given a seed set S
// it estimates E[I(S)] or E[I^Q(S)] = E[Σ_{v ∈ I(S)} φ(v, Q)] by simulating
// the cascade many times.
#ifndef KBTIM_PROPAGATION_FORWARD_SIMULATOR_H_
#define KBTIM_PROPAGATION_FORWARD_SIMULATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"
#include "graph/graph.h"
#include "propagation/model.h"

namespace kbtim {

/// Options for Monte-Carlo spread estimation.
struct SpreadEstimateOptions {
  /// Number of independent cascade simulations.
  uint32_t num_simulations = 10000;

  /// Worker threads (simulations are split across them).
  uint32_t num_threads = 1;

  /// RNG seed.
  uint64_t seed = 123;
};

/// Monte-Carlo spread estimator for one (graph, weights, model) triple.
/// Thread-safe for concurrent Estimate* calls is NOT provided; construct per
/// use. The graph and weights must outlive the simulator.
class ForwardSimulator {
 public:
  ForwardSimulator(const Graph& graph, PropagationModel model,
                   const std::vector<float>& in_edge_weights);

  /// Estimates plain expected spread E[I(S)].
  double EstimateSpread(std::span<const VertexId> seeds,
                        const SpreadEstimateOptions& options) const;

  /// Estimates targeted expected spread E[Σ_{v ∈ I(S)} vertex_weight[v]];
  /// `vertex_weight` must have one entry per vertex (φ(v, Q) for Table 7).
  double EstimateWeightedSpread(std::span<const VertexId> seeds,
                                std::span<const double> vertex_weight,
                                const SpreadEstimateOptions& options) const;

 private:
  double Run(std::span<const VertexId> seeds,
             const double* vertex_weight,
             const SpreadEstimateOptions& options) const;

  const Graph& graph_;
  PropagationModel model_;
  const std::vector<float>& in_edge_weights_;
  // Per-out-edge weight, aligned with Graph::OutNeighbors traversal order,
  // derived once from the in-edge weights for cache-friendly forward walks.
  std::vector<float> out_edge_weights_;
};

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_FORWARD_SIMULATOR_H_

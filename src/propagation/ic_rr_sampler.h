// IC-model RR sampler: reverse BFS over live edges.
//
// The default kernel runs skip-ahead sampling over the shared
// probability-bucketed reverse adjacency: per bucket of in-edges sharing
// probability p it either accepts everything (p >= 1, no RNG), flips
// integer-threshold coins two edges per 64-bit draw, or draws geometric
// skips straight to the next accepted edge — work proportional to
// accepted edges instead of scanned edges. SetSkipSamplingEnabled(false)
// pins the original one-Bernoulli-per-in-edge scalar kernel (ablations
// and distribution-equivalence tests).
#ifndef KBTIM_PROPAGATION_IC_RR_SAMPLER_H_
#define KBTIM_PROPAGATION_IC_RR_SAMPLER_H_

#include <memory>
#include <vector>

#include "propagation/rr_sampler.h"

namespace kbtim {

/// Samples RR sets under independent cascade. Each incoming edge (u -> v)
/// is live independently with its probability; the RR set is the set of
/// vertices with a live path to the root.
class IcRrSampler final : public RrSampler {
 public:
  explicit IcRrSampler(std::shared_ptr<const BucketedAdjacency> adjacency);

  void Sample(VertexId root, Rng& rng, std::vector<VertexId>* out) override;

 private:
  /// Appends u to the RR set unless already visited. The RR set doubles
  /// as the BFS frontier: members in traversal order ARE the queue, so
  /// no second array is maintained.
  void Visit(VertexId u, std::vector<VertexId>* out) {
    if (visited_epoch_[u] == epoch_) return;
    visited_epoch_[u] = epoch_;
    out->push_back(u);
  }

  /// Skip-ahead expansion of one frontier vertex.
  void ExpandBucketed(VertexId x, Rng& rng, std::vector<VertexId>* out);
  /// The pre-PR-5 scalar kernel (one Bernoulli per in-edge, CSR order).
  void ExpandScalar(VertexId x, Rng& rng, std::vector<VertexId>* out);

  std::shared_ptr<const BucketedAdjacency> adjacency_;
  const Graph& graph_;
  const std::vector<float>& in_edge_prob_;
  // Epoch-stamped visited marks avoid O(n) clears per sample.
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_IC_RR_SAMPLER_H_

// IC-model RR sampler: reverse BFS flipping one coin per incoming edge.
#ifndef KBTIM_PROPAGATION_IC_RR_SAMPLER_H_
#define KBTIM_PROPAGATION_IC_RR_SAMPLER_H_

#include <vector>

#include "propagation/rr_sampler.h"

namespace kbtim {

/// Samples RR sets under independent cascade. Each incoming edge (u -> v)
/// is live independently with its probability; the RR set is the set of
/// vertices with a live path to the root.
class IcRrSampler final : public RrSampler {
 public:
  IcRrSampler(const Graph& graph, const std::vector<float>& in_edge_prob);

  void Sample(VertexId root, Rng& rng, std::vector<VertexId>* out) override;

 private:
  const Graph& graph_;
  const std::vector<float>& in_edge_prob_;
  // Epoch-stamped visited marks avoid O(n) clears per sample.
  std::vector<uint32_t> visited_epoch_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> queue_;
};

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_IC_RR_SAMPLER_H_

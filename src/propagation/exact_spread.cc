#include "propagation/exact_spread.h"

#include <algorithm>
#include <cmath>

namespace kbtim {
namespace {

struct LiveEdge {
  VertexId src;
  VertexId dst;
  double prob;
};

// Forward reachability weight from `seeds` over the live edges.
double ReachedWeight(std::span<const VertexId> seeds,
                     const std::vector<std::vector<VertexId>>& live_out,
                     std::span<const double> vertex_weight,
                     std::vector<char>* visited,
                     std::vector<VertexId>* stack) {
  std::fill(visited->begin(), visited->end(), 0);
  stack->clear();
  double total = 0.0;
  for (VertexId s : seeds) {
    if ((*visited)[s]) continue;
    (*visited)[s] = 1;
    stack->push_back(s);
    total += vertex_weight.empty() ? 1.0 : vertex_weight[s];
  }
  while (!stack->empty()) {
    const VertexId u = stack->back();
    stack->pop_back();
    for (VertexId v : live_out[u]) {
      if ((*visited)[v]) continue;
      (*visited)[v] = 1;
      stack->push_back(v);
      total += vertex_weight.empty() ? 1.0 : vertex_weight[v];
    }
  }
  return total;
}

StatusOr<double> ExactIc(const Graph& graph,
                         const std::vector<float>& probs,
                         std::span<const VertexId> seeds,
                         std::span<const double> vertex_weight) {
  const uint64_t m = graph.num_edges();
  if (m > 22) {
    return Status::InvalidArgument(
        "exact IC spread limited to graphs with <= 22 edges");
  }
  std::vector<LiveEdge> edges;
  edges.reserve(m);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto in = graph.InNeighbors(v);
    const auto [first, last] = graph.InEdgeRange(v);
    for (uint64_t i = first; i < last; ++i) {
      edges.push_back({in[i - first], v, static_cast<double>(probs[i])});
    }
  }
  std::vector<std::vector<VertexId>> live_out(graph.num_vertices());
  std::vector<char> visited(graph.num_vertices(), 0);
  std::vector<VertexId> stack;

  double expectation = 0.0;
  const uint64_t worlds = uint64_t{1} << m;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double prob = 1.0;
    for (auto& lo : live_out) lo.clear();
    for (uint64_t i = 0; i < m; ++i) {
      const bool live = (mask >> i) & 1;
      prob *= live ? edges[i].prob : 1.0 - edges[i].prob;
      if (prob == 0.0) break;
      if (live) live_out[edges[i].src].push_back(edges[i].dst);
    }
    if (prob == 0.0) continue;
    expectation += prob * ReachedWeight(seeds, live_out, vertex_weight,
                                        &visited, &stack);
  }
  return expectation;
}

StatusOr<double> ExactLt(const Graph& graph,
                         const std::vector<float>& weights,
                         std::span<const VertexId> seeds,
                         std::span<const double> vertex_weight) {
  const VertexId n = graph.num_vertices();
  double combos = 1.0;
  for (VertexId v = 0; v < n; ++v) {
    combos *= static_cast<double>(graph.InDegree(v)) + 1.0;
    if (combos > static_cast<double>(1 << 22)) {
      return Status::InvalidArgument(
          "exact LT spread: too many in-edge selection combinations");
    }
  }

  std::vector<std::vector<VertexId>> live_out(n);
  std::vector<char> visited(n, 0);
  std::vector<VertexId> stack;
  double expectation = 0.0;

  // Depth-first enumeration over each vertex's in-edge selection
  // (index d = InDegree(v) means "no edge selected", with residual mass).
  std::vector<uint32_t> choice(n, 0);
  std::vector<double> prefix_prob(n + 1, 1.0);
  VertexId v = 0;
  for (;;) {
    if (v == n) {
      if (prefix_prob[n] > 0.0) {
        for (auto& lo : live_out) lo.clear();
        for (VertexId x = 0; x < n; ++x) {
          const uint32_t c = choice[x];
          if (c < graph.InDegree(x)) {
            live_out[graph.InNeighbors(x)[c]].push_back(x);
          }
        }
        expectation +=
            prefix_prob[n] * ReachedWeight(seeds, live_out, vertex_weight,
                                           &visited, &stack);
      }
      // backtrack
      do {
        if (v == 0) return expectation;
        --v;
        ++choice[v];
      } while (choice[v] > graph.InDegree(v));
    }
    // compute probability of current choice at v
    const uint32_t deg = graph.InDegree(v);
    double p;
    if (choice[v] < deg) {
      p = weights[graph.InEdgeRange(v).first + choice[v]];
    } else {
      double sum = 0.0;
      const auto [first, last] = graph.InEdgeRange(v);
      for (uint64_t i = first; i < last; ++i) sum += weights[i];
      p = std::max(0.0, 1.0 - sum);
    }
    prefix_prob[v + 1] = prefix_prob[v] * p;
    ++v;
    if (v <= n - 1) choice[v] = 0;
    if (v == n) continue;
  }
}

}  // namespace

StatusOr<double> ExactExpectedSpread(
    const Graph& graph, PropagationModel model,
    const std::vector<float>& in_edge_weights,
    std::span<const VertexId> seeds,
    std::span<const double> vertex_weight) {
  if (!vertex_weight.empty() && vertex_weight.size() != graph.num_vertices()) {
    return Status::InvalidArgument("vertex_weight size mismatch");
  }
  for (VertexId s : seeds) {
    if (s >= graph.num_vertices()) {
      return Status::InvalidArgument("seed out of range");
    }
  }
  switch (model) {
    case PropagationModel::kIndependentCascade:
      return ExactIc(graph, in_edge_weights, seeds, vertex_weight);
    case PropagationModel::kLinearThreshold:
      return ExactLt(graph, in_edge_weights, seeds, vertex_weight);
  }
  return Status::InvalidArgument("unknown model");
}

StatusOr<ExactOptimum> ExactBestSeedSet(
    const Graph& graph, PropagationModel model,
    const std::vector<float>& in_edge_weights, uint32_t k,
    std::span<const double> vertex_weight) {
  const VertexId n = graph.num_vertices();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k out of range");
  }
  // Count C(n, k) with overflow care.
  double count = 1.0;
  for (uint32_t i = 0; i < k; ++i) {
    count *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  if (count > 200000.0) {
    return Status::InvalidArgument("too many seed-set combinations");
  }

  std::vector<VertexId> combo(k);
  for (uint32_t i = 0; i < k; ++i) combo[i] = i;
  ExactOptimum best;
  best.spread = -1.0;
  for (;;) {
    KBTIM_ASSIGN_OR_RETURN(
        double spread,
        ExactExpectedSpread(graph, model, in_edge_weights, combo,
                            vertex_weight));
    if (spread > best.spread + 1e-12) {
      best.spread = spread;
      best.seeds = combo;
    }
    // next combination
    int i = static_cast<int>(k) - 1;
    while (i >= 0 && combo[i] == n - k + i) --i;
    if (i < 0) break;
    ++combo[i];
    for (uint32_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }
  return best;
}

}  // namespace kbtim

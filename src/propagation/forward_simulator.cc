#include "propagation/forward_simulator.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace kbtim {
namespace {

/// Scratch state for one simulation worker; epoch-stamped to avoid clears.
struct SimScratch {
  explicit SimScratch(VertexId n)
      : active_epoch(n, 0), lt_acc(n, 0.0f), lt_threshold(n, 0.0f),
        lt_epoch(n, 0) {}

  std::vector<uint32_t> active_epoch;
  std::vector<float> lt_acc;
  std::vector<float> lt_threshold;
  std::vector<uint32_t> lt_epoch;
  std::vector<VertexId> frontier;
  std::vector<VertexId> next;
  uint32_t epoch = 0;
};

}  // namespace

ForwardSimulator::ForwardSimulator(const Graph& graph, PropagationModel model,
                                   const std::vector<float>& in_edge_weights)
    : graph_(graph), model_(model), in_edge_weights_(in_edge_weights) {
  // Re-index per-in-edge weights by out-edge position: for each edge
  // (u -> v) stored at in-position i of v, find its out-position in u's list.
  out_edge_weights_.assign(graph.num_edges(), 0.0f);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    auto in = graph.InNeighbors(v);
    const auto [first, last] = graph.InEdgeRange(v);
    for (uint64_t i = first; i < last; ++i) {
      const VertexId u = in[i - first];
      auto out = graph.OutNeighbors(u);
      const auto it = std::lower_bound(out.begin(), out.end(), v);
      const uint64_t base = &*out.begin() - graph.out_neighbors().data();
      out_edge_weights_[base + static_cast<uint64_t>(it - out.begin())] =
          in_edge_weights_[i];
    }
  }
}

double ForwardSimulator::EstimateSpread(
    std::span<const VertexId> seeds,
    const SpreadEstimateOptions& options) const {
  return Run(seeds, nullptr, options);
}

double ForwardSimulator::EstimateWeightedSpread(
    std::span<const VertexId> seeds, std::span<const double> vertex_weight,
    const SpreadEstimateOptions& options) const {
  return Run(seeds, vertex_weight.data(), options);
}

double ForwardSimulator::Run(std::span<const VertexId> seeds,
                             const double* vertex_weight,
                             const SpreadEstimateOptions& options) const {
  if (seeds.empty() || options.num_simulations == 0) return 0.0;
  const uint32_t nthreads = std::max<uint32_t>(1, options.num_threads);
  const uint32_t sims = options.num_simulations;
  std::vector<double> partial(nthreads, 0.0);
  std::vector<std::thread> threads;

  auto worker = [&](uint32_t tid) {
    Rng rng = Rng(options.seed).Fork(tid + 1);
    SimScratch scratch(graph_.num_vertices());
    const uint32_t lo = tid * sims / nthreads;
    const uint32_t hi = (tid + 1) * sims / nthreads;
    double sum = 0.0;
    for (uint32_t s = lo; s < hi; ++s) {
      ++scratch.epoch;
      if (scratch.epoch == 0) {
        std::fill(scratch.active_epoch.begin(), scratch.active_epoch.end(),
                  0);
        std::fill(scratch.lt_epoch.begin(), scratch.lt_epoch.end(), 0);
        scratch.epoch = 1;
      }
      double world = 0.0;
      scratch.frontier.clear();
      for (VertexId v : seeds) {
        if (scratch.active_epoch[v] == scratch.epoch) continue;
        scratch.active_epoch[v] = scratch.epoch;
        scratch.frontier.push_back(v);
        world += vertex_weight != nullptr ? vertex_weight[v] : 1.0;
      }
      while (!scratch.frontier.empty()) {
        scratch.next.clear();
        for (VertexId u : scratch.frontier) {
          auto out = graph_.OutNeighbors(u);
          const uint64_t base =
              out.empty() ? 0
                          : static_cast<uint64_t>(
                                out.data() - graph_.out_neighbors().data());
          for (size_t j = 0; j < out.size(); ++j) {
            const VertexId y = out[j];
            if (scratch.active_epoch[y] == scratch.epoch) continue;
            const float w = out_edge_weights_[base + j];
            bool activated = false;
            if (model_ == PropagationModel::kIndependentCascade) {
              activated = rng.Bernoulli(w);
            } else {
              // LT: lazily sample y's threshold, accumulate in-weight.
              if (scratch.lt_epoch[y] != scratch.epoch) {
                scratch.lt_epoch[y] = scratch.epoch;
                scratch.lt_acc[y] = 0.0f;
                scratch.lt_threshold[y] =
                    static_cast<float>(rng.NextDouble());
              }
              scratch.lt_acc[y] += w;
              activated = scratch.lt_acc[y] >= scratch.lt_threshold[y];
            }
            if (activated) {
              scratch.active_epoch[y] = scratch.epoch;
              scratch.next.push_back(y);
              world += vertex_weight != nullptr ? vertex_weight[y] : 1.0;
            }
          }
        }
        scratch.frontier.swap(scratch.next);
      }
      sum += world;
    }
    partial[tid] = sum;
  };

  if (nthreads == 1) {
    worker(0);
  } else {
    threads.reserve(nthreads);
    for (uint32_t t = 0; t < nthreads; ++t) threads.emplace_back(worker, t);
    for (auto& t : threads) t.join();
  }
  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(sims);
}

}  // namespace kbtim

// Exact expected-spread computation by exhaustive world enumeration.
//
// Tractable only for tiny graphs; used by unit tests as ground truth (the
// paper's Example 1 computes E[I({e,g})] = 4.8125 this way) and for
// brute-forcing optimal seed sets to validate the greedy approximation.
#ifndef KBTIM_PROPAGATION_EXACT_SPREAD_H_
#define KBTIM_PROPAGATION_EXACT_SPREAD_H_

#include <span>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "propagation/model.h"

namespace kbtim {

/// Exact E[I(S)] (or E[I^Q(S)] when `vertex_weight` is non-empty, one weight
/// per vertex) under the given model, by enumerating live-edge worlds.
/// IC enumerates all 2^m edge subsets and requires num_edges <= 22;
/// LT enumerates all per-vertex in-edge selections and requires the product
/// of (InDegree + 1) to be <= 2^22. Returns InvalidArgument beyond that.
StatusOr<double> ExactExpectedSpread(
    const Graph& graph, PropagationModel model,
    const std::vector<float>& in_edge_weights,
    std::span<const VertexId> seeds,
    std::span<const double> vertex_weight = {});

/// Brute-force optimal seed set of size k (ties broken toward
/// lexicographically smallest set). Enumerates all C(n, k) candidate sets;
/// requires that count to be <= 200000.
struct ExactOptimum {
  std::vector<VertexId> seeds;
  double spread = 0.0;
};
StatusOr<ExactOptimum> ExactBestSeedSet(
    const Graph& graph, PropagationModel model,
    const std::vector<float>& in_edge_weights, uint32_t k,
    std::span<const double> vertex_weight = {});

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_EXACT_SPREAD_H_

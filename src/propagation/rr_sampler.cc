#include "propagation/rr_sampler.h"

#include "propagation/ic_rr_sampler.h"
#include "propagation/lt_rr_sampler.h"

namespace kbtim {

std::unique_ptr<RrSampler> MakeRrSampler(
    PropagationModel model, const Graph& graph,
    const std::vector<float>& in_edge_weights) {
  switch (model) {
    case PropagationModel::kIndependentCascade:
      return std::make_unique<IcRrSampler>(graph, in_edge_weights);
    case PropagationModel::kLinearThreshold:
      return std::make_unique<LtRrSampler>(graph, in_edge_weights);
  }
  return nullptr;
}

}  // namespace kbtim

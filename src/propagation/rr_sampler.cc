#include "propagation/rr_sampler.h"

#include <atomic>

#include "propagation/ic_rr_sampler.h"
#include "propagation/lt_rr_sampler.h"

namespace kbtim {
namespace {

std::atomic<bool> g_skip_sampling{true};

}  // namespace

void SetSkipSamplingEnabled(bool enabled) {
  g_skip_sampling.store(enabled, std::memory_order_relaxed);
}

bool SkipSamplingEnabled() {
  return g_skip_sampling.load(std::memory_order_relaxed);
}

std::unique_ptr<RrSampler> MakeRrSampler(
    PropagationModel model,
    std::shared_ptr<const BucketedAdjacency> adjacency) {
  switch (model) {
    case PropagationModel::kIndependentCascade:
      return std::make_unique<IcRrSampler>(std::move(adjacency));
    case PropagationModel::kLinearThreshold:
      return std::make_unique<LtRrSampler>(std::move(adjacency));
  }
  return nullptr;
}

std::unique_ptr<RrSampler> MakeRrSampler(
    PropagationModel model, const Graph& graph,
    const std::vector<float>& in_edge_weights) {
  return MakeRrSampler(model,
                       BucketedAdjacency::BuildShared(graph, in_edge_weights));
}

}  // namespace kbtim

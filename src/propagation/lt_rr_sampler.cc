#include "propagation/lt_rr_sampler.h"

namespace kbtim {

LtRrSampler::LtRrSampler(std::shared_ptr<const BucketedAdjacency> adjacency)
    : adjacency_(std::move(adjacency)),
      graph_(adjacency_->graph()),
      in_edge_weights_(adjacency_->edge_values()),
      visited_epoch_(graph_.num_vertices(), 0) {}

void LtRrSampler::Sample(VertexId root, Rng& rng,
                         std::vector<VertexId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  const bool use_alias = SkipSamplingEnabled();
  VertexId x = root;
  visited_epoch_[x] = epoch_;
  out->push_back(x);
  for (;;) {
    auto in = graph_.InNeighbors(x);
    if (in.empty()) return;
    // Select one in-edge with probability equal to its weight; if weights
    // sum to less than 1, the residual selects nothing and the walk stops.
    // One uniform per step under BOTH kernels (RNG lockstep).
    const double u = rng.NextDouble();
    VertexId next = kInvalidVertex;
    if (use_alias &&
        in.size() >= BucketedAdjacency::kLtAliasMinDegree) {
      // O(1): u >= Σw is exactly the linear scan's residual stop (the
      // WeightSum accumulates in the same CSR order), and u / Σw is a
      // uniform inversion point for the alias table over the weights.
      const double sum = adjacency_->WeightSum(x);
      if (u >= sum) return;
      const uint32_t local = adjacency_->LtAlias(x).SampleAt(u / sum);
      next = adjacency_->VertexTargets(x)[local];
    } else {
      const auto [first, last] = graph_.InEdgeRange(x);
      double acc = 0.0;
      for (uint64_t i = first; i < last; ++i) {
        acc += in_edge_weights_[i];
        if (u < acc) {
          next = in[i - first];
          break;
        }
      }
      if (next == kInvalidVertex) return;  // residual mass: no selection
    }
    if (visited_epoch_[next] == epoch_) return;  // cycle: stop the walk
    visited_epoch_[next] = epoch_;
    out->push_back(next);
    x = next;
  }
}

}  // namespace kbtim

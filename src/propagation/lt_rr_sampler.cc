#include "propagation/lt_rr_sampler.h"

namespace kbtim {

LtRrSampler::LtRrSampler(const Graph& graph,
                         const std::vector<float>& in_edge_weights)
    : graph_(graph),
      in_edge_weights_(in_edge_weights),
      visited_epoch_(graph.num_vertices(), 0) {}

void LtRrSampler::Sample(VertexId root, Rng& rng,
                         std::vector<VertexId>* out) {
  out->clear();
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0);
    epoch_ = 1;
  }

  VertexId x = root;
  visited_epoch_[x] = epoch_;
  out->push_back(x);
  for (;;) {
    auto in = graph_.InNeighbors(x);
    if (in.empty()) return;
    const auto [first, last] = graph_.InEdgeRange(x);
    // Select one in-edge with probability equal to its weight; if weights
    // sum to less than 1, the residual selects nothing and the walk stops.
    const double u = rng.NextDouble();
    double acc = 0.0;
    VertexId next = kInvalidVertex;
    for (uint64_t i = first; i < last; ++i) {
      acc += in_edge_weights_[i];
      if (u < acc) {
        next = in[i - first];
        break;
      }
    }
    if (next == kInvalidVertex) return;     // residual mass: no selection
    if (visited_epoch_[next] == epoch_) return;  // cycle: stop the walk
    visited_epoch_[next] = epoch_;
    out->push_back(next);
    x = next;
  }
}

}  // namespace kbtim

// Propagation model identifiers and per-edge parameter construction.
//
// Influence parameters are stored per *incoming* edge, aligned with
// Graph::InEdgeRange, because both RR-set sampling (reverse walks) and the
// paper's IC convention p(e) = 1/N_v are naturally indexed by target vertex.
#ifndef KBTIM_PROPAGATION_MODEL_H_
#define KBTIM_PROPAGATION_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace kbtim {

/// Supported propagation models. The RIS framework (and therefore WRIS and
/// the indexes) supports any triggering model; IC and LT are the two the
/// paper evaluates (§6.6).
enum class PropagationModel : uint8_t {
  kIndependentCascade = 0,
  kLinearThreshold = 1,
};

/// Returns "IC" / "LT".
const char* PropagationModelName(PropagationModel model);

/// The paper's default IC weighting: every edge into v has probability
/// 1 / InDegree(v). Returned vector is aligned with Graph::InEdgeRange.
std::vector<float> UniformIcProbabilities(const Graph& graph);

/// Trivalency IC weighting: each edge draws uniformly from {0.1, 0.01,
/// 0.001} (a common alternative in the IM literature; used by ablations).
std::vector<float> TrivalencyIcProbabilities(const Graph& graph, Rng& rng);

/// The paper's LT weighting: each in-edge of v gets a random weight and the
/// weights of v's in-edges are normalized to sum to 1.
std::vector<float> RandomLtWeights(const Graph& graph, Rng& rng);

}  // namespace kbtim

#endif  // KBTIM_PROPAGATION_MODEL_H_

#include "expr/workload.h"

namespace kbtim {

StatusOr<std::unique_ptr<Environment>> Environment::Create(
    const DatasetSpec& spec) {
  auto env = std::unique_ptr<Environment>(new Environment());
  KBTIM_ASSIGN_OR_RETURN(Dataset dataset, BuildDataset(spec));
  env->dataset_ = std::make_unique<Dataset>(std::move(dataset));
  env->tfidf_ = std::make_unique<TfIdfModel>(&env->dataset_->profiles);
  env->ic_probs_ = UniformIcProbabilities(env->dataset_->graph);
  Rng rng(spec.graph.seed ^ 0x17171717);
  env->lt_weights_ = RandomLtWeights(env->dataset_->graph, rng);
  return env;
}

StatusOr<std::vector<Query>> Environment::Queries(
    const QueryGeneratorOptions& options) const {
  return GenerateQueries(dataset_->profiles, options);
}

void QueryAggregator::Add(const SeedSetResult& result) {
  sum_.mean_seconds += result.stats.total_seconds;
  sum_.mean_rr_sets_loaded +=
      static_cast<double>(result.stats.rr_sets_loaded);
  sum_.mean_io_reads += static_cast<double>(result.stats.io_reads);
  sum_.mean_influence += result.estimated_influence;
  ++sum_.queries;
}

QueryAggregate QueryAggregator::Finish() const {
  QueryAggregate out = sum_;
  if (out.queries > 0) {
    const auto n = static_cast<double>(out.queries);
    out.mean_seconds /= n;
    out.mean_rr_sets_loaded /= n;
    out.mean_io_reads /= n;
    out.mean_influence /= n;
  }
  return out;
}

}  // namespace kbtim

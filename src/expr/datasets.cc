#include "expr/datasets.h"

namespace kbtim {
namespace {

DatasetSpec MakeSpec(const std::string& name, uint32_t n, double avg_degree,
                     uint32_t num_communities, uint32_t num_topics,
                     uint64_t seed) {
  DatasetSpec spec;
  spec.name = name;
  spec.graph.num_vertices = n;
  spec.graph.avg_degree = avg_degree;
  spec.graph.num_communities = num_communities;
  spec.graph.intra_community_fraction = 0.7;
  spec.graph.reciprocity = 0.3;
  spec.graph.preferential_weight = 0.85;
  spec.graph.seed = seed;
  spec.profiles.num_topics = num_topics;
  spec.profiles.mean_topics_per_user = 4.0;
  spec.profiles.zipf_exponent = 1.0;
  spec.profiles.community_affinity = 0.7;
  spec.profiles.topics_per_community = 3;
  spec.profiles.seed = seed ^ 0xABCDEF;
  return spec;
}

}  // namespace

std::vector<DatasetSpec> NewsLikeSeries(uint32_t num_topics) {
  // Average degrees follow the paper's news series exactly (Table 2).
  return {
      MakeSpec("N20k", 20000, 5.2, 24, num_topics, 1001),
      MakeSpec("N60k", 60000, 3.1, 24, num_topics, 1002),
      MakeSpec("N100k", 100000, 2.6, 24, num_topics, 1003),
      MakeSpec("N140k", 140000, 2.2, 24, num_topics, 1004),
  };
}

std::vector<DatasetSpec> TwitterLikeSeries(uint32_t num_topics) {
  // Average degrees follow the paper's Twitter series (Table 2).
  return {
      MakeSpec("T10k", 10000, 76.4, 16, num_topics, 2001),
      MakeSpec("T20k", 20000, 56.8, 16, num_topics, 2002),
      MakeSpec("T30k", 30000, 46.1, 16, num_topics, 2003),
      MakeSpec("T40k", 40000, 38.9, 16, num_topics, 2004),
  };
}

DatasetSpec DefaultNewsSpec(uint32_t num_topics) {
  return NewsLikeSeries(num_topics).back();
}

DatasetSpec DefaultTwitterSpec(uint32_t num_topics) {
  return TwitterLikeSeries(num_topics).back();
}

StatusOr<Dataset> BuildDataset(const DatasetSpec& spec) {
  KBTIM_ASSIGN_OR_RETURN(SocialGraph social, GenerateSocialGraph(spec.graph));
  KBTIM_ASSIGN_OR_RETURN(
      ProfileStore profiles,
      GenerateProfiles(social.graph.num_vertices(), social.community,
                       spec.profiles));
  Dataset dataset;
  dataset.name = spec.name;
  dataset.graph = std::move(social.graph);
  dataset.community = std::move(social.community);
  dataset.profiles = std::move(profiles);
  return dataset;
}

}  // namespace kbtim

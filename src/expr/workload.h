// Shared benchmark plumbing: a materialized experiment environment
// (dataset + tf-idf model + propagation weights + query workload) and
// helpers to aggregate per-query measurements, as the paper reports
// averages over 100 queries per configuration.
#ifndef KBTIM_EXPR_WORKLOAD_H_
#define KBTIM_EXPR_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "expr/datasets.h"
#include "propagation/model.h"
#include "sampling/solver_result.h"
#include "topics/query_generator.h"
#include "topics/tfidf.h"

namespace kbtim {

/// Everything a bench needs for one dataset, with stable addresses (the
/// TfIdfModel and solvers keep pointers into it).
class Environment {
 public:
  /// Builds dataset, tf-idf model, IC probabilities and LT weights.
  static StatusOr<std::unique_ptr<Environment>> Create(
      const DatasetSpec& spec);

  const std::string& name() const { return dataset_->name; }
  const Graph& graph() const { return dataset_->graph; }
  const std::vector<uint32_t>& community() const {
    return dataset_->community;
  }
  const ProfileStore& profiles() const { return dataset_->profiles; }
  const TfIdfModel& tfidf() const { return *tfidf_; }
  const std::vector<float>& ic_probs() const { return ic_probs_; }
  const std::vector<float>& lt_weights() const { return lt_weights_; }

  /// Weights for a model.
  const std::vector<float>& weights(PropagationModel model) const {
    return model == PropagationModel::kIndependentCascade ? ic_probs_
                                                          : lt_weights_;
  }

  /// Generates the default query workload (lengths 1..6).
  StatusOr<std::vector<Query>> Queries(
      const QueryGeneratorOptions& options) const;

 private:
  Environment() = default;

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<TfIdfModel> tfidf_;
  std::vector<float> ic_probs_;
  std::vector<float> lt_weights_;
};

/// Mean of per-query measurements.
struct QueryAggregate {
  double mean_seconds = 0.0;
  double mean_rr_sets_loaded = 0.0;
  double mean_io_reads = 0.0;
  double mean_influence = 0.0;
  uint64_t queries = 0;
};

/// Accumulates SeedSetResult stats into a QueryAggregate.
class QueryAggregator {
 public:
  void Add(const SeedSetResult& result);
  QueryAggregate Finish() const;

 private:
  QueryAggregate sum_;
};

}  // namespace kbtim

#endif  // KBTIM_EXPR_WORKLOAD_H_

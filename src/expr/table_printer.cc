#include "expr/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace kbtim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(units)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  return buf;
}

}  // namespace kbtim

// Fixed-width table rendering for benchmark output, so each bench binary
// prints rows shaped like the paper's tables/figure series.
#ifndef KBTIM_EXPR_TABLE_PRINTER_H_
#define KBTIM_EXPR_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kbtim {

/// Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extras are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header underline, one space-padded row per line.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats with fixed precision ("12.345").
std::string FormatDouble(double v, int precision = 3);

/// Human-readable byte size ("3.2 MB").
std::string FormatBytes(uint64_t bytes);

/// Seconds with ms resolution ("0.012 s").
std::string FormatSeconds(double seconds);

}  // namespace kbtim

#endif  // KBTIM_EXPR_TABLE_PRINTER_H_

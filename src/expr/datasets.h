// Dataset presets: laptop-scale analogues of the paper's Table 2 series.
//
// Paper (server-scale)            This repo (laptop-scale)
//   News  n0.2M..n1.4M, deg 5.2→2.2   N20k..N140k,  deg 5.2→2.2
//   Twitter t10M..t40M, deg 76→39     T10k..T40k,   deg 76→39
// The average-degree trend (denser at small |V|, sparser at large |V|,
// Twitter ≫ News) and the heavy-tailed in-degree shape (Figure 4) are
// preserved; absolute sizes are scaled ~100-1000x down. See DESIGN.md.
#ifndef KBTIM_EXPR_DATASETS_H_
#define KBTIM_EXPR_DATASETS_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/generators.h"
#include "topics/profile_generator.h"
#include "topics/profile_store.h"

namespace kbtim {

/// A named recipe for one synthetic dataset.
struct DatasetSpec {
  std::string name;
  SocialGraphOptions graph;
  ProfileGeneratorOptions profiles;
};

/// A materialized dataset.
struct Dataset {
  std::string name;
  Graph graph;
  std::vector<uint32_t> community;
  ProfileStore profiles;
};

/// The news-like scaling series (sparse, shrinking average degree):
/// N20k, N60k, N100k, N140k.
std::vector<DatasetSpec> NewsLikeSeries(uint32_t num_topics = 30);

/// The twitter-like scaling series (dense, heavy-tailed):
/// T10k, T20k, T30k, T40k.
std::vector<DatasetSpec> TwitterLikeSeries(uint32_t num_topics = 30);

/// Default experiment datasets (the largest of each series, matching the
/// paper's defaults).
DatasetSpec DefaultNewsSpec(uint32_t num_topics = 30);
DatasetSpec DefaultTwitterSpec(uint32_t num_topics = 30);

/// Generates graph + communities + profiles for a spec.
StatusOr<Dataset> BuildDataset(const DatasetSpec& spec);

}  // namespace kbtim

#endif  // KBTIM_EXPR_DATASETS_H_

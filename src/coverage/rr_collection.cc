#include "coverage/rr_collection.h"

#include <algorithm>

namespace kbtim {
namespace {

/// Releases capacity beyond `cap` (contents are preserved; callers only
/// shrink just-cleared vectors, so the copy is trivially small).
template <typename T>
void CapCapacity(std::vector<T>& v, size_t cap) {
  if (v.capacity() <= cap) return;
  std::vector<T> fresh;
  fresh.reserve(std::max(cap, v.size()));
  fresh.assign(v.begin(), v.end());
  v.swap(fresh);
}

}  // namespace

void RrCollection::Reserve(size_t num_sets, size_t num_items) {
  offsets_.reserve(num_sets + 1);
  items_.reserve(num_items);
}

void RrCollection::Clear() {
  const size_t used_items = items_.size();
  const size_t used_sets = offsets_.size();  // includes the leading 0
  offsets_.resize(1);
  items_.clear();
  CapCapacity(items_,
              std::max(kRetainSlack * used_items, kMinRetainedItems));
  CapCapacity(offsets_,
              std::max(kRetainSlack * used_sets, kMinRetainedItems));
}

void RrCollection::Append(const RrCollection& other) {
  for (size_t i = 0; i < other.size(); ++i) {
    Add(other.Set(static_cast<RrId>(i)));
  }
}

InvertedRrIndex::InvertedRrIndex(const RrCollection& sets,
                                 VertexId num_vertices) {
  offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (size_t i = 0; i < sets.size(); ++i) {
    for (VertexId v : sets.Set(static_cast<RrId>(i))) ++offsets_[v + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets_[v + 1] += offsets_[v];
  ids_.resize(sets.total_items());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // Iterating sets in id order appends ascending ids per vertex.
  for (size_t i = 0; i < sets.size(); ++i) {
    for (VertexId v : sets.Set(static_cast<RrId>(i))) {
      ids_[cursor[v]++] = static_cast<RrId>(i);
    }
  }
}

}  // namespace kbtim

#include "coverage/rr_collection.h"

namespace kbtim {

void RrCollection::Reserve(size_t num_sets, size_t num_items) {
  offsets_.reserve(num_sets + 1);
  items_.reserve(num_items);
}

RrId RrCollection::Add(std::span<const VertexId> members) {
  items_.insert(items_.end(), members.begin(), members.end());
  offsets_.push_back(items_.size());
  return static_cast<RrId>(offsets_.size() - 2);
}

void RrCollection::Append(const RrCollection& other) {
  for (size_t i = 0; i < other.size(); ++i) {
    Add(other.Set(static_cast<RrId>(i)));
  }
}

InvertedRrIndex::InvertedRrIndex(const RrCollection& sets,
                                 VertexId num_vertices) {
  offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (size_t i = 0; i < sets.size(); ++i) {
    for (VertexId v : sets.Set(static_cast<RrId>(i))) ++offsets_[v + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) offsets_[v + 1] += offsets_[v];
  ids_.resize(sets.total_items());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // Iterating sets in id order appends ascending ids per vertex.
  for (size_t i = 0; i < sets.size(); ++i) {
    for (VertexId v : sets.Set(static_cast<RrId>(i))) {
      ids_[cursor[v]++] = static_cast<RrId>(i);
    }
  }
}

}  // namespace kbtim

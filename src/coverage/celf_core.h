// Shared lazy-forward CELF core (implementation detail of the coverage
// module; include only from src/coverage/*.cc).
//
// The selection loop operates entirely on flat arrays:
//   * marginal counts in one contiguous uint32 array,
//   * RR-set coverage as a 1-bit-per-set word bitset,
//   * the priority queue as packed uint64 entries
//     (count << 32) | (~vertex) in a binary max-heap, so a single integer
//     compare orders by count descending then vertex ascending — the same
//     tie-break every solver in the library uses (Theorem 3 equality).
//
// Laziness uses the count itself as the generation tag: counts only ever
// decrease, so an entry whose packed count differs from count[v] is stale.
// Stale tops are refreshed IN PLACE (overwrite the root, sift down) —
// each vertex lives in the heap exactly once, the heap only shrinks, and
// the steady-state loop performs no allocation at all.
#ifndef KBTIM_COVERAGE_CELF_CORE_H_
#define KBTIM_COVERAGE_CELF_CORE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "coverage/greedy_max_cover.h"

namespace kbtim {
namespace celf_internal {

inline uint64_t PackEntry(uint32_t count, VertexId v) {
  return (static_cast<uint64_t>(count) << 32) |
         static_cast<uint32_t>(~static_cast<uint32_t>(v));
}

inline VertexId EntryVertex(uint64_t e) {
  return static_cast<VertexId>(~static_cast<uint32_t>(e));
}

inline uint32_t EntryCount(uint64_t e) {
  return static_cast<uint32_t>(e >> 32);
}

/// Restores the max-heap property downward from the root of heap[0, n).
inline void SiftDown(uint64_t* heap, size_t n) {
  size_t i = 0;
  const uint64_t item = heap[0];
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap[child + 1] > heap[child]) ++child;
    if (heap[child] <= item) break;
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = item;
}

inline void PopTop(std::vector<uint64_t>& heap) {
  heap[0] = heap.back();
  heap.pop_back();
  if (!heap.empty()) SiftDown(heap.data(), heap.size());
}

inline bool TestAndSet(std::vector<uint64_t>& bits, RrId rr) {
  uint64_t& word = bits[rr >> 6];
  const uint64_t bit = uint64_t{1} << (rr & 63);
  if (word & bit) return true;
  word |= bit;
  return false;
}

/// Runs lazy-forward CELF over `count` (the initial marginal coverage per
/// vertex, modified in place) selecting up to k seeds. `list_of(v)` must
/// return the [begin, end) RrId range of the sets containing v; `sets`
/// resolves covered sets back to their members. `covered`, `heap` and
/// `selected` are caller-owned scratch so persistent workspaces can reuse
/// their capacity; they are (re)initialized here. Output (including the
/// pad-to-k behaviour) is identical to GreedyMaxCover.
///
/// Pruned mode (candidates != nullptr, min_select > 0): only vertices set
/// in the `candidates` bitmap enter the heap, and a selection is
/// committed only while its fresh count is >= min_select. The caller
/// guarantees every excluded vertex has initial count < min_select;
/// counts only decrease, so as long as selections stay at or above the
/// floor no excluded vertex can tie or beat them and the run is EXACTLY
/// the unpruned greedy. The moment the best candidate falls below the
/// floor (or candidates run out early) the run stops with *aborted = true
/// and a partial (still exact) prefix; the caller restarts unpruned.
template <typename ListOf>
MaxCoverResult RunCelf(const RrCollection& sets, VertexId num_vertices,
                       uint32_t k, std::vector<uint32_t>& count,
                       ListOf list_of, std::vector<uint64_t>& covered,
                       std::vector<uint64_t>& heap,
                       std::vector<uint64_t>& selected,
                       const std::vector<uint64_t>* candidates = nullptr,
                       uint32_t min_select = 0, bool* aborted = nullptr) {
  MaxCoverResult result;
  covered.assign((sets.size() + 63) / 64, 0);
  selected.assign((static_cast<size_t>(num_vertices) + 63) / 64, 0);
  heap.clear();
  if (candidates == nullptr) {
    heap.reserve(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (count[v] > 0) heap.push_back(PackEntry(count[v], v));
    }
  } else {
    // Pruned mode holds only the shortlist: walk the bitmap words (most
    // are zero) instead of every vertex, and let the heap grow to the
    // few-thousand-entry size it actually needs.
    for (size_t w = 0; w < candidates->size(); ++w) {
      uint64_t word = (*candidates)[w];
      while (word != 0) {
        const auto v =
            static_cast<VertexId>(w * 64 + std::countr_zero(word));
        word &= word - 1;
        if (count[v] > 0) heap.push_back(PackEntry(count[v], v));
      }
    }
  }
  std::make_heap(heap.begin(), heap.end());

  while (result.seeds.size() < k && !heap.empty()) {
    const uint64_t top = heap[0];
    const VertexId v = EntryVertex(top);
    const uint32_t cur = count[v];
    if (cur != EntryCount(top)) {
      // Stale (count moved past the tag): refresh in place or drop.
      if (cur == 0) {
        PopTop(heap);
      } else {
        heap[0] = PackEntry(cur, v);
        SiftDown(heap.data(), heap.size());
      }
      continue;
    }
    if (cur < min_select) break;  // pruning floor reached: hand back
    PopTop(heap);
    selected[v >> 6] |= uint64_t{1} << (v & 63);
    result.seeds.push_back(v);
    result.marginal_coverage.push_back(cur);
    result.total_covered += cur;
    const auto [begin, end] = list_of(v);
    for (const RrId* p = begin; p != end; ++p) {
      if (TestAndSet(covered, *p)) continue;
      for (VertexId u : sets.Set(*p)) --count[u];
    }
  }
  if (min_select > 0 && result.seeds.size() < k) {
    // Below the floor an excluded vertex might legitimately win; the
    // caller must redo the tail without pruning.
    if (aborted != nullptr) *aborted = true;
    return result;
  }
  // Pad with smallest unselected ids (exactly-k contract of Algorithm 2).
  for (VertexId v = 0; v < num_vertices && result.seeds.size() < k; ++v) {
    uint64_t& word = selected[v >> 6];
    const uint64_t bit = uint64_t{1} << (v & 63);
    if (word & bit) continue;
    word |= bit;
    result.seeds.push_back(v);
    result.marginal_coverage.push_back(0);
  }
  return result;
}

}  // namespace celf_internal
}  // namespace kbtim

#endif  // KBTIM_COVERAGE_CELF_CORE_H_

#include "coverage/greedy_max_cover.h"

#include <algorithm>

namespace kbtim {

MaxCoverResult GreedyMaxCover(const RrCollection& sets,
                              const InvertedRrIndex& inverted, uint32_t k) {
  MaxCoverResult result;
  const VertexId n = inverted.num_vertices();
  std::vector<uint64_t> count(n);
  for (VertexId v = 0; v < n; ++v) count[v] = inverted.ListLength(v);
  std::vector<char> covered(sets.size(), 0);
  std::vector<char> selected(n, 0);

  for (uint32_t round = 0; round < k; ++round) {
    VertexId best = kInvalidVertex;
    uint64_t best_count = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (count[v] > best_count) {
        best = v;
        best_count = count[v];
      }
    }
    if (best == kInvalidVertex) {
      // No vertex covers anything new; fill remaining slots with the
      // smallest unselected ids (matching Algorithm 2's behaviour of
      // returning exactly k seeds).
      for (VertexId v = 0; v < n && result.seeds.size() < k; ++v) {
        if (!selected[v]) {
          selected[v] = 1;
          result.seeds.push_back(v);
          result.marginal_coverage.push_back(0);
        }
      }
      break;
    }
    selected[best] = 1;
    result.seeds.push_back(best);
    result.marginal_coverage.push_back(best_count);
    result.total_covered += best_count;
    for (RrId rr : inverted.Sets(best)) {
      if (covered[rr]) continue;
      covered[rr] = 1;
      for (VertexId u : sets.Set(rr)) {
        --count[u];
      }
    }
  }
  return result;
}

}  // namespace kbtim

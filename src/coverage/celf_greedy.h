// CELF-style lazy greedy maximum coverage.
//
// Same output as GreedyMaxCover (identical tie-breaking toward smaller
// vertex ids) but uses a max-heap with lazy re-evaluation, which is faster
// when the coverage distribution is skewed — the common case on heavy-tailed
// social graphs. Exposed separately so benchmarks can compare both
// (DESIGN.md ablation list).
#ifndef KBTIM_COVERAGE_CELF_GREEDY_H_
#define KBTIM_COVERAGE_CELF_GREEDY_H_

#include "coverage/greedy_max_cover.h"

namespace kbtim {

/// Lazy-evaluation greedy; equivalent result to GreedyMaxCover.
MaxCoverResult CelfGreedyMaxCover(const RrCollection& sets,
                                  const InvertedRrIndex& inverted,
                                  uint32_t k);

}  // namespace kbtim

#endif  // KBTIM_COVERAGE_CELF_GREEDY_H_

// CELF-style lazy greedy maximum coverage.
//
// Same output as GreedyMaxCover (identical tie-breaking toward smaller
// vertex ids) but lazy: a packed-uint64 max-heap whose stale tops are
// refreshed in place (celf_core.h), plus a bitset for covered sets — faster
// when the coverage distribution is skewed, the common case on heavy-tailed
// social graphs. Query streams should prefer CoverageWorkspace
// (flat_celf.h), which also fuses the inverted-index build and reuses all
// scratch across solves.
#ifndef KBTIM_COVERAGE_CELF_GREEDY_H_
#define KBTIM_COVERAGE_CELF_GREEDY_H_

#include "coverage/greedy_max_cover.h"

namespace kbtim {

/// Lazy-evaluation greedy; equivalent result to GreedyMaxCover.
MaxCoverResult CelfGreedyMaxCover(const RrCollection& sets,
                                  const InvertedRrIndex& inverted,
                                  uint32_t k);

}  // namespace kbtim

#endif  // KBTIM_COVERAGE_CELF_GREEDY_H_

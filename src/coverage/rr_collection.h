// In-memory store of sampled RR sets, plus its inverted index
// (vertex -> RR-set ids), the two structures the greedy maximum-coverage
// step operates on (paper §2.2 step 2, Algorithm 2 lines 6-14).
#ifndef KBTIM_COVERAGE_RR_COLLECTION_H_
#define KBTIM_COVERAGE_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace kbtim {

/// Dense id of an RR set within one collection.
using RrId = uint32_t;

/// Append-only flattened storage of RR sets.
class RrCollection {
 public:
  RrCollection() = default;

  /// Pre-allocates for `num_sets` sets totalling `num_items` vertices.
  void Reserve(size_t num_sets, size_t num_items);

  /// Appends one RR set; returns its id. Members may be in any order.
  /// Inline: this sits in the per-RR-set sampling loop.
  RrId Add(std::span<const VertexId> members) {
    items_.insert(items_.end(), members.begin(), members.end());
    offsets_.push_back(items_.size());
    return static_cast<RrId>(offsets_.size() - 2);
  }

  /// Appends all sets from `other`, preserving their relative order.
  void Append(const RrCollection& other);

  /// Removes every set. Keeps the allocated capacity, so a reused
  /// collection reaches zero steady-state allocation across queries —
  /// UNLESS the arenas grew pathologically past what this round actually
  /// used: capacity beyond kRetainSlack × the just-cleared size is
  /// released (down to that bound), so one outlier query in a long-running
  /// stream does not ratchet the resident footprint forever.
  void Clear();

  /// Shrink policy knobs (see Clear).
  static constexpr size_t kRetainSlack = 4;
  static constexpr size_t kMinRetainedItems = 4096;

  /// Current arena capacities (observability for tests/stats).
  size_t items_capacity() const { return items_.capacity(); }
  size_t offsets_capacity() const { return offsets_.capacity(); }

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Total vertex occurrences across all sets.
  uint64_t total_items() const { return items_.size(); }

  /// Mean members per set (0 when empty).
  double MeanSetSize() const {
    return empty() ? 0.0
                   : static_cast<double>(total_items()) /
                         static_cast<double>(size());
  }

  /// Members of set `id`.
  std::span<const VertexId> Set(RrId id) const {
    return {items_.data() + offsets_[id], items_.data() + offsets_[id + 1]};
  }

  /// All members of all sets, flattened in set order (vertex-frequency
  /// passes iterate this directly instead of chasing per-set offsets).
  std::span<const VertexId> items() const { return items_; }

 private:
  std::vector<uint64_t> offsets_{0};
  std::vector<VertexId> items_;
};

/// Inverted index over an RrCollection: for each vertex, the ascending list
/// of RR-set ids containing it (the paper's L_w).
class InvertedRrIndex {
 public:
  InvertedRrIndex() = default;

  /// Builds the index; `num_vertices` bounds the vertex id space.
  InvertedRrIndex(const RrCollection& sets, VertexId num_vertices);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// RR-set ids containing vertex v, ascending.
  std::span<const RrId> Sets(VertexId v) const {
    return {ids_.data() + offsets_[v], ids_.data() + offsets_[v + 1]};
  }

  /// Number of RR sets containing v.
  uint64_t ListLength(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<RrId> ids_;
};

}  // namespace kbtim

#endif  // KBTIM_COVERAGE_RR_COLLECTION_H_

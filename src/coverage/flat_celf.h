// Flat-array seed selection: one reusable workspace that fuses the
// inverted-index build and the lazy-forward CELF loop.
//
// The online solvers (WRIS/RIS) used to build a fresh InvertedRrIndex
// (64-bit offsets + a cursor array) and run a std::priority_queue CELF per
// query. For a query stream, everything here is amortizable: the workspace
// keeps the count array, the 32-bit incidence arrays, the coverage bitset
// and the packed heap across Solve calls, so steady-state seed selection
// allocates nothing and touches half the memory. Results are identical to
// GreedyMaxCover / CelfGreedyMaxCover (same tie-breaking; tests assert
// equality), which stay available as references.
#ifndef KBTIM_COVERAGE_FLAT_CELF_H_
#define KBTIM_COVERAGE_FLAT_CELF_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "coverage/greedy_max_cover.h"

namespace kbtim {

/// Reusable seed-selection scratch. Not thread-safe; use one per worker.
class CoverageWorkspace {
 public:
  /// Greedy max-coverage of `sets` (vertex ids < num_vertices), selecting
  /// up to k seeds. Builds the vertex -> RR incidence internally in flat
  /// scratch; equivalent output to GreedyMaxCover.
  ///
  /// With a pool, the incidence build (the dominant cost — the CELF
  /// selection itself is the cheap tail) runs as a parallel two-pass
  /// counting sort over contiguous set chunks: per-chunk histograms, one
  /// serial cursor merge, then each worker scatters its own chunk. Chunks
  /// are consumed in id order per vertex, so the incidence lists come out
  /// ascending exactly as in the serial build, and results are identical
  /// regardless of thread count. The pool must be idle (Solve submits and
  /// waits); pass nullptr for the serial build.
  MaxCoverResult Solve(const RrCollection& sets, VertexId num_vertices,
                       uint32_t k, ThreadPool* pool = nullptr);

  /// Caps retained scratch capacity at roughly `max_items` incidence
  /// entries so one outlier query does not pin its peak footprint forever.
  void ShrinkRetained(size_t max_items);

  /// Floor on the candidate-shortlist size of the pruned build (the
  /// effective size is max(this, 8k), plus ties). Lower values build less
  /// incidence but risk an abort-and-rebuild; tests use tiny values to
  /// exercise the restart path.
  void set_prune_candidates(size_t candidates) {
    prune_candidates_ = candidates;
  }

 private:
  std::vector<uint32_t> count_;    // marginal coverage per vertex
  std::vector<uint32_t> list_end_; // after the fill pass: end of v's ids
  std::vector<RrId> ids_;          // flattened vertex -> RR incidence
  std::vector<uint64_t> covered_;  // RR-set coverage bitset
  std::vector<uint64_t> heap_;     // packed (count << 32 | ~vertex)
  std::vector<uint64_t> selected_; // selection bitset (padding pass)
  std::vector<uint32_t> chunk_cursor_;  // parallel build: T x n cursors
  std::vector<uint64_t> candidates_;    // pruned build: shortlist bitmap
  std::vector<uint32_t> prune_vals_;    // pruned build: sampled counts
  size_t prune_candidates_ = 256;
};

}  // namespace kbtim

#endif  // KBTIM_COVERAGE_FLAT_CELF_H_

// Greedy maximum-coverage over RR sets (the (1 - 1/e)-approximate step of
// the RIS framework; Vazirani's classic greedy).
//
// Ties are always broken toward the smaller vertex id so that every solver
// in the library (WRIS, RR-index greedy, IRR's NRA) produces comparable
// seed sequences — Theorem 3 equality tests rely on this.
#ifndef KBTIM_COVERAGE_GREEDY_MAX_COVER_H_
#define KBTIM_COVERAGE_GREEDY_MAX_COVER_H_

#include <cstdint>
#include <vector>

#include "coverage/rr_collection.h"

namespace kbtim {

/// Result of a greedy max-coverage run.
struct MaxCoverResult {
  /// Selected seeds in selection order.
  std::vector<VertexId> seeds;

  /// Marginal number of newly covered RR sets per seed, aligned with seeds.
  std::vector<uint64_t> marginal_coverage;

  /// Total RR sets covered by the full seed set.
  uint64_t total_covered = 0;
};

/// Counting-based greedy: maintains exact marginal coverage per vertex and
/// scans for the maximum each round.
MaxCoverResult GreedyMaxCover(const RrCollection& sets,
                              const InvertedRrIndex& inverted, uint32_t k);

}  // namespace kbtim

#endif  // KBTIM_COVERAGE_GREEDY_MAX_COVER_H_

#include "coverage/flat_celf.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <thread>

#include "coverage/celf_core.h"
#include "coverage/celf_greedy.h"
#include "coverage/rr_collection.h"

namespace kbtim {

MaxCoverResult CoverageWorkspace::Solve(const RrCollection& sets,
                                        VertexId num_vertices, uint32_t k,
                                        ThreadPool* pool) {
  if (sets.total_items() > std::numeric_limits<uint32_t>::max()) {
    // The 32-bit incidence offsets cannot address this collection; fall
    // back to the 64-bit reference path (no workspace reuse, same answer).
    const InvertedRrIndex inverted(sets, num_vertices);
    return CelfGreedyMaxCover(sets, inverted, k);
  }
  const size_t n = num_vertices;
  const auto num_sets = static_cast<RrId>(sets.size());

  // Pass 1: vertex frequencies over the flat item span (these double as
  // CELF's initial marginals).
  count_.assign(n, 0);
  for (VertexId v : sets.items()) ++count_[v];

  // Pruned attempt: greedy only ever walks the incidence lists of the ~k
  // vertices it SELECTS, so building lists for everyone is waste. Keep the
  // top prune_candidates vertices by initial count (plus ties): while
  // every selection's fresh marginal stays >= the shortlist threshold, no
  // excluded vertex (initial count < threshold, counts only decrease) can
  // win, and the pruned run is exactly the full greedy. Falls back to the
  // full build on the rare abort.
  // ANY threshold >= 1 keeps the run exact (the abort guard covers
  // selections that dip below it), so the threshold is tuned from a
  // strided SAMPLE of the counts instead of a full gather + nth_element:
  // aim for ~2x the target so sampling error lands on the cheap side
  // (bigger shortlist) rather than the abort side.
  const size_t shortlist_target =
      std::max<size_t>(prune_candidates_, size_t{8} * k);
  const size_t stride = std::max<size_t>(1, n / 8192);
  prune_vals_.clear();
  for (size_t v = 0; v < n; v += stride) {
    if (count_[v] > 0) prune_vals_.push_back(count_[v]);
  }
  size_t sample_rank = std::max<size_t>(1, 2 * shortlist_target / stride);
  size_t effective_stride = stride;
  if (stride > 1 && sample_rank < 8) {
    // The stride sample is too sparse to resolve the target quantile
    // (huge |V|): fall back to an exact full gather — O(nonzero), still
    // far cheaper than the incidence build it is sizing.
    prune_vals_.clear();
    for (size_t v = 0; v < n; ++v) {
      if (count_[v] > 0) prune_vals_.push_back(count_[v]);
    }
    sample_rank = 2 * shortlist_target;
    effective_stride = 1;
  }
  if (prune_vals_.size() * effective_stride > 4 * shortlist_target &&
      prune_vals_.size() > sample_rank) {
    std::nth_element(prune_vals_.begin(),
                     prune_vals_.begin() + sample_rank - 1,
                     prune_vals_.end(), std::greater<>());
    const uint32_t threshold = prune_vals_[sample_rank - 1];
    candidates_.assign((n + 63) / 64, 0);
    list_end_.resize(n);
    uint32_t run = 0;
    for (size_t v = 0; v < n; ++v) {
      list_end_[v] = run;
      if (count_[v] >= threshold) {
        candidates_[v >> 6] |= uint64_t{1} << (v & 63);
        run += count_[v];
      }
    }
    ids_.resize(run);
    for (RrId i = 0; i < num_sets; ++i) {
      for (VertexId v : sets.Set(i)) {
        if (candidates_[v >> 6] & (uint64_t{1} << (v & 63))) {
          ids_[list_end_[v]++] = i;
        }
      }
    }
    bool aborted = false;
    MaxCoverResult result = celf_internal::RunCelf(
        sets, num_vertices, k, count_,
        [this](VertexId v) {
          const uint32_t begin = v == 0 ? 0 : list_end_[v - 1];
          return std::pair{ids_.data() + begin, ids_.data() + list_end_[v]};
        },
        covered_, heap_, selected_, &candidates_, threshold, &aborted);
    if (!aborted) return result;
    // Selection dipped below the shortlist floor: redo without pruning
    // (counts were consumed by the partial run, so recompute).
    count_.assign(n, 0);
    for (VertexId v : sets.items()) ++count_[v];
  }

  ids_.resize(sets.total_items());
  size_t workers =
      pool == nullptr ? 1 : std::min<size_t>(pool->num_threads(), 8);
  if (workers > 1 &&
      (num_sets < 8192 || std::thread::hardware_concurrency() <= 1)) {
    workers = 1;  // fan-out cannot pay for itself
  }
  if (workers <= 1) {
    // Serial incidence build. The fill pass uses list_end_ itself as the
    // write cursor: after it, list_end_[v] is the end of v's ids, and
    // since the lists are laid out contiguously in vertex order, v's
    // start is the previous vertex's end.
    list_end_.resize(n);
    uint32_t run = 0;
    for (size_t v = 0; v < n; ++v) {
      list_end_[v] = run;
      run += count_[v];
    }
    for (RrId i = 0; i < num_sets; ++i) {
      for (VertexId v : sets.Set(i)) ids_[list_end_[v]++] = i;
    }
  } else {
    // Parallel two-pass counting sort over contiguous set chunks.
    const size_t T = workers;
    auto chunk_begin = [&](size_t t) {
      return static_cast<RrId>(t * num_sets / T);
    };
    chunk_cursor_.assign(T * n, 0);
    // Pass A: per-chunk histograms (disjoint cursor rows, no sharing).
    // Submitted one task per chunk (ParallelFor would inline this small a
    // task count).
    for (size_t t = 0; t < T; ++t) {
      pool->Submit([&, t] {
        uint32_t* hist = chunk_cursor_.data() + t * n;
        const RrId end = chunk_begin(t + 1);
        for (RrId i = chunk_begin(t); i < end; ++i) {
          for (VertexId v : sets.Set(i)) ++hist[v];
        }
      });
    }
    pool->Wait();
    // Merge: one serial sweep turns histograms into write cursors. For
    // each vertex the chunks write [cursor_0, cursor_1, ...) in chunk
    // order, and chunk sets carry ascending ids, so lists come out
    // ascending exactly like the serial build's.
    count_.resize(n);
    list_end_.resize(n);
    uint32_t run = 0;
    for (size_t v = 0; v < n; ++v) {
      uint32_t total = 0;
      for (size_t t = 0; t < T; ++t) {
        uint32_t& slot = chunk_cursor_[t * n + v];
        const uint32_t c = slot;
        slot = run + total;
        total += c;
      }
      count_[v] = total;
      run += total;
      list_end_[v] = run;
    }
    // Pass B: every worker scatters its own chunk through its own cursor
    // row; rows of different chunks target disjoint id ranges per vertex.
    for (size_t t = 0; t < T; ++t) {
      pool->Submit([&, t] {
        uint32_t* cursor = chunk_cursor_.data() + t * n;
        const RrId end = chunk_begin(t + 1);
        for (RrId i = chunk_begin(t); i < end; ++i) {
          for (VertexId v : sets.Set(i)) ids_[cursor[v]++] = i;
        }
      });
    }
    pool->Wait();
  }

  return celf_internal::RunCelf(
      sets, num_vertices, k, count_,
      [this](VertexId v) {
        const uint32_t begin = v == 0 ? 0 : list_end_[v - 1];
        return std::pair{ids_.data() + begin, ids_.data() + list_end_[v]};
      },
      covered_, heap_, selected_);
}

namespace {

/// DISCARDS contents while capping capacity — only for scratch whose
/// data is dead between Solve calls (RrCollection::Clear's same-named
/// cousin preserves contents; don't conflate them).
template <typename T>
void CapScratchCapacity(std::vector<T>& v, size_t max_elems) {
  if (v.capacity() > max_elems) {
    v.clear();
    v.shrink_to_fit();
    v.reserve(max_elems);
  }
}

}  // namespace

void CoverageWorkspace::ShrinkRetained(size_t max_items) {
  CapScratchCapacity(ids_, max_items);
  CapScratchCapacity(covered_, max_items / 64 + 1);
  // count_/list_end_/heap_/selected_ scale with |V|, not with the sampled
  // set mass, so they cannot ratchet the same way; leave them warm.
}

}  // namespace kbtim

#include "coverage/celf_greedy.h"

#include <queue>

namespace kbtim {
namespace {

struct HeapEntry {
  uint64_t count;
  VertexId vertex;

  // Max-heap by count, ties toward the SMALLER vertex id (so std::priority_
  // queue's "less" must order larger ids as smaller priority).
  bool operator<(const HeapEntry& other) const {
    if (count != other.count) return count < other.count;
    return vertex > other.vertex;
  }
};

}  // namespace

MaxCoverResult CelfGreedyMaxCover(const RrCollection& sets,
                                  const InvertedRrIndex& inverted,
                                  uint32_t k) {
  MaxCoverResult result;
  const VertexId n = inverted.num_vertices();
  std::vector<uint64_t> count(n);
  std::priority_queue<HeapEntry> heap;
  for (VertexId v = 0; v < n; ++v) {
    count[v] = inverted.ListLength(v);
    if (count[v] > 0) heap.push({count[v], v});
  }
  std::vector<char> covered(sets.size(), 0);
  std::vector<char> selected(n, 0);

  while (result.seeds.size() < k && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (selected[top.vertex]) continue;
    if (top.count != count[top.vertex]) {
      // Stale: counts only decrease, so reinsert with the fresh value.
      if (count[top.vertex] > 0) heap.push({count[top.vertex], top.vertex});
      continue;
    }
    selected[top.vertex] = 1;
    result.seeds.push_back(top.vertex);
    result.marginal_coverage.push_back(top.count);
    result.total_covered += top.count;
    for (RrId rr : inverted.Sets(top.vertex)) {
      if (covered[rr]) continue;
      covered[rr] = 1;
      for (VertexId u : sets.Set(rr)) --count[u];
    }
  }
  // Pad with smallest unselected ids if coverage ran dry (keeps the
  // contract of returning exactly k seeds, matching GreedyMaxCover).
  for (VertexId v = 0; v < n && result.seeds.size() < k; ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_coverage.push_back(0);
    }
  }
  return result;
}

}  // namespace kbtim

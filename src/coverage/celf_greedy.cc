#include "coverage/celf_greedy.h"

#include "coverage/celf_core.h"

namespace kbtim {

MaxCoverResult CelfGreedyMaxCover(const RrCollection& sets,
                                  const InvertedRrIndex& inverted,
                                  uint32_t k) {
  const VertexId n = inverted.num_vertices();
  std::vector<uint32_t> count(n);
  for (VertexId v = 0; v < n; ++v) {
    // Safe narrowing: a vertex appears in at most sets.size() RR sets,
    // and set ids are RrId (uint32), so no list is ever 2^32 long even
    // when total_items exceeds 32 bits.
    count[v] = static_cast<uint32_t>(inverted.ListLength(v));
  }
  std::vector<uint64_t> covered, heap, selected;
  return celf_internal::RunCelf(
      sets, n, k, count,
      [&inverted](VertexId v) {
        const auto list = inverted.Sets(v);
        return std::pair{list.data(), list.data() + list.size()};
      },
      covered, heap, selected);
}

}  // namespace kbtim

// Offline index construction (paper Algorithms 1 and 3).
//
// For every keyword w the builder:
//   1. estimates a lower bound on OPT^{w}_K (or OPT^{w}_1 for the
//      conservative Lemma-3 bound) by pilot sampling,
//   2. derives θ_w (Lemma 4) or θ̂_w (Lemma 3),
//   3. samples θ_w RR sets with root distribution ps(v, w) ∝ tf_{w,v}
//      (discriminative WRIS, Eqn. 7),
//   4. writes R_w + L_w (the RR index) and/or the partitioned IRR
//      structures (IL_w, IR_w, IP_w) derived from the SAME samples, so
//      both indexes answer queries identically (Theorem 3).
// Keywords build in parallel on a thread pool, as in the paper's setup.
#ifndef KBTIM_INDEX_INDEX_BUILDER_H_
#define KBTIM_INDEX_INDEX_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "index/index_format.h"
#include "propagation/model.h"
#include "sampling/opt_estimator.h"
#include "topics/tfidf.h"

namespace kbtim {

/// Options controlling offline index construction.
struct IndexBuildOptions {
  /// ε of the (1 − 1/e − ε) guarantee the index provides.
  double epsilon = 0.5;

  /// K: maximum supported Q.k (paper default 100).
  uint32_t max_k = 100;

  /// Which θ bound to use (Lemma 4 compact vs Lemma 3 conservative).
  ThetaBoundKind bound = ThetaBoundKind::kCompact;

  /// Payload codec (kRaw reproduces Table 4's uncompressed mode).
  CodecKind codec = CodecKind::kPfor;

  /// Propagation model the RR sets are sampled under.
  PropagationModel model = PropagationModel::kIndependentCascade;

  /// δ: users per IRR partition (paper default 100).
  uint32_t partition_size = 100;

  /// Builder threads (keywords are built in parallel).
  uint32_t num_threads = 2;

  /// RNG seed; keyword w uses an independent fork, so results do not
  /// depend on the thread count.
  uint64_t seed = 77;

  /// Guardrail on θ per keyword; clipped with a warning.
  uint64_t max_theta_per_keyword = uint64_t{1} << 23;

  /// Which structures to emit.
  bool build_rr = true;
  bool build_irr = true;

  /// On-disk format version to write (kIndexFormatV1 for compatibility
  /// testing, kIndexFormatV2 = checksummed, the default).
  uint32_t format_version = kIndexFormatLatest;

  /// Pilot-estimation tuning (k / floor / seed overridden per keyword).
  OptEstimateOptions opt_estimate{};
};

/// Outcome of a build.
struct IndexBuildReport {
  double seconds = 0.0;
  /// Σ_w θ_w (Table 5 left column).
  uint64_t total_theta = 0;
  /// Mean RR-set size across all keywords (Table 5 right column).
  double mean_rr_set_size = 0.0;
  /// Bytes written per structure family (Tables 3/4).
  uint64_t rr_bytes = 0;
  uint64_t lists_bytes = 0;
  uint64_t irr_bytes = 0;
  uint64_t total_bytes = 0;
  /// θ per topic (diagnostics).
  std::vector<uint64_t> theta_per_topic;
};

/// Builds the disk indexes for every keyword in the topic space.
class IndexBuilder {
 public:
  /// All referenced objects must outlive the builder. `in_edge_weights`
  /// must match `options.model`.
  IndexBuilder(const Graph& graph, const TfIdfModel& tfidf,
               const std::vector<float>& in_edge_weights,
               IndexBuildOptions options);

  /// Builds into `dir` (created if missing) and writes index_meta.kbm.
  StatusOr<IndexBuildReport> Build(const std::string& dir);

  /// Re-derives and republishes exactly one keyword's files (rr_/lists_/
  /// irr_<topic>.dat) into an existing index directory, via the same
  /// atomic-rename publication as a full build. Sampling is seeded per
  /// keyword (Rng(seed).Fork(2w+1)), so a rebuild with the original build
  /// options reproduces the original files byte-for-byte and the existing
  /// index_meta.kbm stays valid — this is the scrubber's repair path. If
  /// the directory has a meta, the rebuilt θ/preambles are cross-checked
  /// against it and a mismatch (wrong options/seed) is an error.
  Status RebuildTopic(const std::string& dir, TopicId topic);

 private:
  const Graph& graph_;
  const TfIdfModel& tfidf_;
  const std::vector<float>& in_edge_weights_;
  IndexBuildOptions options_;
};

}  // namespace kbtim

#endif  // KBTIM_INDEX_INDEX_BUILDER_H_

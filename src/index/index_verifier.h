// Offline index verification: walks every file of an index directory and
// checks structural invariants, the kind of `db_verify` tool a production
// disk format ships with. Used by tests after every build and available to
// operators via examples/index_builder_cli verify.
//
// Checked invariants per keyword w:
//   * rr_<w>.dat: magic/topic/codec match the meta; the offset directory
//     is monotone and ends at EOF; every RR set decodes, is sorted, and
//     references only vertices < |V|;
//   * lists_<w>.dat: every inverted list decodes, is strictly ascending,
//     references only RR ids < θ_w, and the multiset of (vertex, rr)
//     memberships equals the one induced by rr_<w>.dat;
//   * irr_<w>.dat: header agrees with the meta (θ_w, δ, preamble length);
//     partitions cover every user exactly once, ordered by non-increasing
//     list length; IR partitions cover every RR id exactly once; the IP
//     map's first-occurrence equals the head of each user's list.
//
// Format v2 files additionally get a checksum stage: every stored CRC32C
// (rr header/directory/page CRCs, lists header/payload CRCs, irr
// header/partition/preamble CRCs) is recomputed and compared. v1 files
// have no stored checksums; the verifier reports their version and skips
// the stage rather than failing.
#ifndef KBTIM_INDEX_INDEX_VERIFIER_H_
#define KBTIM_INDEX_INDEX_VERIFIER_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace kbtim {

/// Aggregate statistics from a verification pass.
struct IndexVerification {
  uint32_t format_version = 0;  ///< From the meta (1 = pre-checksum files).
  uint32_t topics_checked = 0;
  uint64_t rr_sets_checked = 0;
  uint64_t inverted_entries_checked = 0;
  uint64_t partitions_checked = 0;
  uint64_t checksums_verified = 0;  ///< Stored CRCs recomputed; 0 on v1.
};

/// Verifies every structure in `dir`. Returns Corruption with a
/// description of the first violated invariant, or the pass statistics.
StatusOr<IndexVerification> VerifyIndex(const std::string& dir);

}  // namespace kbtim

#endif  // KBTIM_INDEX_INDEX_VERIFIER_H_

// Persistent per-keyword cache: the warm path of the query engine.
//
// The paper's real-time claim (§5, Table 6) is about per-query index I/O,
// but an ad platform answers a *stream* of overlapping queries against one
// index directory. Everything that does not depend on the query budget is
// amortizable: open file handles, the parsed IRR preamble (IP
// first-occurrence map + partition directory), the RR offset directory,
// and the decoded partition payloads themselves. This cache holds all of
// it per (index directory, topic) so that a repeated query performs zero
// preamble re-reads — and zero reads at all once the touched partitions
// fit the block cache.
//
// Sizing knobs (KeywordCacheOptions):
//   * block_cache_bytes — upper bound on the decoded bytes resident in the
//     LRU block cache (IRR partitions + RR payload prefixes). Entries
//     (file handles, preambles, directories) are NOT charged against it:
//     they are small, persistent, and amortize across every query. Set to
//     0 to disable block caching entirely (every query re-decodes, but
//     still reuses handles and preambles).
//   * max_block_fraction — admission policy: a decoded block larger than
//     this fraction of block_cache_bytes is served to the query but NOT
//     cached (it would evict many hot blocks to keep one cold giant);
//     each refusal bumps stats().admission_bypasses. At the default 1.0
//     only blocks bigger than the whole budget bypass, so the bound is
//     otherwise enforced by evicting other blocks, never by refusing to
//     serve a query.
//   * prefetch_threads — background decode workers for the IRR partition
//     pipeline: PrefetchIrrPartition schedules read + decode of a
//     partition on this pool so the NRA loop's compute overlaps the next
//     partitions' I/O (IrrIndex keeps a prefetch_depth-wide window in
//     flight per keyword). A foreground GetIrrPartition that finds its
//     block in flight waits on that decode instead of duplicating it.
//   * use_mmap — map index files read-only so preamble and partition
//     parses are zero-copy (RandomAccessFile::ReadView). Logical reads
//     are still counted by IoCounter either way, so Table-6 style
//     benchmarks keep measuring the logical access pattern — including
//     reads issued by the prefetch workers.
//
// Thread safety: all public methods are safe to call concurrently; blocks
// are returned as shared_ptr<const ...> so eviction never invalidates a
// block an in-flight query still pins. Concurrent misses on the same block
// may decode it twice; one result wins, both callers get a valid block.
// Destroying the cache drains the prefetch pool first (queued decodes
// finish against still-live state), so shutdown mid-query is safe.
#ifndef KBTIM_INDEX_KEYWORD_CACHE_H_
#define KBTIM_INDEX_KEYWORD_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_pool.h"
#include "coverage/rr_collection.h"
#include "index/index_format.h"
#include "storage/block_file.h"

namespace kbtim {

/// Cache sizing/behavior knobs (see file comment for details).
struct KeywordCacheOptions {
  /// LRU bound on decoded block bytes (0 disables block caching).
  uint64_t block_cache_bytes = uint64_t{256} << 20;

  /// Map index files for zero-copy parses; falls back to pread copies.
  bool use_mmap = true;

  /// Admission policy: blocks larger than this fraction of
  /// block_cache_bytes are served but not cached.
  double max_block_fraction = 1.0;

  /// Decode IR^p set members at partition-load time instead of on first
  /// eager-mode access. The lazy default roughly halves cold-query decode
  /// work for the (default) lazy NRA mode; benchmarks pin this on to
  /// reproduce the PR-1 cost profile as the ablation baseline.
  bool eager_ir_members = false;

  /// Background IRR-partition decode workers (0 disables prefetching).
  uint32_t prefetch_threads = 2;

  /// How many partitions ahead of the NRA loop's consumption point the
  /// IrrIndex keeps in flight per keyword. Depth 1 barely overlaps (the
  /// loop's compute between load rounds is short); a deeper window keeps
  /// every worker busy so consumption approaches decode-bandwidth / W.
  /// The cost is up to `depth` partitions read past the loop's early
  /// termination point.
  uint32_t prefetch_depth = 3;
};

/// Point-in-time cache counters (monotonic except bytes_cached).
struct KeywordCacheStats {
  /// Block-cache lookups served without touching the file.
  uint64_t hits = 0;
  /// Block-cache lookups that had to read + decode.
  uint64_t misses = 0;
  /// Keyword preambles/directories parsed (once per topic when warm).
  uint64_t preamble_loads = 0;
  /// Blocks dropped to respect block_cache_bytes.
  uint64_t evictions = 0;
  /// Decoded bytes currently resident in the block cache.
  uint64_t bytes_cached = 0;
  /// Blocks denied residency by the admission policy (served uncached).
  uint64_t admission_bypasses = 0;
  /// Background partition decodes scheduled by PrefetchIrrPartition.
  uint64_t prefetches_issued = 0;
  /// Foreground lookups served by waiting on an in-flight prefetch
  /// (counted as misses too: the block was not resident).
  uint64_t prefetches_served = 0;
  /// kIOError statuses surfaced by reads (transient: handles are dropped
  /// and reopened on next access, cached blocks survive).
  uint64_t io_errors = 0;
  /// kCorruption statuses surfaced by decodes (the topic's cached state
  /// is fully invalidated: a bad block must never serve a later query).
  uint64_t decode_failures = 0;
  /// Background prefetch decodes that failed. Each is also classified
  /// into io_errors / decode_failures — this counts how many failures
  /// happened off the foreground path (previously swallowed unless a
  /// joiner happened to wait on the future).
  uint64_t prefetch_failures = 0;
  /// InvalidateTopic calls (explicit or corruption-triggered).
  uint64_t topic_invalidations = 0;
  /// CRC32C verifications performed before decode/admission (v2 indexes
  /// only; a v1 directory serves with checksums off and never bumps this).
  uint64_t crc_checks = 0;
  /// CRC mismatches detected. Each one surfaces as kCorruption and so
  /// also shows up in decode_failures + topic_invalidations — this
  /// counter isolates *checksum-caught* corruption (e.g. bit flips) from
  /// structural decode failures.
  uint64_t crc_failures = 0;
};

/// Parsed preamble of one keyword's irr_<w>.dat: header fields, the IP
/// first-occurrence map as vertex-sorted parallel arrays (binary-search
/// lookup), and the partition directory. Immutable once built.
struct IrrKeywordEntry {
  TopicId topic = kInvalidTopic;
  std::unique_ptr<RandomAccessFile> file;
  CodecKind codec = CodecKind::kRaw;
  uint64_t num_users = 0;
  uint64_t num_partitions = 0;
  uint64_t theta_w = 0;
  /// v2 file: partition reads are CRC-verified before decode.
  bool checksummed = false;
  std::vector<IrrPartitionInfo> directory;

  /// IP_w as flat sorted arrays: ip_vertex ascending, ip_first aligned.
  std::vector<VertexId> ip_vertex;
  std::vector<RrId> ip_first;

  /// First RR-set occurrence of v, or >= theta_w sentinel when absent.
  /// Returns false when v has no list at all for this keyword.
  bool FirstOccurrence(VertexId v, RrId* first) const;
};

/// One decoded IRR partition, budget-unrestricted so any query budget
/// <= theta_w is served from the same block (queries restrict the
/// ascending RR-id lists with a binary search).
///
/// IR^p set MEMBERS are decoded lazily: only the eager query mode
/// (Algorithm 4 lines 21-22) ever reads them, yet they are roughly half
/// of a partition's decode cost — so the cold (default, lazy-mode) path
/// keeps the validated encoded region and the first SetMembers call
/// decodes it once, thread-safely, for every later eager query to share.
struct IrrPartitionBlock {
  /// IL^p users in stored (descending list length) order.
  std::vector<VertexId> users;
  std::vector<uint32_t> list_offsets;  // users.size() + 1
  std::vector<RrId> list_ids;          // ascending within each list

  /// IR^p RR-set ids first referenced by this partition, ascending.
  std::vector<RrId> set_ids;

  /// Inverted list of users[i] (full, unrestricted).
  std::span<const RrId> ListOf(size_t i) const {
    return {list_ids.data() + list_offsets[i],
            list_ids.data() + list_offsets[i + 1]};
  }

  /// Decodes the IR^p member payloads now (idempotent, thread-safe).
  /// Framing was validated when the block was built; payload-level
  /// corruption fails the region closed (every span empty) and is
  /// reported here. Eager-mode queries call this at partition load so
  /// corruption still fails the query loudly, exactly as the pre-lazy
  /// code did.
  Status EnsureMembers() const;

  /// Members of set_ids[s], decoding IR^p on first use (corruption
  /// degrades to empty spans; status-checked paths use EnsureMembers).
  std::span<const VertexId> SetMembers(size_t s) const {
    // Corruption intentionally degrades to empty spans here; callers that
    // need the error call EnsureMembers() themselves first.
    KBTIM_IGNORE_STATUS(EnsureMembers());
    if (set_offsets.size() != set_ids.size() + 1) return {};
    return {set_members.data() + set_offsets[s],
            set_members.data() + set_offsets[s + 1]};
  }

  /// Decoded footprint charged against block_cache_bytes (the lazily
  /// materialized members are charged from the start via the raw bytes
  /// they decode from; the decoded form is typically the same order of
  /// magnitude).
  uint64_t bytes = 0;

  // Implementation state for the lazy IR decode (populated by
  // KeywordCache; treat as private).
  CodecKind ir_codec = CodecKind::kRaw;
  std::string ir_raw;  // encoded IR region: per-set headers + payloads
  mutable std::once_flag ir_once;
  mutable bool ir_corrupt = false;
  mutable std::vector<uint32_t> set_offsets;  // set_ids.size() + 1
  mutable std::vector<VertexId> set_members;
};

/// Decoded prefix of one keyword's R_w + L_w at `loaded_budget` RR sets
/// (the largest budget any query has needed so far). Serves every query
/// budget <= loaded_budget; a larger budget re-decodes and replaces it.
struct RrKeywordBlock {
  uint64_t loaded_budget = 0;

  // RR-set prefix [0, loaded_budget), members flattened.
  std::vector<uint64_t> set_offsets{0};
  std::vector<VertexId> set_items;

  // Inverted lists restricted to RR ids < loaded_budget, keyed by
  // ascending vertex id for binary-search lookup.
  std::vector<VertexId> list_vertex;
  std::vector<uint64_t> list_offsets{0};
  std::vector<RrId> list_ids;

  uint64_t bytes = 0;

  std::span<const VertexId> SetMembers(RrId rr) const {
    return {set_items.data() + set_offsets[rr],
            set_items.data() + set_offsets[rr + 1]};
  }

  /// Inverted list of v restricted to RR ids < query_budget (<= loaded).
  std::span<const RrId> ListOf(VertexId v, uint64_t query_budget) const;
};

/// Shared warm-path state for one index directory. Create once, share
/// across IrrIndex / RrIndex handles and across threads.
class KeywordCache {
 public:
  /// Reads the directory's metadata and constructs an empty cache.
  static StatusOr<std::shared_ptr<KeywordCache>> Create(
      const std::string& dir, KeywordCacheOptions options = {});

  const IndexMeta& meta() const { return meta_; }
  const std::string& dir() const { return dir_; }
  const KeywordCacheOptions& options() const { return options_; }

  /// The parsed IRR preamble of `topic` (opened + parsed on first use).
  StatusOr<std::shared_ptr<const IrrKeywordEntry>> GetIrrKeyword(
      TopicId topic) EXCLUDES(mu_);

  /// Decoded partition `partition` of `entry`'s keyword, from cache, from
  /// an in-flight prefetch (waits for it instead of re-decoding), or from
  /// disk. The returned block stays valid while the caller holds it.
  StatusOr<std::shared_ptr<const IrrPartitionBlock>> GetIrrPartition(
      const IrrKeywordEntry& entry, uint64_t partition) EXCLUDES(mu_);

  /// Schedules a background read + decode of `entry`'s partition so a
  /// later GetIrrPartition overlaps with the caller's compute. No-op when
  /// the partition is resident, already in flight, out of range, or
  /// prefetching/caching is disabled. `entry` is retained by the task.
  void PrefetchIrrPartition(std::shared_ptr<const IrrKeywordEntry> entry,
                            uint64_t partition) EXCLUDES(mu_);

  /// Blocks until every scheduled prefetch has landed. Benchmarks and
  /// tests call this to make I/O-counting windows deterministic.
  void WaitForPrefetches() EXCLUDES(mu_);

  /// Decoded R_w prefix + inverted lists of `topic` covering at least
  /// `min_budget` RR sets.
  StatusOr<std::shared_ptr<const RrKeywordBlock>> GetRrKeyword(
      TopicId topic, uint64_t min_budget) EXCLUDES(mu_);

  /// Current counters.
  KeywordCacheStats stats() const EXCLUDES(mu_);

  /// Drops every cached block (entries/handles survive). Mainly for tests
  /// and for benchmarks that need a cold block cache.
  void DropBlocks() EXCLUDES(mu_);

  /// Failure-domain hook: called once per recorded kIOError/kCorruption,
  /// outside the cache lock, possibly from a prefetch-pool thread. The
  /// subscriber (QueryService's circuit breaker) must not call back into
  /// the cache from the listener. Pass nullptr to unsubscribe — REQUIRED
  /// before the subscriber is destroyed.
  using FailureListener = std::function<void(TopicId, const Status&)>;
  void SetFailureListener(FailureListener listener) EXCLUDES(listener_mu_);

  /// Runs `fn` on the cache-owned prefetch pool, returning false (without
  /// running it) when the pool is disabled. The online scrubber schedules
  /// its paced block verifications here so scrub work shares the pool's
  /// concurrency bound with prefetches instead of adding threads.
  bool RunOnPrefetchPool(std::function<void()> fn);

  /// Drops everything cached for `topic`: resident blocks, the parsed
  /// preamble, file handles (reopened on next access), in-flight prefetch
  /// registrations (joiners holding the future still get their result),
  /// and the uncacheable memo. Bumps the topic's epoch so a decode that
  /// raced the invalidation can never re-admit a stale block. Called
  /// internally on the first kCorruption; public for tests and operators.
  void InvalidateTopic(TopicId topic) EXCLUDES(mu_);

 private:
  /// Mutable per-topic RR state: file handles plus the offset-directory
  /// prefix read so far (extended on demand, never shrunk). Handles are
  /// shared_ptr so InvalidateTopic can drop the entry while a reader that
  /// copied them out under the lock keeps reading safely.
  struct RrKeywordEntry {
    TopicId topic = kInvalidTopic;
    std::shared_ptr<RandomAccessFile> rr_file;
    std::shared_ptr<RandomAccessFile> lists_file;
    uint64_t count = 0;  // θ_w stored in the file
    std::vector<uint64_t> offsets;  // directory prefix, offsets[0..n]
    /// v2 file: payload reads verify against page_crcs before decode.
    bool checksummed = false;
    /// Masked per-page payload CRCs (v2; loaded with the directory).
    std::vector<uint32_t> page_crcs;
  };

  /// Key of a block in the LRU: IRR partitions use (topic, partition);
  /// RR payloads use (topic, kRrBlockSlot).
  static constexpr uint64_t kRrBlockSlot = ~uint64_t{0};

  struct BlockKey {
    TopicId topic;
    uint64_t slot;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      return std::hash<uint64_t>()((uint64_t{k.topic} << 32) ^
                                   (k.slot * 0x9E3779B97F4A7C15ull));
    }
  };
  struct BlockSlot {
    std::shared_ptr<const void> block;
    uint64_t bytes = 0;
    std::list<BlockKey>::iterator lru_pos;
  };

  using IrrBlockFuture =
      std::shared_future<StatusOr<std::shared_ptr<const IrrPartitionBlock>>>;

  KeywordCache(std::string dir, IndexMeta meta, KeywordCacheOptions options)
      : dir_(std::move(dir)), meta_(std::move(meta)), options_(options) {
    if (options_.prefetch_threads > 0 && options_.block_cache_bytes > 0) {
      prefetch_pool_ = std::make_unique<ThreadPool>(options_.prefetch_threads);
    }
  }

  /// Largest decoded block the admission policy lets into the cache.
  uint64_t AdmissionLimitBytes() const {
    const double limit = options_.max_block_fraction *
                         static_cast<double>(options_.block_cache_bytes);
    return limit >= static_cast<double>(options_.block_cache_bytes)
               ? options_.block_cache_bytes
               : static_cast<uint64_t>(limit);
  }

  /// Inserts a block under the LRU byte bound, but only when `topic`'s
  /// epoch still equals `epoch` (captured before the decode) — a decode
  /// that raced an InvalidateTopic must not resurrect stale state.
  /// Returns the resident block for `key` (the existing one if another
  /// thread won; the caller's own block, uncached, when the epoch moved
  /// or the admission policy bypassed it).
  std::shared_ptr<const void> InsertBlockIfFresh(
      const BlockKey& key, std::shared_ptr<const void> block,
      uint64_t bytes, uint64_t epoch) EXCLUDES(mu_);
  /// Evicts to fit, then records the block under `key`. mu_ must be held
  /// and `key` must not be present.
  void InsertBlockLocked(const BlockKey& key,
                         std::shared_ptr<const void> block, uint64_t bytes)
      REQUIRES(mu_);
  /// Removes `key`'s block (if present), fixing byte accounting. mu_ held.
  void EraseBlockLocked(const BlockKey& key) REQUIRES(mu_);
  void TouchLocked(BlockSlot& slot) REQUIRES(mu_);
  void EvictToFitLocked(uint64_t incoming_bytes) REQUIRES(mu_);

  /// Classifies a failed read/decode on `topic`'s files and reacts:
  /// kCorruption → full InvalidateTopic (a bad payload may have siblings);
  /// kIOError → drop the topic's file handles so the next access reopens
  /// fresh descriptors (cached blocks are validated decodes and survive).
  /// Other codes are ignored. Notifies the failure listener outside mu_.
  void RecordTopicFailure(TopicId topic, const Status& status)
      EXCLUDES(mu_, listener_mu_);

  /// Current invalidation epoch of `topic` (0 until first invalidation).
  uint64_t EpochLocked(TopicId topic) const REQUIRES(mu_);

  /// Verifies `data` against a stored masked CRC, bumping crc_checks /
  /// crc_failures. `what` + `path` label the kCorruption on mismatch.
  /// CheckCrcLocked requires mu_; CheckCrc takes it.
  Status CheckCrcLocked(const char* data, size_t n, uint32_t stored_masked,
                        const char* what, const std::string& path)
      REQUIRES(mu_);
  Status CheckCrc(const char* data, size_t n, uint32_t stored_masked,
                  const char* what, const std::string& path) EXCLUDES(mu_);

  StatusOr<std::shared_ptr<const IrrKeywordEntry>> LoadIrrEntry(
      TopicId topic) EXCLUDES(mu_);
  /// The read + decode of one partition (no cache bookkeeping); runs on
  /// foreground misses and on the prefetch pool.
  StatusOr<std::shared_ptr<const IrrPartitionBlock>> DecodeIrrPartition(
      const IrrKeywordEntry& entry, uint64_t partition) EXCLUDES(mu_);
  Status EnsureRrEntryLocked(TopicId topic, RrKeywordEntry** entry)
      REQUIRES(mu_);
  /// Extends the directory prefix; does file I/O while mu_ stays held (a
  /// deliberate design choice: the directory read is one small pread and
  /// extending is rare once warm).
  Status ExtendRrDirectoryLocked(RrKeywordEntry* entry, uint64_t budget)
      REQUIRES(mu_);
  /// GetRrKeyword body; the public wrapper records failures.
  StatusOr<std::shared_ptr<const RrKeywordBlock>> GetRrKeywordImpl(
      TopicId topic, uint64_t min_budget) EXCLUDES(mu_);

  const std::string dir_;
  const IndexMeta meta_;
  const KeywordCacheOptions options_;

  mutable Mutex mu_;
  std::unordered_map<TopicId, std::shared_ptr<const IrrKeywordEntry>>
      irr_entries_ GUARDED_BY(mu_);
  std::unordered_map<TopicId, RrKeywordEntry> rr_entries_ GUARDED_BY(mu_);
  std::unordered_map<BlockKey, BlockSlot, BlockKeyHash> blocks_
      GUARDED_BY(mu_);
  std::list<BlockKey> lru_ GUARDED_BY(mu_);  // front = most recently used
  /// Prefetches in flight: lets foreground misses join a background
  /// decode instead of duplicating it. Erased (under mu_, after the block
  /// landed in blocks_) by the task itself.
  std::unordered_map<BlockKey, IrrBlockFuture, BlockKeyHash> inflight_
      GUARDED_BY(mu_);
  /// Partitions the admission policy refused: prefetching them again
  /// would decode into the void every round, so the window skips them.
  std::unordered_map<BlockKey, bool, BlockKeyHash> uncacheable_
      GUARDED_BY(mu_);
  /// Bumped by InvalidateTopic; decodes capture the epoch before reading
  /// and only admit their block if it has not moved since.
  std::unordered_map<TopicId, uint64_t> topic_epoch_ GUARDED_BY(mu_);
  KeywordCacheStats stats_ GUARDED_BY(mu_);

  /// Listener state has its own mutex: the listener runs outside mu_ (it
  /// may take the subscriber's locks) and may be swapped concurrently.
  mutable Mutex listener_mu_;
  FailureListener failure_listener_ GUARDED_BY(listener_mu_);

  /// MUST remain the last member: its destructor runs first and drains
  /// queued prefetch decodes while every field they touch is still alive.
  std::unique_ptr<ThreadPool> prefetch_pool_;
};

}  // namespace kbtim

#endif  // KBTIM_INDEX_KEYWORD_CACHE_H_

#include "index/irr_index.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "coverage/rr_collection.h"
#include "storage/block_file.h"
#include "storage/io_counter.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

constexpr char kIrrMagic[4] = {'K', 'B', 'I', 'W'};
constexpr uint64_t kIrrHeaderSize = 4 + 4 + 8 + 8 + 4 + 1 + 8;

/// Query-time state for one keyword's IRR file.
struct KeywordState {
  TopicId topic = kInvalidTopic;
  uint64_t budget = 0;  // θ^Q_w
  std::unique_ptr<RandomAccessFile> file;
  CodecKind codec = CodecKind::kRaw;
  uint64_t num_users = 0;
  uint64_t num_partitions = 0;
  uint64_t theta_w = 0;
  std::vector<IrrPartitionInfo> directory;
  /// IP_w: first RR-set occurrence per user.
  std::unordered_map<VertexId, RrId> first_occurrence;

  uint64_t next_partition = 0;
  /// kb[w]: upper bound on the (unrestricted) list length of any user whose
  /// list has not been loaded yet. 0 once all partitions are in memory.
  uint64_t kb = 0;
  /// Loaded inverted lists, restricted to RR ids < budget.
  std::unordered_map<VertexId, std::vector<RrId>> lists;
  std::vector<char> covered;
  uint64_t rr_sets_loaded = 0;

  // Eager mode only: decoded members of loaded RR sets (restricted to the
  // budget) and incrementally maintained uncovered counts per loaded user.
  bool eager = false;
  std::unordered_map<RrId, std::vector<VertexId>> set_members;
  std::unordered_map<VertexId, uint64_t> exact_count;

  bool AllLoaded() const { return next_partition >= num_partitions; }

  /// Exact uncovered coverage of v for this keyword, given its list is
  /// loaded (or known absent).
  uint64_t ExactPartial(
      const std::unordered_map<VertexId, std::vector<RrId>>::const_iterator
          it) const {
    uint64_t score = 0;
    for (RrId rr : it->second) {
      if (!covered[rr]) ++score;
    }
    return score;
  }
};

Status OpenKeyword(const std::string& path, TopicId topic,
                   const IndexMeta::TopicMeta& tm, CodecKind codec,
                   uint64_t budget, KeywordState* state) {
  state->topic = topic;
  state->budget = budget;
  if (budget == 0) return Status::OK();
  KBTIM_ASSIGN_OR_RETURN(state->file, RandomAccessFile::Open(path));
  if (tm.irr_preamble < kIrrHeaderSize ||
      tm.irr_preamble > state->file->size()) {
    return Status::Corruption("bad IRR preamble length: " + path);
  }
  // Single read: header + IP map + partition directory.
  std::string buf;
  KBTIM_RETURN_IF_ERROR(state->file->Read(0, tm.irr_preamble, &buf));
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  if (std::memcmp(p, kIrrMagic, 4) != 0) {
    return Status::Corruption("bad IRR magic: " + path);
  }
  uint32_t file_topic = 0, delta = 0;
  std::memcpy(&file_topic, p + 4, 4);
  std::memcpy(&state->num_users, p + 8, 8);
  std::memcpy(&state->num_partitions, p + 16, 8);
  std::memcpy(&delta, p + 24, 4);
  state->codec = static_cast<CodecKind>(p[28]);
  std::memcpy(&state->theta_w, p + 29, 8);
  p += kIrrHeaderSize;
  if (file_topic != topic || state->codec != codec) {
    return Status::Corruption("IRR header mismatch: " + path);
  }
  if (budget > state->theta_w) {
    return Status::Corruption("IRR budget exceeds stored sets: " + path);
  }

  // IP map.
  state->first_occurrence.reserve(state->num_users * 2);
  VertexId prev = 0;
  for (uint64_t i = 0; i < state->num_users; ++i) {
    uint32_t dv = 0, first = 0;
    p = GetVarint32(p, limit, &dv);
    if (p == nullptr) return Status::Corruption("IRR IP truncated: " + path);
    p = GetVarint32(p, limit, &first);
    if (p == nullptr) return Status::Corruption("IRR IP truncated: " + path);
    prev += dv;  // deltas accumulate from 0, so the first one is absolute
    state->first_occurrence.emplace(prev, first);
  }

  // Partition directory (fixed 32-byte entries).
  if (p + state->num_partitions * 32 > limit) {
    return Status::Corruption("IRR directory truncated: " + path);
  }
  state->directory.resize(state->num_partitions);
  for (auto& info : state->directory) {
    std::memcpy(&info.offset, p, 8);
    std::memcpy(&info.length, p + 8, 8);
    std::memcpy(&info.num_users, p + 16, 4);
    std::memcpy(&info.num_sets, p + 20, 4);
    std::memcpy(&info.max_list_len, p + 24, 4);
    std::memcpy(&info.min_list_len, p + 28, 4);
    p += 32;
  }
  state->kb = state->directory.empty() ? 0 : state->directory[0].max_list_len;
  state->covered.assign(budget, 0);
  return Status::OK();
}

/// Loads the next partition of one keyword; appends newly seen users to
/// *new_users. Returns false if all partitions were already loaded.
StatusOr<bool> LoadNextPartition(KeywordState* state,
                                 std::vector<VertexId>* new_users) {
  if (state->budget == 0 || state->AllLoaded()) return false;
  const IrrPartitionInfo& info = state->directory[state->next_partition];
  std::string buf;
  KBTIM_RETURN_IF_ERROR(state->file->Read(info.offset, info.length, &buf));
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  const auto codec = MakeCodec(state->codec);

  // IL^p: inverted lists.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < info.num_users; ++i) {
    uint32_t v = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &v);
    if (p == nullptr) return Status::Corruption("IRR IL truncated");
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("IRR IL truncated");
    }
    KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(p, len), &ids));
    p += len;
    DeltaDecode(&ids);
    size_t cut = ids.size();
    while (cut > 0 && ids[cut - 1] >= state->budget) --cut;
    auto& list = state->lists[v];
    list.assign(ids.begin(), ids.begin() + cut);
    if (state->eager) {
      // Initialize the maintained uncovered count against sets already
      // covered by earlier seeds.
      uint64_t count = 0;
      for (RrId id : list) {
        if (!state->covered[id]) ++count;
      }
      state->exact_count[v] = count;
    }
    new_users->push_back(v);
  }

  // IR^p: RR sets first referenced by this partition. The lazy NRA needs
  // only their ids (sets inside the query budget are what "RR sets loaded"
  // measures — paper Figures 5-7) and skips the members; eager mode
  // (Algorithm 4 lines 17-22) decodes them to push score updates.
  uint32_t num_sets = 0;
  p = GetVarint32(p, limit, &num_sets);
  if (p == nullptr) return Status::Corruption("IRR IR truncated");
  RrId rr = 0;
  for (uint32_t s = 0; s < num_sets; ++s) {
    uint32_t rr_delta = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &rr_delta);
    if (p == nullptr) return Status::Corruption("IRR IR truncated");
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("IRR IR truncated");
    }
    rr += rr_delta;
    if (rr < state->budget) {
      ++state->rr_sets_loaded;
      if (state->eager) {
        KBTIM_RETURN_IF_ERROR(
            codec->Decode(std::string_view(p, len), &ids));
        DeltaDecode(&ids);
        state->set_members.emplace(rr, ids);
      }
    }
    p += len;
  }

  ++state->next_partition;
  state->kb = state->AllLoaded()
                  ? 0
                  : state->directory[state->next_partition].max_list_len;
  return true;
}

struct PqEntry {
  uint64_t score;
  VertexId vertex;

  bool operator<(const PqEntry& other) const {
    if (score != other.score) return score < other.score;
    return vertex > other.vertex;  // smaller id wins ties
  }
};

}  // namespace

StatusOr<IrrIndex> IrrIndex::Open(const std::string& dir) {
  KBTIM_ASSIGN_OR_RETURN(IndexMeta meta, ReadIndexMeta(MetaFileName(dir)));
  if (!meta.has_irr) {
    return Status::FailedPrecondition(
        "index directory has no IRR structures: " + dir);
  }
  return IrrIndex(dir, std::move(meta));
}

StatusOr<SeedSetResult> IrrIndex::Query(const kbtim::Query& query,
                                        IrrQueryMode mode) const {
  WallTimer total_timer;
  const IoStats io_before = IoCounter::Snapshot();
  KBTIM_ASSIGN_OR_RETURN(QueryBudget budget,
                         ComputeQueryBudget(meta_, query));

  WallTimer load_timer;
  std::vector<KeywordState> keywords(budget.per_keyword.size());
  uint64_t total_budget = 0;
  for (size_t i = 0; i < budget.per_keyword.size(); ++i) {
    const auto [topic, tw] = budget.per_keyword[i];
    keywords[i].eager = mode == IrrQueryMode::kEager;
    KBTIM_RETURN_IF_ERROR(OpenKeyword(IrrFileName(dir_, topic), topic,
                                      meta_.topics[topic], meta_.codec, tw,
                                      &keywords[i]));
    total_budget += tw;
  }
  double load_seconds = load_timer.ElapsedSeconds();

  // Upper-bound score of v: exact remaining coverage where the list is
  // loaded (or provably 0 via IP / full load), kb[w] otherwise. Eager
  // mode reads the incrementally maintained count; lazy mode rescans the
  // list against the covered bitmap (§5.2).
  auto upper_bound = [&](VertexId v, bool* complete) -> uint64_t {
    uint64_t score = 0;
    bool all_exact = true;
    for (const auto& ks : keywords) {
      if (ks.budget == 0) continue;
      if (ks.eager) {
        const auto ec = ks.exact_count.find(v);
        if (ec != ks.exact_count.end()) {
          score += ec->second;
          continue;
        }
      }
      const auto it = ks.lists.find(v);
      if (it != ks.lists.end()) {
        score += ks.ExactPartial(it);
        continue;
      }
      const auto ip = ks.first_occurrence.find(v);
      if (ip == ks.first_occurrence.end() || ip->second >= ks.budget ||
          ks.AllLoaded()) {
        continue;  // exact partial score 0
      }
      score += ks.kb;
      all_exact = false;
    }
    if (complete != nullptr) *complete = all_exact;
    return score;
  };

  auto kb_sum = [&]() {
    uint64_t sum = 0;
    for (const auto& ks : keywords) sum += ks.kb;
    return sum;
  };

  std::priority_queue<PqEntry> pq;
  std::unordered_set<VertexId> discovered;
  std::vector<char> selected(meta_.num_vertices, 0);

  auto load_round = [&]() -> StatusOr<bool> {
    WallTimer t;
    bool any = false;
    std::vector<VertexId> new_users;
    for (auto& ks : keywords) {
      KBTIM_ASSIGN_OR_RETURN(bool loaded, LoadNextPartition(&ks,
                                                            &new_users));
      any = any || loaded;
    }
    for (VertexId v : new_users) {
      if (selected[v]) continue;
      if (discovered.insert(v).second) {
        pq.push({upper_bound(v, nullptr), v});
      }
    }
    load_seconds += t.ElapsedSeconds();
    return any;
  };

  SeedSetResult result;
  uint64_t total_covered = 0;
  const double scale = budget.phi_q /
                       static_cast<double>(std::max<uint64_t>(1,
                                                              total_budget));
  while (result.seeds.size() < query.k) {
    if (pq.empty()) {
      KBTIM_ASSIGN_OR_RETURN(bool any, load_round());
      if (any) continue;
      break;  // nothing left anywhere
    }
    const PqEntry top = pq.top();
    if (selected[top.vertex]) {
      pq.pop();
      continue;
    }
    bool complete = false;
    const uint64_t fresh = upper_bound(top.vertex, &complete);
    if (fresh != top.score) {
      // Lazy refinement: re-score only the queue head (§5.2).
      pq.pop();
      pq.push({fresh, top.vertex});
      continue;
    }
    if (complete && fresh >= kb_sum()) {
      // Confirmed: no loaded candidate (heap top) nor unseen user (kb sum)
      // can beat it.
      pq.pop();
      selected[top.vertex] = 1;
      result.seeds.push_back(top.vertex);
      result.marginal_gains.push_back(static_cast<double>(fresh) * scale);
      total_covered += fresh;
      for (auto& ks : keywords) {
        const auto it = ks.lists.find(top.vertex);
        if (it == ks.lists.end()) continue;
        for (RrId rr : it->second) {
          if (ks.covered[rr]) continue;
          ks.covered[rr] = 1;
          if (!ks.eager) continue;
          // Algorithm 4 lines 21-22: push the update to every user the
          // newly covered set contains.
          const auto members = ks.set_members.find(rr);
          if (members == ks.set_members.end()) continue;
          for (VertexId u : members->second) {
            const auto ec = ks.exact_count.find(u);
            if (ec != ks.exact_count.end() && ec->second > 0) {
              --ec->second;
            }
          }
        }
      }
      continue;
    }
    // Not decidable yet: bring in the next partition of every keyword.
    KBTIM_ASSIGN_OR_RETURN(bool any, load_round());
    if (!any && complete) {
      // Defensive: with everything loaded kb_sum() == 0, so the condition
      // above must hold on the next iteration.
      continue;
    }
  }
  // Pad to exactly k with the smallest unselected ids (marginal 0),
  // mirroring Algorithm 2.
  for (VertexId v = 0;
       v < meta_.num_vertices && result.seeds.size() < query.k; ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_gains.push_back(0.0);
    }
  }

  result.estimated_influence = static_cast<double>(total_covered) * scale;
  uint64_t loaded = 0;
  for (const auto& ks : keywords) loaded += ks.rr_sets_loaded;
  const IoStats io = IoCounter::Snapshot() - io_before;
  result.stats.theta = budget.theta_q;
  result.stats.rr_sets_loaded = loaded;
  result.stats.io_reads = io.read_ops;
  result.stats.io_bytes = io.read_bytes;
  result.stats.sampling_seconds = load_seconds;
  result.stats.greedy_seconds =
      total_timer.ElapsedSeconds() - load_seconds;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kbtim

#include "index/irr_index.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <queue>
#include <unordered_set>

#include "common/timer.h"
#include "coverage/rr_collection.h"
#include "storage/io_counter.h"

namespace kbtim {
namespace {

/// Open-addressing vertex -> (list span, maintained exact count) table.
/// Capacity is reserved per partition-load round (load factor <= 0.5, so
/// NRA early termination on a huge keyword never pays for users it didn't
/// load), and the lookup loops themselves never rehash or allocate. Spans
/// point into cached partition blocks pinned by the owning KeywordState.
class FlatListTable {
 public:
  struct Slot {
    VertexId vertex = kInvalidVertex;
    const RrId* begin = nullptr;
    const RrId* end = nullptr;
    uint64_t exact = 0;  // eager mode's maintained uncovered count
  };

  /// Caps the table at `max_inserts` distinct vertices (the preamble's
  /// user count); a corrupt index naming more users fails cleanly
  /// instead of looping (every probe sequence stays finite).
  void Init(uint64_t max_inserts) {
    limit_ = max_inserts;
    inserted_ = 0;
    mask_ = 0;
    slots_.clear();
  }

  /// Ensures capacity for `extra` more inserts, rehashing if needed.
  /// Called once per partition load — never from a lookup path. Any Slot*
  /// obtained before this call is invalidated.
  void Reserve(uint64_t extra) {
    const uint64_t want = inserted_ + extra;
    if (!slots_.empty() && 2 * want <= slots_.size()) return;
    size_t cap = 16;
    while (cap < 2 * (want + 1)) cap <<= 1;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& s : old) {
      if (s.vertex == kInvalidVertex) continue;
      size_t i = Hash(s.vertex) & mask_;
      while (slots_[i].vertex != kInvalidVertex) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  /// Returns null when the insert cap is exceeded (corrupt index).
  /// Requires a prior Reserve covering this insert.
  Slot* Insert(VertexId v) {
    size_t i = Hash(v) & mask_;
    while (slots_[i].vertex != kInvalidVertex) {
      if (slots_[i].vertex == v) return &slots_[i];
      i = (i + 1) & mask_;
    }
    if (inserted_ == limit_) return nullptr;
    ++inserted_;
    slots_[i].vertex = v;
    return &slots_[i];
  }

  const Slot* Find(VertexId v) const {
    if (slots_.empty()) return nullptr;
    size_t i = Hash(v) & mask_;
    while (slots_[i].vertex != kInvalidVertex) {
      if (slots_[i].vertex == v) return &slots_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  Slot* Find(VertexId v) {
    return const_cast<Slot*>(std::as_const(*this).Find(v));
  }

 private:
  static size_t Hash(VertexId v) {
    uint64_t x = uint64_t{v} * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(x >> 29);
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  uint64_t limit_ = 0;
  uint64_t inserted_ = 0;
};

/// Query-time state for one keyword, backed by the shared cache.
struct KeywordState {
  TopicId topic = kInvalidTopic;
  uint64_t budget = 0;  // θ^Q_w
  std::shared_ptr<const IrrKeywordEntry> entry;

  uint64_t next_partition = 0;
  /// kb[w]: upper bound on the (unrestricted) list length of any user whose
  /// list has not been loaded yet. 0 once all partitions are in memory.
  uint64_t kb = 0;
  /// Loaded inverted lists (budget-restricted spans into cached blocks).
  FlatListTable lists;
  std::vector<char> covered;
  uint64_t rr_sets_loaded = 0;
  bool eager = false;

  /// Cached blocks the list spans point into, with the prefix of each
  /// block's (ascending) set_ids that falls inside the query budget.
  struct PinnedBlock {
    std::shared_ptr<const IrrPartitionBlock> block;
    size_t in_budget = 0;
  };
  std::vector<PinnedBlock> pinned;

  bool AllLoaded() const {
    return entry == nullptr || next_partition >= entry->num_partitions;
  }

  /// Members of covered set `rr` if its partition is loaded (eager mode's
  /// Algorithm 4 lines 21-22); empty otherwise. Each set id lives in
  /// exactly one partition, found by binary search over the few pinned
  /// blocks — no budget-sized per-query array.
  std::span<const VertexId> FindSetMembers(RrId rr) const {
    for (const PinnedBlock& pb : pinned) {
      const auto& ids = pb.block->set_ids;
      const auto end = ids.begin() + pb.in_budget;
      const auto it = std::lower_bound(ids.begin(), end, rr);
      if (it != end && *it == rr) {
        return pb.block->SetMembers(
            static_cast<size_t>(it - ids.begin()));
      }
    }
    return {};
  }

  /// Exact uncovered coverage of a loaded slot for this keyword.
  uint64_t ExactPartial(const FlatListTable::Slot& slot) const {
    uint64_t score = 0;
    for (const RrId* p = slot.begin; p != slot.end; ++p) {
      if (!covered[*p]) ++score;
    }
    return score;
  }
};

Status OpenKeyword(KeywordCache& cache, TopicId topic, uint64_t budget,
                   bool eager, KeywordState* state) {
  state->topic = topic;
  state->budget = budget;
  state->eager = eager;
  if (budget == 0) return Status::OK();
  KBTIM_ASSIGN_OR_RETURN(state->entry, cache.GetIrrKeyword(topic));
  if (budget > state->entry->theta_w) {
    return Status::Corruption("IRR budget exceeds stored sets: " +
                              IrrFileName(cache.dir(), topic));
  }
  state->kb = state->entry->directory.empty()
                  ? 0
                  : state->entry->directory[0].max_list_len;
  state->covered.assign(budget, 0);
  state->lists.Init(state->entry->num_users);
  // Start the pipeline: the first prefetch_depth partitions decode in the
  // background while the remaining keywords parse their preambles and the
  // query sets up.
  for (uint32_t d = 0; d < cache.options().prefetch_depth; ++d) {
    cache.PrefetchIrrPartition(state->entry, d);
  }
  return Status::OK();
}

/// Brings in the next partition of one keyword (cache-served); appends
/// newly seen users to *new_users. Returns false when all partitions were
/// already loaded.
StatusOr<bool> LoadNextPartition(KeywordCache& cache, KeywordState* state,
                                 std::vector<VertexId>* new_users) {
  if (state->budget == 0 || state->AllLoaded()) return false;
  KBTIM_ASSIGN_OR_RETURN(
      std::shared_ptr<const IrrPartitionBlock> block,
      cache.GetIrrPartition(*state->entry, state->next_partition));
  if (state->eager) {
    // Eager mode reads IR^p members; surface payload corruption at load
    // time (the lazy default defers both the decode and the check).
    KBTIM_RETURN_IF_ERROR(block->EnsureMembers());
  }

  // IL^p: restrict each cached (unrestricted, ascending) list to the
  // query budget once, storing the span.
  state->lists.Reserve(block->users.size());
  for (size_t i = 0; i < block->users.size(); ++i) {
    const VertexId v = block->users[i];
    const std::span<const RrId> full = block->ListOf(i);
    const RrId* end =
        std::lower_bound(full.data(), full.data() + full.size(),
                         static_cast<RrId>(state->budget));
    FlatListTable::Slot* slot = state->lists.Insert(v);
    if (slot == nullptr) {
      return Status::Corruption(
          "IRR partitions name more users than the preamble");
    }
    slot->begin = full.data();
    slot->end = end;
    if (state->eager) {
      // Initialize the maintained uncovered count against sets already
      // covered by earlier seeds.
      uint64_t count = 0;
      for (const RrId* p = slot->begin; p != slot->end; ++p) {
        if (!state->covered[*p]) ++count;
      }
      slot->exact = count;
    }
    new_users->push_back(v);
  }

  // IR^p: RR-set ids ascend within a partition, so the budget restriction
  // is a prefix. "RR sets loaded" (paper Figures 5-7) counts sets inside
  // the query budget whether they came from disk or from cache.
  const auto& ids = block->set_ids;
  const size_t in_budget = static_cast<size_t>(
      std::lower_bound(ids.begin(), ids.end(),
                       static_cast<RrId>(state->budget)) -
      ids.begin());
  state->rr_sets_loaded += in_budget;

  state->pinned.push_back({std::move(block), in_budget});
  ++state->next_partition;
  state->kb =
      state->AllLoaded()
          ? 0
          : state->entry->directory[state->next_partition].max_list_len;
  // Keep the decode window prefetch_depth partitions ahead of consumption
  // so the workers stay saturated while the NRA loop computes (no-ops for
  // anything already resident or in flight).
  for (uint32_t d = 0; d < cache.options().prefetch_depth; ++d) {
    cache.PrefetchIrrPartition(state->entry, state->next_partition + d);
  }
  return true;
}

struct PqEntry {
  uint64_t score;
  VertexId vertex;

  bool operator<(const PqEntry& other) const {
    if (score != other.score) return score < other.score;
    return vertex > other.vertex;  // smaller id wins ties
  }
};

}  // namespace

StatusOr<IrrIndex> IrrIndex::Open(const std::string& dir,
                                  KeywordCacheOptions cache_options) {
  KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<KeywordCache> cache,
                         KeywordCache::Create(dir, cache_options));
  return Open(std::move(cache));
}

StatusOr<IrrIndex> IrrIndex::Open(std::shared_ptr<KeywordCache> cache) {
  if (!cache->meta().has_irr) {
    return Status::FailedPrecondition(
        "index directory has no IRR structures: " + cache->dir());
  }
  return IrrIndex(std::move(cache));
}

StatusOr<SeedSetResult> IrrIndex::Query(const kbtim::Query& query,
                                        IrrQueryMode mode) const {
  WallTimer total_timer;
  const IoStats io_before = IoCounter::Snapshot();
  const KeywordCacheStats cache_before = cache_->stats();
  KBTIM_ASSIGN_OR_RETURN(QueryBudget budget,
                         ComputeQueryBudget(meta(), query));

  WallTimer load_timer;
  std::vector<KeywordState> keywords(budget.per_keyword.size());
  uint64_t total_budget = 0;
  for (size_t i = 0; i < budget.per_keyword.size(); ++i) {
    const auto [topic, tw] = budget.per_keyword[i];
    KBTIM_RETURN_IF_ERROR(OpenKeyword(*cache_, topic, tw,
                                      mode == IrrQueryMode::kEager,
                                      &keywords[i]));
    total_budget += tw;
  }
  double load_seconds = load_timer.ElapsedSeconds();

  // Upper-bound score of v: exact remaining coverage where the list is
  // loaded (or provably 0 via IP / full load), kb[w] otherwise. Eager
  // mode reads the incrementally maintained count; lazy mode rescans the
  // list span against the covered bitmap (§5.2).
  auto upper_bound = [&](VertexId v, bool* complete) -> uint64_t {
    uint64_t score = 0;
    bool all_exact = true;
    for (const auto& ks : keywords) {
      if (ks.budget == 0) continue;
      const FlatListTable::Slot* slot = ks.lists.Find(v);
      if (slot != nullptr) {
        score += ks.eager ? slot->exact : ks.ExactPartial(*slot);
        continue;
      }
      RrId first = 0;
      if (!ks.entry->FirstOccurrence(v, &first) || first >= ks.budget ||
          ks.AllLoaded()) {
        continue;  // exact partial score 0
      }
      score += ks.kb;
      all_exact = false;
    }
    if (complete != nullptr) *complete = all_exact;
    return score;
  };

  auto kb_sum = [&]() {
    uint64_t sum = 0;
    for (const auto& ks : keywords) sum += ks.kb;
    return sum;
  };

  std::priority_queue<PqEntry> pq;
  std::unordered_set<VertexId> discovered;
  std::vector<char> selected(meta().num_vertices, 0);

  auto load_round = [&]() -> StatusOr<bool> {
    WallTimer t;
    bool any = false;
    std::vector<VertexId> new_users;
    for (auto& ks : keywords) {
      KBTIM_ASSIGN_OR_RETURN(bool loaded,
                             LoadNextPartition(*cache_, &ks, &new_users));
      any = any || loaded;
    }
    for (VertexId v : new_users) {
      if (selected[v]) continue;
      if (discovered.insert(v).second) {
        pq.push({upper_bound(v, nullptr), v});
      }
    }
    load_seconds += t.ElapsedSeconds();
    return any;
  };

  SeedSetResult result;
  uint64_t total_covered = 0;
  const double scale = budget.phi_q /
                       static_cast<double>(std::max<uint64_t>(1,
                                                              total_budget));
  while (result.seeds.size() < query.k) {
    if (pq.empty()) {
      KBTIM_ASSIGN_OR_RETURN(bool any, load_round());
      if (any) continue;
      break;  // nothing left anywhere
    }
    const PqEntry top = pq.top();
    if (selected[top.vertex]) {
      pq.pop();
      continue;
    }
    bool complete = false;
    const uint64_t fresh = upper_bound(top.vertex, &complete);
    if (fresh != top.score) {
      // Lazy refinement: re-score only the queue head (§5.2).
      pq.pop();
      pq.push({fresh, top.vertex});
      continue;
    }
    if (complete && fresh >= kb_sum()) {
      // Confirmed: no loaded candidate (heap top) nor unseen user (kb sum)
      // can beat it.
      pq.pop();
      selected[top.vertex] = 1;
      result.seeds.push_back(top.vertex);
      result.marginal_gains.push_back(static_cast<double>(fresh) * scale);
      total_covered += fresh;
      for (auto& ks : keywords) {
        if (ks.budget == 0) continue;
        const FlatListTable::Slot* slot = ks.lists.Find(top.vertex);
        if (slot == nullptr) continue;
        for (const RrId* p = slot->begin; p != slot->end; ++p) {
          const RrId rr = *p;
          if (ks.covered[rr]) continue;
          ks.covered[rr] = 1;
          if (!ks.eager) continue;
          // Algorithm 4 lines 21-22: push the update to every user the
          // newly covered set contains.
          for (VertexId u : ks.FindSetMembers(rr)) {
            FlatListTable::Slot* other = ks.lists.Find(u);
            if (other != nullptr && other->exact > 0) --other->exact;
          }
        }
      }
      continue;
    }
    // Not decidable yet: bring in the next partition of every keyword.
    KBTIM_ASSIGN_OR_RETURN(bool any, load_round());
    if (!any && complete) {
      // Defensive: with everything loaded kb_sum() == 0, so the condition
      // above must hold on the next iteration.
      continue;
    }
  }
  // Pad to exactly k with the smallest unselected ids (marginal 0),
  // mirroring Algorithm 2.
  for (VertexId v = 0;
       v < meta().num_vertices && result.seeds.size() < query.k; ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_gains.push_back(0.0);
    }
  }

  result.estimated_influence = static_cast<double>(total_covered) * scale;
  uint64_t loaded = 0;
  for (const auto& ks : keywords) loaded += ks.rr_sets_loaded;
  const IoStats io = IoCounter::Snapshot() - io_before;
  const KeywordCacheStats cache_after = cache_->stats();
  result.stats.theta = budget.theta_q;
  result.stats.rr_sets_loaded = loaded;
  result.stats.io_reads = io.read_ops;
  result.stats.io_bytes = io.read_bytes;
  result.stats.cache_hits = cache_after.hits - cache_before.hits;
  result.stats.cache_misses = cache_after.misses - cache_before.misses;
  result.stats.cache_bytes = cache_after.bytes_cached;
  result.stats.cache_admission_bypasses =
      cache_after.admission_bypasses - cache_before.admission_bypasses;
  result.stats.prefetches_issued =
      cache_after.prefetches_issued - cache_before.prefetches_issued;
  result.stats.prefetches_served =
      cache_after.prefetches_served - cache_before.prefetches_served;
  result.stats.sampling_seconds = load_seconds;
  result.stats.greedy_seconds =
      total_timer.ElapsedSeconds() - load_seconds;
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace kbtim

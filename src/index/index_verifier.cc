#include "index/index_verifier.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "coverage/rr_collection.h"
#include "graph/graph.h"
#include "index/index_format.h"
#include "storage/block_file.h"
#include "storage/crc32c.h"
#include "storage/pfor_codec.h"
#include "storage/varint.h"

// NOTE: the verifier deliberately re-implements the file parsing instead of
// reusing the query-path readers, so that a bug shared by writer and reader
// cannot hide from it. Only the CRC32C kernel itself is shared — it is
// pinned by known-answer vectors in tests/storage/crc32c_test.cc.

namespace kbtim {
namespace {

uint64_t PairHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9E3779B97F4A7C15ULL ^ (b + 0xD1342543DE82EF95ULL);
  x ^= x >> 31;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 29;
  return x;
}

Status Corrupt(const std::string& what, TopicId w) {
  return Status::Corruption(what + " (topic " + std::to_string(w) + ")");
}

uint32_t LoadFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

/// Recomputes one stored masked CRC32C; counts it when it matches.
Status CheckCrc(const char* data, uint64_t n, uint32_t stored_masked,
                const std::string& what, TopicId w,
                IndexVerification* stats) {
  if (crc32c::Mask(crc32c::Value(data, n)) != stored_masked) {
    return Corrupt(what + " checksum mismatch", w);
  }
  ++stats->checksums_verified;
  return Status::OK();
}

struct RrFileSummary {
  uint64_t membership_hash = 0;  // Σ hash(vertex, rr)
  uint64_t membership_count = 0;
  uint64_t content_hash = 0;  // Σ hash(rr, position/member)
};

Status VerifyRrFile(const std::string& path, const IndexMeta& meta,
                    TopicId w, RrFileSummary* summary,
                    IndexVerification* stats) {
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::string buf;
  KBTIM_RETURN_IF_ERROR(file->Read(0, file->size(), &buf));
  bool v2 = false;
  if (buf.size() >= 4 && std::memcmp(buf.data(), "KBR2", 4) == 0) {
    v2 = true;
  } else if (buf.size() < 4 || std::memcmp(buf.data(), "KBRW", 4) != 0) {
    return Corrupt("rr file bad magic", w);
  }
  if (v2 != (meta.format_version >= 2)) {
    return Corrupt("rr file format version disagrees with meta", w);
  }
  const uint64_t kHeader = v2 ? 29 : 17;
  if (buf.size() < kHeader) return Corrupt("rr file header truncated", w);
  uint32_t topic = 0;
  uint64_t count = 0, num_pages = 0;
  std::memcpy(&topic, buf.data() + 4, 4);
  std::memcpy(&count, buf.data() + 8, 8);
  const auto codec_kind = static_cast<CodecKind>(buf[16]);
  if (v2) {
    std::memcpy(&num_pages, buf.data() + 17, 8);
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), 25, LoadFixed32(buf.data() + 25),
                                   "rr header", w, stats));
  }
  if (topic != w) return Corrupt("rr file topic mismatch", w);
  if (codec_kind != meta.codec) return Corrupt("rr file codec mismatch", w);
  if (count != meta.topics[w].theta) {
    return Corrupt("rr file count != theta_w", w);
  }
  const uint64_t dir_size = (count + 1) * sizeof(uint64_t);
  const uint64_t preamble =
      kHeader + dir_size + (v2 ? 4 + num_pages * 4 : 0);
  if (buf.size() < preamble) {
    return Corrupt("rr file directory truncated", w);
  }
  std::vector<uint64_t> offsets(count + 1);
  std::memcpy(offsets.data(), buf.data() + kHeader, dir_size);
  if (offsets[0] != preamble) {
    return Corrupt("rr file payload does not start after directory", w);
  }
  if (offsets[count] != buf.size()) {
    return Corrupt("rr file directory does not end at EOF", w);
  }
  if (meta.topics[w].rr_preamble != (v2 ? preamble : 0)) {
    return Corrupt("rr preamble length disagrees with meta", w);
  }
  if (v2) {
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data() + kHeader, dir_size,
                                   LoadFixed32(buf.data() + kHeader + dir_size),
                                   "rr directory", w, stats));
    const uint64_t payload_size = buf.size() - preamble;
    if (num_pages != (payload_size + kRrCrcPageSize - 1) / kRrCrcPageSize) {
      return Corrupt("rr page count disagrees with payload size", w);
    }
    const char* crcs = buf.data() + kHeader + dir_size + 4;
    for (uint64_t page = 0; page < num_pages; ++page) {
      const uint64_t begin = page * kRrCrcPageSize;
      const uint64_t end =
          std::min<uint64_t>(payload_size, begin + kRrCrcPageSize);
      KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data() + preamble + begin,
                                     end - begin, LoadFixed32(crcs + page * 4),
                                     "rr page", w, stats));
    }
  }
  const auto codec = MakeCodec(codec_kind);
  std::vector<uint32_t> members;
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Corrupt("rr file offsets not monotone", w);
    }
    KBTIM_RETURN_IF_ERROR(codec->Decode(
        std::string_view(buf.data() + offsets[i],
                         offsets[i + 1] - offsets[i]),
        &members));
    DeltaDecode(&members);
    for (size_t j = 0; j < members.size(); ++j) {
      if (members[j] >= meta.num_vertices) {
        return Corrupt("rr member vertex out of range", w);
      }
      if (j > 0 && members[j] <= members[j - 1]) {
        return Corrupt("rr set members not strictly ascending", w);
      }
      summary->membership_hash += PairHash(members[j], i);
      ++summary->membership_count;
      summary->content_hash += PairHash(i, members[j]);
    }
    ++stats->rr_sets_checked;
  }
  return Status::OK();
}

struct ListsFileSummary {
  uint64_t membership_hash = 0;
  uint64_t membership_count = 0;
  uint64_t num_users = 0;
  // vertex -> first (smallest) rr id, for IP cross-checks.
  std::unordered_map<VertexId, RrId> head;
};

Status VerifyListsFile(const std::string& path, const IndexMeta& meta,
                       TopicId w, ListsFileSummary* summary,
                       IndexVerification* stats) {
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::string buf;
  KBTIM_RETURN_IF_ERROR(file->Read(0, file->size(), &buf));
  bool v2 = false;
  if (buf.size() >= 4 && std::memcmp(buf.data(), "KBL2", 4) == 0) {
    v2 = true;
  } else if (buf.size() < 4 || std::memcmp(buf.data(), "KBLW", 4) != 0) {
    return Corrupt("lists file bad magic", w);
  }
  if (v2 != (meta.format_version >= 2)) {
    return Corrupt("lists file format version disagrees with meta", w);
  }
  const uint64_t kHeader = v2 ? 25 : 17;
  if (buf.size() < kHeader) return Corrupt("lists file header truncated", w);
  uint32_t topic = 0;
  uint64_t num_entries = 0;
  std::memcpy(&topic, buf.data() + 4, 4);
  std::memcpy(&num_entries, buf.data() + 8, 8);
  const auto codec_kind = static_cast<CodecKind>(buf[16]);
  if (topic != w || codec_kind != meta.codec) {
    return Corrupt("lists file header mismatch", w);
  }
  if (v2) {
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), 21, LoadFixed32(buf.data() + 21),
                                   "lists header", w, stats));
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data() + kHeader, buf.size() - kHeader,
                                   LoadFixed32(buf.data() + 17),
                                   "lists payload", w, stats));
  }
  const auto codec = MakeCodec(codec_kind);
  const char* p = buf.data() + kHeader;
  const char* limit = buf.data() + buf.size();
  VertexId prev = 0;
  std::vector<uint32_t> ids;
  for (uint64_t e = 0; e < num_entries; ++e) {
    uint32_t dv = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &dv);
    if (p == nullptr) return Corrupt("lists entry truncated", w);
    if (e > 0 && dv == 0) {
      return Corrupt("lists vertices not strictly ascending", w);
    }
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Corrupt("lists payload truncated", w);
    }
    const VertexId v = prev + dv;
    prev = v;
    if (v >= meta.num_vertices) {
      return Corrupt("lists vertex out of range", w);
    }
    KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(p, len), &ids));
    p += len;
    DeltaDecode(&ids);
    if (ids.empty()) return Corrupt("empty inverted list stored", w);
    for (size_t j = 0; j < ids.size(); ++j) {
      if (ids[j] >= meta.topics[w].theta) {
        return Corrupt("inverted list rr id >= theta_w", w);
      }
      if (j > 0 && ids[j] <= ids[j - 1]) {
        return Corrupt("inverted list not strictly ascending", w);
      }
      summary->membership_hash += PairHash(v, ids[j]);
      ++summary->membership_count;
    }
    summary->head.emplace(v, ids.front());
    ++stats->inverted_entries_checked;
  }
  if (p != limit) return Corrupt("lists file trailing bytes", w);
  summary->num_users = num_entries;
  return Status::OK();
}

Status VerifyIrrFile(const std::string& path, const IndexMeta& meta,
                     TopicId w, const ListsFileSummary* lists,
                     const RrFileSummary* rr, IndexVerification* stats) {
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::string buf;
  KBTIM_RETURN_IF_ERROR(file->Read(0, file->size(), &buf));
  bool v2 = false;
  if (buf.size() >= 4 && std::memcmp(buf.data(), "KBI2", 4) == 0) {
    v2 = true;
  } else if (buf.size() < 4 || std::memcmp(buf.data(), "KBIW", 4) != 0) {
    return Corrupt("irr file bad magic", w);
  }
  if (v2 != (meta.format_version >= 2)) {
    return Corrupt("irr file format version disagrees with meta", w);
  }
  const uint64_t kHeader = v2 ? 41 : 37;
  if (buf.size() < kHeader) return Corrupt("irr file header truncated", w);
  if (v2) {
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), 37, LoadFixed32(buf.data() + 37),
                                   "irr header", w, stats));
  }
  uint32_t topic = 0, delta = 0;
  uint64_t num_users = 0, num_partitions = 0, theta = 0;
  std::memcpy(&topic, buf.data() + 4, 4);
  std::memcpy(&num_users, buf.data() + 8, 8);
  std::memcpy(&num_partitions, buf.data() + 16, 8);
  std::memcpy(&delta, buf.data() + 24, 4);
  const auto codec_kind = static_cast<CodecKind>(buf[28]);
  std::memcpy(&theta, buf.data() + 29, 8);
  if (topic != w || codec_kind != meta.codec) {
    return Corrupt("irr header mismatch", w);
  }
  if (theta != meta.topics[w].theta) {
    return Corrupt("irr theta mismatch with meta", w);
  }
  if (delta != meta.partition_size) {
    return Corrupt("irr partition size mismatch with meta", w);
  }
  if (lists != nullptr && num_users != lists->num_users) {
    return Corrupt("irr user count disagrees with lists file", w);
  }

  // IP map.
  const char* p = buf.data() + kHeader;
  const char* limit = buf.data() + buf.size();
  std::unordered_map<VertexId, RrId> ip;
  ip.reserve(num_users * 2);
  VertexId prev = 0;
  for (uint64_t i = 0; i < num_users; ++i) {
    uint32_t dv = 0, first = 0;
    p = GetVarint32(p, limit, &dv);
    if (p == nullptr) return Corrupt("irr IP truncated", w);
    p = GetVarint32(p, limit, &first);
    if (p == nullptr) return Corrupt("irr IP truncated", w);
    prev += dv;
    ip.emplace(prev, first);
  }
  if (lists != nullptr) {
    for (const auto& [v, head] : lists->head) {
      const auto it = ip.find(v);
      if (it == ip.end()) return Corrupt("irr IP missing user", w);
      if (it->second != head) {
        return Corrupt("irr IP first-occurrence disagrees with list head",
                       w);
      }
    }
  }

  // Partition directory (v2 entries carry a per-partition CRC and the
  // preamble ends with a CRC of everything before it).
  const uint64_t entry_size = v2 ? 36 : 32;
  if (meta.topics[w].irr_preamble !=
      static_cast<uint64_t>(p - buf.data()) + num_partitions * entry_size +
          (v2 ? 4 : 0)) {
    return Corrupt("irr preamble length disagrees with meta", w);
  }
  std::vector<IrrPartitionInfo> dir(num_partitions);
  if (p + num_partitions * entry_size + (v2 ? 4 : 0) > limit) {
    return Corrupt("irr directory truncated", w);
  }
  for (auto& info : dir) {
    std::memcpy(&info.offset, p, 8);
    std::memcpy(&info.length, p + 8, 8);
    std::memcpy(&info.num_users, p + 16, 4);
    std::memcpy(&info.num_sets, p + 20, 4);
    std::memcpy(&info.max_list_len, p + 24, 4);
    std::memcpy(&info.min_list_len, p + 28, 4);
    if (v2) info.crc = LoadFixed32(p + 32);
    p += entry_size;
  }
  if (v2) {
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), p - buf.data(),
                                   LoadFixed32(p), "irr preamble", w, stats));
    p += 4;
  }
  uint64_t expected_offset = static_cast<uint64_t>(p - buf.data());
  uint64_t users_seen = 0, sets_seen = 0;
  uint32_t prev_min_len = ~0u;
  const auto codec = MakeCodec(codec_kind);
  std::unordered_map<VertexId, char> seen_users;
  std::vector<char> seen_sets(theta, 0);
  uint64_t content_hash = 0;
  std::vector<uint32_t> ids;

  for (uint64_t pi = 0; pi < num_partitions; ++pi) {
    const IrrPartitionInfo& info = dir[pi];
    if (info.offset != expected_offset) {
      return Corrupt("irr partition offset mismatch", w);
    }
    if (info.offset + info.length > buf.size()) {
      return Corrupt("irr partition overruns file", w);
    }
    if (info.max_list_len > prev_min_len) {
      return Corrupt("irr partitions not ordered by list length", w);
    }
    prev_min_len = info.min_list_len;
    if (v2) {
      KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data() + info.offset, info.length,
                                     info.crc, "irr partition", w, stats));
    }
    const char* q = buf.data() + info.offset;
    const char* qlimit = q + info.length;
    // IL^p
    for (uint32_t u = 0; u < info.num_users; ++u) {
      uint32_t v = 0;
      uint64_t len = 0;
      q = GetVarint32(q, qlimit, &v);
      if (q == nullptr) return Corrupt("irr IL truncated", w);
      q = GetVarint64(q, qlimit, &len);
      if (q == nullptr || q + len > qlimit) {
        return Corrupt("irr IL truncated", w);
      }
      KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(q, len), &ids));
      q += len;
      DeltaDecode(&ids);
      if (ids.size() > info.max_list_len ||
          ids.size() < info.min_list_len) {
        return Corrupt("irr IL list length outside directory bounds", w);
      }
      if (!seen_users.emplace(v, 1).second) {
        return Corrupt("irr user appears in two partitions", w);
      }
      const auto it = ip.find(v);
      if (it == ip.end() || it->second != ids.front()) {
        return Corrupt("irr IL head disagrees with IP", w);
      }
      ++users_seen;
    }
    // IR^p
    uint32_t num_sets = 0;
    q = GetVarint32(q, qlimit, &num_sets);
    if (q == nullptr) return Corrupt("irr IR truncated", w);
    if (num_sets != info.num_sets) {
      return Corrupt("irr IR count disagrees with directory", w);
    }
    RrId rr_id = 0;
    for (uint32_t s = 0; s < num_sets; ++s) {
      uint32_t drr = 0;
      uint64_t len = 0;
      q = GetVarint32(q, qlimit, &drr);
      if (q == nullptr) return Corrupt("irr IR truncated", w);
      q = GetVarint64(q, qlimit, &len);
      if (q == nullptr || q + len > qlimit) {
        return Corrupt("irr IR truncated", w);
      }
      rr_id += drr;
      if (rr_id >= theta) return Corrupt("irr IR rr id >= theta", w);
      if (seen_sets[rr_id]) {
        return Corrupt("irr rr set assigned to two partitions", w);
      }
      seen_sets[rr_id] = 1;
      KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(q, len), &ids));
      q += len;
      DeltaDecode(&ids);
      for (uint32_t m : ids) content_hash += PairHash(rr_id, m);
      ++sets_seen;
    }
    if (q != qlimit) return Corrupt("irr partition trailing bytes", w);
    expected_offset += info.length;
    ++stats->partitions_checked;
  }
  if (expected_offset != buf.size()) {
    return Corrupt("irr file trailing bytes after partitions", w);
  }
  if (users_seen != num_users) {
    return Corrupt("irr partitions do not cover all users", w);
  }
  if (sets_seen != theta) {
    return Corrupt("irr partitions do not cover all rr sets", w);
  }
  if (rr != nullptr && content_hash != rr->content_hash) {
    return Corrupt("irr IR contents disagree with rr file", w);
  }
  return Status::OK();
}

}  // namespace

StatusOr<IndexVerification> VerifyIndex(const std::string& dir) {
  KBTIM_ASSIGN_OR_RETURN(IndexMeta meta, ReadIndexMeta(MetaFileName(dir)));
  IndexVerification stats;
  stats.format_version = meta.format_version;
  for (TopicId w = 0; w < meta.num_topics; ++w) {
    if (meta.topics[w].theta == 0) continue;
    RrFileSummary rr_summary;
    ListsFileSummary lists_summary;
    const bool has_rr = meta.has_rr;
    if (has_rr) {
      KBTIM_RETURN_IF_ERROR(VerifyRrFile(RrFileName(dir, w), meta, w,
                                         &rr_summary, &stats));
      KBTIM_RETURN_IF_ERROR(VerifyListsFile(ListsFileName(dir, w), meta, w,
                                            &lists_summary, &stats));
      if (rr_summary.membership_count != lists_summary.membership_count ||
          rr_summary.membership_hash != lists_summary.membership_hash) {
        return Corrupt("rr file and inverted lists disagree", w);
      }
    }
    if (meta.has_irr) {
      KBTIM_RETURN_IF_ERROR(
          VerifyIrrFile(IrrFileName(dir, w), meta, w,
                        has_rr ? &lists_summary : nullptr,
                        has_rr ? &rr_summary : nullptr, &stats));
    }
    ++stats.topics_checked;
  }
  return stats;
}

}  // namespace kbtim

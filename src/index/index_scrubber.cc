#include "index/index_scrubber.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>

#include "common/logging.h"
#include "storage/block_file.h"
#include "storage/crc32c.h"

namespace kbtim {
namespace {

uint32_t LoadFixed32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadFixed64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

IndexScrubber::IndexScrubber(std::shared_ptr<KeywordCache> cache,
                             IndexScrubberOptions options)
    : cache_(std::move(cache)), options_(options) {}

IndexScrubber::~IndexScrubber() { Stop(); }

void IndexScrubber::SetRebuilder(RebuildFn fn) {
  MutexLock lock(&mu_);
  rebuild_ = std::move(fn);
}

void IndexScrubber::SetAdmitFn(AdmitFn fn) {
  MutexLock lock(&mu_);
  admit_ = std::move(fn);
}

IndexScrubberStats IndexScrubber::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Status IndexScrubber::CheckCrc(const char* data, size_t n,
                               uint32_t stored_masked, const char* what,
                               const std::string& path) {
  const bool match = crc32c::Unmask(stored_masked) == crc32c::Value(data, n);
  MutexLock lock(&mu_);
  ++stats_.blocks_scrubbed;
  stats_.bytes_scrubbed += n;
  if (match) return Status::OK();
  ++stats_.crc_failures;
  return Status::Corruption(std::string(what) +
                            " checksum mismatch (scrub): " + path);
}

Status IndexScrubber::RunUnit(std::function<Status()> unit) {
  Status result;
  bool ran_on_pool = false;
  if (options_.use_prefetch_pool) {
    // The pool's own queue provides the backpressure: while queries are
    // prefetching, scrub units wait their turn instead of competing.
    std::promise<Status> done;
    auto future = done.get_future();
    ran_on_pool = cache_->RunOnPrefetchPool(
        [&unit, &done] { done.set_value(unit()); });
    if (ran_on_pool) result = future.get();
  }
  if (!ran_on_pool) result = unit();
  if (options_.pace_ms > 0 && !stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.pace_ms));
  }
  return result;
}

Status IndexScrubber::VerifyRrFile(TopicId topic) {
  const std::string path = RrFileName(cache_->dir(), topic);
  const IndexMeta::TopicMeta& tm = cache_->meta().topics[topic];
  KBTIM_ASSIGN_OR_RETURN(
      auto file, RandomAccessFile::Open(path, cache_->options().use_mmap));
  const uint64_t file_size = file->size();
  if (tm.rr_preamble < kRrHeaderSizeV2 + 12 || tm.rr_preamble > file_size) {
    return Status::Corruption("bad RR preamble length (scrub): " + path);
  }
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(std::string_view head,
                         file->ReadOrCopy(0, tm.rr_preamble, &scratch));
  if (std::memcmp(head.data(), kRrMagicV2, 4) != 0) {
    return Status::Corruption("bad RR magic (scrub): " + path);
  }
  KBTIM_RETURN_IF_ERROR(CheckCrc(head.data(), 25,
                                 LoadFixed32(head.data() + 25), "RR header",
                                 path));
  const uint64_t count = LoadFixed64(head.data() + 8);
  const uint64_t num_pages = LoadFixed64(head.data() + 17);
  const uint64_t dir_size = (count + 1) * sizeof(uint64_t);
  if (tm.rr_preamble !=
      kRrHeaderSizeV2 + dir_size + 4 + num_pages * sizeof(uint32_t)) {
    return Status::Corruption("RR preamble layout mismatch (scrub): " +
                              path);
  }
  const char* dir = head.data() + kRrHeaderSizeV2;
  KBTIM_RETURN_IF_ERROR(CheckCrc(dir, dir_size,
                                 LoadFixed32(dir + dir_size),
                                 "RR directory", path));
  const char* pages = dir + dir_size + 4;

  // Payload pages.
  const uint64_t payload_size = file_size - tm.rr_preamble;
  if (num_pages !=
      (payload_size + kRrCrcPageSize - 1) / kRrCrcPageSize) {
    return Status::Corruption("RR page table size mismatch (scrub): " +
                              path);
  }
  std::string payload_scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view payload,
      file->ReadOrCopy(tm.rr_preamble, payload_size, &payload_scratch));
  for (uint64_t i = 0; i < num_pages; ++i) {
    const uint64_t begin = i * kRrCrcPageSize;
    const uint64_t end =
        std::min<uint64_t>(payload_size, begin + kRrCrcPageSize);
    KBTIM_RETURN_IF_ERROR(CheckCrc(payload.data() + begin, end - begin,
                                   LoadFixed32(pages + i * 4),
                                   "RR payload page", path));
  }
  return Status::OK();
}

Status IndexScrubber::VerifyListsFile(TopicId topic) {
  const std::string path = ListsFileName(cache_->dir(), topic);
  KBTIM_ASSIGN_OR_RETURN(
      auto file, RandomAccessFile::Open(path, cache_->options().use_mmap));
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(std::string_view buf,
                         file->ReadOrCopy(0, file->size(), &scratch));
  if (buf.size() < kListsHeaderSizeV2 ||
      std::memcmp(buf.data(), kListsMagicV2, 4) != 0) {
    return Status::Corruption("bad lists magic (scrub): " + path);
  }
  KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), 21,
                                 LoadFixed32(buf.data() + 21),
                                 "lists header", path));
  return CheckCrc(buf.data() + kListsHeaderSizeV2,
                  buf.size() - kListsHeaderSizeV2,
                  LoadFixed32(buf.data() + 17), "lists payload", path);
}

Status IndexScrubber::VerifyIrrFile(TopicId topic) {
  const std::string path = IrrFileName(cache_->dir(), topic);
  const IndexMeta::TopicMeta& tm = cache_->meta().topics[topic];
  KBTIM_ASSIGN_OR_RETURN(
      auto file, RandomAccessFile::Open(path, cache_->options().use_mmap));
  if (tm.irr_preamble < kIrrHeaderSizeV2 + 4 ||
      tm.irr_preamble > file->size()) {
    return Status::Corruption("bad IRR preamble length (scrub): " + path);
  }
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(std::string_view pre,
                         file->ReadOrCopy(0, tm.irr_preamble, &scratch));
  if (std::memcmp(pre.data(), kIrrMagicV2, 4) != 0) {
    return Status::Corruption("bad IRR magic (scrub): " + path);
  }
  KBTIM_RETURN_IF_ERROR(CheckCrc(pre.data(), pre.size() - 4,
                                 LoadFixed32(pre.data() + pre.size() - 4),
                                 "IRR preamble", path));
  KBTIM_RETURN_IF_ERROR(CheckCrc(pre.data(), kIrrHeaderSizeV1,
                                 LoadFixed32(pre.data() + kIrrHeaderSizeV1),
                                 "IRR header", path));
  const uint64_t num_partitions = LoadFixed64(pre.data() + 16);
  const uint64_t dir_bytes = num_partitions * kIrrDirEntrySizeV2;
  if (kIrrHeaderSizeV2 + dir_bytes + 4 > tm.irr_preamble) {
    return Status::Corruption("IRR directory exceeds preamble (scrub): " +
                              path);
  }
  const char* dir = pre.data() + (tm.irr_preamble - 4 - dir_bytes);
  for (uint64_t p = 0; p < num_partitions; ++p) {
    const char* e = dir + p * kIrrDirEntrySizeV2;
    const uint64_t offset = LoadFixed64(e);
    const uint64_t length = LoadFixed64(e + 8);
    const uint32_t stored = LoadFixed32(e + 32);
    if (offset < tm.irr_preamble || offset + length < offset ||
        offset + length > file->size()) {
      return Status::Corruption("IRR partition out of bounds (scrub): " +
                                path);
    }
    std::string part_scratch;
    KBTIM_ASSIGN_OR_RETURN(std::string_view part,
                           file->ReadOrCopy(offset, length, &part_scratch));
    KBTIM_RETURN_IF_ERROR(CheckCrc(part.data(), part.size(), stored,
                                   "IRR partition", path));
  }
  return Status::OK();
}

Status IndexScrubber::ScrubTopic(TopicId topic) {
  const IndexMeta& meta = cache_->meta();
  if (topic >= meta.num_topics) {
    return Status::InvalidArgument("scrub topic out of range");
  }
  if (meta.format_version < kIndexFormatV2) {
    MutexLock lock(&mu_);
    ++stats_.topics_skipped_unversioned;
    return Status::OK();
  }
  const IndexMeta::TopicMeta& tm = meta.topics[topic];
  if (tm.theta == 0) return Status::OK();  // empty topic: no files
  AdmitFn admit;
  {
    MutexLock lock(&mu_);
    admit = admit_;
  }
  if (admit && !admit(topic)) {
    MutexLock lock(&mu_);
    ++stats_.topics_skipped_breaker;
    return Status::OK();
  }

  Status detected;
  auto run = [&](Status (IndexScrubber::*verify)(TopicId)) -> Status {
    const Status s =
        RunUnit([this, verify, topic] { return (this->*verify)(topic); });
    if (s.code() == StatusCode::kCorruption) {
      detected = s;
      return Status::OK();  // stop verifying, go repair
    }
    return s;  // kIOError etc.: surface without quarantining
  };
  if (meta.has_rr) {
    KBTIM_RETURN_IF_ERROR(run(&IndexScrubber::VerifyRrFile));
    if (detected.ok()) {
      KBTIM_RETURN_IF_ERROR(run(&IndexScrubber::VerifyListsFile));
    }
  }
  if (detected.ok() && meta.has_irr) {
    KBTIM_RETURN_IF_ERROR(run(&IndexScrubber::VerifyIrrFile));
  }

  if (detected.ok()) {
    MutexLock lock(&mu_);
    ++stats_.topics_scrubbed;
    return Status::OK();
  }
  KBTIM_LOG(Warning) << "scrubber detected corruption in topic " << topic
                     << ": " << detected.ToString();
  if (!options_.repair) return detected;
  return QuarantineAndRebuild(topic);
}

Status IndexScrubber::QuarantineAndRebuild(TopicId topic) {
  namespace fs = std::filesystem;
  const std::string& dir = cache_->dir();
  {
    MutexLock lock(&mu_);
    ++stats_.quarantines;
  }
  for (const std::string& path :
       {RrFileName(dir, topic), ListsFileName(dir, topic),
        IrrFileName(dir, topic)}) {
    std::error_code ec;
    if (!fs::exists(path, ec)) continue;
    fs::rename(path, path + ".quarantine", ec);
    if (ec) {
      return Status::IOError("quarantine rename failed: " + path + ": " +
                             ec.message());
    }
  }
  // Drop cached state now: open handles kept the renamed files readable,
  // and any decoded block from them is suspect.
  cache_->InvalidateTopic(topic);

  RebuildFn rebuild;
  {
    MutexLock lock(&mu_);
    rebuild = rebuild_;
  }
  if (!rebuild) {
    // Isolation without repair: future opens fail fast (file gone) and
    // the operator finds the bytes in *.quarantine for forensics.
    return Status::Corruption(
        "corrupt topic quarantined; no rebuilder configured (topic " +
        std::to_string(topic) + ")");
  }
  if (Status s = rebuild(topic); !s.ok()) {
    MutexLock lock(&mu_);
    ++stats_.rebuild_failures;
    return s;
  }
  cache_->InvalidateTopic(topic);  // rebuilt bytes, fresh handles

  // Heal must be provable: re-verify the published files before counting
  // the rebuild as a success.
  const IndexMeta& meta = cache_->meta();
  Status verify;
  if (meta.has_rr) verify = VerifyRrFile(topic);
  if (verify.ok() && meta.has_rr) verify = VerifyListsFile(topic);
  if (verify.ok() && meta.has_irr) verify = VerifyIrrFile(topic);
  if (!verify.ok()) {
    MutexLock lock(&mu_);
    ++stats_.rebuild_failures;
    return verify;
  }
  {
    MutexLock lock(&mu_);
    ++stats_.rebuilds;
    ++stats_.topics_scrubbed;
  }
  KBTIM_LOG(Info) << "scrubber quarantined and rebuilt topic " << topic;
  return Status::OK();
}

Status IndexScrubber::ScrubPass() {
  Status first_bad;
  const uint32_t num_topics = cache_->meta().num_topics;
  for (TopicId w = 0; w < num_topics; ++w) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (Status s = ScrubTopic(w); !s.ok() && first_bad.ok()) {
      first_bad = s;
    }
  }
  MutexLock lock(&mu_);
  ++stats_.passes;
  return first_bad;
}

void IndexScrubber::Start() {
  MutexLock lock(&lifecycle_mu_);
  if (thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] {
    uint32_t rounds = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      KBTIM_IGNORE_STATUS(ScrubPass());  // outcomes are in the counters
      if (options_.max_rounds != 0 && ++rounds >= options_.max_rounds) {
        break;
      }
      // Idle between passes, in small slices so Stop() stays responsive.
      uint32_t slept = 0;
      while (slept < options_.round_idle_ms &&
             !stop_.load(std::memory_order_relaxed)) {
        const uint32_t slice = std::min<uint32_t>(
            10, options_.round_idle_ms - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
      }
    }
  });
}

void IndexScrubber::Stop() {
  // stop_ flips under lifecycle_mu_ so a Stop that loses the race with a
  // concurrent Start still stops the thread that Start just launched
  // (ordering the store after Start's stop_.store(false)).
  MutexLock lock(&lifecycle_mu_);
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

}  // namespace kbtim

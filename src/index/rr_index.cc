#include "index/rr_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "coverage/rr_collection.h"
#include "storage/io_counter.h"

namespace kbtim {
namespace {

/// Algorithm 2's greedy on one query, over the cached keyword blocks.
SeedSetResult RunGreedy(
    const kbtim::Query& query, const QueryBudget& budget,
    const std::unordered_map<TopicId,
                             std::shared_ptr<const RrKeywordBlock>>& loaded,
    VertexId num_vertices) {
  // Per-query coverage bitmaps sized to the query budget.
  struct QueryKeyword {
    const RrKeywordBlock* data;
    uint64_t budget;
    std::vector<char> covered;
  };
  std::vector<QueryKeyword> keywords;
  uint64_t total_loaded = 0;
  for (const auto& [topic, tw] : budget.per_keyword) {
    if (tw == 0) continue;
    const auto it = loaded.find(topic);
    QueryKeyword qk;
    qk.data = it->second.get();
    qk.budget = tw;
    qk.covered.assign(tw, 0);
    keywords.push_back(std::move(qk));
    total_loaded += tw;
  }

  std::vector<uint64_t> count(num_vertices, 0);
  for (const auto& qk : keywords) {
    const RrKeywordBlock& kw = *qk.data;
    for (size_t i = 0; i + 1 < kw.list_offsets.size(); ++i) {
      const RrId* begin = kw.list_ids.data() + kw.list_offsets[i];
      const RrId* end = kw.list_ids.data() + kw.list_offsets[i + 1];
      if (qk.budget < kw.loaded_budget) {
        end = std::lower_bound(begin, end,
                               static_cast<RrId>(qk.budget));
      }
      count[kw.list_vertex[i]] += static_cast<uint64_t>(end - begin);
    }
  }
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (count[v] > 0) candidates.push_back(v);
  }
  std::vector<char> selected(num_vertices, 0);

  SeedSetResult result;
  uint64_t total_covered = 0;
  const double scale =
      budget.phi_q / static_cast<double>(std::max<uint64_t>(1, total_loaded));
  for (uint32_t round = 0; round < query.k; ++round) {
    VertexId best = kInvalidVertex;
    uint64_t best_count = 0;
    for (VertexId v : candidates) {
      if (!selected[v] && count[v] > best_count) {
        best = v;
        best_count = count[v];
      }
    }
    if (best == kInvalidVertex) break;
    selected[best] = 1;
    result.seeds.push_back(best);
    result.marginal_gains.push_back(static_cast<double>(best_count) *
                                    scale);
    total_covered += best_count;
    for (auto& qk : keywords) {
      for (RrId rr : qk.data->ListOf(best, qk.budget)) {
        if (qk.covered[rr]) continue;
        qk.covered[rr] = 1;
        for (VertexId u : qk.data->SetMembers(rr)) --count[u];
      }
    }
  }
  // Pad with the smallest unselected ids (Algorithm 2 returns exactly k).
  for (VertexId v = 0; v < num_vertices && result.seeds.size() < query.k;
       ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_gains.push_back(0.0);
    }
  }
  result.estimated_influence = static_cast<double>(total_covered) * scale;
  result.stats.theta = budget.theta_q;
  result.stats.rr_sets_loaded = total_loaded;
  return result;
}

}  // namespace

StatusOr<RrIndex> RrIndex::Open(const std::string& dir,
                                KeywordCacheOptions cache_options) {
  KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<KeywordCache> cache,
                         KeywordCache::Create(dir, cache_options));
  return Open(std::move(cache));
}

StatusOr<RrIndex> RrIndex::Open(std::shared_ptr<KeywordCache> cache) {
  if (!cache->meta().has_rr) {
    return Status::FailedPrecondition(
        "index directory has no RR structures: " + cache->dir());
  }
  return RrIndex(std::move(cache));
}

StatusOr<SeedSetResult> RrIndex::Query(const kbtim::Query& query) const {
  KBTIM_ASSIGN_OR_RETURN(std::vector<SeedSetResult> results,
                         BatchQuery({&query, 1}));
  return std::move(results[0]);
}

StatusOr<std::vector<SeedSetResult>> RrIndex::BatchQuery(
    std::span<const kbtim::Query> queries) const {
  if (queries.empty()) return std::vector<SeedSetResult>{};
  WallTimer total_timer;
  const IoStats io_before = IoCounter::Snapshot();
  const KeywordCacheStats cache_before = cache_->stats();

  // Budgets per query, plus the max budget per keyword across the batch.
  std::vector<QueryBudget> budgets;
  budgets.reserve(queries.size());
  std::unordered_map<TopicId, uint64_t> max_budget;
  for (const auto& query : queries) {
    KBTIM_ASSIGN_OR_RETURN(QueryBudget budget,
                           ComputeQueryBudget(meta(), query));
    for (const auto& [topic, tw] : budget.per_keyword) {
      auto& cur = max_budget[topic];
      cur = std::max(cur, tw);
    }
    budgets.push_back(std::move(budget));
  }

  // Fetch every referenced keyword once at its batch-max budget; the cache
  // serves warm keywords without touching the files.
  WallTimer load_timer;
  std::unordered_map<TopicId, std::shared_ptr<const RrKeywordBlock>> loaded;
  loaded.reserve(max_budget.size() * 2);
  for (const auto& [topic, budget] : max_budget) {
    if (budget == 0) continue;
    KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<const RrKeywordBlock> block,
                           cache_->GetRrKeyword(topic, budget));
    loaded.emplace(topic, std::move(block));
  }
  const double load_seconds = load_timer.ElapsedSeconds();
  const IoStats io = IoCounter::Snapshot() - io_before;
  const KeywordCacheStats cache_after = cache_->stats();

  // The load above is a batch-level cost paid once; attribute each query
  // an amortized share (remainders to the earliest results) so any
  // aggregator summing per-result stats recovers the true totals instead
  // of multiple-counting them batch-size times.
  const size_t n = queries.size();
  const auto share = [n](uint64_t total, size_t i) {
    return total / n + (i < total % n ? 1 : 0);
  };
  const uint64_t hits_delta = cache_after.hits - cache_before.hits;
  const uint64_t misses_delta = cache_after.misses - cache_before.misses;
  const uint64_t bypasses_delta =
      cache_after.admission_bypasses - cache_before.admission_bypasses;
  const double shared_seconds = total_timer.ElapsedSeconds();
  std::vector<SeedSetResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    WallTimer greedy_timer;
    SeedSetResult result = RunGreedy(queries[i], budgets[i], loaded,
                                     meta().num_vertices);
    result.stats.batch_size = static_cast<uint32_t>(n);
    result.stats.io_reads = share(io.read_ops, i);
    result.stats.io_bytes = share(io.read_bytes, i);
    result.stats.cache_hits = share(hits_delta, i);
    result.stats.cache_misses = share(misses_delta, i);
    result.stats.cache_bytes = cache_after.bytes_cached;
    result.stats.cache_admission_bypasses = share(bypasses_delta, i);
    result.stats.sampling_seconds =
        load_seconds / static_cast<double>(n);
    result.stats.greedy_seconds = greedy_timer.ElapsedSeconds();
    result.stats.total_seconds = shared_seconds / static_cast<double>(n) +
                                 result.stats.greedy_seconds;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace kbtim

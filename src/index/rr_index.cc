#include "index/rr_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "index/rr_greedy.h"
#include "storage/io_counter.h"

namespace kbtim {

StatusOr<RrIndex> RrIndex::Open(const std::string& dir,
                                KeywordCacheOptions cache_options) {
  KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<KeywordCache> cache,
                         KeywordCache::Create(dir, cache_options));
  return Open(std::move(cache));
}

StatusOr<RrIndex> RrIndex::Open(std::shared_ptr<KeywordCache> cache) {
  if (!cache->meta().has_rr) {
    return Status::FailedPrecondition(
        "index directory has no RR structures: " + cache->dir());
  }
  return RrIndex(std::move(cache));
}

StatusOr<SeedSetResult> RrIndex::Query(const kbtim::Query& query) const {
  KBTIM_ASSIGN_OR_RETURN(std::vector<SeedSetResult> results,
                         BatchQuery({&query, 1}));
  return std::move(results[0]);
}

StatusOr<std::vector<SeedSetResult>> RrIndex::BatchQuery(
    std::span<const kbtim::Query> queries) const {
  if (queries.empty()) return std::vector<SeedSetResult>{};
  WallTimer total_timer;
  const IoStats io_before = IoCounter::Snapshot();
  const KeywordCacheStats cache_before = cache_->stats();

  // Budgets per query, plus the max budget per keyword across the batch.
  std::vector<QueryBudget> budgets;
  budgets.reserve(queries.size());
  std::unordered_map<TopicId, uint64_t> max_budget;
  for (const auto& query : queries) {
    KBTIM_ASSIGN_OR_RETURN(QueryBudget budget,
                           ComputeQueryBudget(meta(), query));
    for (const auto& [topic, tw] : budget.per_keyword) {
      auto& cur = max_budget[topic];
      cur = std::max(cur, tw);
    }
    budgets.push_back(std::move(budget));
  }

  // Fetch every referenced keyword once at its batch-max budget; the cache
  // serves warm keywords without touching the files.
  WallTimer load_timer;
  std::unordered_map<TopicId, std::shared_ptr<const RrKeywordBlock>> loaded;
  loaded.reserve(max_budget.size() * 2);
  for (const auto& [topic, budget] : max_budget) {
    if (budget == 0) continue;
    KBTIM_ASSIGN_OR_RETURN(std::shared_ptr<const RrKeywordBlock> block,
                           cache_->GetRrKeyword(topic, budget));
    loaded.emplace(topic, std::move(block));
  }
  const double load_seconds = load_timer.ElapsedSeconds();
  const IoStats io = IoCounter::Snapshot() - io_before;
  const KeywordCacheStats cache_after = cache_->stats();

  // The load above is a batch-level cost paid once; attribute each query
  // an amortized share (remainders to the earliest results) so any
  // aggregator summing per-result stats recovers the true totals instead
  // of multiple-counting them batch-size times.
  const size_t n = queries.size();
  const auto share = [n](uint64_t total, size_t i) {
    return total / n + (i < total % n ? 1 : 0);
  };
  const uint64_t hits_delta = cache_after.hits - cache_before.hits;
  const uint64_t misses_delta = cache_after.misses - cache_before.misses;
  const uint64_t bypasses_delta =
      cache_after.admission_bypasses - cache_before.admission_bypasses;
  const double shared_seconds = total_timer.ElapsedSeconds();
  std::vector<SeedSetResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    WallTimer greedy_timer;
    SeedSetResult result = RunRrGreedy(queries[i], budgets[i], loaded,
                                       meta().num_vertices);
    result.stats.batch_size = static_cast<uint32_t>(n);
    result.stats.io_reads = share(io.read_ops, i);
    result.stats.io_bytes = share(io.read_bytes, i);
    result.stats.cache_hits = share(hits_delta, i);
    result.stats.cache_misses = share(misses_delta, i);
    result.stats.cache_bytes = cache_after.bytes_cached;
    result.stats.cache_admission_bypasses = share(bypasses_delta, i);
    result.stats.sampling_seconds =
        load_seconds / static_cast<double>(n);
    result.stats.greedy_seconds = greedy_timer.ElapsedSeconds();
    result.stats.total_seconds = shared_seconds / static_cast<double>(n) +
                                 result.stats.greedy_seconds;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace kbtim

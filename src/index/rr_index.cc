#include "index/rr_index.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/timer.h"
#include "coverage/rr_collection.h"
#include "storage/block_file.h"
#include "storage/io_counter.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

constexpr char kRrMagic[4] = {'K', 'B', 'R', 'W'};
constexpr char kListsMagic[4] = {'K', 'B', 'L', 'W'};
constexpr uint64_t kRrHeaderSize = 4 + 4 + 8 + 1;
constexpr uint64_t kListsHeaderSize = 4 + 4 + 8 + 1;

/// Per-keyword data loaded once per batch, at the largest budget any query
/// in the batch requires.
struct LoadedKeyword {
  TopicId topic = kInvalidTopic;
  uint64_t loaded_budget = 0;  // max θ^Q_w across the batch

  // Loaded RR-set prefix [0, loaded_budget): members flattened.
  std::vector<uint64_t> set_offsets{0};
  std::vector<VertexId> set_items;

  // Inverted lists restricted to RR ids < loaded_budget, keyed by
  // ascending vertex id for binary-search lookup.
  std::vector<VertexId> list_vertex;
  std::vector<uint64_t> list_offsets{0};
  std::vector<RrId> list_ids;

  std::span<const VertexId> SetMembers(RrId rr) const {
    return {set_items.data() + set_offsets[rr],
            set_items.data() + set_offsets[rr + 1]};
  }

  /// Inverted list of v restricted to RR ids < query_budget (<= loaded).
  std::span<const RrId> ListOf(VertexId v, uint64_t query_budget) const {
    const auto it =
        std::lower_bound(list_vertex.begin(), list_vertex.end(), v);
    if (it == list_vertex.end() || *it != v) return {};
    const size_t idx = static_cast<size_t>(it - list_vertex.begin());
    const RrId* begin = list_ids.data() + list_offsets[idx];
    const RrId* end = list_ids.data() + list_offsets[idx + 1];
    if (query_budget < loaded_budget) {
      end = std::lower_bound(begin, end,
                             static_cast<RrId>(query_budget));
    }
    return {begin, end};
  }
};

Status LoadRrPrefix(const std::string& path, TopicId topic,
                    CodecKind codec_kind, uint64_t budget,
                    LoadedKeyword* out) {
  if (budget == 0) return Status::OK();
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  // One read: header + the first (budget+1) directory offsets.
  const uint64_t dir_prefix = (budget + 1) * sizeof(uint64_t);
  std::string head;
  KBTIM_RETURN_IF_ERROR(file->Read(0, kRrHeaderSize + dir_prefix, &head));
  if (std::memcmp(head.data(), kRrMagic, 4) != 0) {
    return Status::Corruption("bad RR file magic: " + path);
  }
  uint32_t file_topic = 0;
  uint64_t count = 0;
  std::memcpy(&file_topic, head.data() + 4, 4);
  std::memcpy(&count, head.data() + 8, 8);
  const auto file_codec = static_cast<CodecKind>(head[16]);
  if (file_topic != topic || file_codec != codec_kind) {
    return Status::Corruption("RR file header mismatch: " + path);
  }
  if (budget > count) {
    return Status::Corruption("RR budget exceeds stored sets: " + path);
  }
  std::vector<uint64_t> offsets(budget + 1);
  std::memcpy(offsets.data(), head.data() + kRrHeaderSize, dir_prefix);

  // One contiguous read of the payload prefix.
  std::string payload;
  KBTIM_RETURN_IF_ERROR(
      file->Read(offsets[0], offsets[budget] - offsets[0], &payload));

  const auto codec = MakeCodec(codec_kind);
  std::vector<uint32_t> members;
  out->set_offsets.reserve(budget + 1);
  for (uint64_t i = 0; i < budget; ++i) {
    const uint64_t begin = offsets[i] - offsets[0];
    const uint64_t end = offsets[i + 1] - offsets[0];
    KBTIM_RETURN_IF_ERROR(codec->Decode(
        std::string_view(payload.data() + begin, end - begin), &members));
    DeltaDecode(&members);
    out->set_items.insert(out->set_items.end(), members.begin(),
                          members.end());
    out->set_offsets.push_back(out->set_items.size());
  }
  return Status::OK();
}

Status LoadLists(const std::string& path, TopicId topic,
                 CodecKind codec_kind, uint64_t budget, LoadedKeyword* out) {
  if (budget == 0) return Status::OK();
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::string buf;
  KBTIM_RETURN_IF_ERROR(file->Read(0, file->size(), &buf));
  if (buf.size() < kListsHeaderSize ||
      std::memcmp(buf.data(), kListsMagic, 4) != 0) {
    return Status::Corruption("bad lists file magic: " + path);
  }
  uint32_t file_topic = 0;
  uint64_t num_entries = 0;
  std::memcpy(&file_topic, buf.data() + 4, 4);
  std::memcpy(&num_entries, buf.data() + 8, 8);
  const auto file_codec = static_cast<CodecKind>(buf[16]);
  if (file_topic != topic || file_codec != codec_kind) {
    return Status::Corruption("lists file header mismatch: " + path);
  }
  const auto codec = MakeCodec(codec_kind);
  const char* p = buf.data() + kListsHeaderSize;
  const char* limit = buf.data() + buf.size();
  VertexId prev = 0;
  std::vector<uint32_t> ids;
  for (uint64_t e = 0; e < num_entries; ++e) {
    uint32_t delta_v = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &delta_v);
    if (p == nullptr) return Status::Corruption("lists truncated: " + path);
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("lists truncated: " + path);
    }
    const VertexId v = prev + delta_v;
    prev = v;
    KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(p, len), &ids));
    p += len;
    DeltaDecode(&ids);
    // Keep ids inside the loaded budget (ids are ascending).
    size_t cut = ids.size();
    while (cut > 0 && ids[cut - 1] >= budget) --cut;
    if (cut == 0) continue;
    out->list_vertex.push_back(v);
    out->list_ids.insert(out->list_ids.end(), ids.begin(),
                         ids.begin() + cut);
    out->list_offsets.push_back(out->list_ids.size());
  }
  return Status::OK();
}

/// Algorithm 2's greedy on one query, over the shared loaded keywords.
SeedSetResult RunGreedy(
    const kbtim::Query& query, const QueryBudget& budget,
    const std::unordered_map<TopicId, LoadedKeyword>& loaded,
    VertexId num_vertices) {
  // Per-query coverage bitmaps sized to the query budget.
  struct QueryKeyword {
    const LoadedKeyword* data;
    uint64_t budget;
    std::vector<char> covered;
  };
  std::vector<QueryKeyword> keywords;
  uint64_t total_loaded = 0;
  for (const auto& [topic, tw] : budget.per_keyword) {
    if (tw == 0) continue;
    const auto it = loaded.find(topic);
    QueryKeyword qk;
    qk.data = &it->second;
    qk.budget = tw;
    qk.covered.assign(tw, 0);
    keywords.push_back(std::move(qk));
    total_loaded += tw;
  }

  std::vector<uint64_t> count(num_vertices, 0);
  for (const auto& qk : keywords) {
    const LoadedKeyword& kw = *qk.data;
    for (size_t i = 0; i + 1 < kw.list_offsets.size(); ++i) {
      const RrId* begin = kw.list_ids.data() + kw.list_offsets[i];
      const RrId* end = kw.list_ids.data() + kw.list_offsets[i + 1];
      if (qk.budget < kw.loaded_budget) {
        end = std::lower_bound(begin, end,
                               static_cast<RrId>(qk.budget));
      }
      count[kw.list_vertex[i]] += static_cast<uint64_t>(end - begin);
    }
  }
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (count[v] > 0) candidates.push_back(v);
  }
  std::vector<char> selected(num_vertices, 0);

  SeedSetResult result;
  uint64_t total_covered = 0;
  const double scale =
      budget.phi_q / static_cast<double>(std::max<uint64_t>(1, total_loaded));
  for (uint32_t round = 0; round < query.k; ++round) {
    VertexId best = kInvalidVertex;
    uint64_t best_count = 0;
    for (VertexId v : candidates) {
      if (!selected[v] && count[v] > best_count) {
        best = v;
        best_count = count[v];
      }
    }
    if (best == kInvalidVertex) break;
    selected[best] = 1;
    result.seeds.push_back(best);
    result.marginal_gains.push_back(static_cast<double>(best_count) *
                                    scale);
    total_covered += best_count;
    for (auto& qk : keywords) {
      for (RrId rr : qk.data->ListOf(best, qk.budget)) {
        if (qk.covered[rr]) continue;
        qk.covered[rr] = 1;
        for (VertexId u : qk.data->SetMembers(rr)) --count[u];
      }
    }
  }
  // Pad with the smallest unselected ids (Algorithm 2 returns exactly k).
  for (VertexId v = 0; v < num_vertices && result.seeds.size() < query.k;
       ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_gains.push_back(0.0);
    }
  }
  result.estimated_influence = static_cast<double>(total_covered) * scale;
  result.stats.theta = budget.theta_q;
  result.stats.rr_sets_loaded = total_loaded;
  return result;
}

}  // namespace

StatusOr<RrIndex> RrIndex::Open(const std::string& dir) {
  KBTIM_ASSIGN_OR_RETURN(IndexMeta meta, ReadIndexMeta(MetaFileName(dir)));
  if (!meta.has_rr) {
    return Status::FailedPrecondition(
        "index directory has no RR structures: " + dir);
  }
  return RrIndex(dir, std::move(meta));
}

StatusOr<SeedSetResult> RrIndex::Query(const kbtim::Query& query) const {
  KBTIM_ASSIGN_OR_RETURN(std::vector<SeedSetResult> results,
                         BatchQuery({&query, 1}));
  return std::move(results[0]);
}

StatusOr<std::vector<SeedSetResult>> RrIndex::BatchQuery(
    std::span<const kbtim::Query> queries) const {
  if (queries.empty()) return std::vector<SeedSetResult>{};
  WallTimer total_timer;
  const IoStats io_before = IoCounter::Snapshot();

  // Budgets per query, plus the max budget per keyword across the batch.
  std::vector<QueryBudget> budgets;
  budgets.reserve(queries.size());
  std::unordered_map<TopicId, uint64_t> max_budget;
  for (const auto& query : queries) {
    KBTIM_ASSIGN_OR_RETURN(QueryBudget budget,
                           ComputeQueryBudget(meta_, query));
    for (const auto& [topic, tw] : budget.per_keyword) {
      auto& cur = max_budget[topic];
      cur = std::max(cur, tw);
    }
    budgets.push_back(std::move(budget));
  }

  // Load every referenced keyword once, at its batch-max budget.
  WallTimer load_timer;
  std::unordered_map<TopicId, LoadedKeyword> loaded;
  loaded.reserve(max_budget.size() * 2);
  for (const auto& [topic, budget] : max_budget) {
    LoadedKeyword kw;
    kw.topic = topic;
    kw.loaded_budget = budget;
    if (budget > 0) {
      KBTIM_RETURN_IF_ERROR(LoadRrPrefix(RrFileName(dir_, topic), topic,
                                         meta_.codec, budget, &kw));
      KBTIM_RETURN_IF_ERROR(LoadLists(ListsFileName(dir_, topic), topic,
                                      meta_.codec, budget, &kw));
    }
    loaded.emplace(topic, std::move(kw));
  }
  const double load_seconds = load_timer.ElapsedSeconds();
  const IoStats io = IoCounter::Snapshot() - io_before;

  std::vector<SeedSetResult> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    WallTimer greedy_timer;
    SeedSetResult result = RunGreedy(queries[i], budgets[i], loaded,
                                     meta_.num_vertices);
    result.stats.io_reads = io.read_ops;
    result.stats.io_bytes = io.read_bytes;
    result.stats.sampling_seconds = load_seconds;
    result.stats.greedy_seconds = greedy_timer.ElapsedSeconds();
    result.stats.total_seconds = total_timer.ElapsedSeconds();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace kbtim

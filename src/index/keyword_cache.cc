#include "index/keyword_cache.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "storage/crc32c.h"
#include "storage/decode_kernels.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

uint32_t LoadFixed32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// In-place prefix sum over buf[0, n): the inline twin of DeltaDecode for
/// the monomorphic decode path (which tracks lengths instead of resizing).
inline void DeltaDecodeSpan(uint32_t* buf, size_t n) {
  uint32_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    run += buf[i];
    buf[i] = run;
  }
}

/// Decodes one length-prefixed codec payload at `p`, APPENDING its *n
/// delta-decoded values to `out`. PFoR payloads in batch mode take the
/// monomorphic PforDecodeAppend fast path straight into the destination
/// (the partition decoders parse thousands of few-element lists, so the
/// generic virtual-dispatch + temp-copy framing dominates otherwise);
/// everything else goes through codec->Decode on an exact sub-view plus a
/// copy through `tmp`.
inline Status DecodeAppendPayload(const IntCodec& codec, bool fast_pfor,
                                  const char** p, uint64_t len,
                                  const char* limit,
                                  std::vector<uint32_t>& tmp,
                                  std::vector<uint32_t>& out, size_t* n) {
  if (fast_pfor) {
    const char* next = PforDecodeAppend(*p, limit, out, n);
    if (next == nullptr || next != *p + len) {
      return Status::Corruption("pfor list length mismatch");
    }
    *p = next;
  } else {
    KBTIM_RETURN_IF_ERROR(codec.Decode(std::string_view(*p, len), &tmp));
    *n = tmp.size();
    *p += len;
    out.insert(out.end(), tmp.begin(), tmp.end());
  }
  DeltaDecodeSpan(out.data() + out.size() - *n, *n);
  return Status::OK();
}

}  // namespace

bool IrrKeywordEntry::FirstOccurrence(VertexId v, RrId* first) const {
  // Branchless binary search (the compare compiles to a conditional move,
  // so the only mispredictable branch is the loop itself) with both
  // next-probe cache lines prefetched — this sits under every NRA
  // upper-bound refresh, several thousand times per query.
  const VertexId* base = ip_vertex.data();
  size_t n = ip_vertex.size();
  if (n == 0) return false;
  while (n > 1) {
    const size_t half = n / 2;
    __builtin_prefetch(base + half / 2);
    __builtin_prefetch(base + half + half / 2);
    base += base[half - 1] < v ? half : 0;
    n -= half;
  }
  if (*base != v) return false;
  *first = ip_first[static_cast<size_t>(base - ip_vertex.data())];
  return true;
}

Status IrrPartitionBlock::EnsureMembers() const {
  std::call_once(ir_once, [this] {
    // Framing (headers + lengths) was validated at block build; re-walk
    // it and decode every member payload. Payload-level corruption fails
    // the whole region closed: all spans come back empty.
    set_offsets.assign(1, 0);
    set_members.clear();
    const char* p = ir_raw.data();
    const char* limit = p + ir_raw.size();
    const auto codec = MakeCodec(ir_codec);
    const bool fast_pfor =
        ir_codec == CodecKind::kPfor && BatchDecodeEnabled();
    std::vector<uint32_t> tmp;
    size_t n = 0;
    for (size_t i = 0; i < set_ids.size(); ++i) {
      uint32_t rr_delta = 0;
      uint64_t len = 0;
      p = GetVarint32(p, limit, &rr_delta);
      if (p != nullptr) p = GetVarint64(p, limit, &len);
      if (p == nullptr || p + len > limit ||
          !DecodeAppendPayload(*codec, fast_pfor, &p, len, limit, tmp,
                               set_members, &n)
               .ok()) {
        KBTIM_LOG(Warning)
            << "IRR set-member payload corrupt; eager-mode coverage "
               "updates degrade to empty sets for this partition";
        ir_corrupt = true;
        set_offsets.assign(set_ids.size() + 1, 0);
        set_members.clear();
        return;
      }
      set_offsets.push_back(static_cast<uint32_t>(set_members.size()));
    }
  });
  if (ir_corrupt) {
    return Status::Corruption("IRR set-member payload corrupt");
  }
  return Status::OK();
}

std::span<const RrId> RrKeywordBlock::ListOf(VertexId v,
                                             uint64_t query_budget) const {
  const auto it =
      std::lower_bound(list_vertex.begin(), list_vertex.end(), v);
  if (it == list_vertex.end() || *it != v) return {};
  const size_t idx = static_cast<size_t>(it - list_vertex.begin());
  const RrId* begin = list_ids.data() + list_offsets[idx];
  const RrId* end = list_ids.data() + list_offsets[idx + 1];
  if (query_budget < loaded_budget) {
    end = std::lower_bound(begin, end, static_cast<RrId>(query_budget));
  }
  return {begin, end};
}

StatusOr<std::shared_ptr<KeywordCache>> KeywordCache::Create(
    const std::string& dir, KeywordCacheOptions options) {
  KBTIM_ASSIGN_OR_RETURN(IndexMeta meta, ReadIndexMeta(MetaFileName(dir)));
  if (meta.format_version < kIndexFormatV2) {
    // Once per cache (i.e. per opened directory), not per read.
    KBTIM_LOG(Warning) << "index " << dir << " is format v"
                       << meta.format_version
                       << " (pre-checksum); serving with checksums=off — "
                          "rebuild to v" << kIndexFormatLatest
                       << " for verify-on-read integrity";
  }
  return std::shared_ptr<KeywordCache>(
      new KeywordCache(dir, std::move(meta), options));
}

Status KeywordCache::CheckCrcLocked(const char* data, size_t n,
                                    uint32_t stored_masked, const char* what,
                                    const std::string& path) {
  ++stats_.crc_checks;
  if (crc32c::Unmask(stored_masked) == crc32c::Value(data, n)) {
    return Status::OK();
  }
  ++stats_.crc_failures;
  return Status::Corruption(std::string(what) + " checksum mismatch: " +
                            path);
}

Status KeywordCache::CheckCrc(const char* data, size_t n,
                              uint32_t stored_masked, const char* what,
                              const std::string& path) {
  // Hash outside the lock (this may cover megabytes), account inside.
  const bool match = crc32c::Unmask(stored_masked) == crc32c::Value(data, n);
  MutexLock lock(&mu_);
  ++stats_.crc_checks;
  if (match) return Status::OK();
  ++stats_.crc_failures;
  return Status::Corruption(std::string(what) + " checksum mismatch: " +
                            path);
}

bool KeywordCache::RunOnPrefetchPool(std::function<void()> fn) {
  if (prefetch_pool_ == nullptr) return false;
  prefetch_pool_->Submit(std::move(fn));
  return true;
}

KeywordCacheStats KeywordCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void KeywordCache::DropBlocks() {
  // Land in-flight prefetches first so none resurrects a block after the
  // clear (benchmarks rely on DropBlocks giving a truly cold block cache).
  WaitForPrefetches();
  MutexLock lock(&mu_);
  blocks_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
}

void KeywordCache::SetFailureListener(FailureListener listener) {
  MutexLock lock(&listener_mu_);
  failure_listener_ = std::move(listener);
}

uint64_t KeywordCache::EpochLocked(TopicId topic) const {
  const auto it = topic_epoch_.find(topic);
  return it == topic_epoch_.end() ? 0 : it->second;
}

void KeywordCache::InvalidateTopic(TopicId topic) {
  MutexLock lock(&mu_);
  ++topic_epoch_[topic];
  ++stats_.topic_invalidations;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first.topic == topic) {
      stats_.bytes_cached -= it->second.bytes;
      lru_.erase(it->second.lru_pos);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  // Deregister in-flight prefetches: a joiner already holding the future
  // still gets its (pre-invalidation) result, but no new lookup can join,
  // and the epoch bump above keeps the task from admitting its block.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    it = it->first.topic == topic ? inflight_.erase(it) : std::next(it);
  }
  for (auto it = uncacheable_.begin(); it != uncacheable_.end();) {
    it = it->first.topic == topic ? uncacheable_.erase(it) : std::next(it);
  }
  // Drop the parsed preamble and every file handle: the next access
  // reopens fresh descriptors (and remaps), which is the recovery path
  // for stale mappings and transient descriptor-level failures alike.
  irr_entries_.erase(topic);
  rr_entries_.erase(topic);
}

void KeywordCache::RecordTopicFailure(TopicId topic, const Status& status) {
  if (status.code() == StatusCode::kCorruption) {
    {
      MutexLock lock(&mu_);
      ++stats_.decode_failures;
    }
    InvalidateTopic(topic);
  } else if (status.code() == StatusCode::kIOError) {
    MutexLock lock(&mu_);
    ++stats_.io_errors;
    irr_entries_.erase(topic);
    rr_entries_.erase(topic);
  } else {
    return;  // not a fault-domain failure (bad argument, etc.)
  }
  FailureListener listener;
  {
    MutexLock lock(&listener_mu_);
    listener = failure_listener_;
  }
  if (listener) listener(topic, status);
}

void KeywordCache::WaitForPrefetches() {
  std::vector<IrrBlockFuture> pending;
  {
    MutexLock lock(&mu_);
    pending.reserve(inflight_.size());
    for (const auto& [key, future] : inflight_) pending.push_back(future);
  }
  for (const auto& future : pending) future.wait();
}

void KeywordCache::TouchLocked(BlockSlot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

void KeywordCache::EvictToFitLocked(uint64_t incoming_bytes) {
  // Callers insert only absent keys, so the incoming block is never a
  // candidate victim here.
  while (!lru_.empty() &&
         stats_.bytes_cached + incoming_bytes > options_.block_cache_bytes) {
    const auto it = blocks_.find(lru_.back());
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    blocks_.erase(it);
    lru_.pop_back();
  }
}

void KeywordCache::InsertBlockLocked(const BlockKey& key,
                                     std::shared_ptr<const void> block,
                                     uint64_t bytes) {
  EvictToFitLocked(bytes);
  lru_.push_front(key);
  blocks_.emplace(key, BlockSlot{std::move(block), bytes, lru_.begin()});
  stats_.bytes_cached += bytes;
}

void KeywordCache::EraseBlockLocked(const BlockKey& key) {
  const auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  stats_.bytes_cached -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  blocks_.erase(it);
}

std::shared_ptr<const void> KeywordCache::InsertBlockIfFresh(
    const BlockKey& key, std::shared_ptr<const void> block, uint64_t bytes,
    uint64_t epoch) {
  if (options_.block_cache_bytes == 0) return block;  // caching disabled
  MutexLock lock(&mu_);
  if (EpochLocked(key.topic) != epoch) {
    // The topic was invalidated while this block was decoding; it read
    // through a pre-invalidation handle, so serve it to the caller but
    // never admit it.
    return block;
  }
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    // Another thread decoded the same block first; keep theirs.
    TouchLocked(it->second);
    return it->second.block;
  }
  if (bytes > AdmissionLimitBytes()) {
    // Admission policy: serve the oversized block, keep the cache hot.
    ++stats_.admission_bypasses;
    return block;
  }
  InsertBlockLocked(key, block, bytes);
  return block;
}

// ---- IRR side -------------------------------------------------------------

StatusOr<std::shared_ptr<const IrrKeywordEntry>> KeywordCache::GetIrrKeyword(
    TopicId topic) {
  if (topic >= meta_.num_topics) {
    return Status::InvalidArgument("topic id out of range");
  }
  {
    MutexLock lock(&mu_);
    const auto it = irr_entries_.find(topic);
    if (it != irr_entries_.end()) return it->second;
  }
  // Parse outside the lock so a cold preamble never stalls warm queries.
  auto loaded = LoadIrrEntry(topic);
  if (!loaded.ok()) {
    RecordTopicFailure(topic, loaded.status());
    return loaded.status();
  }
  MutexLock lock(&mu_);
  const auto [it, inserted] = irr_entries_.emplace(topic, *loaded);
  if (inserted) ++stats_.preamble_loads;
  return it->second;  // the first loader's entry if we raced
}

StatusOr<std::shared_ptr<const IrrKeywordEntry>> KeywordCache::LoadIrrEntry(
    TopicId topic) {
  const std::string path = IrrFileName(dir_, topic);
  const IndexMeta::TopicMeta& tm = meta_.topics[topic];
  const bool v2 = meta_.format_version >= kIndexFormatV2;
  const uint64_t header_size = v2 ? kIrrHeaderSizeV2 : kIrrHeaderSizeV1;
  const size_t entry_size = v2 ? kIrrDirEntrySizeV2 : kIrrDirEntrySizeV1;
  auto entry = std::make_shared<IrrKeywordEntry>();
  entry->topic = topic;
  entry->checksummed = v2;
  KBTIM_ASSIGN_OR_RETURN(entry->file,
                         RandomAccessFile::Open(path, options_.use_mmap));
  if (tm.irr_preamble < header_size + (v2 ? 4 : 0) ||
      tm.irr_preamble > entry->file->size()) {
    return Status::Corruption("bad IRR preamble length: " + path);
  }
  // Single logical read: header + IP map + partition directory (+ the
  // trailing preamble CRC in v2).
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(std::string_view buf,
                         entry->file->ReadOrCopy(0, tm.irr_preamble,
                                                 &scratch));
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  if (std::memcmp(p, v2 ? kIrrMagicV2 : kIrrMagicV1, 4) != 0) {
    return Status::Corruption("bad IRR magic: " + path);
  }
  if (v2) {
    // Whole-preamble CRC first (covers header + IP + directory), so every
    // byte the parse below trusts has been verified; then the header's
    // own CRC (cheap, and localizes the error message).
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), buf.size() - 4,
                                   LoadFixed32(limit - 4), "IRR preamble",
                                   path));
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), kIrrHeaderSizeV1,
                                   LoadFixed32(p + kIrrHeaderSizeV1),
                                   "IRR header", path));
    limit -= 4;
  }
  uint32_t file_topic = 0, delta = 0;
  std::memcpy(&file_topic, p + 4, 4);
  std::memcpy(&entry->num_users, p + 8, 8);
  std::memcpy(&entry->num_partitions, p + 16, 8);
  std::memcpy(&delta, p + 24, 4);
  entry->codec = static_cast<CodecKind>(p[28]);
  std::memcpy(&entry->theta_w, p + 29, 8);
  p += header_size;
  if (file_topic != topic || entry->codec != meta_.codec) {
    return Status::Corruption("IRR header mismatch: " + path);
  }

  // Bound the raw counts against the preamble size before trusting them:
  // each IP entry is >= 2 varint bytes and each directory entry is
  // fixed-size, so corrupt huge counts fail here instead of overflowing /
  // OOMing.
  const uint64_t remaining = static_cast<uint64_t>(limit - p);
  if (entry->num_users > remaining / 2 ||
      entry->num_partitions > remaining / entry_size) {
    return Status::Corruption("IRR preamble counts exceed file: " + path);
  }

  // IP map: vertex deltas accumulate from 0, so the keys arrive (and are
  // stored) in ascending order — binary-search ready.
  entry->ip_vertex.reserve(entry->num_users);
  entry->ip_first.reserve(entry->num_users);
  VertexId prev = 0;
  for (uint64_t i = 0; i < entry->num_users; ++i) {
    uint32_t dv = 0, first = 0;
    p = GetVarint32(p, limit, &dv);
    if (p == nullptr) return Status::Corruption("IRR IP truncated: " + path);
    p = GetVarint32(p, limit, &first);
    if (p == nullptr) return Status::Corruption("IRR IP truncated: " + path);
    prev += dv;
    entry->ip_vertex.push_back(prev);
    entry->ip_first.push_back(first);
  }

  // Partition directory (fixed-size entries; num_partitions already
  // bounded above, so the multiply cannot wrap).
  if (entry->num_partitions * entry_size >
      static_cast<uint64_t>(limit - p)) {
    return Status::Corruption("IRR directory truncated: " + path);
  }
  entry->directory.resize(entry->num_partitions);
  for (auto& info : entry->directory) {
    std::memcpy(&info.offset, p, 8);
    std::memcpy(&info.length, p + 8, 8);
    std::memcpy(&info.num_users, p + 16, 4);
    std::memcpy(&info.num_sets, p + 20, 4);
    std::memcpy(&info.max_list_len, p + 24, 4);
    std::memcpy(&info.min_list_len, p + 28, 4);
    if (v2) std::memcpy(&info.crc, p + 32, 4);
    p += entry_size;
  }
  return std::shared_ptr<const IrrKeywordEntry>(std::move(entry));
}

StatusOr<std::shared_ptr<const IrrPartitionBlock>>
KeywordCache::GetIrrPartition(const IrrKeywordEntry& entry,
                              uint64_t partition) {
  if (partition >= entry.num_partitions) {
    return Status::InvalidArgument("IRR partition out of range");
  }
  const BlockKey key{entry.topic, partition};
  IrrBlockFuture inflight;
  uint64_t epoch = 0;
  {
    MutexLock lock(&mu_);
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      ++stats_.hits;
      TouchLocked(it->second);
      return std::static_pointer_cast<const IrrPartitionBlock>(
          it->second.block);
    }
    ++stats_.misses;
    epoch = EpochLocked(entry.topic);
    const auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      ++stats_.prefetches_served;
      inflight = fit->second;
    }
  }
  if (inflight.valid()) {
    // A prefetch worker already has this partition; join it — its decode
    // ran (or is running) while this thread was computing. Failures
    // surface here as the worker's status (the worker already recorded
    // the fault; re-recording would double-count it).
    return inflight.get();
  }

  auto decoded = DecodeIrrPartition(entry, partition);
  if (!decoded.ok()) {
    RecordTopicFailure(entry.topic, decoded.status());
    return decoded.status();
  }
  return std::static_pointer_cast<const IrrPartitionBlock>(
      InsertBlockIfFresh(key, *decoded, (*decoded)->bytes, epoch));
}

void KeywordCache::PrefetchIrrPartition(
    std::shared_ptr<const IrrKeywordEntry> entry, uint64_t partition) {
  if (prefetch_pool_ == nullptr || entry == nullptr ||
      partition >= entry->num_partitions) {
    return;
  }
  const BlockKey key{entry->topic, partition};
  uint64_t epoch = 0;
  {
    // Cheap warm-path exit BEFORE building the task: resident, in-flight
    // or admission-bypassed partitions (the common cases on repeat
    // queries) cost one lock round-trip and no allocation.
    MutexLock lock(&mu_);
    if (blocks_.count(key) != 0 || inflight_.count(key) != 0 ||
        uncacheable_.count(key) != 0) {
      return;
    }
    epoch = EpochLocked(key.topic);
  }
  // packaged_task is move-only but ThreadPool tasks are std::function;
  // hold it by shared_ptr.
  auto task = std::make_shared<std::packaged_task<
      StatusOr<std::shared_ptr<const IrrPartitionBlock>>()>>(
      [this, entry = std::move(entry), partition, key, epoch]() {
        auto decoded = DecodeIrrPartition(*entry, partition);
        if (decoded.ok()) {
          // Publish to the block cache BEFORE leaving the in-flight map,
          // so no lookup can miss both; losing a racing insert just hands
          // back the winner's block. A topic invalidated since the
          // prefetch was scheduled (epoch moved) is never re-admitted.
          bool admitted = true;
          {
            MutexLock lock(&mu_);
            if (EpochLocked(key.topic) == epoch) {
              const auto it = blocks_.find(key);
              if (it != blocks_.end()) {
                TouchLocked(it->second);
                decoded = std::static_pointer_cast<const IrrPartitionBlock>(
                    it->second.block);
              } else if ((*decoded)->bytes > AdmissionLimitBytes()) {
                ++stats_.admission_bypasses;
                admitted = false;
              } else {
                InsertBlockLocked(key, *decoded, (*decoded)->bytes);
              }
            }
            // Remember admission refusals: re-prefetching an uncacheable
            // partition would decode into the void every round.
            if (!admitted) uncacheable_.emplace(key, true);
            inflight_.erase(key);
          }
        } else {
          // Bugfix (swallowed status): a failed background decode used to
          // vanish unless a foreground joiner happened to wait on the
          // future. Count it and run the same failure-domain reaction as
          // a foreground failure; joiners still observe the status.
          {
            MutexLock lock(&mu_);
            ++stats_.prefetch_failures;
            inflight_.erase(key);
          }
          RecordTopicFailure(key.topic, decoded.status());
        }
        return decoded;
      });
  {
    // Re-check under the lock: another thread may have landed or started
    // this partition (or invalidated the topic) while the task was built.
    MutexLock lock(&mu_);
    if (blocks_.count(key) != 0 || inflight_.count(key) != 0 ||
        EpochLocked(key.topic) != epoch) {
      return;
    }
    inflight_.emplace(key, task->get_future().share());
    ++stats_.prefetches_issued;
  }
  prefetch_pool_->Submit([task] { (*task)(); });
}

StatusOr<std::shared_ptr<const IrrPartitionBlock>>
KeywordCache::DecodeIrrPartition(const IrrKeywordEntry& entry,
                                 uint64_t partition) {
  // Reads and decodes outside the lock; the immutable entry pins the file
  // handle (callers hold it via shared_ptr or the entries map).
  const IrrPartitionInfo& info = entry.directory[partition];
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view buf,
      entry.file->ReadOrCopy(info.offset, info.length, &scratch));
  if (entry.checksummed) {
    // Verify the exact bytes read before any decode touches them: a bit
    // flip (in the file or injected on the read) becomes kCorruption
    // here, never a silently-different seed set.
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), buf.size(), info.crc,
                                   "IRR partition", entry.file->path()));
  }
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  const auto codec = MakeCodec(entry.codec);
  const bool fast_pfor =
      entry.codec == CodecKind::kPfor && BatchDecodeEnabled();
  auto block = std::make_shared<IrrPartitionBlock>();

  // IL^p: inverted lists, kept unrestricted (queries budget-slice them).
  std::vector<uint32_t> ids;
  size_t n = 0;
  block->users.reserve(info.num_users);
  block->list_offsets.reserve(info.num_users + 1);
  block->list_offsets.push_back(0);
  for (uint32_t i = 0; i < info.num_users; ++i) {
    uint32_t v = 0;
    uint64_t len = 0;
    // The unrolled varint readers belong to the batch-kernel ablation arm
    // (scalar mode stays the faithful PR-1 framing).
    p = fast_pfor ? FastVarint32(p, limit, &v) : GetVarint32(p, limit, &v);
    if (p == nullptr) return Status::Corruption("IRR IL truncated");
    p = fast_pfor ? FastVarint64(p, limit, &len)
                  : GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("IRR IL truncated");
    }
    KBTIM_RETURN_IF_ERROR(DecodeAppendPayload(*codec, fast_pfor, &p, len,
                                              limit, ids, block->list_ids,
                                              &n));
    block->users.push_back(v);
    block->list_offsets.push_back(
        static_cast<uint32_t>(block->list_ids.size()));
  }

  // IR^p: the RR sets first referenced by this partition, ids ascending.
  // Only the per-set HEADERS are parsed here (ids + framing validation);
  // the member payloads — about half the partition's decode cost, and
  // read only by the eager query mode — keep their encoded form in the
  // block and materialize on first SetMembers access.
  uint32_t num_sets = 0;
  p = GetVarint32(p, limit, &num_sets);
  if (p == nullptr) return Status::Corruption("IRR IR truncated");
  block->set_ids.reserve(num_sets);
  const char* ir_begin = p;
  RrId rr = 0;
  uint64_t total_members = 0;
  for (uint32_t s = 0; s < num_sets; ++s) {
    uint32_t rr_delta = 0;
    uint64_t len = 0;
    p = fast_pfor ? FastVarint32(p, limit, &rr_delta)
                  : GetVarint32(p, limit, &rr_delta);
    if (p == nullptr) return Status::Corruption("IRR IR truncated");
    p = fast_pfor ? FastVarint64(p, limit, &len)
                  : GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("IRR IR truncated");
    }
    rr += rr_delta;
    block->set_ids.push_back(rr);
    // Peek the payload's leading count varint so the eventual decoded
    // member mass is charged against the cache bound NOW — the lazy
    // materialization later grows the block in place without another
    // accounting pass.
    uint64_t member_count = 0;
    if (GetVarint64(p, p + len, &member_count) == nullptr) {
      return Status::Corruption("IRR IR payload header truncated");
    }
    total_members += member_count;
    p += len;  // payload deferred
  }
  block->ir_codec = entry.codec;
  block->ir_raw.assign(ir_begin, static_cast<size_t>(p - ir_begin));
  if (options_.eager_ir_members) {
    KBTIM_RETURN_IF_ERROR(block->EnsureMembers());
  }

  // Charge the decoded-member footprint up front (from the peeked counts)
  // whether or not it has materialized yet, so cache residency never
  // exceeds the bound when eager queries decode cached blocks later.
  block->bytes = VectorBytes(block->users) +
                 VectorBytes(block->list_offsets) +
                 VectorBytes(block->list_ids) + VectorBytes(block->set_ids) +
                 block->ir_raw.capacity() +
                 (total_members + num_sets + 1) * sizeof(uint32_t);
  return std::shared_ptr<const IrrPartitionBlock>(std::move(block));
}

// ---- RR side --------------------------------------------------------------

Status KeywordCache::EnsureRrEntryLocked(TopicId topic,
                                         RrKeywordEntry** out) {
  const auto it = rr_entries_.find(topic);
  if (it != rr_entries_.end()) {
    *out = &it->second;
    return Status::OK();
  }
  const std::string path = RrFileName(dir_, topic);
  RrKeywordEntry entry;
  entry.topic = topic;
  KBTIM_ASSIGN_OR_RETURN(entry.rr_file,
                         RandomAccessFile::Open(path, options_.use_mmap));
  KBTIM_ASSIGN_OR_RETURN(
      entry.lists_file,
      RandomAccessFile::Open(ListsFileName(dir_, topic), options_.use_mmap));
  ++stats_.preamble_loads;
  *out = &rr_entries_.emplace(topic, std::move(entry)).first->second;
  return Status::OK();
}

Status KeywordCache::ExtendRrDirectoryLocked(RrKeywordEntry* entry,
                                       uint64_t budget) {
  const std::string& path = entry->rr_file->path();
  if (entry->offsets.empty() && meta_.format_version >= kIndexFormatV2) {
    // v2 first touch: the meta records the preamble length, so ONE read
    // covers header + full offset directory + directory CRC + page-CRC
    // table, all verified before anything is trusted. (Same logical read
    // count as the v1 first touch; later budget growth needs no
    // directory tail reads at all.)
    const uint64_t preamble = meta_.topics[entry->topic].rr_preamble;
    const uint64_t file_size = entry->rr_file->size();
    if (preamble < kRrHeaderSizeV2 + 12 || preamble > file_size) {
      return Status::Corruption("bad RR preamble length: " + path);
    }
    std::string scratch;
    KBTIM_ASSIGN_OR_RETURN(std::string_view head,
                           entry->rr_file->ReadOrCopy(0, preamble,
                                                      &scratch));
    if (std::memcmp(head.data(), kRrMagicV2, 4) != 0) {
      return Status::Corruption("bad RR file magic: " + path);
    }
    KBTIM_RETURN_IF_ERROR(CheckCrcLocked(head.data(), 25,
                                         LoadFixed32(head.data() + 25),
                                         "RR header", path));
    uint32_t file_topic = 0;
    uint64_t num_pages = 0;
    std::memcpy(&file_topic, head.data() + 4, 4);
    std::memcpy(&entry->count, head.data() + 8, 8);
    const auto file_codec = static_cast<CodecKind>(head[16]);
    std::memcpy(&num_pages, head.data() + 17, 8);
    if (file_topic != entry->topic || file_codec != meta_.codec) {
      return Status::Corruption("RR file header mismatch: " + path);
    }
    const uint64_t dir_size = (entry->count + 1) * sizeof(uint64_t);
    if (preamble !=
        kRrHeaderSizeV2 + dir_size + 4 + num_pages * sizeof(uint32_t)) {
      return Status::Corruption("RR preamble layout mismatch: " + path);
    }
    const char* dir = head.data() + kRrHeaderSizeV2;
    KBTIM_RETURN_IF_ERROR(CheckCrcLocked(dir, dir_size,
                                         LoadFixed32(dir + dir_size),
                                         "RR directory", path));
    if (budget > entry->count) {
      return Status::Corruption("RR budget exceeds stored sets: " + path);
    }
    entry->checksummed = true;
    entry->offsets.resize(entry->count + 1);
    std::memcpy(entry->offsets.data(), dir, dir_size);
    if (entry->offsets.front() != preamble ||
        entry->offsets.back() != file_size ||
        num_pages != (file_size - preamble + kRrCrcPageSize - 1) /
                         kRrCrcPageSize) {
      return Status::Corruption("RR directory out of bounds: " + path);
    }
    entry->page_crcs.resize(num_pages);
    std::memcpy(entry->page_crcs.data(), dir + dir_size + 4,
                num_pages * sizeof(uint32_t));
    return Status::OK();
  }
  if (entry->offsets.empty()) {
    // v1 first touch: header + the needed directory prefix in one read.
    const uint64_t dir_prefix = (budget + 1) * sizeof(uint64_t);
    std::string scratch;
    KBTIM_ASSIGN_OR_RETURN(
        std::string_view head,
        entry->rr_file->ReadOrCopy(0, kRrHeaderSizeV1 + dir_prefix,
                                   &scratch));
    if (std::memcmp(head.data(), kRrMagicV1, 4) != 0) {
      return Status::Corruption("bad RR file magic: " + path);
    }
    uint32_t file_topic = 0;
    std::memcpy(&file_topic, head.data() + 4, 4);
    std::memcpy(&entry->count, head.data() + 8, 8);
    const auto file_codec = static_cast<CodecKind>(head[16]);
    if (file_topic != entry->topic || file_codec != meta_.codec) {
      return Status::Corruption("RR file header mismatch: " + path);
    }
    if (budget > entry->count) {
      return Status::Corruption("RR budget exceeds stored sets: " + path);
    }
    entry->offsets.resize(budget + 1);
    std::memcpy(entry->offsets.data(), head.data() + kRrHeaderSizeV1,
                dir_prefix);
    return Status::OK();
  }
  if (budget > entry->count) {
    return Status::Corruption("RR budget exceeds stored sets: " + path);
  }
  if (entry->offsets.size() >= budget + 1) return Status::OK();
  // v1: read only the missing directory tail (the v2 branch above loads
  // the complete directory on first touch and never gets here).
  const uint64_t have = entry->offsets.size();
  const uint64_t need = budget + 1 - have;
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view tail,
      entry->rr_file->ReadOrCopy(kRrHeaderSizeV1 + have * sizeof(uint64_t),
                                 need * sizeof(uint64_t), &scratch));
  entry->offsets.resize(budget + 1);
  std::memcpy(entry->offsets.data() + have, tail.data(), tail.size());
  return Status::OK();
}

StatusOr<std::shared_ptr<const RrKeywordBlock>> KeywordCache::GetRrKeyword(
    TopicId topic, uint64_t min_budget) {
  auto block = GetRrKeywordImpl(topic, min_budget);
  if (!block.ok()) RecordTopicFailure(topic, block.status());
  return block;
}

StatusOr<std::shared_ptr<const RrKeywordBlock>>
KeywordCache::GetRrKeywordImpl(TopicId topic, uint64_t min_budget) {
  if (topic >= meta_.num_topics) {
    return Status::InvalidArgument("topic id out of range");
  }
  if (min_budget == 0) {
    return Status::InvalidArgument("RR keyword budget must be positive");
  }
  const BlockKey key{topic, kRrBlockSlot};
  std::shared_ptr<RandomAccessFile> rr_file;
  std::shared_ptr<RandomAccessFile> lists_file;
  uint64_t epoch = 0;
  std::vector<uint64_t> offsets;  // local copy of entries [0, min_budget]
  bool checksummed = false;
  std::vector<uint32_t> page_crcs;  // pages covering the payload prefix
  {
    MutexLock lock(&mu_);
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      auto block =
          std::static_pointer_cast<const RrKeywordBlock>(it->second.block);
      if (block->loaded_budget >= min_budget) {
        ++stats_.hits;
        TouchLocked(it->second);
        return block;
      }
      // Budget grew past the cached prefix: re-decode below (the smaller
      // block keeps serving other readers until the new one lands).
    }
    ++stats_.misses;
    // Entry bookkeeping (handles + the small offset directory) stays
    // under the lock; the expensive payload reads/decodes run outside it
    // so a cold keyword never stalls warm queries on other topics.
    RrKeywordEntry* entry = nullptr;
    KBTIM_RETURN_IF_ERROR(EnsureRrEntryLocked(topic, &entry));
    KBTIM_RETURN_IF_ERROR(ExtendRrDirectoryLocked(entry, min_budget));
    // Shared handle copies stay valid unlocked even if InvalidateTopic
    // erases the entry (and drops its references) mid-decode.
    rr_file = entry->rr_file;
    lists_file = entry->lists_file;
    epoch = EpochLocked(topic);
    offsets.assign(entry->offsets.begin(),
                   entry->offsets.begin() + min_budget + 1);
    checksummed = entry->checksummed;
    if (checksummed) {
      const uint64_t prefix = offsets[min_budget] - offsets[0];
      const uint64_t pages =
          (prefix + kRrCrcPageSize - 1) / kRrCrcPageSize;
      page_crcs.assign(entry->page_crcs.begin(),
                       entry->page_crcs.begin() + pages);
    }
  }

  auto block = std::make_shared<RrKeywordBlock>();
  block->loaded_budget = min_budget;

  // One contiguous read of the payload prefix. With checksums on, the
  // read rounds up to the CRC page boundary (clamped to the payload end)
  // so every touched page verifies against its stored CRC — still one
  // logical read, so Table-6 I/O accounting is unchanged.
  const uint64_t base = offsets[0];
  const uint64_t need_len = offsets[min_budget] - base;
  uint64_t read_len = need_len;
  if (checksummed) {
    const uint64_t rounded =
        (need_len + kRrCrcPageSize - 1) / kRrCrcPageSize * kRrCrcPageSize;
    read_len = std::min<uint64_t>(rr_file->size() - base, rounded);
  }
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(std::string_view raw,
                         rr_file->ReadOrCopy(base, read_len, &scratch));
  if (checksummed) {
    uint64_t bad_page = page_crcs.size();
    for (uint64_t i = 0; i < page_crcs.size(); ++i) {
      const uint64_t begin = i * kRrCrcPageSize;
      const uint64_t end = std::min<uint64_t>(read_len,
                                              begin + kRrCrcPageSize);
      if (crc32c::Unmask(page_crcs[i]) !=
          crc32c::Value(raw.data() + begin, end - begin)) {
        bad_page = i;
        break;
      }
    }
    {
      MutexLock lock(&mu_);
      stats_.crc_checks +=
          bad_page < page_crcs.size() ? bad_page + 1 : page_crcs.size();
      if (bad_page < page_crcs.size()) ++stats_.crc_failures;
    }
    if (bad_page < page_crcs.size()) {
      return Status::Corruption("RR payload page checksum mismatch: " +
                                rr_file->path());
    }
  }
  const std::string_view payload = raw.substr(0, need_len);
  const auto codec = MakeCodec(meta_.codec);
  const bool fast_pfor =
      meta_.codec == CodecKind::kPfor && BatchDecodeEnabled();
  const char* payload_limit = payload.data() + payload.size();
  std::vector<uint32_t> members;
  size_t n = 0;
  block->set_offsets.reserve(min_budget + 1);
  for (uint64_t i = 0; i < min_budget; ++i) {
    const char* sp = payload.data() + (offsets[i] - base);
    KBTIM_RETURN_IF_ERROR(DecodeAppendPayload(*codec, fast_pfor, &sp,
                                              offsets[i + 1] - offsets[i],
                                              payload_limit, members,
                                              block->set_items, &n));
    block->set_offsets.push_back(block->set_items.size());
  }

  // Inverted lists, restricted to RR ids < loaded_budget.
  const std::string& lists_path = lists_file->path();
  std::string lists_scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view buf,
      lists_file->ReadOrCopy(0, lists_file->size(), &lists_scratch));
  const uint64_t lists_header =
      checksummed ? kListsHeaderSizeV2 : kListsHeaderSizeV1;
  if (buf.size() < lists_header ||
      std::memcmp(buf.data(), checksummed ? kListsMagicV2 : kListsMagicV1,
                  4) != 0) {
    return Status::Corruption("bad lists file magic: " + lists_path);
  }
  if (checksummed) {
    // Header CRC covers the payload CRC field; the file is read whole,
    // so one payload CRC covers everything after the header.
    KBTIM_RETURN_IF_ERROR(CheckCrc(buf.data(), 21,
                                   LoadFixed32(buf.data() + 21),
                                   "lists header", lists_path));
    KBTIM_RETURN_IF_ERROR(
        CheckCrc(buf.data() + lists_header, buf.size() - lists_header,
                 LoadFixed32(buf.data() + 17), "lists payload",
                 lists_path));
  }
  uint32_t file_topic = 0;
  uint64_t num_entries = 0;
  std::memcpy(&file_topic, buf.data() + 4, 4);
  std::memcpy(&num_entries, buf.data() + 8, 8);
  const auto file_codec = static_cast<CodecKind>(buf[16]);
  if (file_topic != topic || file_codec != meta_.codec) {
    return Status::Corruption("lists file header mismatch: " + lists_path);
  }
  const char* p = buf.data() + lists_header;
  const char* limit = buf.data() + buf.size();
  VertexId prev = 0;
  std::vector<uint32_t> ids;
  for (uint64_t e = 0; e < num_entries; ++e) {
    uint32_t delta_v = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &delta_v);
    if (p == nullptr) {
      return Status::Corruption("lists truncated: " + lists_path);
    }
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("lists truncated: " + lists_path);
    }
    const VertexId v = prev + delta_v;
    prev = v;
    const size_t start = block->list_ids.size();
    KBTIM_RETURN_IF_ERROR(DecodeAppendPayload(*codec, fast_pfor, &p, len,
                                              limit, ids, block->list_ids,
                                              &n));
    // Keep ids inside the loaded budget (ids are ascending, so the
    // out-of-budget portion is exactly the appended tail).
    while (block->list_ids.size() > start &&
           block->list_ids.back() >= min_budget) {
      block->list_ids.pop_back();
    }
    if (block->list_ids.size() == start) continue;
    block->list_vertex.push_back(v);
    block->list_offsets.push_back(block->list_ids.size());
  }

  block->bytes = VectorBytes(block->set_offsets) +
                 VectorBytes(block->set_items) +
                 VectorBytes(block->list_vertex) +
                 VectorBytes(block->list_offsets) +
                 VectorBytes(block->list_ids);
  if (options_.block_cache_bytes == 0) {
    return std::shared_ptr<const RrKeywordBlock>(std::move(block));
  }
  MutexLock lock(&mu_);
  if (EpochLocked(topic) != epoch) {
    // Invalidated while decoding: serve the caller, never re-admit.
    return std::shared_ptr<const RrKeywordBlock>(std::move(block));
  }
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    auto existing =
        std::static_pointer_cast<const RrKeywordBlock>(it->second.block);
    if (existing->loaded_budget >= min_budget) {
      // A concurrent loader landed an equal-or-larger prefix; keep it.
      TouchLocked(it->second);
      return existing;
    }
  }
  if (block->bytes > AdmissionLimitBytes()) {
    // Admission policy: an oversized payload prefix would evict the whole
    // working set; serve it uncached (any smaller resident prefix keeps
    // serving the budgets it covers).
    ++stats_.admission_bypasses;
    return std::shared_ptr<const RrKeywordBlock>(std::move(block));
  }
  EraseBlockLocked(key);
  InsertBlockLocked(key, block, block->bytes);
  return std::shared_ptr<const RrKeywordBlock>(std::move(block));
}

}  // namespace kbtim

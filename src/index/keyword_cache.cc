#include "index/keyword_cache.h"

#include <algorithm>
#include <cstring>

#include "storage/varint.h"

namespace kbtim {
namespace {

constexpr char kIrrMagic[4] = {'K', 'B', 'I', 'W'};
constexpr uint64_t kIrrHeaderSize = 4 + 4 + 8 + 8 + 4 + 1 + 8;
constexpr char kRrMagic[4] = {'K', 'B', 'R', 'W'};
constexpr char kListsMagic[4] = {'K', 'B', 'L', 'W'};
constexpr uint64_t kRrHeaderSize = 4 + 4 + 8 + 1;
constexpr uint64_t kListsHeaderSize = 4 + 4 + 8 + 1;

template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

bool IrrKeywordEntry::FirstOccurrence(VertexId v, RrId* first) const {
  const auto it = std::lower_bound(ip_vertex.begin(), ip_vertex.end(), v);
  if (it == ip_vertex.end() || *it != v) return false;
  *first = ip_first[static_cast<size_t>(it - ip_vertex.begin())];
  return true;
}

std::span<const RrId> RrKeywordBlock::ListOf(VertexId v,
                                             uint64_t query_budget) const {
  const auto it =
      std::lower_bound(list_vertex.begin(), list_vertex.end(), v);
  if (it == list_vertex.end() || *it != v) return {};
  const size_t idx = static_cast<size_t>(it - list_vertex.begin());
  const RrId* begin = list_ids.data() + list_offsets[idx];
  const RrId* end = list_ids.data() + list_offsets[idx + 1];
  if (query_budget < loaded_budget) {
    end = std::lower_bound(begin, end, static_cast<RrId>(query_budget));
  }
  return {begin, end};
}

StatusOr<std::shared_ptr<KeywordCache>> KeywordCache::Create(
    const std::string& dir, KeywordCacheOptions options) {
  KBTIM_ASSIGN_OR_RETURN(IndexMeta meta, ReadIndexMeta(MetaFileName(dir)));
  return std::shared_ptr<KeywordCache>(
      new KeywordCache(dir, std::move(meta), options));
}

KeywordCacheStats KeywordCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void KeywordCache::DropBlocks() {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
}

void KeywordCache::TouchLocked(BlockSlot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

void KeywordCache::EvictToFitLocked(uint64_t incoming_bytes) {
  // Callers insert only absent keys, so the incoming block is never a
  // candidate victim here.
  while (!lru_.empty() &&
         stats_.bytes_cached + incoming_bytes > options_.block_cache_bytes) {
    const auto it = blocks_.find(lru_.back());
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    blocks_.erase(it);
    lru_.pop_back();
  }
}

void KeywordCache::InsertBlockLocked(const BlockKey& key,
                                     std::shared_ptr<const void> block,
                                     uint64_t bytes) {
  EvictToFitLocked(bytes);
  lru_.push_front(key);
  blocks_.emplace(key, BlockSlot{std::move(block), bytes, lru_.begin()});
  stats_.bytes_cached += bytes;
}

void KeywordCache::EraseBlockLocked(const BlockKey& key) {
  const auto it = blocks_.find(key);
  if (it == blocks_.end()) return;
  stats_.bytes_cached -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  blocks_.erase(it);
}

std::shared_ptr<const void> KeywordCache::InsertBlock(
    const BlockKey& key, std::shared_ptr<const void> block, uint64_t bytes) {
  if (options_.block_cache_bytes == 0) return block;  // caching disabled
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    // Another thread decoded the same block first; keep theirs.
    TouchLocked(it->second);
    return it->second.block;
  }
  InsertBlockLocked(key, block, bytes);
  return block;
}

// ---- IRR side -------------------------------------------------------------

StatusOr<std::shared_ptr<const IrrKeywordEntry>> KeywordCache::GetIrrKeyword(
    TopicId topic) {
  if (topic >= meta_.num_topics) {
    return Status::InvalidArgument("topic id out of range");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = irr_entries_.find(topic);
    if (it != irr_entries_.end()) return it->second;
  }
  // Parse outside the lock so a cold preamble never stalls warm queries.
  KBTIM_ASSIGN_OR_RETURN(auto entry, LoadIrrEntry(topic));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = irr_entries_.emplace(topic, entry);
  if (inserted) ++stats_.preamble_loads;
  return it->second;  // the first loader's entry if we raced
}

StatusOr<std::shared_ptr<const IrrKeywordEntry>> KeywordCache::LoadIrrEntry(
    TopicId topic) {
  const std::string path = IrrFileName(dir_, topic);
  const IndexMeta::TopicMeta& tm = meta_.topics[topic];
  auto entry = std::make_shared<IrrKeywordEntry>();
  entry->topic = topic;
  KBTIM_ASSIGN_OR_RETURN(entry->file,
                         RandomAccessFile::Open(path, options_.use_mmap));
  if (tm.irr_preamble < kIrrHeaderSize ||
      tm.irr_preamble > entry->file->size()) {
    return Status::Corruption("bad IRR preamble length: " + path);
  }
  // Single logical read: header + IP map + partition directory.
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(std::string_view buf,
                         entry->file->ReadOrCopy(0, tm.irr_preamble,
                                                 &scratch));
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  if (std::memcmp(p, kIrrMagic, 4) != 0) {
    return Status::Corruption("bad IRR magic: " + path);
  }
  uint32_t file_topic = 0, delta = 0;
  std::memcpy(&file_topic, p + 4, 4);
  std::memcpy(&entry->num_users, p + 8, 8);
  std::memcpy(&entry->num_partitions, p + 16, 8);
  std::memcpy(&delta, p + 24, 4);
  entry->codec = static_cast<CodecKind>(p[28]);
  std::memcpy(&entry->theta_w, p + 29, 8);
  p += kIrrHeaderSize;
  if (file_topic != topic || entry->codec != meta_.codec) {
    return Status::Corruption("IRR header mismatch: " + path);
  }

  // Bound the raw counts against the preamble size before trusting them:
  // each IP entry is >= 2 varint bytes and each directory entry 32 bytes,
  // so corrupt huge counts fail here instead of overflowing / OOMing.
  const uint64_t remaining = static_cast<uint64_t>(limit - p);
  if (entry->num_users > remaining / 2 ||
      entry->num_partitions > remaining / 32) {
    return Status::Corruption("IRR preamble counts exceed file: " + path);
  }

  // IP map: vertex deltas accumulate from 0, so the keys arrive (and are
  // stored) in ascending order — binary-search ready.
  entry->ip_vertex.reserve(entry->num_users);
  entry->ip_first.reserve(entry->num_users);
  VertexId prev = 0;
  for (uint64_t i = 0; i < entry->num_users; ++i) {
    uint32_t dv = 0, first = 0;
    p = GetVarint32(p, limit, &dv);
    if (p == nullptr) return Status::Corruption("IRR IP truncated: " + path);
    p = GetVarint32(p, limit, &first);
    if (p == nullptr) return Status::Corruption("IRR IP truncated: " + path);
    prev += dv;
    entry->ip_vertex.push_back(prev);
    entry->ip_first.push_back(first);
  }

  // Partition directory (fixed 32-byte entries; num_partitions already
  // bounded above, so the multiply cannot wrap).
  if (entry->num_partitions * 32 > static_cast<uint64_t>(limit - p)) {
    return Status::Corruption("IRR directory truncated: " + path);
  }
  entry->directory.resize(entry->num_partitions);
  for (auto& info : entry->directory) {
    std::memcpy(&info.offset, p, 8);
    std::memcpy(&info.length, p + 8, 8);
    std::memcpy(&info.num_users, p + 16, 4);
    std::memcpy(&info.num_sets, p + 20, 4);
    std::memcpy(&info.max_list_len, p + 24, 4);
    std::memcpy(&info.min_list_len, p + 28, 4);
    p += 32;
  }
  return std::shared_ptr<const IrrKeywordEntry>(std::move(entry));
}

StatusOr<std::shared_ptr<const IrrPartitionBlock>>
KeywordCache::GetIrrPartition(const IrrKeywordEntry& entry,
                              uint64_t partition) {
  if (partition >= entry.num_partitions) {
    return Status::InvalidArgument("IRR partition out of range");
  }
  const BlockKey key{entry.topic, partition};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      ++stats_.hits;
      TouchLocked(it->second);
      return std::static_pointer_cast<const IrrPartitionBlock>(
          it->second.block);
    }
    ++stats_.misses;
  }

  // Decode outside the lock; the immutable entry pins the file handle.
  const IrrPartitionInfo& info = entry.directory[partition];
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view buf,
      entry.file->ReadOrCopy(info.offset, info.length, &scratch));
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  const auto codec = MakeCodec(entry.codec);
  auto block = std::make_shared<IrrPartitionBlock>();

  // IL^p: inverted lists, kept unrestricted (queries budget-slice them).
  std::vector<uint32_t> ids;
  block->users.reserve(info.num_users);
  block->list_offsets.reserve(info.num_users + 1);
  block->list_offsets.push_back(0);
  for (uint32_t i = 0; i < info.num_users; ++i) {
    uint32_t v = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &v);
    if (p == nullptr) return Status::Corruption("IRR IL truncated");
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("IRR IL truncated");
    }
    KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(p, len), &ids));
    p += len;
    DeltaDecode(&ids);
    block->users.push_back(v);
    block->list_ids.insert(block->list_ids.end(), ids.begin(), ids.end());
    block->list_offsets.push_back(
        static_cast<uint32_t>(block->list_ids.size()));
  }

  // IR^p: the RR sets first referenced by this partition, ids ascending.
  // Members are always decoded so one cached block serves both the lazy
  // and the eager query mode (the decode cost amortizes across queries).
  uint32_t num_sets = 0;
  p = GetVarint32(p, limit, &num_sets);
  if (p == nullptr) return Status::Corruption("IRR IR truncated");
  block->set_ids.reserve(num_sets);
  block->set_offsets.reserve(num_sets + 1);
  block->set_offsets.push_back(0);
  RrId rr = 0;
  for (uint32_t s = 0; s < num_sets; ++s) {
    uint32_t rr_delta = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &rr_delta);
    if (p == nullptr) return Status::Corruption("IRR IR truncated");
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("IRR IR truncated");
    }
    rr += rr_delta;
    KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(p, len), &ids));
    p += len;
    DeltaDecode(&ids);
    block->set_ids.push_back(rr);
    block->set_members.insert(block->set_members.end(), ids.begin(),
                              ids.end());
    block->set_offsets.push_back(
        static_cast<uint32_t>(block->set_members.size()));
  }

  block->bytes = VectorBytes(block->users) +
                 VectorBytes(block->list_offsets) +
                 VectorBytes(block->list_ids) + VectorBytes(block->set_ids) +
                 VectorBytes(block->set_offsets) +
                 VectorBytes(block->set_members);
  return std::static_pointer_cast<const IrrPartitionBlock>(
      InsertBlock(key, block, block->bytes));
}

// ---- RR side --------------------------------------------------------------

Status KeywordCache::EnsureRrEntryLocked(TopicId topic,
                                         RrKeywordEntry** out) {
  const auto it = rr_entries_.find(topic);
  if (it != rr_entries_.end()) {
    *out = &it->second;
    return Status::OK();
  }
  const std::string path = RrFileName(dir_, topic);
  RrKeywordEntry entry;
  entry.topic = topic;
  KBTIM_ASSIGN_OR_RETURN(entry.rr_file,
                         RandomAccessFile::Open(path, options_.use_mmap));
  KBTIM_ASSIGN_OR_RETURN(
      entry.lists_file,
      RandomAccessFile::Open(ListsFileName(dir_, topic), options_.use_mmap));
  ++stats_.preamble_loads;
  *out = &rr_entries_.emplace(topic, std::move(entry)).first->second;
  return Status::OK();
}

Status KeywordCache::ExtendRrDirectory(RrKeywordEntry* entry,
                                       uint64_t budget) {
  const std::string& path = entry->rr_file->path();
  if (entry->offsets.empty()) {
    // First touch: header + the needed directory prefix in one read.
    const uint64_t dir_prefix = (budget + 1) * sizeof(uint64_t);
    std::string scratch;
    KBTIM_ASSIGN_OR_RETURN(
        std::string_view head,
        entry->rr_file->ReadOrCopy(0, kRrHeaderSize + dir_prefix, &scratch));
    if (std::memcmp(head.data(), kRrMagic, 4) != 0) {
      return Status::Corruption("bad RR file magic: " + path);
    }
    uint32_t file_topic = 0;
    std::memcpy(&file_topic, head.data() + 4, 4);
    std::memcpy(&entry->count, head.data() + 8, 8);
    const auto file_codec = static_cast<CodecKind>(head[16]);
    if (file_topic != entry->topic || file_codec != meta_.codec) {
      return Status::Corruption("RR file header mismatch: " + path);
    }
    if (budget > entry->count) {
      return Status::Corruption("RR budget exceeds stored sets: " + path);
    }
    entry->offsets.resize(budget + 1);
    std::memcpy(entry->offsets.data(), head.data() + kRrHeaderSize,
                dir_prefix);
    return Status::OK();
  }
  if (budget > entry->count) {
    return Status::Corruption("RR budget exceeds stored sets: " + path);
  }
  if (entry->offsets.size() >= budget + 1) return Status::OK();
  // Read only the missing directory tail.
  const uint64_t have = entry->offsets.size();
  const uint64_t need = budget + 1 - have;
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view tail,
      entry->rr_file->ReadOrCopy(kRrHeaderSize + have * sizeof(uint64_t),
                                 need * sizeof(uint64_t), &scratch));
  entry->offsets.resize(budget + 1);
  std::memcpy(entry->offsets.data() + have, tail.data(), tail.size());
  return Status::OK();
}

StatusOr<std::shared_ptr<const RrKeywordBlock>> KeywordCache::GetRrKeyword(
    TopicId topic, uint64_t min_budget) {
  if (topic >= meta_.num_topics) {
    return Status::InvalidArgument("topic id out of range");
  }
  if (min_budget == 0) {
    return Status::InvalidArgument("RR keyword budget must be positive");
  }
  const BlockKey key{topic, kRrBlockSlot};
  RandomAccessFile* rr_file = nullptr;
  RandomAccessFile* lists_file = nullptr;
  std::vector<uint64_t> offsets;  // local copy of entries [0, min_budget]
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      auto block =
          std::static_pointer_cast<const RrKeywordBlock>(it->second.block);
      if (block->loaded_budget >= min_budget) {
        ++stats_.hits;
        TouchLocked(it->second);
        return block;
      }
      // Budget grew past the cached prefix: re-decode below (the smaller
      // block keeps serving other readers until the new one lands).
    }
    ++stats_.misses;
    // Entry bookkeeping (handles + the small offset directory) stays
    // under the lock; the expensive payload reads/decodes run outside it
    // so a cold keyword never stalls warm queries on other topics.
    RrKeywordEntry* entry = nullptr;
    KBTIM_RETURN_IF_ERROR(EnsureRrEntryLocked(topic, &entry));
    KBTIM_RETURN_IF_ERROR(ExtendRrDirectory(entry, min_budget));
    // Entries are never erased and unordered_map values are
    // pointer-stable, so the raw handles stay valid unlocked.
    rr_file = entry->rr_file.get();
    lists_file = entry->lists_file.get();
    offsets.assign(entry->offsets.begin(),
                   entry->offsets.begin() + min_budget + 1);
  }

  auto block = std::make_shared<RrKeywordBlock>();
  block->loaded_budget = min_budget;

  // One contiguous read of the payload prefix.
  const uint64_t base = offsets[0];
  std::string scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view payload,
      rr_file->ReadOrCopy(base, offsets[min_budget] - base, &scratch));
  const auto codec = MakeCodec(meta_.codec);
  std::vector<uint32_t> members;
  block->set_offsets.reserve(min_budget + 1);
  for (uint64_t i = 0; i < min_budget; ++i) {
    const uint64_t begin = offsets[i] - base;
    const uint64_t end = offsets[i + 1] - base;
    KBTIM_RETURN_IF_ERROR(codec->Decode(
        std::string_view(payload.data() + begin, end - begin), &members));
    DeltaDecode(&members);
    block->set_items.insert(block->set_items.end(), members.begin(),
                            members.end());
    block->set_offsets.push_back(block->set_items.size());
  }

  // Inverted lists, restricted to RR ids < loaded_budget.
  const std::string& lists_path = lists_file->path();
  std::string lists_scratch;
  KBTIM_ASSIGN_OR_RETURN(
      std::string_view buf,
      lists_file->ReadOrCopy(0, lists_file->size(), &lists_scratch));
  if (buf.size() < kListsHeaderSize ||
      std::memcmp(buf.data(), kListsMagic, 4) != 0) {
    return Status::Corruption("bad lists file magic: " + lists_path);
  }
  uint32_t file_topic = 0;
  uint64_t num_entries = 0;
  std::memcpy(&file_topic, buf.data() + 4, 4);
  std::memcpy(&num_entries, buf.data() + 8, 8);
  const auto file_codec = static_cast<CodecKind>(buf[16]);
  if (file_topic != topic || file_codec != meta_.codec) {
    return Status::Corruption("lists file header mismatch: " + lists_path);
  }
  const char* p = buf.data() + kListsHeaderSize;
  const char* limit = buf.data() + buf.size();
  VertexId prev = 0;
  std::vector<uint32_t> ids;
  for (uint64_t e = 0; e < num_entries; ++e) {
    uint32_t delta_v = 0;
    uint64_t len = 0;
    p = GetVarint32(p, limit, &delta_v);
    if (p == nullptr) {
      return Status::Corruption("lists truncated: " + lists_path);
    }
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("lists truncated: " + lists_path);
    }
    const VertexId v = prev + delta_v;
    prev = v;
    KBTIM_RETURN_IF_ERROR(codec->Decode(std::string_view(p, len), &ids));
    p += len;
    DeltaDecode(&ids);
    // Keep ids inside the loaded budget (ids are ascending).
    size_t cut = ids.size();
    while (cut > 0 && ids[cut - 1] >= min_budget) --cut;
    if (cut == 0) continue;
    block->list_vertex.push_back(v);
    block->list_ids.insert(block->list_ids.end(), ids.begin(),
                           ids.begin() + cut);
    block->list_offsets.push_back(block->list_ids.size());
  }

  block->bytes = VectorBytes(block->set_offsets) +
                 VectorBytes(block->set_items) +
                 VectorBytes(block->list_vertex) +
                 VectorBytes(block->list_offsets) +
                 VectorBytes(block->list_ids);
  if (options_.block_cache_bytes == 0) {
    return std::shared_ptr<const RrKeywordBlock>(std::move(block));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    auto existing =
        std::static_pointer_cast<const RrKeywordBlock>(it->second.block);
    if (existing->loaded_budget >= min_budget) {
      // A concurrent loader landed an equal-or-larger prefix; keep it.
      TouchLocked(it->second);
      return existing;
    }
    EraseBlockLocked(key);
  }
  InsertBlockLocked(key, block, block->bytes);
  return std::shared_ptr<const RrKeywordBlock>(std::move(block));
}

}  // namespace kbtim

#include "index/rr_greedy.h"

#include <algorithm>
#include <vector>

#include "coverage/rr_collection.h"

namespace kbtim {

SeedSetResult RunRrGreedy(
    const Query& query, const QueryBudget& budget,
    const std::unordered_map<TopicId,
                             std::shared_ptr<const RrKeywordBlock>>& loaded,
    VertexId num_vertices) {
  // Per-query coverage bitmaps sized to the query budget.
  struct QueryKeyword {
    const RrKeywordBlock* data;
    uint64_t budget;
    std::vector<char> covered;
  };
  std::vector<QueryKeyword> keywords;
  uint64_t total_loaded = 0;
  for (const auto& [topic, tw] : budget.per_keyword) {
    if (tw == 0) continue;
    const auto it = loaded.find(topic);
    QueryKeyword qk;
    qk.data = it->second.get();
    qk.budget = tw;
    qk.covered.assign(tw, 0);
    keywords.push_back(std::move(qk));
    total_loaded += tw;
  }

  std::vector<uint64_t> count(num_vertices, 0);
  for (const auto& qk : keywords) {
    const RrKeywordBlock& kw = *qk.data;
    for (size_t i = 0; i + 1 < kw.list_offsets.size(); ++i) {
      const RrId* begin = kw.list_ids.data() + kw.list_offsets[i];
      const RrId* end = kw.list_ids.data() + kw.list_offsets[i + 1];
      if (qk.budget < kw.loaded_budget) {
        end = std::lower_bound(begin, end,
                               static_cast<RrId>(qk.budget));
      }
      count[kw.list_vertex[i]] += static_cast<uint64_t>(end - begin);
    }
  }
  std::vector<VertexId> candidates;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (count[v] > 0) candidates.push_back(v);
  }
  std::vector<char> selected(num_vertices, 0);

  SeedSetResult result;
  uint64_t total_covered = 0;
  const double scale =
      budget.phi_q / static_cast<double>(std::max<uint64_t>(1, total_loaded));
  for (uint32_t round = 0; round < query.k; ++round) {
    VertexId best = kInvalidVertex;
    uint64_t best_count = 0;
    for (VertexId v : candidates) {
      if (!selected[v] && count[v] > best_count) {
        best = v;
        best_count = count[v];
      }
    }
    if (best == kInvalidVertex) break;
    selected[best] = 1;
    result.seeds.push_back(best);
    result.marginal_gains.push_back(static_cast<double>(best_count) *
                                    scale);
    total_covered += best_count;
    for (auto& qk : keywords) {
      for (RrId rr : qk.data->ListOf(best, qk.budget)) {
        if (qk.covered[rr]) continue;
        qk.covered[rr] = 1;
        for (VertexId u : qk.data->SetMembers(rr)) --count[u];
      }
    }
  }
  // Pad with the smallest unselected ids (Algorithm 2 returns exactly k).
  for (VertexId v = 0; v < num_vertices && result.seeds.size() < query.k;
       ++v) {
    if (!selected[v]) {
      selected[v] = 1;
      result.seeds.push_back(v);
      result.marginal_gains.push_back(0.0);
    }
  }
  result.estimated_influence = static_cast<double>(total_covered) * scale;
  result.stats.theta = budget.theta_q;
  result.stats.rr_sets_loaded = total_loaded;
  return result;
}

}  // namespace kbtim

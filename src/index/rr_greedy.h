// Algorithm 2's greedy maximum coverage over decoded RR keyword blocks.
//
// Extracted from RrIndex so that every execution site runs the SAME
// greedy over the same inputs: the in-process RrIndex::Query/BatchQuery
// path and the network Router, which gathers RrKeywordBlocks from remote
// shards and must return byte-identical seed sets to a local query (the
// PR 10 golden-equality contract). Any change to selection order,
// tie-breaking or padding here changes both paths together.
#ifndef KBTIM_INDEX_RR_GREEDY_H_
#define KBTIM_INDEX_RR_GREEDY_H_

#include <memory>
#include <unordered_map>

#include "index/index_format.h"
#include "index/keyword_cache.h"
#include "sampling/solver_result.h"
#include "topics/query.h"

namespace kbtim {

/// Runs the greedy on one query over its loaded keyword blocks. `loaded`
/// must hold, for every per_keyword entry of `budget` with a non-zero
/// budget, a block whose loaded_budget covers it (blocks loaded at a
/// LARGER budget serve smaller ones exactly — the inverted lists are
/// restricted by binary search). Fills seeds, marginal_gains,
/// estimated_influence and the theta / rr_sets_loaded stats; I/O and
/// timing stats are the caller's to attribute.
SeedSetResult RunRrGreedy(
    const Query& query, const QueryBudget& budget,
    const std::unordered_map<TopicId,
                             std::shared_ptr<const RrKeywordBlock>>& loaded,
    VertexId num_vertices);

}  // namespace kbtim

#endif  // KBTIM_INDEX_RR_GREEDY_H_

// Disk-based RR index query processing (paper §4, Algorithm 2).
//
// A query loads, for each keyword w ∈ Q.T, the first θ^Q·p_w RR sets of
// R_w (one contiguous read thanks to the offset directory) plus the
// inverted lists L_w, then runs greedy maximum coverage over the merged
// collection. Same (1 − 1/e − ε) guarantee as WRIS (Lemma 2) at a fraction
// of the query cost, since sampling happened offline.
#ifndef KBTIM_INDEX_RR_INDEX_H_
#define KBTIM_INDEX_RR_INDEX_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "index/index_format.h"
#include "index/keyword_cache.h"
#include "sampling/solver_result.h"
#include "topics/query.h"

namespace kbtim {

/// Read-only handle to a disk RR index directory.
class RrIndex {
 public:
  /// Opens an index directory with a fresh KeywordCache (reads metadata
  /// only; per-keyword files are read at query time, then served warm
  /// from the cache).
  static StatusOr<RrIndex> Open(const std::string& dir,
                                KeywordCacheOptions cache_options = {});

  /// Attaches to an existing cache (e.g. one shared with an IrrIndex).
  static StatusOr<RrIndex> Open(std::shared_ptr<KeywordCache> cache);

  /// Answers a KB-TIM query (Algorithm 2). Requires query.k <= meta().max_k.
  StatusOr<SeedSetResult> Query(const kbtim::Query& query) const;

  /// Answers a batch of queries, loading each keyword's RR prefix and
  /// inverted lists once at the largest budget any query in the batch
  /// needs (an ad platform answers streams of ads whose keywords overlap
  /// heavily). Per-query results are bit-identical to Query(); the
  /// batch-level I/O and cache-delta stats are amortized across the
  /// results (stats.batch_size records the split), so summing them over
  /// the batch recovers the true totals.
  StatusOr<std::vector<SeedSetResult>> BatchQuery(
      std::span<const kbtim::Query> queries) const;

  const IndexMeta& meta() const { return cache_->meta(); }
  const std::string& dir() const { return cache_->dir(); }

  /// The warm-path cache backing this handle.
  const std::shared_ptr<KeywordCache>& cache() const { return cache_; }

 private:
  explicit RrIndex(std::shared_ptr<KeywordCache> cache)
      : cache_(std::move(cache)) {}

  std::shared_ptr<KeywordCache> cache_;
};

}  // namespace kbtim

#endif  // KBTIM_INDEX_RR_INDEX_H_

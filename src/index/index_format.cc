#include "index/index_format.h"

#include <algorithm>
#include <cstring>

#include "storage/block_file.h"
#include "storage/crc32c.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

constexpr char kMetaMagic[4] = {'K', 'B', 'I', 'X'};

void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutDouble(std::string* dst, double v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetFixed32(const char** p, const char* limit, uint32_t* v) {
  if (*p + sizeof(*v) > limit) return false;
  std::memcpy(v, *p, sizeof(*v));
  *p += sizeof(*v);
  return true;
}
bool GetFixed64(const char** p, const char* limit, uint64_t* v) {
  if (*p + sizeof(*v) > limit) return false;
  std::memcpy(v, *p, sizeof(*v));
  *p += sizeof(*v);
  return true;
}
bool GetDouble(const char** p, const char* limit, double* v) {
  if (*p + sizeof(*v) > limit) return false;
  std::memcpy(v, *p, sizeof(*v));
  *p += sizeof(*v);
  return true;
}

}  // namespace

const char* ThetaBoundKindName(ThetaBoundKind kind) {
  switch (kind) {
    case ThetaBoundKind::kConservative:
      return "theta_hat";
    case ThetaBoundKind::kCompact:
      return "theta";
  }
  return "?";
}

Status WriteIndexMeta(const IndexMeta& meta, const std::string& path) {
  if (meta.format_version != kIndexFormatV1 &&
      meta.format_version != kIndexFormatV2) {
    return Status::InvalidArgument("unsupported meta format version");
  }
  std::string buf;
  buf.append(kMetaMagic, 4);
  PutFixed32(&buf, meta.format_version);
  buf.push_back(static_cast<char>(meta.model));
  buf.push_back(static_cast<char>(meta.codec));
  buf.push_back(static_cast<char>(meta.bound));
  buf.push_back(static_cast<char>((meta.has_rr ? 1 : 0) |
                                  (meta.has_irr ? 2 : 0)));
  PutDouble(&buf, meta.epsilon);
  PutFixed32(&buf, meta.max_k);
  PutFixed32(&buf, meta.partition_size);
  PutFixed32(&buf, meta.num_vertices);
  PutFixed32(&buf, meta.num_topics);
  if (meta.topics.size() != meta.num_topics) {
    return Status::InvalidArgument("meta topic table size mismatch");
  }
  for (const auto& t : meta.topics) {
    PutFixed64(&buf, t.theta);
    PutDouble(&buf, t.tf_sum);
    PutDouble(&buf, t.phi);
    PutDouble(&buf, t.opt_bound);
    PutFixed64(&buf, t.irr_preamble);
    if (meta.format_version >= kIndexFormatV2) {
      PutFixed64(&buf, t.rr_preamble);
    }
  }
  if (meta.format_version >= kIndexFormatV2) {
    PutFixed32(&buf, crc32c::Mask(crc32c::Value(buf.data(), buf.size())));
  }
  // Meta is written last and published atomically: a directory either has
  // a complete, consistent meta or none at all.
  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(buf));
  return writer->Close();
}

StatusOr<IndexMeta> ReadIndexMeta(const std::string& path) {
  KBTIM_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  std::string buf;
  KBTIM_RETURN_IF_ERROR(file->Read(0, file->size(), &buf));
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  if (buf.size() < 8 || std::memcmp(p, kMetaMagic, 4) != 0) {
    return Status::Corruption("bad index meta magic: " + path);
  }
  p += 4;
  uint32_t version = 0;
  if (!GetFixed32(&p, limit, &version) ||
      (version != kIndexFormatV1 && version != kIndexFormatV2)) {
    return Status::Corruption("unsupported index meta version: " + path);
  }
  if (version >= kIndexFormatV2) {
    // The file's last 4 bytes are a masked CRC over everything before it.
    if (buf.size() < 12) return Status::Corruption("truncated meta: " + path);
    limit -= 4;
    uint32_t stored = 0;
    std::memcpy(&stored, limit, sizeof(stored));
    const uint32_t actual =
        crc32c::Value(buf.data(), buf.size() - sizeof(stored));
    if (crc32c::Unmask(stored) != actual) {
      return Status::Corruption("index meta checksum mismatch: " + path);
    }
  }
  if (p + 4 > limit) return Status::Corruption("truncated meta: " + path);
  IndexMeta meta;
  meta.format_version = version;
  meta.model = static_cast<PropagationModel>(*p++);
  meta.codec = static_cast<CodecKind>(*p++);
  meta.bound = static_cast<ThetaBoundKind>(*p++);
  const auto flags = static_cast<uint8_t>(*p++);
  meta.has_rr = (flags & 1) != 0;
  meta.has_irr = (flags & 2) != 0;
  bool ok = GetDouble(&p, limit, &meta.epsilon) &&
            GetFixed32(&p, limit, &meta.max_k) &&
            GetFixed32(&p, limit, &meta.partition_size) &&
            GetFixed32(&p, limit, &meta.num_vertices) &&
            GetFixed32(&p, limit, &meta.num_topics);
  if (!ok) return Status::Corruption("truncated meta fields: " + path);
  meta.topics.resize(meta.num_topics);
  for (auto& t : meta.topics) {
    ok = GetFixed64(&p, limit, &t.theta) && GetDouble(&p, limit, &t.tf_sum) &&
         GetDouble(&p, limit, &t.phi) && GetDouble(&p, limit, &t.opt_bound) &&
         GetFixed64(&p, limit, &t.irr_preamble);
    if (ok && version >= kIndexFormatV2) {
      ok = GetFixed64(&p, limit, &t.rr_preamble);
    }
    if (!ok) return Status::Corruption("truncated topic table: " + path);
  }
  return meta;
}

StatusOr<QueryBudget> ComputeQueryBudget(const IndexMeta& meta,
                                         const Query& query) {
  KBTIM_RETURN_IF_ERROR(ValidateQueryShape(query, meta.num_topics));
  if (query.k > meta.max_k) {
    return Status::FailedPrecondition(
        "query k exceeds the K the index was built for");
  }
  double phi_q = 0.0;
  for (TopicId w : query.topics) {
    phi_q += meta.topics[w].phi;
  }
  if (phi_q <= 0.0) {
    return Status::FailedPrecondition(
        "no query keyword has relevance mass in the index");
  }

  // Eqn. 11: θ^Q = min θ_w / p_w over keywords with mass.
  double theta_q = -1.0;
  for (TopicId w : query.topics) {
    const auto& t = meta.topics[w];
    const double pw = t.phi / phi_q;
    if (pw <= 0.0 || t.theta == 0) continue;
    const double budget = static_cast<double>(t.theta) / pw;
    if (theta_q < 0.0 || budget < theta_q) theta_q = budget;
  }
  if (theta_q < 0.0) {
    return Status::FailedPrecondition(
        "no query keyword has stored RR sets");
  }

  QueryBudget budget;
  budget.theta_q = static_cast<uint64_t>(theta_q);
  budget.phi_q = phi_q;
  budget.per_keyword.reserve(query.topics.size());
  for (TopicId w : query.topics) {
    const auto& t = meta.topics[w];
    const double pw = t.phi / phi_q;
    uint64_t tw = 0;
    if (pw > 0.0 && t.theta > 0) {
      tw = std::min<uint64_t>(
          t.theta, static_cast<uint64_t>(theta_q * pw));
      tw = std::max<uint64_t>(tw, 1);
    }
    budget.per_keyword.emplace_back(w, tw);
  }
  return budget;
}

std::string MetaFileName(const std::string& dir) {
  return dir + "/index_meta.kbm";
}
std::string RrFileName(const std::string& dir, TopicId topic) {
  return dir + "/rr_" + std::to_string(topic) + ".dat";
}
std::string ListsFileName(const std::string& dir, TopicId topic) {
  return dir + "/lists_" + std::to_string(topic) + ".dat";
}
std::string IrrFileName(const std::string& dir, TopicId topic) {
  return dir + "/irr_" + std::to_string(topic) + ".dat";
}

}  // namespace kbtim

// Incremental RR index query processing (paper §5, Algorithm 4).
//
// Instead of loading every budgeted RR set like Algorithm 2, the IRR query
// treats seed selection as top-k aggregation in the style of NRA [Fagin et
// al.]: inverted-list partitions (sorted by descending list length) are
// loaded on demand, candidates carry upper-bound scores, and a candidate is
// confirmed as a seed only when its exact remaining coverage dominates both
// every loaded candidate and the upper bound Σ_w kb[w] of everything unseen.
// Score refinement is lazy (§5.2): a candidate is re-scored only when it
// surfaces at the top of the priority queue. The IP first-occurrence map
// zeroes the partial score of users whose first appearance lies beyond the
// query budget θ^Q_w.
//
// Warm path: every IrrIndex consults a KeywordCache (shared by all copies
// of the handle, and shareable with an RrIndex over the same directory).
// Repeated queries re-read no preambles, and no bytes at all once the
// touched partitions are resident in the block cache.
//
// Theorem 3: the returned seeds have exactly the same coverage scores as
// Algorithm 2's; tests assert this, including through the cache.
#ifndef KBTIM_INDEX_IRR_INDEX_H_
#define KBTIM_INDEX_IRR_INDEX_H_

#include <memory>
#include <string>

#include "common/statusor.h"
#include "index/index_format.h"
#include "index/keyword_cache.h"
#include "sampling/solver_result.h"
#include "topics/query.h"

namespace kbtim {

/// Score-refinement strategy for the IRR query (Algorithm 4).
enum class IrrQueryMode : uint8_t {
  /// §5.2's lazy evaluation: a candidate is re-scored only when it
  /// surfaces at the queue head. The paper's (and this library's) default.
  kLazy = 0,
  /// Algorithm 4 lines 17-22 verbatim: push score updates to every
  /// co-occurring user the moment a set is covered. Same results
  /// (Theorem 3 applies to both), different CPU/memory profile.
  kEager = 1,
};

/// Read-only handle to the IRR structures of an index directory.
class IrrIndex {
 public:
  /// Opens an index directory with a fresh KeywordCache.
  static StatusOr<IrrIndex> Open(const std::string& dir,
                                 KeywordCacheOptions cache_options = {});

  /// Attaches to an existing cache (e.g. one shared with an RrIndex).
  static StatusOr<IrrIndex> Open(std::shared_ptr<KeywordCache> cache);

  /// Answers a KB-TIM query via incremental top-k aggregation.
  StatusOr<SeedSetResult> Query(
      const kbtim::Query& query,
      IrrQueryMode mode = IrrQueryMode::kLazy) const;

  const IndexMeta& meta() const { return cache_->meta(); }
  const std::string& dir() const { return cache_->dir(); }

  /// The warm-path cache backing this handle.
  const std::shared_ptr<KeywordCache>& cache() const { return cache_; }

 private:
  explicit IrrIndex(std::shared_ptr<KeywordCache> cache)
      : cache_(std::move(cache)) {}

  std::shared_ptr<KeywordCache> cache_;
};

}  // namespace kbtim

#endif  // KBTIM_INDEX_IRR_INDEX_H_

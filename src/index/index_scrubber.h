// Online integrity scrubber: paced background verification of checksummed
// (format v2) index files under live traffic, with auto-quarantine and
// single-topic rebuild on detection.
//
// Verify-on-read (KeywordCache) only protects blocks a query touches; a
// latent flip in a cold block sits undetected until some query finally
// reads it — possibly at the worst moment. The scrubber walks every
// topic's rr_/lists_/irr_ files with its OWN file handles and reads
// (never polluting the block cache or the LRU), checks every stored CRC,
// and on mismatch:
//   1. quarantines the topic's data files (atomic rename to
//      <file>.quarantine, isolating the bad bytes from all future opens),
//   2. invokes the configured rebuilder (IndexBuilder::RebuildTopic —
//      deterministic per-keyword seeding reproduces the original bytes,
//      published through FileWriter::CreateAtomic),
//   3. re-verifies the rebuilt files and invalidates the topic in the
//      cache, so the next query re-opens healed, golden-equal data —
//      no restart, no torn state.
//
// Politeness under load: each file-level verification unit runs on the
// cache-owned prefetch pool (sharing its concurrency bound with query
// prefetches rather than adding threads) and pace_ms of sleep separates
// units. Before touching a topic the scrubber consults the admit hook —
// wired to the serving layer's per-topic circuit breaker via the
// READ-ONLY state check — so it never races a failure domain that is
// already open (and never consumes a half-open probe).
//
// v1 (pre-checksum) directories have nothing to verify; every pass counts
// them in topics_skipped_unversioned and leaves them alone.
#ifndef KBTIM_INDEX_INDEX_SCRUBBER_H_
#define KBTIM_INDEX_INDEX_SCRUBBER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/statusor.h"
#include "index/keyword_cache.h"

namespace kbtim {

struct IndexScrubberOptions {
  /// Sleep between verification units (one unit = one file of one topic).
  /// 0 scrubs flat out — tests use that; production paces.
  uint32_t pace_ms = 10;

  /// Run verification units on the cache's prefetch pool when it exists
  /// (falls back inline when the pool is disabled).
  bool use_prefetch_pool = true;

  /// Quarantine + rebuild on detection. Off = detect-and-report only
  /// (ScrubTopic returns kCorruption, files stay in place).
  bool repair = true;

  /// Background mode (Start): passes to run before the thread exits;
  /// 0 = keep scrubbing until Stop().
  uint32_t max_rounds = 0;

  /// Background mode: idle sleep between full passes.
  uint32_t round_idle_ms = 200;
};

/// Monotonic counters; snapshot via stats().
struct IndexScrubberStats {
  uint64_t blocks_scrubbed = 0;    ///< CRC units verified (pages, partitions, headers).
  uint64_t bytes_scrubbed = 0;     ///< Bytes hashed.
  uint64_t crc_failures = 0;       ///< Mismatches detected.
  uint64_t topics_scrubbed = 0;    ///< Topics fully verified clean.
  uint64_t topics_skipped_breaker = 0;      ///< Breaker open — not touched.
  uint64_t topics_skipped_unversioned = 0;  ///< v1 files — nothing to verify.
  uint64_t quarantines = 0;        ///< Topics renamed aside pending rebuild.
  uint64_t rebuilds = 0;           ///< Successful single-topic rebuilds.
  uint64_t rebuild_failures = 0;   ///< Rebuilder errors (topic stays quarantined).
  uint64_t passes = 0;             ///< Full passes completed.
};

class IndexScrubber {
 public:
  /// Rebuilds one topic's files in place (IndexBuilder::RebuildTopic).
  using RebuildFn = std::function<Status(TopicId)>;
  /// Returns false when the topic must not be touched (breaker open).
  /// Must be read-only — QueryService::TopicHealthy, NOT Admit().
  using AdmitFn = std::function<bool(TopicId)>;

  /// The cache provides the meta, the directory path and the prefetch
  /// pool. The scrubber must be destroyed (or Stop()ped) before `cache`.
  IndexScrubber(std::shared_ptr<KeywordCache> cache,
                IndexScrubberOptions options = {});
  ~IndexScrubber();

  IndexScrubber(const IndexScrubber&) = delete;
  IndexScrubber& operator=(const IndexScrubber&) = delete;

  void SetRebuilder(RebuildFn fn) EXCLUDES(mu_);
  void SetAdmitFn(AdmitFn fn) EXCLUDES(mu_);

  /// Verifies every stored CRC of one topic's files. OK when clean,
  /// skipped, or detected-and-healed (quarantine + rebuild + re-verify
  /// succeeded); kCorruption when corruption was found and repair is
  /// disabled or failed.
  Status ScrubTopic(TopicId topic);

  /// One full pass over all topics. Returns the first non-OK topic
  /// status (after attempting the remaining topics).
  Status ScrubPass();

  /// Launches the background thread (idempotent, thread-safe: concurrent
  /// Start/Stop calls serialize on lifecycle_mu_).
  void Start() EXCLUDES(lifecycle_mu_);
  /// Stops and joins it (idempotent; also called by the destructor).
  void Stop() EXCLUDES(lifecycle_mu_);

  IndexScrubberStats stats() const EXCLUDES(mu_);

 private:
  /// Reads + CRC-checks one file, counting each verified unit. The
  /// returned status is kCorruption exactly when a stored CRC mismatches.
  Status VerifyRrFile(TopicId topic);
  Status VerifyListsFile(TopicId topic);
  Status VerifyIrrFile(TopicId topic);

  /// Runs `unit` on the prefetch pool when configured (waiting for it),
  /// inline otherwise, then paces.
  Status RunUnit(std::function<Status()> unit);

  /// Renames the topic's data files aside and runs the rebuilder.
  Status QuarantineAndRebuild(TopicId topic);

  /// One scrub unit: hash `data`, compare to the stored masked CRC,
  /// account blocks_scrubbed/bytes_scrubbed/crc_failures.
  Status CheckCrc(const char* data, size_t n, uint32_t stored_masked,
                  const char* what, const std::string& path);

  const std::shared_ptr<KeywordCache> cache_;
  const IndexScrubberOptions options_;

  mutable Mutex mu_;
  IndexScrubberStats stats_ GUARDED_BY(mu_);
  RebuildFn rebuild_ GUARDED_BY(mu_);
  AdmitFn admit_ GUARDED_BY(mu_);

  std::atomic<bool> stop_{false};

  /// Guards the background thread's lifecycle. Separate from mu_ because
  /// Stop() joins while holding it and the scrub thread takes mu_ for
  /// stats — joining under mu_ would deadlock.
  Mutex lifecycle_mu_;
  std::thread thread_ GUARDED_BY(lifecycle_mu_);
};

}  // namespace kbtim

#endif  // KBTIM_INDEX_INDEX_SCRUBBER_H_

// On-disk format shared by the RR and IRR indexes.
//
// An index directory contains:
//   index_meta.kbm   global metadata + per-topic θ_w / tf-mass / φ_w table
//   rr_<w>.dat       R_w: the θ_w RR sets in sampled order. Layout:
//                    header | (θ_w+1) u64 payload offsets | encoded sets.
//                    The offset directory lets a query fetch the first
//                    θ^Q·p_w sets with one contiguous read (Algorithm 2).
//   lists_<w>.dat    L_w: inverted lists vertex -> ascending RR ids.
//   irr_<w>.dat      IRR structures (Algorithm 3): IP first-occurrence map,
//                    partition directory, then per-partition IL^p (δ
//                    inverted lists, sorted by descending length) and IR^p
//                    (the RR sets first referenced by that partition).
//
// All integer payloads are delta-coded where sorted and passed through the
// codec selected at build time (raw = Table 4's "uncompressed", pfor =
// "compressed").
//
// Format versions. v1 (magics KBRW/KBLW/KBIW, meta version 1) has no
// checksums. v2 (magics KBR2/KBL2/KBI2, meta version 2) adds CRC32C
// integrity to every structure a reader touches, stored masked (see
// storage/crc32c.h):
//   rr_<w>.dat    header gains a page count + header CRC; the offset
//                 directory gets one CRC; the payload is covered by a
//                 table of per-4KiB-page CRCs so a prefix read of the
//                 first θ^Q_w sets verifies exactly the pages it touched.
//   lists_<w>.dat header gains a whole-payload CRC + header CRC (the file
//                 is always read in full).
//   irr_<w>.dat   header CRC, per-partition CRC in each directory entry,
//                 and a preamble CRC trailing the directory.
//   index_meta.kbm  version 2 appends per-topic rr_preamble (so the RR
//                 reader can fetch header+directory+CRC tables in one
//                 read) and a whole-file CRC.
// Readers accept both versions; v1 serves with checksums off (warn-once).
#ifndef KBTIM_INDEX_INDEX_FORMAT_H_
#define KBTIM_INDEX_INDEX_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "propagation/model.h"
#include "storage/pfor_codec.h"
#include "topics/query.h"
#include "topics/vocabulary.h"

namespace kbtim {

// ---- Format versions and on-disk constants ---------------------------------

inline constexpr uint32_t kIndexFormatV1 = 1;  ///< PR 1: no checksums.
inline constexpr uint32_t kIndexFormatV2 = 2;  ///< PR 7: CRC32C everywhere.
inline constexpr uint32_t kIndexFormatLatest = kIndexFormatV2;

inline constexpr char kRrMagicV1[4] = {'K', 'B', 'R', 'W'};
inline constexpr char kRrMagicV2[4] = {'K', 'B', 'R', '2'};
inline constexpr char kListsMagicV1[4] = {'K', 'B', 'L', 'W'};
inline constexpr char kListsMagicV2[4] = {'K', 'B', 'L', '2'};
inline constexpr char kIrrMagicV1[4] = {'K', 'B', 'I', 'W'};
inline constexpr char kIrrMagicV2[4] = {'K', 'B', 'I', '2'};

/// v1 headers: magic | topic u32 | count u64 | codec u8 (rr/lists);
/// the IRR header additionally carries num_partitions u64, delta u32 and
/// theta u64.
inline constexpr size_t kRrHeaderSizeV1 = 17;
inline constexpr size_t kListsHeaderSizeV1 = 17;
inline constexpr size_t kIrrHeaderSizeV1 = 37;

/// v2 headers: the v1 fields plus (rr) num_pages u64, plus a trailing
/// masked header CRC u32 on all three.
inline constexpr size_t kRrHeaderSizeV2 = 29;
inline constexpr size_t kListsHeaderSizeV2 = 25;
inline constexpr size_t kIrrHeaderSizeV2 = 41;

/// IRR partition directory entry sizes (v2 appends a partition CRC u32).
inline constexpr size_t kIrrDirEntrySizeV1 = 32;
inline constexpr size_t kIrrDirEntrySizeV2 = 36;

/// RR payload checksum granularity: one masked CRC per 4 KiB payload page
/// (the final page may be short and is CRC'd over its actual bytes).
inline constexpr uint64_t kRrCrcPageSize = 4096;

/// Which per-keyword sample-count bound the index was built with.
enum class ThetaBoundKind : uint8_t {
  /// Lemma 3's θ̂_w (denominator OPT^{w}_1) — conservative and large.
  kConservative = 0,
  /// Lemma 4's compact θ_w (denominator OPT^{w}_K) — the paper's default.
  kCompact = 1,
};

/// Returns "theta_hat" / "theta".
const char* ThetaBoundKindName(ThetaBoundKind kind);

/// Global index metadata.
struct IndexMeta {
  /// On-disk format version (kIndexFormatV1 / kIndexFormatV2). Builders
  /// write the latest by default; readers accept both and disable
  /// checksum verification for v1 directories.
  uint32_t format_version = kIndexFormatLatest;
  PropagationModel model = PropagationModel::kIndependentCascade;
  CodecKind codec = CodecKind::kPfor;
  ThetaBoundKind bound = ThetaBoundKind::kCompact;
  /// ε the index was built for.
  double epsilon = 0.5;
  /// K: the largest supported Q.k.
  uint32_t max_k = 100;
  /// δ: IRR partition size (users per partition).
  uint32_t partition_size = 100;
  uint32_t num_vertices = 0;
  uint32_t num_topics = 0;
  bool has_rr = false;
  bool has_irr = false;

  /// Per-topic bookkeeping needed at query time.
  struct TopicMeta {
    /// θ_w: number of RR sets stored for the keyword.
    uint64_t theta = 0;
    /// Σ_v tf_{w,v}.
    double tf_sum = 0.0;
    /// φ_w = idf_w · tf_sum (numerator of p_w).
    double phi = 0.0;
    /// The OPT lower bound used in the θ_w denominator (diagnostics).
    double opt_bound = 0.0;
    /// Byte length of irr_<w>.dat's preamble (header + IP map + partition
    /// directory [+ preamble CRC in v2]), so a query fetches it with a
    /// single read.
    uint64_t irr_preamble = 0;
    /// v2 only: byte length of rr_<w>.dat's preamble (header + offset
    /// directory + directory CRC + page-CRC table) == the payload start,
    /// so the first cold touch fetches the whole verified directory with
    /// a single read. 0 in v1 metas (and for empty topics).
    uint64_t rr_preamble = 0;
  };
  std::vector<TopicMeta> topics;
};

/// Serializes meta to `path`.
Status WriteIndexMeta(const IndexMeta& meta, const std::string& path);

/// Reads and validates meta.
StatusOr<IndexMeta> ReadIndexMeta(const std::string& path);

// ---- Query budgets ---------------------------------------------------------

/// Per-query RR-set budgets derived from index metadata (Eqn. 11):
/// θ^Q = min{θ_w / p_w} and θ^Q_w = min(θ_w, ⌊θ^Q · p_w⌋).
struct QueryBudget {
  uint64_t theta_q = 0;
  double phi_q = 0.0;
  /// (topic, θ^Q_w) per query keyword, in query order. Keywords with no
  /// index mass (p_w = 0) get budget 0.
  std::vector<std::pair<TopicId, uint64_t>> per_keyword;
};

/// Validates the query against the meta (topic range, 1 <= k <= K) and
/// computes the budgets. Fails if no query keyword has index mass.
StatusOr<QueryBudget> ComputeQueryBudget(const IndexMeta& meta,
                                         const Query& query);

// ---- File naming ----------------------------------------------------------

std::string MetaFileName(const std::string& dir);
std::string RrFileName(const std::string& dir, TopicId topic);
std::string ListsFileName(const std::string& dir, TopicId topic);
std::string IrrFileName(const std::string& dir, TopicId topic);

// ---- Per-partition directory entry of an irr_<w>.dat file ------------------

/// Fixed-size directory entry describing one IRR partition.
struct IrrPartitionInfo {
  /// Absolute file offset of the partition's encoded bytes.
  uint64_t offset = 0;
  /// Encoded byte length (IL^p followed by IR^p).
  uint64_t length = 0;
  /// Number of inverted lists (users) in IL^p.
  uint32_t num_users = 0;
  /// Number of RR sets in IR^p.
  uint32_t num_sets = 0;
  /// Longest inverted list in this partition (== kb bound before loading
  /// it, since partitions are sorted by descending list length).
  uint32_t max_list_len = 0;
  /// Shortest inverted list in this partition.
  uint32_t min_list_len = 0;
  /// v2 only: masked CRC32C of the partition's encoded bytes
  /// [offset, offset + length). 0 in v1 files.
  uint32_t crc = 0;
};

}  // namespace kbtim

#endif  // KBTIM_INDEX_INDEX_FORMAT_H_

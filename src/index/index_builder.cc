#include "index/index_builder.h"

#include <sys/stat.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <string_view>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "coverage/rr_collection.h"
#include "propagation/rr_sampler.h"
#include "sampling/theta_bounds.h"
#include "sampling/vertex_sampler.h"
#include "storage/block_file.h"
#include "storage/crc32c.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Delta + codec encoding of an ascending id list.
void EncodeIdList(std::vector<uint32_t> sorted, const IntCodec& codec,
                  std::string* out) {
  DeltaEncode(&sorted);
  codec.Encode(sorted, out);
}

struct KeywordArtifacts {
  IndexMeta::TopicMeta meta;
  uint64_t rr_bytes = 0;
  uint64_t lists_bytes = 0;
  uint64_t irr_bytes = 0;
  uint64_t total_set_items = 0;
};

/// Masked CRC of one payload page (the last page may be short).
uint32_t PageCrc(const std::string& payload, uint64_t page) {
  const uint64_t begin = page * kRrCrcPageSize;
  const uint64_t end =
      std::min<uint64_t>(payload.size(), begin + kRrCrcPageSize);
  return crc32c::Mask(crc32c::Value(payload.data() + begin, end - begin));
}

Status WriteRrFile(const std::string& path, TopicId topic,
                   const RrCollection& sets, CodecKind codec_kind,
                   uint32_t format_version, uint64_t* bytes_out,
                   uint64_t* preamble_out) {
  const auto codec = MakeCodec(codec_kind);
  const uint64_t count = sets.size();

  std::string payload;
  std::vector<uint64_t> offsets;
  offsets.reserve(count + 1);
  std::vector<uint32_t> members;
  for (uint64_t i = 0; i < count; ++i) {
    offsets.push_back(payload.size());  // relative; rebased below
    const auto set = sets.Set(static_cast<RrId>(i));
    members.assign(set.begin(), set.end());
    EncodeIdList(std::move(members), *codec, &payload);
    members.clear();
  }
  offsets.push_back(payload.size());

  const bool v2 = format_version >= kIndexFormatV2;
  const uint64_t num_pages =
      v2 ? (payload.size() + kRrCrcPageSize - 1) / kRrCrcPageSize : 0;
  const uint64_t dir_size = (count + 1) * sizeof(uint64_t);
  const uint64_t preamble =
      v2 ? kRrHeaderSizeV2 + dir_size + 4 + num_pages * 4
         : kRrHeaderSizeV1 + dir_size;
  for (uint64_t& off : offsets) off += preamble;

  std::string header;
  header.append(v2 ? kRrMagicV2 : kRrMagicV1, 4);
  PutFixed32(&header, topic);
  PutFixed64(&header, count);
  header.push_back(static_cast<char>(codec_kind));
  if (v2) {
    PutFixed64(&header, num_pages);
    PutFixed32(&header,
               crc32c::Mask(crc32c::Value(header.data(), header.size())));
  }

  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(header));
  const std::string_view dir_bytes{
      reinterpret_cast<const char*>(offsets.data()), dir_size};
  KBTIM_RETURN_IF_ERROR(writer->Append(dir_bytes));
  if (v2) {
    std::string crcs;
    PutFixed32(&crcs, crc32c::Mask(crc32c::Value(dir_bytes.data(),
                                                 dir_bytes.size())));
    for (uint64_t page = 0; page < num_pages; ++page) {
      PutFixed32(&crcs, PageCrc(payload, page));
    }
    KBTIM_RETURN_IF_ERROR(writer->Append(crcs));
  }
  KBTIM_RETURN_IF_ERROR(writer->Append(payload));
  *bytes_out = writer->offset();
  *preamble_out = v2 ? preamble : 0;
  return writer->Close();
}

Status WriteListsFile(const std::string& path, TopicId topic,
                      const InvertedRrIndex& inverted, CodecKind codec_kind,
                      uint32_t format_version, uint64_t* bytes_out) {
  const auto codec = MakeCodec(codec_kind);
  uint64_t num_entries = 0;
  for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
    if (inverted.ListLength(v) > 0) ++num_entries;
  }
  std::string payload;
  VertexId prev = 0;
  std::string tmp;
  for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
    const auto list = inverted.Sets(v);
    if (list.empty()) continue;
    PutVarint32(&payload, v - prev);
    prev = v;
    tmp.clear();
    EncodeIdList({list.begin(), list.end()}, *codec, &tmp);
    PutVarint64(&payload, tmp.size());
    payload += tmp;
  }
  const bool v2 = format_version >= kIndexFormatV2;
  std::string header;
  header.append(v2 ? kListsMagicV2 : kListsMagicV1, 4);
  PutFixed32(&header, topic);
  PutFixed64(&header, num_entries);
  header.push_back(static_cast<char>(codec_kind));
  if (v2) {
    // The file is always read whole, so one payload CRC suffices; the
    // header CRC also covers it.
    PutFixed32(&header,
               crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
    PutFixed32(&header,
               crc32c::Mask(crc32c::Value(header.data(), header.size())));
  }

  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(header));
  KBTIM_RETURN_IF_ERROR(writer->Append(payload));
  *bytes_out = writer->offset();
  return writer->Close();
}

Status WriteIrrFile(const std::string& path, TopicId topic,
                    const RrCollection& sets, const InvertedRrIndex& inverted,
                    uint32_t partition_size, CodecKind codec_kind,
                    uint32_t format_version, uint64_t* bytes_out,
                    uint64_t* preamble_out) {
  const auto codec = MakeCodec(codec_kind);
  const uint64_t theta = sets.size();

  // Users with non-empty lists, ordered by (list length desc, id asc) —
  // Algorithm 3 line 8.
  std::vector<VertexId> users;
  for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
    if (inverted.ListLength(v) > 0) users.push_back(v);
  }
  std::sort(users.begin(), users.end(), [&](VertexId a, VertexId b) {
    const uint64_t la = inverted.ListLength(a);
    const uint64_t lb = inverted.ListLength(b);
    return la != lb ? la > lb : a < b;
  });

  // IP map (vertex-id order for delta coding): first occurrence == the
  // smallest RR id in the vertex's list (lists are ascending).
  std::string ip_buf;
  {
    VertexId prev = 0;
    for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
      const auto list = inverted.Sets(v);
      if (list.empty()) continue;
      PutVarint32(&ip_buf, v - prev);
      prev = v;
      PutVarint32(&ip_buf, list.front());
    }
  }

  // Partitions.
  const uint32_t delta = std::max<uint32_t>(1, partition_size);
  const uint64_t num_partitions =
      users.empty() ? 0 : (users.size() + delta - 1) / delta;
  std::vector<IrrPartitionInfo> dir;
  dir.reserve(num_partitions);
  std::string partitions;
  std::vector<char> assigned(theta, 0);
  std::string tmp;
  for (uint64_t p = 0; p < num_partitions; ++p) {
    const size_t begin = p * delta;
    const size_t end = std::min(users.size(), begin + delta);
    IrrPartitionInfo info;
    info.num_users = static_cast<uint32_t>(end - begin);
    info.max_list_len =
        static_cast<uint32_t>(inverted.ListLength(users[begin]));
    info.min_list_len =
        static_cast<uint32_t>(inverted.ListLength(users[end - 1]));

    std::string il;
    std::vector<RrId> new_sets;
    for (size_t i = begin; i < end; ++i) {
      const VertexId u = users[i];
      const auto list = inverted.Sets(u);
      PutVarint32(&il, u);
      tmp.clear();
      EncodeIdList({list.begin(), list.end()}, *codec, &tmp);
      PutVarint64(&il, tmp.size());
      il += tmp;
      for (RrId rr : list) {
        if (!assigned[rr]) {
          assigned[rr] = 1;
          new_sets.push_back(rr);
        }
      }
    }
    std::sort(new_sets.begin(), new_sets.end());
    std::string ir;
    PutVarint32(&ir, static_cast<uint32_t>(new_sets.size()));
    RrId prev_rr = 0;
    for (RrId rr : new_sets) {
      PutVarint32(&ir, rr - prev_rr);
      prev_rr = rr;
      const auto members = sets.Set(rr);
      tmp.clear();
      EncodeIdList({members.begin(), members.end()}, *codec, &tmp);
      PutVarint64(&ir, tmp.size());
      ir += tmp;
    }
    info.num_sets = static_cast<uint32_t>(new_sets.size());
    info.length = il.size() + ir.size();
    info.offset = partitions.size();  // relative; rebased below
    dir.push_back(info);
    partitions += il;
    partitions += ir;
  }

  // Header: magic | topic | num_users | num_partitions | delta | codec |
  // theta (4+4+8+8+4+1+8 = 37 bytes); v2 appends a masked header CRC.
  const bool v2 = format_version >= kIndexFormatV2;
  std::string header;
  header.append(v2 ? kIrrMagicV2 : kIrrMagicV1, 4);
  PutFixed32(&header, topic);
  PutFixed64(&header, users.size());
  PutFixed64(&header, num_partitions);
  PutFixed32(&header, delta);
  header.push_back(static_cast<char>(codec_kind));
  PutFixed64(&header, theta);
  if (v2) {
    PutFixed32(&header,
               crc32c::Mask(crc32c::Value(header.data(), header.size())));
  }

  const size_t entry_size = v2 ? kIrrDirEntrySizeV2 : kIrrDirEntrySizeV1;
  // v2: the preamble ends with a masked CRC of everything before it.
  const uint64_t preamble = header.size() + ip_buf.size() +
                            dir.size() * entry_size + (v2 ? 4 : 0);
  std::string dir_buf;
  dir_buf.reserve(dir.size() * entry_size);
  for (auto& info : dir) {
    if (v2) {
      info.crc = crc32c::Mask(
          crc32c::Value(partitions.data() + info.offset, info.length));
    }
    info.offset += preamble;
    PutFixed64(&dir_buf, info.offset);
    PutFixed64(&dir_buf, info.length);
    PutFixed32(&dir_buf, info.num_users);
    PutFixed32(&dir_buf, info.num_sets);
    PutFixed32(&dir_buf, info.max_list_len);
    PutFixed32(&dir_buf, info.min_list_len);
    if (v2) PutFixed32(&dir_buf, info.crc);
  }

  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(header));
  KBTIM_RETURN_IF_ERROR(writer->Append(ip_buf));
  KBTIM_RETURN_IF_ERROR(writer->Append(dir_buf));
  if (v2) {
    uint32_t pre_crc = crc32c::Value(header.data(), header.size());
    pre_crc = crc32c::Extend(pre_crc, ip_buf.data(), ip_buf.size());
    pre_crc = crc32c::Extend(pre_crc, dir_buf.data(), dir_buf.size());
    std::string trailer;
    PutFixed32(&trailer, crc32c::Mask(pre_crc));
    KBTIM_RETURN_IF_ERROR(writer->Append(trailer));
  }
  KBTIM_RETURN_IF_ERROR(writer->Append(partitions));
  *bytes_out = writer->offset();
  *preamble_out = preamble;
  return writer->Close();
}

/// Samples keyword `w` and writes its files. Deterministic in (options,
/// graph, profiles): the RNG forks depend only on the seed and `w`, so a
/// later single-topic rebuild reproduces the exact bytes.
Status BuildOneKeyword(const Graph& graph, const TfIdfModel& tfidf,
                       const IndexBuildOptions& options,
                       const std::shared_ptr<const BucketedAdjacency>& adjacency,
                       const std::string& dir, TopicId w,
                       KeywordArtifacts* art) {
  const ProfileStore& profiles = tfidf.profiles();
  art->meta.tf_sum = profiles.TopicTfSum(w);
  art->meta.phi = tfidf.PhiTopic(w);
  if (art->meta.tf_sum <= 0.0) {
    return Status::OK();  // empty topic: θ_w = 0, no files
  }

  KBTIM_ASSIGN_OR_RETURN(auto roots,
                         WeightedVertexSampler::ForTopic(profiles, w));

  // OPT^{w}_K (compact bound) or OPT^{w}_1 (conservative bound).
  const uint32_t opt_k = options.bound == ThetaBoundKind::kCompact
                             ? std::min(options.max_k, graph.num_vertices())
                             : 1;
  // Floor: sum of the top-opt_k tf values of this topic.
  std::vector<double> tfs;
  {
    auto topic_tfs = profiles.TopicTfs(w);
    tfs.assign(topic_tfs.begin(), topic_tfs.end());
  }
  const size_t topk = std::min<size_t>(opt_k, tfs.size());
  std::partial_sort(tfs.begin(), tfs.begin() + topk, tfs.end(),
                    std::greater<>());
  double floor = 0.0;
  for (size_t i = 0; i < topk; ++i) floor += tfs[i];

  OptEstimateOptions oo = options.opt_estimate;
  oo.k = opt_k;
  oo.floor = floor;
  oo.seed = options.seed ^ (0xC0FFEEULL + w);
  auto sampler = MakeRrSampler(options.model, adjacency);
  KBTIM_ASSIGN_OR_RETURN(const double opt_bound,
                         EstimateOptLowerBound(graph, *sampler, roots, oo));
  art->meta.opt_bound = opt_bound;

  uint64_t theta = ThetaForKeyword(options.epsilon, art->meta.tf_sum,
                                   graph.num_vertices(), options.max_k,
                                   opt_bound);
  theta = std::max<uint64_t>(theta, 1);
  if (theta > options.max_theta_per_keyword) {
    KBTIM_LOG(Warning) << "keyword " << w << ": theta " << theta
                       << " clipped to " << options.max_theta_per_keyword;
    theta = options.max_theta_per_keyword;
  }
  art->meta.theta = theta;

  // Discriminative WRIS sampling: roots ~ ps(v, w).
  Rng rng = Rng(options.seed).Fork(2 * w + 1);
  RrCollection sets;
  sets.Reserve(theta, theta * 4);
  std::vector<VertexId> scratch;
  for (uint64_t i = 0; i < theta; ++i) {
    sampler->Sample(roots.Sample(rng), rng, &scratch);
    std::sort(scratch.begin(), scratch.end());
    sets.Add(scratch);
  }
  art->total_set_items = sets.total_items();

  InvertedRrIndex inverted(sets, graph.num_vertices());
  if (options.build_rr) {
    KBTIM_RETURN_IF_ERROR(WriteRrFile(RrFileName(dir, w), w, sets,
                                      options.codec, options.format_version,
                                      &art->rr_bytes,
                                      &art->meta.rr_preamble));
    KBTIM_RETURN_IF_ERROR(WriteListsFile(ListsFileName(dir, w), w, inverted,
                                         options.codec,
                                         options.format_version,
                                         &art->lists_bytes));
  }
  if (options.build_irr) {
    KBTIM_RETURN_IF_ERROR(
        WriteIrrFile(IrrFileName(dir, w), w, sets, inverted,
                     options.partition_size, options.codec,
                     options.format_version, &art->irr_bytes,
                     &art->meta.irr_preamble));
  }
  return Status::OK();
}

}  // namespace

IndexBuilder::IndexBuilder(const Graph& graph, const TfIdfModel& tfidf,
                           const std::vector<float>& in_edge_weights,
                           IndexBuildOptions options)
    : graph_(graph),
      tfidf_(tfidf),
      in_edge_weights_(in_edge_weights),
      options_(options) {}

StatusOr<IndexBuildReport> IndexBuilder::Build(const std::string& dir) {
  if (!options_.build_rr && !options_.build_irr) {
    return Status::InvalidArgument("nothing to build");
  }
  if (options_.epsilon <= 0.0 || options_.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine; file creation will verify

  WallTimer timer;
  const ProfileStore& profiles = tfidf_.profiles();
  const uint32_t num_topics = profiles.num_topics();
  std::vector<KeywordArtifacts> artifacts(num_topics);
  std::vector<Status> statuses(num_topics, Status::OK());

  // One bucketed reverse adjacency shared by every keyword task's sampler
  // (the per-keyword O(E) builds this replaces dominated small-topic
  // build times).
  const auto adjacency =
      BucketedAdjacency::BuildShared(graph_, in_edge_weights_);

  {
    ThreadPool pool(options_.num_threads);
    for (TopicId w = 0; w < num_topics; ++w) {
      pool.Submit([&, w] {
        statuses[w] = BuildOneKeyword(graph_, tfidf_, options_, adjacency,
                                      dir, w, &artifacts[w]);
      });
    }
    pool.Wait();
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  IndexMeta meta;
  meta.format_version = options_.format_version;
  meta.model = options_.model;
  meta.codec = options_.codec;
  meta.bound = options_.bound;
  meta.epsilon = options_.epsilon;
  meta.max_k = options_.max_k;
  meta.partition_size = options_.partition_size;
  meta.num_vertices = graph_.num_vertices();
  meta.num_topics = num_topics;
  meta.has_rr = options_.build_rr;
  meta.has_irr = options_.build_irr;
  meta.topics.reserve(num_topics);
  for (const auto& art : artifacts) meta.topics.push_back(art.meta);
  KBTIM_RETURN_IF_ERROR(WriteIndexMeta(meta, MetaFileName(dir)));

  IndexBuildReport report;
  report.theta_per_topic.reserve(num_topics);
  uint64_t total_items = 0;
  for (const auto& art : artifacts) {
    report.total_theta += art.meta.theta;
    report.rr_bytes += art.rr_bytes;
    report.lists_bytes += art.lists_bytes;
    report.irr_bytes += art.irr_bytes;
    report.theta_per_topic.push_back(art.meta.theta);
    total_items += art.total_set_items;
  }
  report.total_bytes =
      report.rr_bytes + report.lists_bytes + report.irr_bytes;
  report.mean_rr_set_size =
      report.total_theta == 0
          ? 0.0
          : static_cast<double>(total_items) /
                static_cast<double>(report.total_theta);
  report.seconds = timer.ElapsedSeconds();
  return report;
}

Status IndexBuilder::RebuildTopic(const std::string& dir, TopicId topic) {
  const uint32_t num_topics = tfidf_.profiles().num_topics();
  if (topic >= num_topics) {
    return Status::InvalidArgument("rebuild topic out of range");
  }
  const auto adjacency =
      BucketedAdjacency::BuildShared(graph_, in_edge_weights_);
  KeywordArtifacts art;
  KBTIM_RETURN_IF_ERROR(BuildOneKeyword(graph_, tfidf_, options_, adjacency,
                                        dir, topic, &art));
  // The rebuilt files must agree with the published meta, or queries would
  // read directory offsets that no longer match the bytes on disk. A
  // mismatch means the builder was configured differently from the
  // original build (options/seed drift) — surface it loudly.
  auto meta_or = ReadIndexMeta(MetaFileName(dir));
  if (meta_or.ok() && topic < meta_or->topics.size()) {
    const auto& want = meta_or->topics[topic];
    if (want.theta != art.meta.theta ||
        want.irr_preamble != art.meta.irr_preamble ||
        want.rr_preamble != art.meta.rr_preamble) {
      return Status::Internal(
          "topic rebuild diverged from index meta (theta " +
          std::to_string(want.theta) + " -> " +
          std::to_string(art.meta.theta) +
          "); builder options do not match the original build");
    }
  }
  return Status::OK();
}

}  // namespace kbtim

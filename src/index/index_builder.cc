#include "index/index_builder.h"

#include <sys/stat.h>

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "coverage/rr_collection.h"
#include "propagation/rr_sampler.h"
#include "sampling/theta_bounds.h"
#include "sampling/vertex_sampler.h"
#include "storage/block_file.h"
#include "storage/varint.h"

namespace kbtim {
namespace {

constexpr char kRrMagic[4] = {'K', 'B', 'R', 'W'};
constexpr char kListsMagic[4] = {'K', 'B', 'L', 'W'};
constexpr char kIrrMagic[4] = {'K', 'B', 'I', 'W'};

void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Delta + codec encoding of an ascending id list.
void EncodeIdList(std::vector<uint32_t> sorted, const IntCodec& codec,
                  std::string* out) {
  DeltaEncode(&sorted);
  codec.Encode(sorted, out);
}

struct KeywordArtifacts {
  IndexMeta::TopicMeta meta;
  uint64_t rr_bytes = 0;
  uint64_t lists_bytes = 0;
  uint64_t irr_bytes = 0;
  uint64_t total_set_items = 0;
};

Status WriteRrFile(const std::string& path, TopicId topic,
                   const RrCollection& sets, CodecKind codec_kind,
                   uint64_t* bytes_out) {
  const auto codec = MakeCodec(codec_kind);
  const uint64_t count = sets.size();
  const uint64_t header_size = 4 + 4 + 8 + 1;
  const uint64_t dir_size = (count + 1) * sizeof(uint64_t);

  std::string payload;
  std::vector<uint64_t> offsets;
  offsets.reserve(count + 1);
  std::vector<uint32_t> members;
  for (uint64_t i = 0; i < count; ++i) {
    offsets.push_back(header_size + dir_size + payload.size());
    const auto set = sets.Set(static_cast<RrId>(i));
    members.assign(set.begin(), set.end());
    EncodeIdList(std::move(members), *codec, &payload);
    members.clear();
  }
  offsets.push_back(header_size + dir_size + payload.size());

  std::string header;
  header.append(kRrMagic, 4);
  PutFixed32(&header, topic);
  PutFixed64(&header, count);
  header.push_back(static_cast<char>(codec_kind));

  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(header));
  KBTIM_RETURN_IF_ERROR(writer->Append(
      {reinterpret_cast<const char*>(offsets.data()),
       offsets.size() * sizeof(uint64_t)}));
  KBTIM_RETURN_IF_ERROR(writer->Append(payload));
  *bytes_out = writer->offset();
  return writer->Close();
}

Status WriteListsFile(const std::string& path, TopicId topic,
                      const InvertedRrIndex& inverted, CodecKind codec_kind,
                      uint64_t* bytes_out) {
  const auto codec = MakeCodec(codec_kind);
  uint64_t num_entries = 0;
  for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
    if (inverted.ListLength(v) > 0) ++num_entries;
  }
  std::string payload;
  VertexId prev = 0;
  std::string tmp;
  for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
    const auto list = inverted.Sets(v);
    if (list.empty()) continue;
    PutVarint32(&payload, v - prev);
    prev = v;
    tmp.clear();
    EncodeIdList({list.begin(), list.end()}, *codec, &tmp);
    PutVarint64(&payload, tmp.size());
    payload += tmp;
  }
  std::string header;
  header.append(kListsMagic, 4);
  PutFixed32(&header, topic);
  PutFixed64(&header, num_entries);
  header.push_back(static_cast<char>(codec_kind));

  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(header));
  KBTIM_RETURN_IF_ERROR(writer->Append(payload));
  *bytes_out = writer->offset();
  return writer->Close();
}

Status WriteIrrFile(const std::string& path, TopicId topic,
                    const RrCollection& sets, const InvertedRrIndex& inverted,
                    uint32_t partition_size, CodecKind codec_kind,
                    uint64_t* bytes_out, uint64_t* preamble_out) {
  const auto codec = MakeCodec(codec_kind);
  const uint64_t theta = sets.size();

  // Users with non-empty lists, ordered by (list length desc, id asc) —
  // Algorithm 3 line 8.
  std::vector<VertexId> users;
  for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
    if (inverted.ListLength(v) > 0) users.push_back(v);
  }
  std::sort(users.begin(), users.end(), [&](VertexId a, VertexId b) {
    const uint64_t la = inverted.ListLength(a);
    const uint64_t lb = inverted.ListLength(b);
    return la != lb ? la > lb : a < b;
  });

  // IP map (vertex-id order for delta coding): first occurrence == the
  // smallest RR id in the vertex's list (lists are ascending).
  std::string ip_buf;
  {
    VertexId prev = 0;
    for (VertexId v = 0; v < inverted.num_vertices(); ++v) {
      const auto list = inverted.Sets(v);
      if (list.empty()) continue;
      PutVarint32(&ip_buf, v - prev);
      prev = v;
      PutVarint32(&ip_buf, list.front());
    }
  }

  // Partitions.
  const uint32_t delta = std::max<uint32_t>(1, partition_size);
  const uint64_t num_partitions =
      users.empty() ? 0 : (users.size() + delta - 1) / delta;
  std::vector<IrrPartitionInfo> dir;
  dir.reserve(num_partitions);
  std::string partitions;
  std::vector<char> assigned(theta, 0);
  std::string tmp;
  for (uint64_t p = 0; p < num_partitions; ++p) {
    const size_t begin = p * delta;
    const size_t end = std::min(users.size(), begin + delta);
    IrrPartitionInfo info;
    info.num_users = static_cast<uint32_t>(end - begin);
    info.max_list_len =
        static_cast<uint32_t>(inverted.ListLength(users[begin]));
    info.min_list_len =
        static_cast<uint32_t>(inverted.ListLength(users[end - 1]));

    std::string il;
    std::vector<RrId> new_sets;
    for (size_t i = begin; i < end; ++i) {
      const VertexId u = users[i];
      const auto list = inverted.Sets(u);
      PutVarint32(&il, u);
      tmp.clear();
      EncodeIdList({list.begin(), list.end()}, *codec, &tmp);
      PutVarint64(&il, tmp.size());
      il += tmp;
      for (RrId rr : list) {
        if (!assigned[rr]) {
          assigned[rr] = 1;
          new_sets.push_back(rr);
        }
      }
    }
    std::sort(new_sets.begin(), new_sets.end());
    std::string ir;
    PutVarint32(&ir, static_cast<uint32_t>(new_sets.size()));
    RrId prev_rr = 0;
    for (RrId rr : new_sets) {
      PutVarint32(&ir, rr - prev_rr);
      prev_rr = rr;
      const auto members = sets.Set(rr);
      tmp.clear();
      EncodeIdList({members.begin(), members.end()}, *codec, &tmp);
      PutVarint64(&ir, tmp.size());
      ir += tmp;
    }
    info.num_sets = static_cast<uint32_t>(new_sets.size());
    info.length = il.size() + ir.size();
    info.offset = partitions.size();  // relative; rebased below
    dir.push_back(info);
    partitions += il;
    partitions += ir;
  }

  // Header: magic | topic | num_users | num_partitions | delta | codec |
  // theta (4+4+8+8+4+1+8 = 37 bytes).
  std::string header;
  header.append(kIrrMagic, 4);
  PutFixed32(&header, topic);
  PutFixed64(&header, users.size());
  PutFixed64(&header, num_partitions);
  PutFixed32(&header, delta);
  header.push_back(static_cast<char>(codec_kind));
  PutFixed64(&header, theta);

  const uint64_t preamble =
      header.size() + ip_buf.size() + dir.size() * 32;
  std::string dir_buf;
  dir_buf.reserve(dir.size() * 32);
  for (auto& info : dir) {
    info.offset += preamble;
    PutFixed64(&dir_buf, info.offset);
    PutFixed64(&dir_buf, info.length);
    PutFixed32(&dir_buf, info.num_users);
    PutFixed32(&dir_buf, info.num_sets);
    PutFixed32(&dir_buf, info.max_list_len);
    PutFixed32(&dir_buf, info.min_list_len);
  }

  KBTIM_ASSIGN_OR_RETURN(auto writer, FileWriter::CreateAtomic(path));
  KBTIM_RETURN_IF_ERROR(writer->Append(header));
  KBTIM_RETURN_IF_ERROR(writer->Append(ip_buf));
  KBTIM_RETURN_IF_ERROR(writer->Append(dir_buf));
  KBTIM_RETURN_IF_ERROR(writer->Append(partitions));
  *bytes_out = writer->offset();
  *preamble_out = preamble;
  return writer->Close();
}

}  // namespace

IndexBuilder::IndexBuilder(const Graph& graph, const TfIdfModel& tfidf,
                           const std::vector<float>& in_edge_weights,
                           IndexBuildOptions options)
    : graph_(graph),
      tfidf_(tfidf),
      in_edge_weights_(in_edge_weights),
      options_(options) {}

StatusOr<IndexBuildReport> IndexBuilder::Build(const std::string& dir) {
  if (!options_.build_rr && !options_.build_irr) {
    return Status::InvalidArgument("nothing to build");
  }
  if (options_.epsilon <= 0.0 || options_.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine; file creation will verify

  WallTimer timer;
  const ProfileStore& profiles = tfidf_.profiles();
  const uint32_t num_topics = profiles.num_topics();
  std::vector<KeywordArtifacts> artifacts(num_topics);
  std::vector<Status> statuses(num_topics, Status::OK());

  // One bucketed reverse adjacency shared by every keyword task's sampler
  // (the per-keyword O(E) builds this replaces dominated small-topic
  // build times).
  const auto adjacency =
      BucketedAdjacency::BuildShared(graph_, in_edge_weights_);

  auto build_keyword = [&](TopicId w) {
    KeywordArtifacts& art = artifacts[w];
    art.meta.tf_sum = profiles.TopicTfSum(w);
    art.meta.phi = tfidf_.PhiTopic(w);
    if (art.meta.tf_sum <= 0.0) return;  // empty topic: θ_w = 0, no files

    auto roots_or = WeightedVertexSampler::ForTopic(profiles, w);
    if (!roots_or.ok()) {
      statuses[w] = roots_or.status();
      return;
    }
    const WeightedVertexSampler& roots = *roots_or;

    // OPT^{w}_K (compact bound) or OPT^{w}_1 (conservative bound).
    const uint32_t opt_k =
        options_.bound == ThetaBoundKind::kCompact
            ? std::min(options_.max_k, graph_.num_vertices())
            : 1;
    // Floor: sum of the top-opt_k tf values of this topic.
    std::vector<double> tfs;
    {
      auto topic_tfs = profiles.TopicTfs(w);
      tfs.assign(topic_tfs.begin(), topic_tfs.end());
    }
    const size_t topk = std::min<size_t>(opt_k, tfs.size());
    std::partial_sort(tfs.begin(), tfs.begin() + topk, tfs.end(),
                      std::greater<>());
    double floor = 0.0;
    for (size_t i = 0; i < topk; ++i) floor += tfs[i];

    OptEstimateOptions oo = options_.opt_estimate;
    oo.k = opt_k;
    oo.floor = floor;
    oo.seed = options_.seed ^ (0xC0FFEEULL + w);
    auto sampler = MakeRrSampler(options_.model, adjacency);
    auto opt_or = EstimateOptLowerBound(graph_, *sampler, roots, oo);
    if (!opt_or.ok()) {
      statuses[w] = opt_or.status();
      return;
    }
    art.meta.opt_bound = *opt_or;

    uint64_t theta =
        ThetaForKeyword(options_.epsilon, art.meta.tf_sum,
                        graph_.num_vertices(), options_.max_k, *opt_or);
    theta = std::max<uint64_t>(theta, 1);
    if (theta > options_.max_theta_per_keyword) {
      KBTIM_LOG(Warning) << "keyword " << w << ": theta " << theta
                         << " clipped to "
                         << options_.max_theta_per_keyword;
      theta = options_.max_theta_per_keyword;
    }
    art.meta.theta = theta;

    // Discriminative WRIS sampling: roots ~ ps(v, w).
    Rng rng = Rng(options_.seed).Fork(2 * w + 1);
    RrCollection sets;
    sets.Reserve(theta, theta * 4);
    std::vector<VertexId> scratch;
    for (uint64_t i = 0; i < theta; ++i) {
      sampler->Sample(roots.Sample(rng), rng, &scratch);
      std::sort(scratch.begin(), scratch.end());
      sets.Add(scratch);
    }
    art.total_set_items = sets.total_items();

    InvertedRrIndex inverted(sets, graph_.num_vertices());
    if (options_.build_rr) {
      statuses[w] = WriteRrFile(RrFileName(dir, w), w, sets, options_.codec,
                                &art.rr_bytes);
      if (!statuses[w].ok()) return;
      statuses[w] = WriteListsFile(ListsFileName(dir, w), w, inverted,
                                   options_.codec, &art.lists_bytes);
      if (!statuses[w].ok()) return;
    }
    if (options_.build_irr) {
      statuses[w] = WriteIrrFile(IrrFileName(dir, w), w, sets, inverted,
                                 options_.partition_size, options_.codec,
                                 &art.irr_bytes, &art.meta.irr_preamble);
    }
  };

  {
    ThreadPool pool(options_.num_threads);
    for (TopicId w = 0; w < num_topics; ++w) {
      pool.Submit([&, w] { build_keyword(w); });
    }
    pool.Wait();
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  IndexMeta meta;
  meta.model = options_.model;
  meta.codec = options_.codec;
  meta.bound = options_.bound;
  meta.epsilon = options_.epsilon;
  meta.max_k = options_.max_k;
  meta.partition_size = options_.partition_size;
  meta.num_vertices = graph_.num_vertices();
  meta.num_topics = num_topics;
  meta.has_rr = options_.build_rr;
  meta.has_irr = options_.build_irr;
  meta.topics.reserve(num_topics);
  for (const auto& art : artifacts) meta.topics.push_back(art.meta);
  KBTIM_RETURN_IF_ERROR(WriteIndexMeta(meta, MetaFileName(dir)));

  IndexBuildReport report;
  report.theta_per_topic.reserve(num_topics);
  uint64_t total_items = 0;
  for (const auto& art : artifacts) {
    report.total_theta += art.meta.theta;
    report.rr_bytes += art.rr_bytes;
    report.lists_bytes += art.lists_bytes;
    report.irr_bytes += art.irr_bytes;
    report.theta_per_topic.push_back(art.meta.theta);
    total_items += art.total_set_items;
  }
  report.total_bytes =
      report.rr_bytes + report.lists_bytes + report.irr_bytes;
  report.mean_rr_set_size =
      report.total_theta == 0
          ? 0.0
          : static_cast<double>(total_items) /
                static_cast<double>(report.total_theta);
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace kbtim

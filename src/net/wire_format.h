// Length-prefixed binary framing for the KB-TIM network serving tier.
//
// Every message on a shard connection is one frame:
//
//   offset  size  field
//   0       4     magic "KBN1" (little-endian u32 0x314E424B)
//   4       1     MsgType
//   5       3     reserved (zero)
//   8       4     payload length n (little-endian)
//   12      4     masked CRC32C of payload bytes (storage/crc32c.h)
//   16      n     payload
//
// The CRC reuses the index format's masked-CRC32C convention, so a frame
// that crosses a flaky link gets the same integrity treatment as a block
// that crosses a flaky disk. A frame whose magic, length bound or CRC does
// not check out is a TRANSPORT failure: the peer cannot resynchronize a
// byte stream mid-frame, so readers surface kCorruption and the connection
// is closed (clients then treat it exactly like a dropped socket —
// reconnect, retry, or hedge; never a silently-wrong answer).
//
// Payload encoding is flat little-endian via WireWriter/WireReader:
// u8/u32/u64 as fixed-width, doubles as their 8-byte IEEE-754 bit pattern
// (byte-identical round trip — the golden-equality suites depend on it),
// strings and vectors as a u32/u64 count plus elements. Every reader
// bounds-checks and returns kCorruption on truncation; a decoder never
// reads past the frame.
#ifndef KBTIM_NET_WIRE_FORMAT_H_
#define KBTIM_NET_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "index/index_format.h"
#include "index/keyword_cache.h"
#include "sampling/solver_result.h"
#include "serving/service_request.h"
#include "topics/query.h"

namespace kbtim {
namespace net {

/// Frame magic ("KBN1" in little-endian byte order).
inline constexpr uint32_t kFrameMagic = 0x314E424Bu;

/// Fixed frame header size in bytes.
inline constexpr size_t kFrameHeaderSize = 16;

/// Upper bound on a frame payload. RR blocks for a whole keyword are the
/// largest payloads; 1 GiB is far above any index this system builds and
/// small enough to reject a desynchronized / hostile length field before
/// allocating.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

/// Message types carried in the frame header.
enum class MsgType : uint8_t {
  kMetaRequest = 1,    ///< -> shard: send me your IndexMeta.
  kMetaResponse = 2,   ///< <- shard: Status + IndexMeta.
  kQueryRequest = 3,   ///< -> shard: full solve (ServiceRequest).
  kQueryResponse = 4,  ///< <- shard: Status + SeedSetResult.
  kFetchRequest = 5,   ///< -> shard: per-keyword RR block fetch.
  kFetchResponse = 6,  ///< <- shard: Status + RrFetchResult blocks.
};

// ---- Flat little-endian primitives -----------------------------------------

/// Appends primitives to a growing byte string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void Double(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }
  template <typename T>
  void VecU32(const std::vector<T>& v) {
    static_assert(sizeof(T) == 4, "element must be 32-bit");
    U64(v.size());
    if (!v.empty()) AppendRaw(v.data(), v.size() * sizeof(T));
  }
  void VecU64(const std::vector<uint64_t>& v) {
    U64(v.size());
    if (!v.empty()) AppendRaw(v.data(), v.size() * sizeof(uint64_t));
  }
  void VecDouble(const std::vector<double>& v) {
    U64(v.size());
    for (double d : v) Double(d);
  }

 private:
  void AppendRaw(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  std::string* out_;
};

/// Reads primitives from a fixed byte span; every read bounds-checks.
class WireReader {
 public:
  WireReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& s) : data_(s.data()), size_(s.size()) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status Double(double* v);
  Status Str(std::string* s);
  template <typename T>
  Status VecU32(std::vector<T>* v) {
    static_assert(sizeof(T) == 4, "element must be 32-bit");
    uint64_t n = 0;
    KBTIM_RETURN_IF_ERROR(U64(&n));
    KBTIM_RETURN_IF_ERROR(CheckCount(n, sizeof(T)));
    v->resize(n);
    return ReadRaw(v->data(), n * sizeof(T));
  }
  Status VecU64(std::vector<uint64_t>* v);
  Status VecDouble(std::vector<double>* v);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }

 private:
  Status ReadRaw(void* out, size_t n);
  Status CheckCount(uint64_t n, size_t elem_size) const;

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---- Framing ---------------------------------------------------------------

/// Builds one complete frame (header + payload) ready to send.
std::string EncodeFrame(MsgType type, const std::string& payload);

/// Parsed frame header.
struct FrameHeader {
  MsgType type = MsgType::kMetaRequest;
  uint32_t payload_len = 0;
  uint32_t masked_crc = 0;
};

/// Validates the 16 header bytes (magic, type, length bound). kCorruption
/// on any mismatch — callers must close the connection.
StatusOr<FrameHeader> DecodeFrameHeader(const char* data, size_t size);

/// Verifies the payload against the header's masked CRC. kCorruption on
/// mismatch — callers must close the connection.
Status VerifyFramePayload(const FrameHeader& header, const std::string& payload);

// ---- Message payload codecs ------------------------------------------------

/// Status: code u8 + message. OK round-trips as code 0, empty message.
void EncodeStatus(const Status& status, WireWriter* w);
Status DecodeStatus(WireReader* r, Status* out);

/// IndexMeta with the full per-topic table (the router computes query
/// budgets locally from it, so every field ComputeQueryBudget touches must
/// survive the round trip bit-exactly).
std::string EncodeMetaResponse(const StatusOr<IndexMeta>& meta);
StatusOr<IndexMeta> DecodeMetaResponse(const std::string& payload);

/// Full solve request/response (ServiceRequest <-> SeedSetResult). The
/// response carries the result's answer fields plus the wire-relevant
/// stats (theta, rr_sets_loaded, io_reads, io_bytes, batch_size).
std::string EncodeQueryRequest(const ServiceRequest& request);
StatusOr<ServiceRequest> DecodeQueryRequest(const std::string& payload);
std::string EncodeQueryResponse(const StatusOr<SeedSetResult>& result);
StatusOr<SeedSetResult> DecodeQueryResponse(const std::string& payload);

/// RR block scatter-gather unit (RrFetchRequest <-> RrFetchResult).
std::string EncodeFetchRequest(const RrFetchRequest& request);
StatusOr<RrFetchRequest> DecodeFetchRequest(const std::string& payload);
std::string EncodeFetchResponse(const StatusOr<RrFetchResult>& result);
StatusOr<RrFetchResult> DecodeFetchResponse(const std::string& payload);

}  // namespace net
}  // namespace kbtim

#endif  // KBTIM_NET_WIRE_FORMAT_H_

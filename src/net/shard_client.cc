#include "net/shard_client.h"

#include <utility>

namespace kbtim {
namespace net {

StatusOr<std::string> ShardClient::RoundTripOnce(const std::string& frame,
                                                 MsgType expect) {
  if (!conn_.valid()) {
    KBTIM_ASSIGN_OR_RETURN(
        conn_, Socket::Connect(host_, port_, options_.connect_timeout_ms));
  }
  Status io = conn_.SendAll(frame.data(), frame.size(), options_.io_timeout_ms);
  if (io.ok()) {
    std::string header(kFrameHeaderSize, '\0');
    io = conn_.RecvAll(header.data(), header.size(), options_.io_timeout_ms);
    if (io.ok()) {
      StatusOr<FrameHeader> fh =
          DecodeFrameHeader(header.data(), header.size());
      if (fh.ok()) {
        std::string payload(fh->payload_len, '\0');
        io = conn_.RecvAll(payload.data(), payload.size(),
                           options_.io_timeout_ms);
        if (io.ok()) {
          Status crc = VerifyFramePayload(*fh, payload);
          if (crc.ok() && fh->type == expect) return payload;
          io = crc.ok() ? Status::Corruption("unexpected response type")
                        : std::move(crc);
        }
      } else {
        io = fh.status();
      }
    }
  }
  // Transport or framing failure: this connection's stream state is
  // unknown, so it cannot carry another request.
  conn_.Close();
  return io;
}

StatusOr<std::string> ShardClient::RoundTrip(const std::string& frame,
                                             MsgType expect,
                                             bool* transport_failed) {
  if (transport_failed != nullptr) *transport_failed = false;
  Status last = Status::OK();
  for (uint32_t attempt = 0; attempt <= options_.max_reconnects; ++attempt) {
    StatusOr<std::string> payload = RoundTripOnce(frame, expect);
    if (payload.ok()) return payload;
    last = payload.status();
  }
  // Normalize to kUnavailable: the router keys breaker verdicts and
  // hedging off "this shard is unreachable", not the flavor of socket
  // error the last attempt happened to hit.
  if (transport_failed != nullptr) *transport_failed = true;
  return Status::Unavailable("shard " + host_ + ":" + std::to_string(port_) +
                             " unreachable: " + last.message());
}

StatusOr<IndexMeta> ShardClient::FetchMeta(bool* transport_failed) {
  KBTIM_ASSIGN_OR_RETURN(std::string payload,
                         RoundTrip(EncodeFrame(MsgType::kMetaRequest, ""),
                                   MsgType::kMetaResponse, transport_failed));
  return DecodeMetaResponse(payload);
}

StatusOr<SeedSetResult> ShardClient::Query(const ServiceRequest& request,
                                           bool* transport_failed) {
  KBTIM_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(EncodeFrame(MsgType::kQueryRequest, EncodeQueryRequest(request)),
                MsgType::kQueryResponse, transport_failed));
  return DecodeQueryResponse(payload);
}

StatusOr<RrFetchResult> ShardClient::FetchRr(const RrFetchRequest& request,
                                             bool* transport_failed) {
  KBTIM_ASSIGN_OR_RETURN(
      std::string payload,
      RoundTrip(EncodeFrame(MsgType::kFetchRequest, EncodeFetchRequest(request)),
                MsgType::kFetchResponse, transport_failed));
  return DecodeFetchResponse(payload);
}

}  // namespace net
}  // namespace kbtim

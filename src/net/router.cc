#include "net/router.h"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <utility>

#include "index/rr_greedy.h"

namespace kbtim {
namespace net {
namespace {

// splitmix64 finalizer — the repo's standard stateless mixer (see
// fault_injector.cc, failure_domain.cc).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Rendezvous score of (topic, shard): each shard draws an independent
/// hash per keyword; the top-r draws are the keyword's replicas. Stable
/// under fleet resize — removing a shard remaps only its own keywords.
uint64_t RendezvousScore(TopicId topic, uint32_t shard) {
  return Mix64((static_cast<uint64_t>(topic) << 32) | (shard + 1));
}

}  // namespace

Router::Router(std::vector<ShardAddress> shards, RouterOptions options,
               IndexMeta meta)
    : shards_(std::move(shards)),
      options_(std::move(options)),
      meta_(std::move(meta)),
      breakers_(options_.breaker) {
  MutexLock lock(&mu_);
  idle_clients_.resize(shards_.size());
}

StatusOr<std::unique_ptr<Router>> Router::Create(
    std::vector<ShardAddress> shards, RouterOptions options) {
  if (shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  options.replication_factor = std::max<uint32_t>(
      1, std::min<uint32_t>(options.replication_factor,
                            static_cast<uint32_t>(shards.size())));
  // Any reachable shard can ship the meta — the fleet serves one index
  // directory (a cold standby shard is acceptable at construction time).
  Status last = Status::OK();
  for (const ShardAddress& addr : shards) {
    ShardClient client(addr.host, addr.port, options.client);
    StatusOr<IndexMeta> meta = client.FetchMeta();
    if (meta.ok()) {
      if (!meta->has_rr) {
        return Status::FailedPrecondition(
            "shard index has no RR structures (router gathers RR blocks)");
      }
      return std::unique_ptr<Router>(new Router(
          std::move(shards), std::move(options), std::move(*meta)));
    }
    last = meta.status();
  }
  return Status::Unavailable("no shard reachable for meta: " +
                             last.message());
}

std::vector<uint32_t> Router::ReplicasOf(TopicId topic) const {
  std::vector<uint32_t> order(shards_.size());
  for (uint32_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [topic](uint32_t a, uint32_t b) {
    const uint64_t sa = RendezvousScore(topic, a);
    const uint64_t sb = RendezvousScore(topic, b);
    return sa != sb ? sa > sb : a < b;
  });
  order.resize(options_.replication_factor);
  return order;
}

BreakerState Router::ShardState(uint32_t shard) const {
  return breakers_.state(static_cast<TopicId>(shard));
}

std::unique_ptr<ShardClient> Router::AcquireClient(uint32_t shard) {
  {
    MutexLock lock(&mu_);
    auto& idle = idle_clients_[shard];
    if (!idle.empty()) {
      std::unique_ptr<ShardClient> client = std::move(idle.back());
      idle.pop_back();
      return client;
    }
  }
  return std::make_unique<ShardClient>(shards_[shard].host,
                                       shards_[shard].port, options_.client);
}

void Router::ReleaseClient(uint32_t shard,
                           std::unique_ptr<ShardClient> client) {
  MutexLock lock(&mu_);
  idle_clients_[shard].push_back(std::move(client));
}

void Router::GatherBlocks(std::vector<TopicFetch>& work) {
  for (uint32_t round = 0;; ++round) {
    // Pick each unresolved keyword's next ADMITTED replica; breaker-open
    // replicas are consumed in O(1) — the fast shed, no timeout paid.
    std::unordered_map<uint32_t, std::vector<size_t>> groups;
    uint64_t sheds = 0;
    for (size_t i = 0; i < work.size(); ++i) {
      TopicFetch& tf = work[i];
      if (tf.block != nullptr) continue;
      while (tf.next_replica < tf.replicas.size()) {
        const uint32_t shard = tf.replicas[tf.next_replica];
        if (breakers_.Admit(static_cast<TopicId>(shard))) {
          groups[shard].push_back(i);
          break;
        }
        ++tf.next_replica;  // open breaker: this replica is spent
        ++sheds;
      }
    }
    if (sheds > 0) {
      MutexLock lock(&stats_mu_);
      counters_.breaker_sheds += sheds;
    }
    if (groups.empty()) return;  // everything gathered or exhausted

    {
      MutexLock lock(&stats_mu_);
      counters_.scatter_rpcs += groups.size();
      if (round > 0) counters_.hedged_rpcs += groups.size();
    }

    // One fetch RPC per shard, in parallel; each carries the per-attempt
    // wire deadline so a backlogged shard sheds it at dequeue instead of
    // serving a result the router has already given up on.
    struct GroupResult {
      uint32_t shard = 0;
      std::vector<size_t> indices;
      StatusOr<RrFetchResult> result{Status::Unavailable("unset")};
      bool transport_failed = false;
    };
    std::vector<std::future<GroupResult>> futures;
    futures.reserve(groups.size());
    for (auto& [shard, indices] : groups) {
      RrFetchRequest request;
      request.request_deadline_ms = options_.attempt_timeout_ms;
      for (size_t i : indices) {
        request.topics.push_back(work[i].topic);
        request.budgets.push_back(work[i].budget);
      }
      futures.push_back(std::async(
          std::launch::async,
          [this, shard = shard, indices = std::move(indices),
           request = std::move(request)]() mutable {
            GroupResult gr;
            gr.shard = shard;
            gr.indices = std::move(indices);
            std::unique_ptr<ShardClient> client = AcquireClient(shard);
            gr.result = client->FetchRr(request, &gr.transport_failed);
            ReleaseClient(shard, std::move(client));
            return gr;
          }));
    }

    for (std::future<GroupResult>& future : futures) {
      GroupResult gr = future.get();
      if (gr.result.ok()) {
        breakers_.RecordSuccess(static_cast<TopicId>(gr.shard));
        const RrFetchResult& res = *gr.result;
        for (size_t j = 0; j < gr.indices.size(); ++j) {
          TopicFetch& tf = work[gr.indices[j]];
          if (j < res.blocks.size() && res.blocks[j] != nullptr) {
            tf.block = res.blocks[j];
          } else {
            // Shard-side drop (its breaker or storage failed the topic):
            // the shard is alive, but THIS keyword needs another replica.
            ++tf.next_replica;
          }
        }
        continue;
      }
      if (gr.transport_failed) {
        // One breaker verdict per failed RPC: consecutive verdicts trip
        // the shard's domain open and future rounds shed in O(1).
        breakers_.RecordFailure(static_cast<TopicId>(gr.shard));
        MutexLock lock(&stats_mu_);
        ++counters_.transport_failures;
      }
      // Transport loss or an application-level refusal (queue full,
      // deadline): either way these keywords hedge to their next replica.
      for (size_t i : gr.indices) ++work[i].next_replica;
    }
    // Every unresolved keyword either gained a block or consumed a
    // replica this round, and replicas are finite: the loop terminates.
  }
}

StatusOr<SeedSetResult> Router::Query(const kbtim::Query& query) {
  {
    MutexLock lock(&stats_mu_);
    ++counters_.queries;
  }
  const auto fail = [this](Status status) -> StatusOr<SeedSetResult> {
    MutexLock lock(&stats_mu_);
    ++counters_.failed_queries;
    return status;
  };

  StatusOr<QueryBudget> budget = ComputeQueryBudget(meta_, query);
  if (!budget.ok()) return fail(budget.status());

  // Scatter: one gather entry per keyword with a nonzero budget (zero-
  // budget keywords carry no index mass — the in-process path skips
  // loading them too, which the byte-equality contract depends on).
  std::vector<TopicFetch> work;
  for (const auto& [topic, tw] : budget->per_keyword) {
    if (tw == 0) continue;
    TopicFetch tf;
    tf.topic = topic;
    tf.budget = tw;
    tf.replicas = ReplicasOf(topic);
    work.push_back(std::move(tf));
  }
  GatherBlocks(work);

  std::unordered_map<TopicId, std::shared_ptr<const RrKeywordBlock>> blocks;
  std::vector<TopicId> dropped;
  for (TopicFetch& tf : work) {
    if (tf.block != nullptr) {
      blocks.emplace(tf.topic, std::move(tf.block));
    } else {
      dropped.push_back(tf.topic);
    }
  }

  // Culprit-diff degradation: drop the unservable keywords, recompute the
  // budget over the survivors, and refetch any block the new (larger)
  // θ^Q outgrew. The keyword set strictly shrinks per pass, so this
  // terminates; the result is the SAME answer RrIndex::Query gives the
  // reduced query.
  kbtim::Query effective = query;
  QueryBudget effective_budget = std::move(*budget);
  while (!dropped.empty()) {
    std::vector<TopicId> reduced;
    for (TopicId t : effective.topics) {
      if (std::find(dropped.begin(), dropped.end(), t) == dropped.end()) {
        reduced.push_back(t);
      }
    }
    if (reduced.empty()) {
      return fail(Status::Unavailable(
          "every query keyword was dropped (no shard could serve them)"));
    }
    effective.topics = std::move(reduced);
    StatusOr<QueryBudget> recomputed = ComputeQueryBudget(meta_, effective);
    if (!recomputed.ok()) return fail(recomputed.status());
    effective_budget = std::move(*recomputed);

    std::vector<TopicFetch> refetch;
    for (const auto& [topic, tw] : effective_budget.per_keyword) {
      if (tw == 0) continue;
      auto it = blocks.find(topic);
      if (it != blocks.end() && it->second->loaded_budget >= tw) continue;
      TopicFetch tf;
      tf.topic = topic;
      tf.budget = tw;
      tf.replicas = ReplicasOf(topic);
      refetch.push_back(std::move(tf));
    }
    if (refetch.empty()) break;
    {
      MutexLock lock(&stats_mu_);
      ++counters_.refetch_rounds;
    }
    GatherBlocks(refetch);
    bool newly_dropped = false;
    for (TopicFetch& tf : refetch) {
      if (tf.block != nullptr) {
        blocks[tf.topic] = std::move(tf.block);
      } else {
        dropped.push_back(tf.topic);
        blocks.erase(tf.topic);
        newly_dropped = true;
      }
    }
    if (!newly_dropped) break;
  }

  SeedSetResult result = RunRrGreedy(effective, effective_budget, blocks,
                                     meta_.num_vertices);
  if (!dropped.empty()) {
    result.degraded = true;
    result.dropped_keywords = dropped;
  }
  {
    MutexLock lock(&stats_mu_);
    if (dropped.empty()) {
      ++counters_.full_answers;
    } else {
      ++counters_.degraded_answers;
      counters_.keywords_dropped += dropped.size();
    }
  }
  return result;
}

RouterStats Router::stats() const {
  RouterStats out;
  {
    MutexLock lock(&stats_mu_);
    out = counters_;
  }
  const FailureDomainStats breaker = breakers_.stats();
  out.breaker_opens = breaker.opens;
  out.breaker_probes = breaker.probes;
  out.breaker_closes = breaker.closes;
  out.breaker_rejections = breaker.rejections;
  return out;
}

}  // namespace net
}  // namespace kbtim

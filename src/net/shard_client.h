// ShardClient: one logical connection to a ShardServer with bounded
// timeouts and bounded reconnects.
//
// The client is a thin request/response pipe: it frames a message, sends
// it, and waits for the matching response frame. Failure semantics are
// what the router's breaker logic feeds on:
//
//   * Any socket-op failure (connect refused, send/recv timeout, peer
//     closed, frame CRC mismatch) is a TRANSPORT failure. The client
//     drops the connection, and — because every RPC here is idempotent
//     (meta reads, query solves, block fetches; shards mutate nothing) —
//     redials and resends up to max_reconnects times before surfacing
//     kUnavailable.
//   * A response frame that parses but carries a non-OK remote Status is
//     an APPLICATION error (admission drop, deadline, bad query...). It
//     is returned as-is, the connection stays up, and the router must NOT
//     count it against the shard's failure domain — a shard saying
//     "queue full" is alive.
//
// Not thread-safe: one conversation at a time per client. The router
// keeps one client per (shard, in-flight attempt).
#ifndef KBTIM_NET_SHARD_CLIENT_H_
#define KBTIM_NET_SHARD_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "index/index_format.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "sampling/solver_result.h"
#include "serving/service_request.h"

namespace kbtim {
namespace net {

struct ShardClientOptions {
  double connect_timeout_ms = 1000.0;
  /// Per-socket-op budget for request/response I/O. A full solve must
  /// finish within one op timeout once the response starts arriving;
  /// callers bound end-to-end time with request deadlines.
  double io_timeout_ms = 5000.0;
  /// Redials after a transport failure before giving up (the op that
  /// failed is resent — all shard RPCs are idempotent reads).
  uint32_t max_reconnects = 1;
};

class ShardClient {
 public:
  ShardClient(std::string host, uint16_t port, ShardClientOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// `transport_failed` (optional): set true when the RPC died in
  /// TRANSPORT (unreachable / torn frames after max_reconnects) and false
  /// when it completed — even with an application error. The router's
  /// breaker verdicts hang on this bit: a shard answering "queue full" is
  /// alive; a shard that cannot answer is the failure-domain signal.
  StatusOr<IndexMeta> FetchMeta(bool* transport_failed = nullptr);
  StatusOr<SeedSetResult> Query(const ServiceRequest& request,
                                bool* transport_failed = nullptr);
  StatusOr<RrFetchResult> FetchRr(const RrFetchRequest& request,
                                  bool* transport_failed = nullptr);

  /// Drops the connection (the next RPC redials). Tests use this to
  /// exercise the reconnect path explicitly.
  void Disconnect() { conn_.Close(); }

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  /// Sends `request` (already framed) and reads one response frame of
  /// type `expect`, redialing on transport failures per max_reconnects.
  StatusOr<std::string> RoundTrip(const std::string& frame, MsgType expect,
                                  bool* transport_failed);

  /// One attempt over the current connection (dials if needed).
  StatusOr<std::string> RoundTripOnce(const std::string& frame,
                                      MsgType expect);

  std::string host_;
  uint16_t port_;
  ShardClientOptions options_;
  Socket conn_;
};

}  // namespace net
}  // namespace kbtim

#endif  // KBTIM_NET_SHARD_CLIENT_H_

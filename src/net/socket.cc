#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "storage/fault_injector.h"

namespace kbtim {
namespace net {
namespace {

Status Errno(const std::string& what, const std::string& peer) {
  return Status::IOError(what + " " + peer + ": " + ::strerror(errno));
}

/// Consults the armed injector for one socket op. Returns non-OK when the
/// op must fail; applies kLatency sleeps inline.
Status ConsultFault(FaultOp op, const std::string& peer, size_t n) {
  if (!FaultInjector::Enabled()) return Status::OK();
  FaultInjector& injector = FaultInjector::Instance();
  const FaultDecision decision = injector.Consult(op, peer, n);
  if (decision.sleep_ms > 0.0) injector.ApplyLatency(decision);
  // kBitFlip is a storage concept; on the wire the frame CRC turns any
  // corruption into a detected transport failure, so socket rules should
  // use kIOError/kShortRead/kLatency. A flip decision degrades to success.
  return decision.status;
}

Status WaitWritable(int fd, double timeout_ms, const std::string& peer,
                    const char* what) {
  struct pollfd pfd = {fd, POLLOUT, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc < 0) return Errno(what, peer);
  if (rc == 0) {
    return Status::IOError(std::string(what) + " timeout " + peer);
  }
  return Status::OK();
}

Status WaitReadable(int fd, double timeout_ms, const std::string& peer,
                    const char* what) {
  struct pollfd pfd = {fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc < 0) return Errno(what, peer);
  if (rc == 0) {
    return Status::IOError(std::string(what) + " timeout " + peer);
  }
  return Status::OK();
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), peer_(std::move(other.peer_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    peer_ = std::move(other.peer_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::Adopt(int fd, std::string peer) {
  Socket s;
  s.fd_ = fd;
  s.peer_ = std::move(peer);
  return s;
}

StatusOr<Socket> Socket::Connect(const std::string& host, uint16_t port,
                                 double timeout_ms) {
  const std::string peer = host + ":" + std::to_string(port);
  KBTIM_RETURN_IF_ERROR(ConsultFault(FaultOp::kConnect, peer, 0));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket", peer);
  Socket s = Adopt(fd, peer);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }

  // Non-blocking connect + poll bounds the handshake; the fd then goes
  // back to blocking mode (per-op timeouts come from poll, not O_NONBLOCK).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return Errno("connect", peer);
  if (rc != 0) {
    KBTIM_RETURN_IF_ERROR(WaitWritable(fd, timeout_ms, peer, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect", peer);
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Status Socket::SendAll(const void* data, size_t n, double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("send on closed socket");
  KBTIM_RETURN_IF_ERROR(ConsultFault(FaultOp::kNetWrite, peer_, n));
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    KBTIM_RETURN_IF_ERROR(WaitWritable(fd_, timeout_ms, peer_, "send"));
    // MSG_NOSIGNAL: a peer that died mid-send must surface EPIPE, not
    // SIGPIPE the whole process (the chaos bench kills shards mid-burst).
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("send", peer_);
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* out, size_t n, double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed socket");
  KBTIM_RETURN_IF_ERROR(ConsultFault(FaultOp::kNetRead, peer_, n));
  char* p = static_cast<char*>(out);
  size_t got = 0;
  while (got < n) {
    KBTIM_RETURN_IF_ERROR(WaitReadable(fd_, timeout_ms, peer_, "recv"));
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv", peer_);
    }
    if (rc == 0) {
      return Status::IOError("peer closed mid-message " + peer_);
    }
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

StatusOr<bool> Socket::PollReadable(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("poll on closed socket");
  struct pollfd pfd = {fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc < 0) return Errno("poll", peer_);
  return rc > 0;
}

ServerSocket::ServerSocket(ServerSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

ServerSocket& ServerSocket::operator=(ServerSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void ServerSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<ServerSocket> ServerSocket::Listen(uint16_t port) {
  const std::string label = "127.0.0.1:" + std::to_string(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket", label);
  ServerSocket s;
  s.fd_ = fd;

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind", label);
  }
  if (::listen(fd, 64) != 0) return Errno("listen", label);

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname", label);
  }
  s.port_ = ntohs(addr.sin_port);
  return s;
}

StatusOr<Socket> ServerSocket::Accept(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("accept on closed socket");
  struct pollfd pfd = {fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc < 0) return Errno("accept poll", "listener");
  if (rc == 0) return Status::DeadlineExceeded("no connection within timeout");

  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  const int conn =
      ::accept(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  if (conn < 0) return Errno("accept", "listener");
  char buf[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket::Adopt(
      conn, std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port)));
}

}  // namespace net
}  // namespace kbtim

// Minimal RAII TCP sockets for the serving tier: blocking semantics with
// explicit timeouts (poll-based), whole-message SendAll/RecvAll, and
// fault-injection hooks on every socket op.
//
// Fault injection: when the process-global FaultInjector is armed, each
// logical op — Connect, SendAll, RecvAll — consults it once with the
// socket's peer label "host:port" as the path, under FaultOp::kConnect /
// kNetWrite / kNetRead. kIOError and kShortRead fail the op (the fd is
// left in an undefined state and callers must close/reconnect, exactly as
// with a real peer crash); kLatency sleeps before the op. That lets the
// chaos suites drive "connect refused", "read timeout", "torn response"
// through the SAME deterministic plan machinery the storage layer uses.
//
// These sockets are intentionally not a general networking library: one
// blocking request/response conversation per connection, no TLS, IPv4
// loopback-first (the serving tier fronts co-located shard processes).
#ifndef KBTIM_NET_SOCKET_H_
#define KBTIM_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"

namespace kbtim {
namespace net {

/// One connected TCP stream. Movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port with a bounded three-way handshake. kIOError
  /// on refusal/timeout (transient from the caller's perspective).
  static StatusOr<Socket> Connect(const std::string& host, uint16_t port,
                                  double timeout_ms);

  /// Writes all n bytes or fails. A peer that stops draining past
  /// timeout_ms surfaces kIOError ("send timeout").
  Status SendAll(const void* data, size_t n, double timeout_ms);

  /// Reads exactly n bytes or fails. EOF mid-message is kIOError ("peer
  /// closed"), a stall past timeout_ms is kIOError ("recv timeout").
  Status RecvAll(void* out, size_t n, double timeout_ms);

  /// True when a recv would not block (data or EOF pending). Lets a
  /// server handler interleave short waits with its stop-flag check
  /// instead of parking a full io timeout on a quiet connection.
  StatusOr<bool> PollReadable(double timeout_ms);

  void Close();
  bool valid() const { return fd_ >= 0; }

  /// "host:port" — the fault-injection path and log label.
  const std::string& peer() const { return peer_; }

  /// Adopts an already-connected fd (server accept path).
  static Socket Adopt(int fd, std::string peer);

 private:
  int fd_ = -1;
  std::string peer_;
};

/// A listening TCP socket. Port 0 binds a kernel-assigned port; port()
/// reports the actual one (tests and the bench harness rely on this).
class ServerSocket {
 public:
  ServerSocket() = default;
  ~ServerSocket() { Close(); }
  ServerSocket(ServerSocket&& other) noexcept;
  ServerSocket& operator=(ServerSocket&& other) noexcept;
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  /// Binds and listens on 127.0.0.1:port (SO_REUSEADDR set).
  static StatusOr<ServerSocket> Listen(uint16_t port);

  /// Waits up to timeout_ms for a connection. kDeadlineExceeded when none
  /// arrives (the accept loop uses this to poll its stop flag).
  StatusOr<Socket> Accept(double timeout_ms);

  void Close();
  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace kbtim

#endif  // KBTIM_NET_SOCKET_H_

#include "net/shard_server.h"

#include <utility>

#include "common/logging.h"
#include "net/wire_format.h"

namespace kbtim {
namespace net {

StatusOr<std::unique_ptr<ShardServer>> ShardServer::Start(
    const std::string& dir, ShardServerOptions options) {
  KBTIM_ASSIGN_OR_RETURN(std::unique_ptr<QueryService> service,
                         QueryService::Create(dir, options.service));
  KBTIM_ASSIGN_OR_RETURN(ServerSocket listener,
                         ServerSocket::Listen(options.port));
  return std::unique_ptr<ShardServer>(new ShardServer(
      std::move(options), std::move(listener), std::move(service)));
}

ShardServer::ShardServer(ShardServerOptions options, ServerSocket listener,
                         std::unique_ptr<QueryService> service)
    : options_(std::move(options)),
      listener_(std::move(listener)),
      service_(std::move(service)) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

ShardServer::~ShardServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    MutexLock lock(&conn_mu_);
    handlers.swap(conn_threads_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  // QueryService teardown (fail queued, finish in-flight) happens in
  // service_'s destructor after every handler released its futures.
}

void ShardServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    StatusOr<Socket> conn = listener_.Accept(options_.accept_poll_ms);
    if (!conn.ok()) continue;  // timeout poll or transient accept error
    MutexLock lock(&conn_mu_);
    if (stop_.load(std::memory_order_relaxed)) break;
    conn_threads_.emplace_back(
        [this, c = std::make_shared<Socket>(std::move(*conn))]() mutable {
          ServeConnection(std::move(*c));
        });
  }
}

void ShardServer::ServeConnection(Socket conn) {
  std::string header(kFrameHeaderSize, '\0');
  while (!stop_.load(std::memory_order_relaxed)) {
    // Short readable-polls between stop checks: a quiet connection must
    // not pin this handler past ~accept_poll_ms at shutdown.
    StatusOr<bool> readable = conn.PollReadable(options_.accept_poll_ms);
    if (!readable.ok()) return;
    if (!*readable) continue;
    if (!conn.RecvAll(header.data(), header.size(), options_.io_timeout_ms)
             .ok()) {
      return;
    }
    StatusOr<FrameHeader> fh = DecodeFrameHeader(header.data(), header.size());
    if (!fh.ok()) return;  // desynchronized stream: close
    std::string payload(fh->payload_len, '\0');
    if (!conn.RecvAll(payload.data(), payload.size(), options_.io_timeout_ms)
             .ok()) {
      return;
    }
    if (!VerifyFramePayload(*fh, payload).ok()) return;

    StatusOr<std::string> response = HandleFrame(fh->type, payload);
    if (!response.ok()) return;
    if (!conn.SendAll(response->data(), response->size(),
                      options_.io_timeout_ms)
             .ok()) {
      return;
    }
  }
}

StatusOr<std::string> ShardServer::HandleFrame(MsgType type,
                                              const std::string& payload) {
  switch (type) {
    case MsgType::kMetaRequest:
      return EncodeFrame(MsgType::kMetaResponse,
                         EncodeMetaResponse(service_->meta()));
    case MsgType::kQueryRequest: {
      StatusOr<ServiceRequest> request = DecodeQueryRequest(payload);
      if (!request.ok()) return request.status();  // parse error: close
      // Execute on the service's worker pool: admission control, lanes,
      // deadlines and failure domains all apply as in-process.
      return EncodeFrame(MsgType::kQueryResponse,
                         EncodeQueryResponse(service_->Execute(*request)));
    }
    case MsgType::kFetchRequest: {
      StatusOr<RrFetchRequest> request = DecodeFetchRequest(payload);
      if (!request.ok()) return request.status();
      return EncodeFrame(
          MsgType::kFetchResponse,
          EncodeFetchResponse(service_->ExecuteFetch(std::move(*request))));
    }
    default:
      // Response types arriving on the server side mean the peer lost
      // frame sync; close rather than guess.
      return Status::Corruption("unexpected frame type on server");
  }
}

}  // namespace net
}  // namespace kbtim

// ShardServer: one QueryService exposed over the framed TCP protocol.
//
// A shard process opens ONE index directory and serves three RPCs on a
// loopback listener (wire_format.h): kMetaRequest (its IndexMeta, so a
// router can compute query budgets locally), kQueryRequest (a full solve
// through QueryService::Submit, deadlines and admission control included)
// and kFetchRequest (raw per-keyword RR blocks — the scatter-gather unit
// the router runs the shared greedy over).
//
// Threading: one accept-loop thread polls the listener with a short
// timeout so Stop() is prompt; each accepted connection gets a handler
// thread that serves frames sequentially until the peer closes or a frame
// fails to parse (parse failures close the connection — the stream cannot
// be resynchronized, and the client treats it as a transport failure).
// Request execution happens on the QueryService's own worker pool, so a
// slow solve never blocks frame handling for OTHER connections, and the
// service's lane scheduler / admission control govern multi-client
// fairness exactly as in-process.
//
// Every shard process opens the FULL index directory: keyword ownership
// is the router's cache-affinity contract, not a data-placement one, so a
// hedged fetch to a non-owner shard is always answerable (colder, never
// wrong) and a dead shard degrades availability, not correctness.
#ifndef KBTIM_NET_SHARD_SERVER_H_
#define KBTIM_NET_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "serving/query_service.h"

namespace kbtim {
namespace net {

struct ShardServerOptions {
  /// Listen port; 0 binds a kernel-assigned port (see port()).
  uint16_t port = 0;

  /// Accept-loop poll granularity (Stop() latency bound).
  double accept_poll_ms = 50.0;

  /// Per-socket-op timeout for request/response I/O with a client.
  double io_timeout_ms = 5000.0;

  /// The wrapped service's configuration.
  QueryServiceOptions service;
};

/// One serving shard: an index directory behind a TCP listener.
class ShardServer {
 public:
  /// Opens `dir`, starts the QueryService and the accept loop.
  static StatusOr<std::unique_ptr<ShardServer>> Start(
      const std::string& dir, ShardServerOptions options = {});

  /// Stops accepting, joins connection handlers, destroys the service
  /// (queued requests fail Unavailable, in-flight ones finish).
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The bound port (== options.port unless that was 0).
  uint16_t port() const { return listener_.port(); }

  /// The wrapped service — tests read its stats() through this.
  QueryService& service() { return *service_; }

 private:
  ShardServer(ShardServerOptions options, ServerSocket listener,
              std::unique_ptr<QueryService> service);

  void AcceptLoop();
  void ServeConnection(Socket conn);

  /// Decodes + executes one request frame, returns the response frame.
  /// Non-OK only for transport/parse errors that must close the socket.
  StatusOr<std::string> HandleFrame(MsgType type, const std::string& payload);

  const ShardServerOptions options_;
  ServerSocket listener_;
  std::unique_ptr<QueryService> service_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  Mutex conn_mu_;
  std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mu_);
};

}  // namespace net
}  // namespace kbtim

#endif  // KBTIM_NET_SHARD_SERVER_H_

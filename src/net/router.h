// Router: the scatter-gather front of the sharded serving tier.
//
// Keywords are consistent-hashed across N shard processes (rendezvous /
// highest-random-weight hashing, so adding or removing a shard remaps
// only that shard's keywords). A multi-keyword query fans out one
// RR-block fetch per involved shard, gathers the per-keyword blocks, and
// runs the SAME greedy the RR index runs in-process (index/rr_greedy.h)
// over the gathered blocks — which is why a healthy fleet returns answers
// BYTE-IDENTICAL to RrIndex::Query on one process, for any shard count
// (the router computes query budgets itself from the shards' IndexMeta;
// blocks are loaded at exactly those budgets; the greedy is shared code).
//
// Failure model (each mechanism maps to a RouterStats counter):
//
//   * Per-shard failure domains: one circuit breaker per shard
//     (serving/failure_domain.h keyed by shard index), consulted BEFORE
//     every fan-out. A shard that ate `failure_threshold` consecutive
//     transport failures is open: requests shed in O(1)
//     (breaker_sheds) instead of waiting out a connect timeout, and
//     half-open probes re-admit it after backoff — one probe cycle after
//     a killed shard restarts, the router is whole again.
//   * Per-attempt deadlines: every fetch RPC carries attempt_timeout_ms
//     as its wire deadline (the shard sheds expired work at dequeue) and
//     is bounded client-side by connect/io timeouts — a dead shard costs
//     one bounded attempt, never a hang.
//   * Hedged retry: when a fetch fails in transport (transport_failures,
//     breaker RecordFailure), each affected keyword is re-fetched once
//     from its next admitted replica (hedged_rpcs). replication_factor
//     replicas bound the rounds; r=1 means no hedge target exists and the
//     keyword degrades immediately.
//   * Culprit-diff degradation: keywords that no replica could serve are
//     dropped, the budget is recomputed over the survivors (refetching
//     any block the new budget outgrew — the set strictly shrinks, so
//     this terminates), and the answer comes back degraded=true +
//     dropped_keywords (degraded_answers, keywords_dropped) — equal to
//     RrIndex::Query on the reduced query. All keywords lost =>
//     kUnavailable. Never a hang, never a silently-wrong full answer.
#ifndef KBTIM_NET_ROUTER_H_
#define KBTIM_NET_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "index/index_format.h"
#include "net/shard_client.h"
#include "sampling/solver_result.h"
#include "serving/failure_domain.h"
#include "topics/query.h"

namespace kbtim {
namespace net {

/// One shard endpoint.
struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// Replicas per keyword (rendezvous top-r shards). 1 = no hedge target:
  /// an unreachable owner degrades the keyword. >= 2 enables the hedged
  /// retry. Clamped to the fleet size.
  uint32_t replication_factor = 1;

  /// Wire deadline of each fetch attempt (request_deadline_ms on the
  /// RPC); also the shard-side queue budget for the attempt.
  double attempt_timeout_ms = 2000.0;

  /// Per-shard circuit breakers (keyed by shard index).
  FailureDomainOptions breaker;

  /// Transport timeouts / reconnect budget of the per-shard clients.
  ShardClientOptions client;
};

/// Router observability; every failure-model mechanism has a counter.
struct RouterStats {
  uint64_t queries = 0;
  uint64_t full_answers = 0;      ///< OK, no keyword dropped.
  uint64_t degraded_answers = 0;  ///< OK with dropped_keywords.
  uint64_t failed_queries = 0;    ///< Non-OK to the caller.

  uint64_t scatter_rpcs = 0;       ///< Fetch RPCs issued (incl. hedges).
  uint64_t hedged_rpcs = 0;        ///< Re-fetch rounds after a failure.
  uint64_t transport_failures = 0; ///< RPCs lost to transport errors.
  uint64_t breaker_sheds = 0;      ///< Keyword-fetches skipped, breaker open.
  uint64_t keywords_dropped = 0;   ///< Keywords degraded out of answers.
  uint64_t refetch_rounds = 0;     ///< Budget-recompute refetch passes.

  /// Per-shard breaker roll-up (FailureDomainTable::stats()).
  uint64_t breaker_opens = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_closes = 0;
  uint64_t breaker_rejections = 0;
};

/// Scatter-gather query front over a shard fleet. Thread-safe.
class Router {
 public:
  /// Fetches IndexMeta from the first reachable shard (all shards serve
  /// the same directory; meta equality across them is the deployment's
  /// contract, spot-enforced by tests).
  static StatusOr<std::unique_ptr<Router>> Create(
      std::vector<ShardAddress> shards, RouterOptions options = {});

  /// Scatter-gather solve; see the file comment for failure semantics.
  StatusOr<SeedSetResult> Query(const kbtim::Query& query) EXCLUDES(mu_);

  RouterStats stats() const EXCLUDES(stats_mu_);

  const IndexMeta& meta() const { return meta_; }
  size_t num_shards() const { return shards_.size(); }

  /// Rendezvous replica list of `topic`, best score first, size
  /// replication_factor — exposed so tests can aim faults at the owner.
  std::vector<uint32_t> ReplicasOf(TopicId topic) const;

  /// Current breaker state of one shard (tests: assert open after a
  /// kill, closed after recovery).
  BreakerState ShardState(uint32_t shard) const;

 private:
  /// One keyword's gather state across fetch rounds.
  struct TopicFetch {
    TopicId topic = 0;
    uint64_t budget = 0;
    std::shared_ptr<const RrKeywordBlock> block;  // null until gathered
    std::vector<uint32_t> replicas;               // rendezvous order
    uint32_t next_replica = 0;  ///< Replicas consumed (tried or shed).
  };

  Router(std::vector<ShardAddress> shards, RouterOptions options,
         IndexMeta meta);

  /// Runs fetch rounds over `work` until every entry has a block or has
  /// exhausted its admitted replicas. Entries left blockless are the
  /// dropped keywords.
  void GatherBlocks(std::vector<TopicFetch>& work);

  /// Pooled client checkout (clients are single-conversation; concurrent
  /// queries each borrow their own).
  std::unique_ptr<ShardClient> AcquireClient(uint32_t shard) EXCLUDES(mu_);
  void ReleaseClient(uint32_t shard, std::unique_ptr<ShardClient> client)
      EXCLUDES(mu_);

  const std::vector<ShardAddress> shards_;
  const RouterOptions options_;
  const IndexMeta meta_;

  /// Per-shard failure domains (TopicId == shard index).
  FailureDomainTable breakers_;

  mutable Mutex mu_;
  /// Idle connection pool per shard.
  std::vector<std::vector<std::unique_ptr<ShardClient>>> idle_clients_
      GUARDED_BY(mu_);

  mutable Mutex stats_mu_;
  RouterStats counters_ GUARDED_BY(stats_mu_);
};

}  // namespace net
}  // namespace kbtim

#endif  // KBTIM_NET_ROUTER_H_

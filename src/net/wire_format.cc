#include "net/wire_format.h"

#include <cstring>

#include "storage/crc32c.h"

namespace kbtim {
namespace net {
namespace {

Status Truncated(const char* what) {
  return Status::Corruption(std::string("wire payload truncated reading ") +
                            what);
}

// Shared sub-codecs -----------------------------------------------------------

void EncodeRrBlock(const RrKeywordBlock& block, WireWriter* w) {
  w->U64(block.loaded_budget);
  w->VecU64(block.set_offsets);
  w->VecU32(block.set_items);
  w->VecU32(block.list_vertex);
  w->VecU64(block.list_offsets);
  w->VecU32(block.list_ids);
  w->U64(block.bytes);
}

Status DecodeRrBlock(WireReader* r, RrKeywordBlock* block) {
  KBTIM_RETURN_IF_ERROR(r->U64(&block->loaded_budget));
  KBTIM_RETURN_IF_ERROR(r->VecU64(&block->set_offsets));
  KBTIM_RETURN_IF_ERROR(r->VecU32(&block->set_items));
  KBTIM_RETURN_IF_ERROR(r->VecU32(&block->list_vertex));
  KBTIM_RETURN_IF_ERROR(r->VecU64(&block->list_offsets));
  KBTIM_RETURN_IF_ERROR(r->VecU32(&block->list_ids));
  KBTIM_RETURN_IF_ERROR(r->U64(&block->bytes));
  // The offset directories must stay internally consistent — a decoder
  // that trusts them would index out of bounds on SetMembers/ListOf.
  if (block->set_offsets.empty() || block->set_offsets.front() != 0 ||
      block->set_offsets.back() != block->set_items.size() ||
      block->set_offsets.size() != block->loaded_budget + 1) {
    return Status::Corruption("RR block set_offsets inconsistent");
  }
  if (block->list_offsets.empty() || block->list_offsets.front() != 0 ||
      block->list_offsets.back() != block->list_ids.size() ||
      block->list_offsets.size() != block->list_vertex.size() + 1) {
    return Status::Corruption("RR block list_offsets inconsistent");
  }
  for (size_t i = 1; i < block->set_offsets.size(); ++i) {
    if (block->set_offsets[i] < block->set_offsets[i - 1]) {
      return Status::Corruption("RR block set_offsets not monotone");
    }
  }
  for (size_t i = 1; i < block->list_offsets.size(); ++i) {
    if (block->list_offsets[i] < block->list_offsets[i - 1]) {
      return Status::Corruption("RR block list_offsets not monotone");
    }
  }
  return Status::OK();
}

}  // namespace

// ---- WireReader -------------------------------------------------------------

Status WireReader::ReadRaw(void* out, size_t n) {
  if (size_ - pos_ < n) return Truncated("raw bytes");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status WireReader::CheckCount(uint64_t n, size_t elem_size) const {
  // A count that cannot fit in the remaining payload is corrupt; checking
  // BEFORE resize keeps a flipped length byte from allocating gigabytes.
  if (n > (size_ - pos_) / elem_size) return Truncated("vector");
  return Status::OK();
}

Status WireReader::U8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
Status WireReader::U32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
Status WireReader::U64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }

Status WireReader::Double(double* v) {
  uint64_t bits = 0;
  KBTIM_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status WireReader::Str(std::string* s) {
  uint32_t n = 0;
  KBTIM_RETURN_IF_ERROR(U32(&n));
  if (n > size_ - pos_) return Truncated("string");
  s->assign(data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status WireReader::VecU64(std::vector<uint64_t>* v) {
  uint64_t n = 0;
  KBTIM_RETURN_IF_ERROR(U64(&n));
  KBTIM_RETURN_IF_ERROR(CheckCount(n, sizeof(uint64_t)));
  v->resize(n);
  return ReadRaw(v->data(), n * sizeof(uint64_t));
}

Status WireReader::VecDouble(std::vector<double>* v) {
  uint64_t n = 0;
  KBTIM_RETURN_IF_ERROR(U64(&n));
  KBTIM_RETURN_IF_ERROR(CheckCount(n, sizeof(double)));
  v->resize(n);
  for (double& d : *v) KBTIM_RETURN_IF_ERROR(Double(&d));
  return Status::OK();
}

// ---- Framing ---------------------------------------------------------------

std::string EncodeFrame(MsgType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  WireWriter w(&frame);
  w.U32(kFrameMagic);
  w.U8(static_cast<uint8_t>(type));
  w.U8(0);
  w.U8(0);
  w.U8(0);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  frame.append(payload);
  return frame;
}

StatusOr<FrameHeader> DecodeFrameHeader(const char* data, size_t size) {
  if (size < kFrameHeaderSize) {
    return Status::Corruption("short frame header");
  }
  WireReader r(data, size);
  uint32_t magic = 0;
  uint8_t type = 0, reserved = 0;
  FrameHeader header;
  KBTIM_RETURN_IF_ERROR(r.U32(&magic));
  KBTIM_RETURN_IF_ERROR(r.U8(&type));
  for (int i = 0; i < 3; ++i) KBTIM_RETURN_IF_ERROR(r.U8(&reserved));
  KBTIM_RETURN_IF_ERROR(r.U32(&header.payload_len));
  KBTIM_RETURN_IF_ERROR(r.U32(&header.masked_crc));
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic (stream desynchronized)");
  }
  if (type < static_cast<uint8_t>(MsgType::kMetaRequest) ||
      type > static_cast<uint8_t>(MsgType::kFetchResponse)) {
    return Status::Corruption("unknown frame type");
  }
  if (header.payload_len > kMaxFramePayload) {
    return Status::Corruption("frame payload exceeds bound");
  }
  header.type = static_cast<MsgType>(type);
  return header;
}

Status VerifyFramePayload(const FrameHeader& header,
                          const std::string& payload) {
  if (payload.size() != header.payload_len) {
    return Status::Corruption("frame payload length mismatch");
  }
  const uint32_t actual =
      crc32c::Mask(crc32c::Value(payload.data(), payload.size()));
  if (actual != header.masked_crc) {
    return Status::Corruption("frame payload CRC mismatch");
  }
  return Status::OK();
}

// ---- Status ----------------------------------------------------------------

void EncodeStatus(const Status& status, WireWriter* w) {
  w->U8(static_cast<uint8_t>(status.code()));
  w->Str(status.message());
}

Status DecodeStatus(WireReader* r, Status* out) {
  uint8_t code = 0;
  std::string message;
  KBTIM_RETURN_IF_ERROR(r->U8(&code));
  KBTIM_RETURN_IF_ERROR(r->Str(&message));
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Corruption("unknown status code on wire");
  }
  *out = code == 0
             ? Status::OK()
             : Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// ---- IndexMeta -------------------------------------------------------------

std::string EncodeMetaResponse(const StatusOr<IndexMeta>& meta) {
  std::string payload;
  WireWriter w(&payload);
  EncodeStatus(meta.status(), &w);
  if (!meta.ok()) return payload;
  const IndexMeta& m = *meta;
  w.U32(m.format_version);
  w.U8(static_cast<uint8_t>(m.model));
  w.U8(static_cast<uint8_t>(m.codec));
  w.U8(static_cast<uint8_t>(m.bound));
  w.Double(m.epsilon);
  w.U32(m.max_k);
  w.U32(m.partition_size);
  w.U32(m.num_vertices);
  w.U32(m.num_topics);
  w.U8(m.has_rr ? 1 : 0);
  w.U8(m.has_irr ? 1 : 0);
  w.U64(m.topics.size());
  for (const IndexMeta::TopicMeta& t : m.topics) {
    w.U64(t.theta);
    w.Double(t.tf_sum);
    w.Double(t.phi);
    w.Double(t.opt_bound);
    w.U64(t.irr_preamble);
    w.U64(t.rr_preamble);
  }
  return payload;
}

StatusOr<IndexMeta> DecodeMetaResponse(const std::string& payload) {
  WireReader r(payload);
  Status remote;
  KBTIM_RETURN_IF_ERROR(DecodeStatus(&r, &remote));
  KBTIM_RETURN_IF_ERROR(remote);
  IndexMeta m;
  uint8_t model = 0, codec = 0, bound = 0, has_rr = 0, has_irr = 0;
  uint64_t num_topic_rows = 0;
  KBTIM_RETURN_IF_ERROR(r.U32(&m.format_version));
  KBTIM_RETURN_IF_ERROR(r.U8(&model));
  KBTIM_RETURN_IF_ERROR(r.U8(&codec));
  KBTIM_RETURN_IF_ERROR(r.U8(&bound));
  KBTIM_RETURN_IF_ERROR(r.Double(&m.epsilon));
  KBTIM_RETURN_IF_ERROR(r.U32(&m.max_k));
  KBTIM_RETURN_IF_ERROR(r.U32(&m.partition_size));
  KBTIM_RETURN_IF_ERROR(r.U32(&m.num_vertices));
  KBTIM_RETURN_IF_ERROR(r.U32(&m.num_topics));
  KBTIM_RETURN_IF_ERROR(r.U8(&has_rr));
  KBTIM_RETURN_IF_ERROR(r.U8(&has_irr));
  KBTIM_RETURN_IF_ERROR(r.U64(&num_topic_rows));
  m.model = static_cast<PropagationModel>(model);
  m.codec = static_cast<CodecKind>(codec);
  m.bound = static_cast<ThetaBoundKind>(bound);
  m.has_rr = has_rr != 0;
  m.has_irr = has_irr != 0;
  if (num_topic_rows != m.num_topics) {
    return Status::Corruption("meta topic table size mismatch");
  }
  m.topics.resize(num_topic_rows);
  for (IndexMeta::TopicMeta& t : m.topics) {
    KBTIM_RETURN_IF_ERROR(r.U64(&t.theta));
    KBTIM_RETURN_IF_ERROR(r.Double(&t.tf_sum));
    KBTIM_RETURN_IF_ERROR(r.Double(&t.phi));
    KBTIM_RETURN_IF_ERROR(r.Double(&t.opt_bound));
    KBTIM_RETURN_IF_ERROR(r.U64(&t.irr_preamble));
    KBTIM_RETURN_IF_ERROR(r.U64(&t.rr_preamble));
  }
  return m;
}

// ---- Query solve -----------------------------------------------------------

std::string EncodeQueryRequest(const ServiceRequest& request) {
  std::string payload;
  WireWriter w(&payload);
  w.VecU32(request.query.topics);
  w.U32(request.query.k);
  w.U8(static_cast<uint8_t>(request.engine));
  w.U8(static_cast<uint8_t>(request.irr_mode));
  w.U8(static_cast<uint8_t>(request.priority));
  w.Double(request.queue_deadline_ms);
  w.U64(request.max_theta);
  w.Double(request.request_deadline_ms);
  return payload;
}

StatusOr<ServiceRequest> DecodeQueryRequest(const std::string& payload) {
  WireReader r(payload);
  ServiceRequest request;
  uint8_t engine = 0, irr_mode = 0, priority = 0;
  KBTIM_RETURN_IF_ERROR(r.VecU32(&request.query.topics));
  KBTIM_RETURN_IF_ERROR(r.U32(&request.query.k));
  KBTIM_RETURN_IF_ERROR(r.U8(&engine));
  KBTIM_RETURN_IF_ERROR(r.U8(&irr_mode));
  KBTIM_RETURN_IF_ERROR(r.U8(&priority));
  KBTIM_RETURN_IF_ERROR(r.Double(&request.queue_deadline_ms));
  KBTIM_RETURN_IF_ERROR(r.U64(&request.max_theta));
  KBTIM_RETURN_IF_ERROR(r.Double(&request.request_deadline_ms));
  if (engine > static_cast<uint8_t>(QueryEngine::kWris) ||
      priority >= kNumPriorities) {
    return Status::Corruption("query request enum out of range");
  }
  request.engine = static_cast<QueryEngine>(engine);
  request.irr_mode = static_cast<IrrQueryMode>(irr_mode);
  request.priority = static_cast<RequestPriority>(priority);
  return request;
}

std::string EncodeQueryResponse(const StatusOr<SeedSetResult>& result) {
  std::string payload;
  WireWriter w(&payload);
  EncodeStatus(result.status(), &w);
  if (!result.ok()) return payload;
  const SeedSetResult& res = *result;
  w.VecU32(res.seeds);
  w.VecDouble(res.marginal_gains);
  w.Double(res.estimated_influence);
  w.U8(res.degraded ? 1 : 0);
  w.VecU32(res.dropped_keywords);
  w.U64(res.stats.theta);
  w.U64(res.stats.rr_sets_loaded);
  w.U64(res.stats.io_reads);
  w.U64(res.stats.io_bytes);
  w.U32(res.stats.batch_size);
  return payload;
}

StatusOr<SeedSetResult> DecodeQueryResponse(const std::string& payload) {
  WireReader r(payload);
  Status remote;
  KBTIM_RETURN_IF_ERROR(DecodeStatus(&r, &remote));
  KBTIM_RETURN_IF_ERROR(remote);
  SeedSetResult res;
  uint8_t degraded = 0;
  KBTIM_RETURN_IF_ERROR(r.VecU32(&res.seeds));
  KBTIM_RETURN_IF_ERROR(r.VecDouble(&res.marginal_gains));
  KBTIM_RETURN_IF_ERROR(r.Double(&res.estimated_influence));
  KBTIM_RETURN_IF_ERROR(r.U8(&degraded));
  KBTIM_RETURN_IF_ERROR(r.VecU32(&res.dropped_keywords));
  KBTIM_RETURN_IF_ERROR(r.U64(&res.stats.theta));
  KBTIM_RETURN_IF_ERROR(r.U64(&res.stats.rr_sets_loaded));
  KBTIM_RETURN_IF_ERROR(r.U64(&res.stats.io_reads));
  KBTIM_RETURN_IF_ERROR(r.U64(&res.stats.io_bytes));
  KBTIM_RETURN_IF_ERROR(r.U32(&res.stats.batch_size));
  res.degraded = degraded != 0;
  return res;
}

// ---- RR block fetch --------------------------------------------------------

std::string EncodeFetchRequest(const RrFetchRequest& request) {
  std::string payload;
  WireWriter w(&payload);
  w.VecU32(request.topics);
  w.VecU64(request.budgets);
  w.U8(static_cast<uint8_t>(request.priority));
  w.Double(request.queue_deadline_ms);
  w.Double(request.request_deadline_ms);
  return payload;
}

StatusOr<RrFetchRequest> DecodeFetchRequest(const std::string& payload) {
  WireReader r(payload);
  RrFetchRequest request;
  uint8_t priority = 0;
  KBTIM_RETURN_IF_ERROR(r.VecU32(&request.topics));
  KBTIM_RETURN_IF_ERROR(r.VecU64(&request.budgets));
  KBTIM_RETURN_IF_ERROR(r.U8(&priority));
  KBTIM_RETURN_IF_ERROR(r.Double(&request.queue_deadline_ms));
  KBTIM_RETURN_IF_ERROR(r.Double(&request.request_deadline_ms));
  if (priority >= kNumPriorities) {
    return Status::Corruption("fetch request priority out of range");
  }
  request.priority = static_cast<RequestPriority>(priority);
  return request;
}

std::string EncodeFetchResponse(const StatusOr<RrFetchResult>& result) {
  std::string payload;
  WireWriter w(&payload);
  EncodeStatus(result.status(), &w);
  if (!result.ok()) return payload;
  const RrFetchResult& res = *result;
  w.U64(res.blocks.size());
  for (const std::shared_ptr<const RrKeywordBlock>& block : res.blocks) {
    w.U8(block != nullptr ? 1 : 0);
    if (block != nullptr) EncodeRrBlock(*block, &w);
  }
  w.VecU32(res.dropped);
  return payload;
}

StatusOr<RrFetchResult> DecodeFetchResponse(const std::string& payload) {
  WireReader r(payload);
  Status remote;
  KBTIM_RETURN_IF_ERROR(DecodeStatus(&r, &remote));
  KBTIM_RETURN_IF_ERROR(remote);
  RrFetchResult res;
  uint64_t num_blocks = 0;
  KBTIM_RETURN_IF_ERROR(r.U64(&num_blocks));
  if (num_blocks > kMaxFramePayload / 2) {
    return Status::Corruption("fetch response block count out of range");
  }
  res.blocks.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    uint8_t present = 0;
    KBTIM_RETURN_IF_ERROR(r.U8(&present));
    if (present == 0) {
      res.blocks.push_back(nullptr);
      continue;
    }
    auto block = std::make_shared<RrKeywordBlock>();
    KBTIM_RETURN_IF_ERROR(DecodeRrBlock(&r, block.get()));
    res.blocks.push_back(std::move(block));
  }
  KBTIM_RETURN_IF_ERROR(r.VecU32(&res.dropped));
  return res;
}

}  // namespace net
}  // namespace kbtim

// Walker's alias method: O(n) construction, O(1) weighted sampling.
//
// This is the workhorse behind WRIS's ps(v, Q)-weighted root selection
// (Eqn. 3) and the per-keyword ps(v, w) offline sampling (Eqn. 7).
#ifndef KBTIM_COMMON_ALIAS_TABLE_H_
#define KBTIM_COMMON_ALIAS_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/statusor.h"

namespace kbtim {

/// Immutable alias table over indices [0, n) with given nonnegative weights.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table. Weights must be nonnegative with a positive sum.
  static StatusOr<AliasTable> FromWeights(std::span<const double> weights);

  /// Draws an index with probability weight[i] / Σ weights. Inline: this
  /// is the root-selection step of every RR sample.
  uint32_t Sample(Rng& rng) const {
    const auto i = static_cast<uint32_t>(rng.NextU64Below(prob_.size()));
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

  /// Deterministic draw from a single inversion point y ∈ [0, 1): the
  /// integer part of y·n picks the column, the fractional part plays the
  /// column's coin. Uniform y yields the table's distribution from ONE
  /// uniform draw — the skip-ahead LT walk uses this so the alias kernel
  /// and the linear-scan fallback consume the RNG stream in lockstep (and,
  /// when all weights are equal, select the exact same index for the same
  /// y, which the kernel-equivalence tests pin).
  uint32_t SampleAt(double y) const {
    const double scaled = y * static_cast<double>(prob_.size());
    auto i = static_cast<size_t>(scaled);
    if (i >= prob_.size()) i = prob_.size() - 1;  // y ≈ 1 rounding guard
    const double frac = scaled - static_cast<double>(i);
    return frac < prob_[i] ? static_cast<uint32_t>(i) : alias_[i];
  }

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace kbtim

#endif  // KBTIM_COMMON_ALIAS_TABLE_H_

// Fixed-size worker pool used for parallel index construction and
// Monte-Carlo spread evaluation (the paper built its indexes with 8 threads).
#ifndef KBTIM_COMMON_THREAD_POOL_H_
#define KBTIM_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace kbtim {

/// A minimal fixed-size thread pool.
///
/// Tasks are plain std::function<void()>; callers coordinate results through
/// captured state. Wait() blocks until the queue drains and all workers idle.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until all submitted tasks have completed.
  void Wait() EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on the
  /// pool, blocking until every chunk is done. Runs inline when n is small
  /// or the pool has a single worker.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn)
      EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  // written once in the constructor
  Mutex mutex_;
  CondVar work_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace kbtim

#endif  // KBTIM_COMMON_THREAD_POOL_H_

// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::condition_variable that carry Clang
// Thread Safety Analysis attributes, so every component that holds a lock
// states WHICH fields that lock guards (GUARDED_BY) and WHICH helpers assume
// it is held (REQUIRES) — and a clang build with -Wthread-safety proves the
// claims. Under GCC the attributes vanish and these compile down to the
// standard-library primitives they wrap.
//
// Conventions (see README "Static analysis"):
//   * Fields guarded by `mu_` are declared `T field_ GUARDED_BY(mu_);`.
//   * Internal helpers that assume the lock are suffixed `Locked` and
//     annotated `REQUIRES(mu_)`.
//   * Public methods that take a lock internally are annotated
//     `EXCLUDES(mu_)`; calling one while the lock is held is a compile
//     error. Lock-ordering contracts (e.g. QueryService's "stats_mu_ is
//     never nested under mu_") are expressed this way.
//   * Waits are explicit loops (`while (!cond) cv_.Wait(&mu_);`), never
//     predicate lambdas — the analysis cannot see that a lambda body runs
//     with the lock held.
#ifndef KBTIM_COMMON_MUTEX_H_
#define KBTIM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace kbtim {

/// A standard mutex declared as a capability. Prefer MutexLock for scoped
/// acquisition; Lock/Unlock exist for the rare non-scoped pattern.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the lock is held on paths it cannot see (e.g. a
  /// callback invoked by a holder). Runtime no-op.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock holder, analysis-visible (SCOPED_CAPABILITY): the capability is
/// held from construction to the end of the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to a Mutex at each wait. Waits REQUIRE the
/// mutex; as with std::condition_variable the lock is released while
/// blocked and re-acquired before returning, which matches the analysis
/// fiction that the capability is held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always loop).
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    (void)lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Blocks until notified or `deadline` passes.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex* mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    (void)lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kbtim

#endif  // KBTIM_COMMON_MUTEX_H_

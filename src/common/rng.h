// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (graph generators, profile
// generators, RR-set samplers, Monte-Carlo simulation) takes an explicit Rng
// so that runs are reproducible from a single seed. Rng::Fork derives
// statistically independent streams for parallel workers.
//
// All methods are defined inline: the RR sampling engine draws per edge /
// per walk step / per RR-set fork, and the call overhead of an
// out-of-line generator was a measurable slice of SolverStats::
// sampling_seconds (bench_sampling_kernels).
#ifndef KBTIM_COMMON_RNG_H_
#define KBTIM_COMMON_RNG_H_

#include <cstdint>

namespace kbtim {

namespace rng_detail {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace rng_detail

/// xoshiro256** generator seeded via splitmix64.
///
/// Fast (sub-ns per draw), passes BigCrush, and trivially forkable, which is
/// what the samplers need. Not cryptographically secure (not required here).
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t sm = seed;
    for (auto& s : s_) s = rng_detail::SplitMix64(&sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
      s_[0] = 0x9E3779B97F4A7C15ULL;
    }
  }

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t result = rng_detail::Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rng_detail::Rotl(s_[3], 45);
    return result;
  }

  /// Returns a uniform draw from [0, 1).
  double NextDouble() {
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a uniform float from [0, 1) (24 high bits). The geometric
  /// skip kernel runs on single precision: its log() is ~2x cheaper and
  /// the skip-length distribution is unchanged beyond ~1e-7 relative.
  float NextFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Returns a uniform integer in [0, n). Requires n > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  uint32_t NextU32Below(uint32_t n) {
    uint64_t m = static_cast<uint64_t>(static_cast<uint32_t>(NextU64())) * n;
    auto lo = static_cast<uint32_t>(m);
    if (lo < n) {
      const uint32_t threshold = -n % n;
      while (lo < threshold) {
        m = static_cast<uint64_t>(static_cast<uint32_t>(NextU64())) * n;
        lo = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t NextU64Below(uint64_t n) {
    // Rejection sampling over the smallest covering power-of-two range.
    const uint64_t mask = ~uint64_t{0} >> __builtin_clzll(n | 1);
    uint64_t draw;
    do {
      draw = NextU64() & mask;
    } while (draw >= n);
    return draw;
  }

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Derives an independent generator for a parallel stream. Forking with
  /// distinct `stream` values from the same parent yields decorrelated
  /// sequences; the parent's own state is not advanced.
  Rng Fork(uint64_t stream) const {
    // Mix the parent state with the stream id through splitmix; the
    // resulting seed re-initializes a fresh xoshiro state.
    uint64_t mix = s_[0] ^ rng_detail::Rotl(s_[3], 13) ^
                   (stream * 0xD1342543DE82EF95ULL);
    uint64_t sm = mix;
    return Rng(rng_detail::SplitMix64(&sm));
  }

 private:
  uint64_t s_[4];
};

}  // namespace kbtim

#endif  // KBTIM_COMMON_RNG_H_

// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (graph generators, profile
// generators, RR-set samplers, Monte-Carlo simulation) takes an explicit Rng
// so that runs are reproducible from a single seed. Rng::Fork derives
// statistically independent streams for parallel workers.
#ifndef KBTIM_COMMON_RNG_H_
#define KBTIM_COMMON_RNG_H_

#include <cstdint>

namespace kbtim {

/// xoshiro256** generator seeded via splitmix64.
///
/// Fast (sub-ns per draw), passes BigCrush, and trivially forkable, which is
/// what the samplers need. Not cryptographically secure (not required here).
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextU64();

  /// Returns a uniform draw from [0, 1).
  double NextDouble();

  /// Returns a uniform integer in [0, n). Requires n > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  uint32_t NextU32Below(uint32_t n);

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t NextU64Below(uint64_t n);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent generator for a parallel stream. Forking with
  /// distinct `stream` values from the same parent yields decorrelated
  /// sequences; the parent's own state is not advanced.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
};

}  // namespace kbtim

#endif  // KBTIM_COMMON_RNG_H_

#include "common/thread_pool.h"

#include <algorithm>

namespace kbtim {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t nthreads = num_threads();
  if (nthreads == 1 || n < 2 * nthreads) {
    fn(0, n);
    return;
  }
  const size_t chunk = (n + nthreads - 1) / nthreads;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(&mutex_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace kbtim

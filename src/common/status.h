// Status: RocksDB/Arrow-style error propagation without exceptions.
//
// Library code on hot paths returns Status (or StatusOr<T>, see statusor.h)
// instead of throwing. Use the KBTIM_RETURN_IF_ERROR macro to propagate.
#ifndef KBTIM_COMMON_STATUS_H_
#define KBTIM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace kbtim {

/// Canonical error codes, modeled after absl::StatusCode / rocksdb::Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kCorruption = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kUnavailable = 10,
  kDeadlineExceeded = 11,
};

/// Returns a stable human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// A Status is either OK or carries an error code plus a message.
///
/// The OK status carries no allocation; error statuses own their message.
///
/// [[nodiscard]]: silently dropping a returned Status hides failures, so
/// every call site must consume it — propagate (KBTIM_RETURN_IF_ERROR),
/// branch on it, or discard explicitly with KBTIM_IGNORE_STATUS.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace status_internal {
/// Sink for KBTIM_IGNORE_STATUS — consumes any [[nodiscard]] value.
template <typename T>
inline void IgnoreStatus(T&&) {}
}  // namespace status_internal

}  // namespace kbtim

/// Propagates a non-OK Status to the caller.
#define KBTIM_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::kbtim::Status _kbtim_status = (expr);        \
    if (!_kbtim_status.ok()) return _kbtim_status; \
  } while (0)

/// Deliberately discards a Status / StatusOr. Unlike a bare `(void)` cast
/// this names the intent and is greppable; every use should carry a comment
/// explaining why dropping the error is safe.
#define KBTIM_IGNORE_STATUS(expr) \
  ::kbtim::status_internal::IgnoreStatus(expr)

#endif  // KBTIM_COMMON_STATUS_H_

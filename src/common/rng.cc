#include "common/rng.h"

namespace kbtim {
namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint32_t Rng::NextU32Below(uint32_t n) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t m = static_cast<uint64_t>(static_cast<uint32_t>(NextU64())) * n;
  auto lo = static_cast<uint32_t>(m);
  if (lo < n) {
    const uint32_t threshold = -n % n;
    while (lo < threshold) {
      m = static_cast<uint64_t>(static_cast<uint32_t>(NextU64())) * n;
      lo = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

uint64_t Rng::NextU64Below(uint64_t n) {
  // Rejection sampling over the smallest covering power-of-two range.
  const uint64_t mask = ~uint64_t{0} >> __builtin_clzll(n | 1);
  uint64_t draw;
  do {
    draw = NextU64() & mask;
  } while (draw >= n);
  return draw;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the parent state with the stream id through splitmix; the resulting
  // seed re-initializes a fresh xoshiro state.
  uint64_t mix = s_[0] ^ Rotl(s_[3], 13) ^ (stream * 0xD1342543DE82EF95ULL);
  uint64_t sm = mix;
  return Rng(SplitMix64(&sm));
}

}  // namespace kbtim

#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/mutex.h"

namespace kbtim {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};
// Serializes the stderr write so concurrent log lines never interleave.
Mutex g_log_mutex;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(severity_) <
      static_cast<int>(MinLogSeverity())) {
    return;
  }
  MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace kbtim

// Minimal severity-tagged logging to stderr.
//
// Usage: KBTIM_LOG(INFO) << "built " << n << " RR sets";
// The global minimum severity can be raised to silence benchmark runs.
#ifndef KBTIM_COMMON_LOGGING_H_
#define KBTIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace kbtim {

enum class LogSeverity : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
void SetMinLogSeverity(LogSeverity severity);

/// Returns the current global minimum severity.
LogSeverity MinLogSeverity();

namespace internal {

/// Accumulates one log line and emits it (with timestamp and severity tag)
/// on destruction. Not for direct use; see KBTIM_LOG.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kbtim

#define KBTIM_LOG(severity)                                           \
  ::kbtim::internal::LogMessage(::kbtim::LogSeverity::k##severity,    \
                                __FILE__, __LINE__)                   \
      .stream()

#endif  // KBTIM_COMMON_LOGGING_H_

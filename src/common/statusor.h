// StatusOr<T>: a value or an error Status, in the style of absl::StatusOr.
#ifndef KBTIM_COMMON_STATUSOR_H_
#define KBTIM_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace kbtim {

/// Holds either a T or a non-OK Status describing why no T is available.
///
/// Accessing the value of a non-OK StatusOr is a programming error and
/// aborts in debug builds.
///
/// [[nodiscard]] for the same reason as Status: a dropped StatusOr is a
/// swallowed error. Use KBTIM_IGNORE_STATUS for deliberate discards.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit conversion from an error Status. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// Implicit conversion from a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kbtim

/// Evaluates `rexpr` (a StatusOr) and either assigns its value to `lhs` or
/// propagates the error to the caller.
#define KBTIM_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  KBTIM_ASSIGN_OR_RETURN_IMPL_(                               \
      KBTIM_STATUS_MACRO_CONCAT_(_kbtim_statusor, __LINE__), lhs, rexpr)

#define KBTIM_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define KBTIM_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define KBTIM_STATUS_MACRO_CONCAT_(x, y) KBTIM_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // KBTIM_COMMON_STATUSOR_H_

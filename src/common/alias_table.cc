#include "common/alias_table.h"

#include <cmath>

namespace kbtim {

StatusOr<AliasTable> AliasTable::FromWeights(
    std::span<const double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("alias table needs at least one weight");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("alias weights must be finite and >= 0");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("alias weights must sum to > 0");
  }

  const size_t n = weights.size();
  AliasTable table;
  table.prob_.resize(n);
  table.alias_.resize(n);

  // Scaled weights; partition into small (< 1) and large (>= 1) stacks.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    table.prob_[s] = scaled[s];
    table.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers become certain draws.
  for (uint32_t i : large) {
    table.prob_[i] = 1.0;
    table.alias_[i] = i;
  }
  for (uint32_t i : small) {
    table.prob_[i] = 1.0;
    table.alias_[i] = i;
  }
  return table;
}

}  // namespace kbtim

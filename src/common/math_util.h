// Small numeric helpers shared by the θ-bound formulas and statistics code.
#ifndef KBTIM_COMMON_MATH_UTIL_H_
#define KBTIM_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace kbtim {

/// ln Γ(x) for x > 0. std::lgamma writes libm's GLOBAL `signgam`, which is
/// a data race when the θ bounds run on builder/solver worker threads; use
/// the reentrant lgamma_r where the platform has it (glibc/musl/BSD do).
inline double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(__FreeBSD__) || \
    defined(_GNU_SOURCE)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// Returns ln(n choose k) computed via lgamma; exact enough for the sample
/// size bounds (Theorems 1/2, Lemmas 3/4) where it appears inside a log term.
/// Requires 0 <= k <= n.
inline double LogNChooseK(uint64_t n, uint64_t k) {
  assert(k <= n);
  if (k == 0 || k == n) return 0.0;
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

/// Mean of a sample.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Unbiased sample variance (n-1 denominator); 0 for fewer than two points.
inline double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

/// Linear-interpolation percentile, p in [0, 100]. Sorts a copy.
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Number of bits needed to represent v (0 -> 0 bits).
inline uint32_t BitWidth(uint32_t v) {
  return v == 0 ? 0u : 32u - static_cast<uint32_t>(__builtin_clz(v));
}

/// Integer ceiling division for non-negative operands.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

}  // namespace kbtim

#endif  // KBTIM_COMMON_MATH_UTIL_H_

// Clang Thread Safety Analysis annotation macros.
//
// These expand to Clang's capability attributes when the compiler supports
// them (clang with -Wthread-safety) and to nothing everywhere else, so the
// annotated tree builds unchanged under GCC. The vocabulary follows the
// Abseil / RocksDB convention:
//
//   * CAPABILITY("mutex")   — a class is a lockable capability (see Mutex).
//   * SCOPED_CAPABILITY     — an RAII object that holds a capability for its
//                             lifetime (see MutexLock).
//   * GUARDED_BY(mu)        — reads and writes of this field require `mu`.
//   * PT_GUARDED_BY(mu)     — the pointed-to data requires `mu`.
//   * REQUIRES(mu)          — callers must hold `mu` (our `*Locked()`
//                             helpers carry this).
//   * EXCLUDES(mu)          — callers must NOT hold `mu`; this is how the
//                             "stats_mu_ is never nested under mu_" rule
//                             from PR 4 becomes a compile error.
//   * ACQUIRE / RELEASE / TRY_ACQUIRE — lock transitions on functions.
//   * ACQUIRED_BEFORE / ACQUIRED_AFTER — declared lock ordering (only
//                             checked under -Wthread-safety-beta; we state
//                             ordering with EXCLUDES instead, which the
//                             stable analysis enforces).
//
// Misuse is rejected by the CI `static-analysis` job (clang build with
// -Wthread-safety promoted to an error) and demonstrated by the
// negative-compile suite in tests/static/.
#ifndef KBTIM_COMMON_THREAD_ANNOTATIONS_H_
#define KBTIM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef KBTIM_THREAD_ANNOTATION_ATTRIBUTE__
#define KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RETURN_CAPABILITY(x) \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  KBTIM_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // KBTIM_COMMON_THREAD_ANNOTATIONS_H_

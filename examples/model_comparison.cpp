// Targeted vs untargeted seeds under IC and LT — the paper's §6.6 case
// study (Table 8) as a runnable demo.
//
// For two single-keyword advertisements it prints the top seeds chosen by
// targeted WRIS under both propagation models next to the untargeted RIS
// seeds, along with each seed's affinity to the ad keyword. The expected
// picture: WRIS seeds carry the keyword (or sit next to communities that
// do), and RIS returns the same, keyword-blind list for both ads.
#include <cstdio>

#include "expr/workload.h"
#include "sampling/ris_solver.h"
#include "sampling/wris_solver.h"
#include "topics/vocabulary.h"

namespace {

using namespace kbtim;

/// Fraction of a seed list whose profile contains the keyword.
double KeywordAffinity(const std::vector<VertexId>& seeds,
                       const ProfileStore& profiles, TopicId w) {
  if (seeds.empty()) return 0.0;
  int hits = 0;
  for (VertexId v : seeds) {
    if (profiles.Tf(v, w) > 0.0f) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(seeds.size());
}

void PrintSeeds(const char* label, const std::vector<VertexId>& seeds,
                const ProfileStore& profiles, TopicId w) {
  std::printf("  %-12s", label);
  for (size_t i = 0; i < std::min<size_t>(8, seeds.size()); ++i) {
    std::printf(" %6u%c", seeds[i],
                profiles.Tf(seeds[i], w) > 0.0f ? '*' : ' ');
  }
  std::printf("  (keyword affinity %.0f%%)\n",
              100.0 * KeywordAffinity(seeds, profiles, w));
}

}  // namespace

int main() {
  DatasetSpec spec;
  spec.name = "model_comparison";
  spec.graph.num_vertices = 10000;
  spec.graph.avg_degree = 12.0;
  spec.graph.num_communities = 16;
  spec.graph.seed = 11;
  spec.profiles.num_topics = 20;
  spec.profiles.community_affinity = 0.8;
  spec.profiles.seed = 12;
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  const Vocabulary vocab = Vocabulary::Synthetic(20);

  OnlineSolverOptions opts;
  opts.epsilon = 0.4;
  opts.num_threads = 2;

  for (const char* keyword : {"software", "journal"}) {
    const TopicId w = vocab.Find(keyword);
    Query q{{w}, 8};
    std::printf("keyword \"%s\" (topic %u), k=8; '*' marks seeds whose "
                "profile contains the keyword\n",
                keyword, w);
    for (auto model : {PropagationModel::kIndependentCascade,
                       PropagationModel::kLinearThreshold}) {
      WrisSolver wris(env->graph(), env->tfidf(), model,
                      env->weights(model), opts);
      auto targeted = wris.Solve(q);
      RisSolver ris(env->graph(), model, env->weights(model), opts);
      auto untargeted = ris.Solve(q.k);
      if (!targeted.ok() || !untargeted.ok()) {
        std::fprintf(stderr, "solver failed\n");
        return 1;
      }
      std::printf(" %s model:\n", PropagationModelName(model));
      PrintSeeds("WRIS", targeted->seeds, env->profiles(), w);
      PrintSeeds("RIS", untargeted->seeds, env->profiles(), w);
    }
    std::printf("\n");
  }
  std::printf(
      "RIS rows are identical across keywords (advertisement-blind);\n"
      "WRIS rows change with the keyword and show higher affinity.\n");
  return 0;
}

// Standalone shard process: one index directory served over TCP.
//
// The chaos bench (bench/net_serving.cc) forks a fleet of these, kills
// one mid-burst with SIGKILL, restarts it, and asserts the router's
// recovery contract — so this binary is deliberately boring: open, serve,
// exit on SIGTERM/SIGINT.
//
// Usage: ./build/example_shard_server_main --dir <index_dir> [--port N]
//        [--workers N]
// Prints "LISTENING <port>" on stdout once ready (the parent parses it).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/shard_server.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace kbtim;
  std::string dir;
  net::ShardServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      options.service.num_workers =
          static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: %s --dir <index_dir> [--port N] [--workers N]\n",
                 argv[0]);
    return 2;
  }

  auto server = net::ShardServer::Start(dir, options);
  if (!server.ok()) {
    std::fprintf(stderr, "shard start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("LISTENING %u\n", (*server)->port());
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

// Quickstart: the smallest end-to-end KB-TIM run.
//
//   1. generate a synthetic social network with topic profiles,
//   2. ask an online WRIS query for an advertisement,
//   3. print the selected seed users and their estimated targeted reach.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "expr/workload.h"
#include "sampling/wris_solver.h"
#include "topics/vocabulary.h"

int main() {
  using namespace kbtim;

  // A small community-structured graph with Zipfian topic profiles.
  DatasetSpec spec;
  spec.name = "quickstart";
  spec.graph.num_vertices = 5000;
  spec.graph.avg_degree = 10.0;
  spec.graph.num_communities = 12;
  spec.graph.seed = 42;
  spec.profiles.num_topics = 20;
  spec.profiles.seed = 43;

  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  const Vocabulary vocab = Vocabulary::Synthetic(20);
  std::printf("graph: %u users, %llu edges (avg degree %.1f)\n",
              env->graph().num_vertices(),
              static_cast<unsigned long long>(env->graph().num_edges()),
              env->graph().AverageDegree());

  // An advertisement about music & books, looking for 10 seed users.
  Query ad;
  ad.topics = {vocab.Find("music"), vocab.Find("book")};
  ad.k = 10;

  OnlineSolverOptions opts;
  opts.epsilon = 0.3;
  opts.num_threads = 2;
  WrisSolver solver(env->graph(), env->tfidf(),
                    PropagationModel::kIndependentCascade, env->ic_probs(),
                    opts);
  auto result = solver.Solve(ad);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nKB-TIM query {music, book}, k=10 (WRIS, IC model)\n");
  std::printf("sampled %llu weighted RR sets in %.3f s\n",
              static_cast<unsigned long long>(result->stats.theta),
              result->stats.total_seconds);
  std::printf("expected targeted influence: %.2f\n\n",
              result->estimated_influence);
  std::printf("%-6s %-10s %-16s %s\n", "rank", "user", "marginal gain",
              "top interests");
  for (size_t i = 0; i < result->seeds.size(); ++i) {
    const VertexId seed = result->seeds[i];
    std::string interests;
    for (const auto& entry : env->profiles().UserProfile(seed)) {
      if (entry.tf < 0.15f) continue;
      if (!interests.empty()) interests += ", ";
      interests += vocab.Name(entry.topic);
    }
    std::printf("%-6zu %-10u %-16.3f %s\n", i + 1, seed,
                result->marginal_gains[i], interests.c_str());
  }
  return 0;
}

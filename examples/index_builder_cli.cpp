// Command-line index builder / query tool.
//
//   index_builder_cli build <dir> [--preset news|twitter] [--topics N]
//                     [--epsilon E] [--codec raw|varint|pfor] [--lt]
//                     [--max-k K] [--delta D] [--threads T] [--scale S]
//   index_builder_cli query <dir> --topics 0,3,7 --k 10 [--irr]
//   index_builder_cli verify <dir>
//
// The build subcommand also writes the generated graph next to the index
// (graph.bin) so later runs can inspect it; --scale shrinks the preset's
// vertex count (min 1000) for smoke builds. verify checks every
// structural invariant of the on-disk format plus, on v2 indexes, every
// stored CRC32C (see index/index_verifier.h).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "expr/workload.h"
#include "graph/graph_io.h"
#include "index/index_builder.h"
#include "index/index_verifier.h"
#include "index/irr_index.h"
#include "index/rr_index.h"

namespace {

using namespace kbtim;

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  index_builder_cli build <dir> [--preset news|twitter]"
      " [--topics N] [--epsilon E] [--codec raw|varint|pfor] [--lt]\n"
      "                    [--max-k K] [--delta D] [--threads T]"
      " [--scale S]\n"
      "  index_builder_cli query <dir> --topics 0,3,7 --k 10 [--irr]\n"
      "  index_builder_cli verify <dir>\n");
  return 2;
}

int RunVerify(const char* dir) {
  auto result = VerifyIndex(dir);
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "OK: %u topics, %llu RR sets, %llu inverted lists, %llu partitions\n",
      result->topics_checked,
      static_cast<unsigned long long>(result->rr_sets_checked),
      static_cast<unsigned long long>(result->inverted_entries_checked),
      static_cast<unsigned long long>(result->partitions_checked));
  if (result->format_version >= 2) {
    std::printf("format v%u: %llu checksums verified\n",
                result->format_version,
                static_cast<unsigned long long>(result->checksums_verified));
  } else {
    std::printf("format v%u: pre-checksum index, checksum stage skipped\n",
                result->format_version);
  }
  return 0;
}

int RunBuild(int argc, char** argv) {
  const std::string dir = argv[2];
  std::filesystem::create_directories(dir);
  const char* preset = FlagValue(argc, argv, "--preset");
  const char* topics = FlagValue(argc, argv, "--topics");
  const uint32_t num_topics =
      topics != nullptr ? static_cast<uint32_t>(std::atoi(topics)) : 20;

  DatasetSpec spec = (preset != nullptr &&
                      std::string(preset) == "twitter")
                         ? DefaultTwitterSpec(num_topics)
                         : DefaultNewsSpec(num_topics);
  if (const char* s = FlagValue(argc, argv, "--scale")) {
    const double n =
        static_cast<double>(spec.graph.num_vertices) * std::atof(s);
    spec.graph.num_vertices =
        static_cast<uint32_t>(n < 1000.0 ? 1000.0 : n);
  }
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);

  IndexBuildOptions opts;
  if (const char* e = FlagValue(argc, argv, "--epsilon")) {
    opts.epsilon = std::atof(e);
  }
  if (const char* c = FlagValue(argc, argv, "--codec")) {
    opts.codec = std::string(c) == "raw"      ? CodecKind::kRaw
                 : std::string(c) == "varint" ? CodecKind::kVarint
                                              : CodecKind::kPfor;
  }
  if (const char* k = FlagValue(argc, argv, "--max-k")) {
    opts.max_k = static_cast<uint32_t>(std::atoi(k));
  }
  if (const char* d = FlagValue(argc, argv, "--delta")) {
    opts.partition_size = static_cast<uint32_t>(std::atoi(d));
  }
  if (const char* t = FlagValue(argc, argv, "--threads")) {
    opts.num_threads = static_cast<uint32_t>(std::atoi(t));
  }
  opts.model = HasFlag(argc, argv, "--lt")
                   ? PropagationModel::kLinearThreshold
                   : PropagationModel::kIndependentCascade;

  std::printf("dataset %s: %u users, %llu edges; building %s index...\n",
              env->name().c_str(), env->graph().num_vertices(),
              static_cast<unsigned long long>(env->graph().num_edges()),
              PropagationModelName(opts.model));
  IndexBuilder builder(env->graph(), env->tfidf(),
                       env->weights(opts.model), opts);
  auto report = builder.Build(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (Status s = SaveGraphBinary(env->graph(), dir + "/graph.bin");
      !s.ok()) {
    std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
  }
  std::printf("built %llu RR sets (mean size %.2f) in %.1f s\n",
              static_cast<unsigned long long>(report->total_theta),
              report->mean_rr_set_size, report->seconds);
  std::printf("bytes: rr=%llu lists=%llu irr=%llu total=%llu\n",
              static_cast<unsigned long long>(report->rr_bytes),
              static_cast<unsigned long long>(report->lists_bytes),
              static_cast<unsigned long long>(report->irr_bytes),
              static_cast<unsigned long long>(report->total_bytes));
  return 0;
}

int RunQuery(int argc, char** argv) {
  const std::string dir = argv[2];
  const char* topics = FlagValue(argc, argv, "--topics");
  const char* k = FlagValue(argc, argv, "--k");
  if (topics == nullptr || k == nullptr) return Usage();

  Query q;
  q.k = static_cast<uint32_t>(std::atoi(k));
  for (const char* p = topics; *p != '\0';) {
    q.topics.push_back(static_cast<TopicId>(std::strtoul(p, nullptr, 10)));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }

  SeedSetResult result;
  if (HasFlag(argc, argv, "--irr")) {
    auto index = IrrIndex::Open(dir);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    auto r = index->Query(q);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    result = std::move(*r);
  } else {
    auto index = RrIndex::Open(dir);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    auto r = index->Query(q);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    result = std::move(*r);
  }

  std::printf("%.2f ms, %llu RR sets loaded, %llu I/Os, influence %.2f\n",
              result.stats.total_seconds * 1e3,
              static_cast<unsigned long long>(result.stats.rr_sets_loaded),
              static_cast<unsigned long long>(result.stats.io_reads),
              result.estimated_influence);
  std::printf("seeds:");
  for (VertexId s : result.seeds) std::printf(" %u", s);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  if (std::strcmp(argv[1], "build") == 0) return RunBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return RunQuery(argc, argv);
  if (std::strcmp(argv[1], "verify") == 0) return RunVerify(argv[2]);
  return Usage();
}

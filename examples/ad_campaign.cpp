// Ad-campaign scenario: the paper's intended deployment.
//
// An advertising platform builds the disk indexes OFFLINE once, then
// answers arriving advertisements in real time from the index — the whole
// point of the RR/IRR design. This example:
//   1. generates a twitter-like network with topic profiles,
//   2. builds the RR + IRR indexes on disk,
//   3. replays a stream of keyword advertisements against both indexes and
//      reports per-ad latency, I/O, and the chosen influencers.
//
// Usage: ./build/examples/ad_campaign [index_dir]
#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "expr/workload.h"
#include "index/index_builder.h"
#include "index/irr_index.h"
#include "index/rr_index.h"
#include "storage/io_counter.h"
#include "topics/vocabulary.h"

int main(int argc, char** argv) {
  using namespace kbtim;
  const std::string dir = argc > 1 ? argv[1] : "/tmp/kbtim_ad_campaign";
  std::filesystem::create_directories(dir);

  DatasetSpec spec;
  spec.name = "campaign";
  spec.graph.num_vertices = 20000;
  spec.graph.avg_degree = 20.0;
  spec.graph.num_communities = 16;
  spec.graph.seed = 7;
  spec.profiles.num_topics = 20;
  spec.profiles.seed = 8;
  auto env_or = Environment::Create(spec);
  if (!env_or.ok()) {
    std::fprintf(stderr, "%s\n", env_or.status().ToString().c_str());
    return 1;
  }
  auto env = std::move(*env_or);
  const Vocabulary vocab = Vocabulary::Synthetic(20);

  // ---- Offline phase: build the keyword indexes once. ----
  IndexBuildOptions build;
  build.epsilon = 0.5;
  build.max_k = 50;
  build.num_threads = 2;
  build.seed = 9;
  build.max_theta_per_keyword = 1 << 20;
  std::printf("building RR+IRR indexes for %u keywords into %s ...\n",
              env->profiles().num_topics(), dir.c_str());
  IndexBuilder builder(env->graph(), env->tfidf(), env->ic_probs(), build);
  auto report = builder.Build(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("  %llu RR sets (mean size %.1f), %.1f MB, %.1f s\n\n",
              static_cast<unsigned long long>(report->total_theta),
              report->mean_rr_set_size,
              static_cast<double>(report->total_bytes) / (1024.0 * 1024.0),
              report->seconds);

  // ---- Online phase: answer advertisements in real time. ----
  auto rr_or = RrIndex::Open(dir);
  auto irr_or = IrrIndex::Open(dir);
  if (!rr_or.ok() || !irr_or.ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  const RrIndex& rr = *rr_or;
  const IrrIndex& irr = *irr_or;

  struct Ad {
    const char* description;
    std::vector<std::string> keywords;
    uint32_t k;
  };
  const Ad ads[] = {
      {"indie album launch", {"music"}, 10},
      {"sports-car commercial", {"car", "sport"}, 10},
      {"travel-guide e-book", {"travel", "book"}, 15},
      {"fitness-app campaign", {"fitness", "health", "sport"}, 20},
      {"photography workshop", {"photo", "art", "education"}, 10},
  };

  uint64_t individual_reads = 0;
  for (const Ad& ad : ads) {
    Query q;
    for (const auto& word : ad.keywords) {
      const TopicId w = vocab.Find(word);
      if (w != kInvalidTopic) q.topics.push_back(w);
    }
    q.k = ad.k;
    std::printf("ad: \"%s\"  keywords={", ad.description);
    for (size_t i = 0; i < ad.keywords.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", ad.keywords[i].c_str());
    }
    std::printf("}  k=%u\n", q.k);

    auto rr_result = rr.Query(q);
    auto irr_result = irr.Query(q);
    if (!rr_result.ok() || !irr_result.ok()) {
      std::printf("  query failed: %s\n",
                  rr_result.ok() ? irr_result.status().ToString().c_str()
                                 : rr_result.status().ToString().c_str());
      continue;
    }
    individual_reads += rr_result->stats.io_reads;
    std::printf("  RR : %7.2f ms, %8llu RR sets, %3llu I/Os, spread %.1f\n",
                rr_result->stats.total_seconds * 1e3,
                static_cast<unsigned long long>(
                    rr_result->stats.rr_sets_loaded),
                static_cast<unsigned long long>(rr_result->stats.io_reads),
                rr_result->estimated_influence);
    std::printf("  IRR: %7.2f ms, %8llu RR sets, %3llu I/Os, spread %.1f\n",
                irr_result->stats.total_seconds * 1e3,
                static_cast<unsigned long long>(
                    irr_result->stats.rr_sets_loaded),
                static_cast<unsigned long long>(irr_result->stats.io_reads),
                irr_result->estimated_influence);
    std::printf("  top seeds:");
    for (size_t i = 0; i < std::min<size_t>(5, irr_result->seeds.size());
         ++i) {
      std::printf(" %u", irr_result->seeds[i]);
    }
    std::printf("\n\n");
  }

  // ---- Batch mode: the whole campaign in one call. ----
  // Ads share keywords, so BatchQuery loads each keyword's samples once.
  std::vector<Query> batch;
  for (const Ad& ad : ads) {
    Query q;
    for (const auto& word : ad.keywords) {
      const TopicId w = vocab.Find(word);
      if (w != kInvalidTopic) q.topics.push_back(w);
    }
    q.k = ad.k;
    batch.push_back(std::move(q));
  }
  WallTimer batch_timer;
  auto batch_results = rr.BatchQuery(batch);
  if (batch_results.ok()) {
    // Batch-level I/O is amortized across the results; the sum is the
    // true total the shared load paid.
    uint64_t batch_reads = 0;
    for (const auto& result : *batch_results) {
      batch_reads += result.stats.io_reads;
    }
    std::printf(
        "batch mode: all %zu ads answered in %.2f ms with %llu shared "
        "I/Os (individual RR queries above used %llu)\n",
        batch.size(), batch_timer.ElapsedMillis(),
        static_cast<unsigned long long>(batch_reads),
        static_cast<unsigned long long>(individual_reads));
  }
  return 0;
}

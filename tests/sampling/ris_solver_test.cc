#include "sampling/ris_solver.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "propagation/exact_spread.h"

namespace kbtim {
namespace {

OnlineSolverOptions FastOptions() {
  OnlineSolverOptions opts;
  opts.epsilon = 0.2;
  opts.seed = 21;
  opts.max_theta = 200000;
  opts.opt_estimate.pilot_initial = 4096;
  return opts;
}

TEST(RisSolverTest, NearOptimalPlainInfluenceOnFigure1) {
  const Figure1Graph fig = MakeFigure1Graph();
  RisSolver solver(fig.graph, PropagationModel::kIndependentCascade,
                   fig.in_edge_prob, FastOptions());
  auto result = solver.Solve(2);
  ASSERT_TRUE(result.ok());
  auto best = ExactBestSeedSet(
      fig.graph, PropagationModel::kIndependentCascade, fig.in_edge_prob, 2);
  ASSERT_TRUE(best.ok());
  auto got = ExactExpectedSpread(fig.graph,
                                 PropagationModel::kIndependentCascade,
                                 fig.in_edge_prob, result->seeds);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(*got, 0.85 * best->spread);
  EXPECT_NEAR(result->estimated_influence, *got,
              0.05 * std::max(1.0, *got));
}

TEST(RisSolverTest, QueryIndependenceReturnsSameSeeds) {
  // RIS has no notion of keywords: repeated solves give identical output
  // (the Table 8 observation that untargeted IM cannot adapt to ads).
  const Figure1Graph fig = MakeFigure1Graph();
  RisSolver solver(fig.graph, PropagationModel::kIndependentCascade,
                   fig.in_edge_prob, FastOptions());
  auto a = solver.Solve(3);
  auto b = solver.Solve(3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->seeds, b->seeds);
}

TEST(RisSolverTest, RejectsBadK) {
  const Figure1Graph fig = MakeFigure1Graph();
  RisSolver solver(fig.graph, PropagationModel::kIndependentCascade,
                   fig.in_edge_prob, FastOptions());
  EXPECT_FALSE(solver.Solve(0).ok());
  EXPECT_FALSE(solver.Solve(100).ok());
}

TEST(RisSolverTest, LinearThresholdModel) {
  const Figure1Graph fig = MakeFigure1Graph();
  const std::vector<float> lt = UniformIcProbabilities(fig.graph);
  RisSolver solver(fig.graph, PropagationModel::kLinearThreshold, lt,
                   FastOptions());
  auto result = solver.Solve(2);
  ASSERT_TRUE(result.ok());
  auto best = ExactBestSeedSet(fig.graph,
                               PropagationModel::kLinearThreshold, lt, 2);
  ASSERT_TRUE(best.ok());
  auto got = ExactExpectedSpread(
      fig.graph, PropagationModel::kLinearThreshold, lt, result->seeds);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(*got, 0.85 * best->spread);
}

}  // namespace
}  // namespace kbtim

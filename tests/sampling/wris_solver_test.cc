#include "sampling/wris_solver.h"

#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.h"
#include "propagation/exact_spread.h"
#include "testing/fixtures.h"

namespace kbtim {
namespace {

using testing::kBook;
using testing::kMusic;

class WrisSolverTest : public ::testing::Test {
 protected:
  WrisSolverTest()
      : fig_(MakeFigure1Graph()),
        profiles_(testing::MakeFigure1Profiles()),
        model_(&profiles_) {}

  OnlineSolverOptions FastOptions() const {
    OnlineSolverOptions opts;
    opts.epsilon = 0.2;
    opts.seed = 11;
    opts.max_theta = 200000;
    opts.opt_estimate.pilot_initial = 4096;
    return opts;
  }

  std::vector<double> PhiVector(const Query& q) const {
    std::vector<double> phi(7, 0.0);
    for (VertexId v = 0; v < 7; ++v) phi[v] = model_.Phi(v, q);
    return phi;
  }

  Figure1Graph fig_;
  ProfileStore profiles_;
  TfIdfModel model_;
};

TEST_F(WrisSolverTest, EstimatorIsNearlyUnbiasedOnFigure1) {
  // Lemma 1: F_θ(S)/θ · φ_Q is an unbiased estimator of E[I^Q(S)].
  // Compare the solver's internal estimate against exhaustive enumeration
  // of the targeted spread of the seeds it returned.
  const Query q{{kMusic, kBook}, 2};
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, FastOptions());
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->seeds.size(), 2u);

  const auto phi = PhiVector(q);
  auto exact = ExactExpectedSpread(fig_.graph,
                                   PropagationModel::kIndependentCascade,
                                   fig_.in_edge_prob, result->seeds, phi);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(result->estimated_influence, *exact,
              0.05 * std::max(1.0, *exact));
}

TEST_F(WrisSolverTest, SeedsAreNearOptimalForTargetedObjective) {
  const Query q{{kMusic}, 2};
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, FastOptions());
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok());

  const auto phi = PhiVector(q);
  auto best = ExactBestSeedSet(fig_.graph,
                               PropagationModel::kIndependentCascade,
                               fig_.in_edge_prob, 2, phi);
  ASSERT_TRUE(best.ok());
  auto got = ExactExpectedSpread(fig_.graph,
                                 PropagationModel::kIndependentCascade,
                                 fig_.in_edge_prob, result->seeds, phi);
  ASSERT_TRUE(got.ok());
  // (1 - 1/e - ε) with ε = 0.2 -> 43%; demand better on this toy instance.
  EXPECT_GE(*got, 0.8 * best->spread);
}

TEST_F(WrisSolverTest, WorksUnderLinearThreshold) {
  const std::vector<float> lt = UniformIcProbabilities(fig_.graph);
  const Query q{{kMusic, kBook}, 2};
  WrisSolver solver(fig_.graph, model_, PropagationModel::kLinearThreshold,
                    lt, FastOptions());
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok());
  const auto phi = PhiVector(q);
  auto best = ExactBestSeedSet(fig_.graph,
                               PropagationModel::kLinearThreshold, lt, 2,
                               phi);
  ASSERT_TRUE(best.ok());
  auto got = ExactExpectedSpread(fig_.graph,
                                 PropagationModel::kLinearThreshold, lt,
                                 result->seeds, phi);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(*got, 0.8 * best->spread);
}

TEST_F(WrisSolverTest, DeterministicForFixedSeed) {
  const Query q{{kMusic, kBook}, 2};
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, FastOptions());
  auto a = solver.Solve(q);
  auto b = solver.Solve(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->seeds, b->seeds);
  EXPECT_DOUBLE_EQ(a->estimated_influence, b->estimated_influence);
}

TEST_F(WrisSolverTest, StatsArepopulated) {
  const Query q{{kMusic}, 1};
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, FastOptions());
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.theta, 0u);
  EXPECT_EQ(result->stats.rr_sets_loaded, result->stats.theta);
  EXPECT_GT(result->stats.opt_lower_bound, 0.0);
  EXPECT_GE(result->stats.total_seconds, 0.0);
  ASSERT_EQ(result->marginal_gains.size(), 1u);
  EXPECT_NEAR(result->marginal_gains[0], result->estimated_influence,
              1e-9);
}

TEST_F(WrisSolverTest, RejectsMalformedQueries) {
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, FastOptions());
  EXPECT_FALSE(solver.Solve(Query{{}, 2}).ok());
  EXPECT_FALSE(solver.Solve(Query{{kMusic}, 0}).ok());
  EXPECT_FALSE(solver.Solve(Query{{kMusic}, 100}).ok());
  EXPECT_FALSE(solver.Solve(Query{{99}, 2}).ok());
  EXPECT_FALSE(solver.Solve(Query{{kMusic, kMusic}, 2}).ok());
}

TEST_F(WrisSolverTest, FailsWhenNoRelevantUsers) {
  // Topic "travel" (f only) works; a store with an unused topic fails.
  auto store = ProfileStore::FromTriplets(
      7, 3, std::vector<ProfileTriplet>{{0, 0, 1.0f}});
  ASSERT_TRUE(store.ok());
  TfIdfModel model(&*store);
  WrisSolver solver(fig_.graph, model,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, FastOptions());
  auto result = solver.Solve(Query{{2}, 1});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WrisSolverTest, SupportsArbitraryEdgeProbabilities) {
  // Footnote 3 of the paper: the methods are independent of how p(e) is
  // set. Run the full pipeline under trivalency IC weights.
  Rng rng(55);
  const std::vector<float> trivalency =
      TrivalencyIcProbabilities(fig_.graph, rng);
  const Query q{{kMusic}, 2};
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade, trivalency,
                    FastOptions());
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 2u);

  std::vector<double> phi(7, 0.0);
  for (VertexId v = 0; v < 7; ++v) phi[v] = model_.Phi(v, q);
  auto exact = ExactExpectedSpread(fig_.graph,
                                   PropagationModel::kIndependentCascade,
                                   trivalency, result->seeds, phi);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(result->estimated_influence, *exact,
              0.1 * std::max(1.0, *exact));
}

TEST_F(WrisSolverTest, MultiThreadedSamplingProducesGoodSeeds) {
  OnlineSolverOptions opts = FastOptions();
  opts.num_threads = 4;
  const Query q{{kMusic}, 2};
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, opts);
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok());
  const auto phi = PhiVector(q);
  auto best = ExactBestSeedSet(fig_.graph,
                               PropagationModel::kIndependentCascade,
                               fig_.in_edge_prob, 2, phi);
  ASSERT_TRUE(best.ok());
  auto got = ExactExpectedSpread(fig_.graph,
                                 PropagationModel::kIndependentCascade,
                                 fig_.in_edge_prob, result->seeds, phi);
  ASSERT_TRUE(got.ok());
  EXPECT_GE(*got, 0.8 * best->spread);
}

TEST_F(WrisSolverTest, RepeatedSolvesReuseWorkersDeterministically) {
  // The solver keeps its thread pool and per-slot samplers across a query
  // stream; results must not drift as state is reused.
  OnlineSolverOptions opts = FastOptions();
  opts.num_threads = 3;
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, opts);
  const Query a{{kMusic}, 2};
  const Query b{{kBook}, 1};
  auto first_a = solver.Solve(a);
  ASSERT_TRUE(first_a.ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(solver.Solve(b).ok());
    auto again = solver.Solve(a);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(first_a->seeds, again->seeds) << "round " << round;
    EXPECT_DOUBLE_EQ(first_a->estimated_influence,
                     again->estimated_influence);
  }
}

TEST_F(WrisSolverTest, ConcurrentSolveCallsAreSerializedSafely) {
  OnlineSolverOptions opts = FastOptions();
  opts.num_threads = 2;
  WrisSolver solver(fig_.graph, model_,
                    PropagationModel::kIndependentCascade,
                    fig_.in_edge_prob, opts);
  const Query q{{kMusic}, 2};
  auto expected = solver.Solve(q);
  ASSERT_TRUE(expected.ok());
  std::vector<int> failures(4, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        auto r = solver.Solve(q);
        if (!r.ok() || r->seeds != expected->seeds) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0);
}

}  // namespace
}  // namespace kbtim

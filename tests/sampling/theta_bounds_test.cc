#include "sampling/theta_bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"

namespace kbtim {
namespace {

TEST(ThetaBoundsTest, ThetaForQueryMatchesClosedForm) {
  const double eps = 0.1;
  const double phi_q = 1000.0;
  const uint64_t n = 10000;
  const uint64_t k = 10;
  const double opt = 50.0;
  const double expected =
      (8.0 + 2.0 * eps) * phi_q *
      (std::log(static_cast<double>(n)) + LogNChooseK(n, k) +
       std::log(2.0)) /
      (opt * eps * eps);
  EXPECT_EQ(ThetaForQuery(eps, phi_q, n, k, opt),
            static_cast<uint64_t>(std::ceil(expected)));
}

TEST(ThetaBoundsTest, ThetaShrinksWithLargerEpsilonAndOpt) {
  const uint64_t base = ThetaForQuery(0.1, 100, 1000, 5, 10);
  EXPECT_GT(base, ThetaForQuery(0.2, 100, 1000, 5, 10));
  EXPECT_GT(base, ThetaForQuery(0.1, 100, 1000, 5, 20));
  EXPECT_LT(base, ThetaForQuery(0.1, 200, 1000, 5, 10));
}

TEST(ThetaBoundsTest, DegenerateInputsGiveZero) {
  EXPECT_EQ(ThetaForQuery(0.0, 100, 1000, 5, 10), 0u);
  EXPECT_EQ(ThetaForQuery(0.1, 0, 1000, 5, 10), 0u);
  EXPECT_EQ(ThetaForQuery(0.1, 100, 1000, 5, 0), 0u);
  EXPECT_EQ(ThetaForQuery(0.1, 100, 0, 5, 10), 0u);
  EXPECT_EQ(ThetaForKeyword(0.1, 0, 1000, 100, 10), 0u);
}

TEST(ThetaBoundsTest, KeywordBoundScalesLikeQueryBound) {
  // ThetaForKeyword is the same formula with tf mass and per-keyword OPT.
  EXPECT_EQ(ThetaForKeyword(0.2, 500, 10000, 100, 25),
            ThetaForQuery(0.2, 500, 10000, 100, 25));
}

TEST(ThetaBoundsTest, ThetaQFromIndexReproducesExample5Ratios) {
  // Paper Example 5: θ_music = 9, θ_book = 6, RR-set ratio music:book = 9:4
  // (p_music = 9/13, p_book = 4/13) -> θ^Q = min(13, 19.5) = 13.
  const std::vector<std::pair<uint64_t, double>> entries = {
      {9, 9.0 / 13.0},
      {6, 4.0 / 13.0},
  };
  EXPECT_EQ(ThetaQFromIndex(entries), 13u);
}

TEST(ThetaBoundsTest, ThetaQSkipsZeroMassKeywords) {
  const std::vector<std::pair<uint64_t, double>> entries = {
      {100, 0.0},
      {50, 1.0},
  };
  EXPECT_EQ(ThetaQFromIndex(entries), 50u);
  const std::vector<std::pair<uint64_t, double>> all_zero = {{10, 0.0}};
  EXPECT_EQ(ThetaQFromIndex(all_zero), 0u);
}

TEST(ThetaBoundsTest, LogFactorMonotoneInK) {
  EXPECT_LT(ThetaLogFactor(100000, 10), ThetaLogFactor(100000, 100));
  // ln C(n,k) <= ln C(n, K) drives Lemma 3's K-vs-Q.k argument.
}

}  // namespace
}  // namespace kbtim

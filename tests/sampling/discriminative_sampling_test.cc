// Eqn. 7 / Lemma 2 as statistical properties: the discriminative
// per-keyword sampling scheme ps(v,w) mixed with weights p_w reproduces
// the query-level WRIS distribution ps(v,Q), which is what lets the index
// pre-sample per keyword offline without losing Theorem 2's guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sampling/vertex_sampler.h"
#include "testing/fixtures.h"

namespace kbtim {
namespace {

using testing::kBook;
using testing::kCar;
using testing::kMusic;

class DiscriminativeSamplingTest : public ::testing::Test {
 protected:
  DiscriminativeSamplingTest()
      : profiles_(testing::MakeFigure1Profiles()), model_(&profiles_) {}

  ProfileStore profiles_;
  TfIdfModel model_;
};

TEST_F(DiscriminativeSamplingTest, Eqn7MixtureDecompositionIsExact) {
  // ps(v,Q) = Σ_w ps(v,w) · p_w, checked algebraically per vertex.
  const Query q{{kMusic, kBook, kCar}, 2};
  const double phi_q = model_.PhiQ(q);
  for (VertexId v = 0; v < profiles_.num_users(); ++v) {
    double mixture = 0.0;
    for (TopicId w : q.topics) {
      const double tf_sum = profiles_.TopicTfSum(w);
      if (tf_sum <= 0.0) continue;
      const double ps_vw = profiles_.Tf(v, w) / tf_sum;
      mixture += ps_vw * model_.Pw(w, q);
    }
    const double ps_vq = model_.Phi(v, q) / phi_q;
    EXPECT_NEAR(mixture, ps_vq, 1e-9) << "vertex " << v;
  }
}

TEST_F(DiscriminativeSamplingTest, MixtureSamplingMatchesQuerySampling) {
  // Draw roots two ways — (a) directly with ps(v,Q), (b) keyword-first
  // with p_w then ps(v,w) — and compare empirical distributions.
  const Query q{{kMusic, kBook}, 2};
  auto query_sampler = WeightedVertexSampler::ForQuery(model_, q);
  ASSERT_TRUE(query_sampler.ok());
  std::vector<WeightedVertexSampler> keyword_samplers;
  std::vector<double> pw;
  for (TopicId w : q.topics) {
    auto s = WeightedVertexSampler::ForTopic(profiles_, w);
    ASSERT_TRUE(s.ok());
    keyword_samplers.push_back(std::move(*s));
    pw.push_back(model_.Pw(w, q));
  }

  constexpr int kDraws = 300000;
  Rng rng(17);
  std::vector<int> direct(profiles_.num_users(), 0);
  std::vector<int> mixture(profiles_.num_users(), 0);
  for (int i = 0; i < kDraws; ++i) {
    ++direct[query_sampler->Sample(rng)];
    // keyword-first draw
    const double u = rng.NextDouble();
    size_t pick = pw.size() - 1;
    double acc = 0.0;
    for (size_t j = 0; j < pw.size(); ++j) {
      acc += pw[j];
      if (u < acc) {
        pick = j;
        break;
      }
    }
    ++mixture[keyword_samplers[pick].Sample(rng)];
  }
  for (VertexId v = 0; v < profiles_.num_users(); ++v) {
    const double fa = static_cast<double>(direct[v]) / kDraws;
    const double fb = static_cast<double>(mixture[v]) / kDraws;
    EXPECT_NEAR(fa, fb, 0.01) << "vertex " << v;
    // And both match the analytic ps(v,Q).
    EXPECT_NEAR(fa, model_.Phi(v, q) / model_.PhiQ(q), 0.01);
  }
}

TEST_F(DiscriminativeSamplingTest, PwWeightsSumToOneAndOrderByMass) {
  const Query q{{kMusic, kBook, kCar}, 2};
  double sum = 0.0;
  for (TopicId w : q.topics) sum += model_.Pw(w, q);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // book has the largest φ_w in this fixture (high tf mass), so its p_w
  // should dominate music's and car's... verify ordering matches φ.
  std::vector<std::pair<double, TopicId>> order;
  for (TopicId w : q.topics) order.emplace_back(model_.PhiTopic(w), w);
  for (const auto& [phi, w] : order) {
    EXPECT_NEAR(model_.Pw(w, q), phi / model_.PhiQ(q), 1e-12);
  }
}

}  // namespace
}  // namespace kbtim

#include "common/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace kbtim {
namespace {

TEST(AliasTableTest, SamplesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  auto table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(1);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[table->Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, expected, 0.01)
        << "index " << i;
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  const std::vector<double> weights = {0.0, 1.0, 0.0, 1.0};
  auto table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t s = table->Sample(rng);
    ASSERT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, SingleElement) {
  auto table = AliasTable::FromWeights(std::vector<double>{42.0});
  ASSERT_TRUE(table.ok());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table->Sample(rng), 0u);
}

TEST(AliasTableTest, HighlySkewedWeights) {
  const std::vector<double> weights = {1e-9, 1.0};
  auto table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(4);
  int zero_draws = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table->Sample(rng) == 0) ++zero_draws;
  }
  EXPECT_LT(zero_draws, 10);
}

TEST(AliasTableTest, SampleAtMatchesInversionOnUniformWeights) {
  // Equal weights build the identity table (every column keeps its own
  // mass), so the inversion-point draw must reduce to floor(y·n) — the
  // exact-match bridge between the alias-LT and linear-LT walk kernels.
  const std::vector<double> weights(8, 0.125);
  auto table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 1000; ++i) {
    const double y = i / 1000.0;
    EXPECT_EQ(table->SampleAt(y), static_cast<uint32_t>(y * 8.0));
  }
  EXPECT_EQ(table->SampleAt(0.999999999), 7u);  // y ≈ 1 rounding guard
}

TEST(AliasTableTest, SampleAtReproducesWeightedDistribution) {
  // One uniform inversion point per draw must still yield weight[i] / Σ.
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  auto table = AliasTable::FromWeights(weights);
  ASSERT_TRUE(table.ok());
  Rng rng(5);
  std::vector<uint64_t> hits(4, 0);
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) ++hits[table->SampleAt(rng.NextDouble())];
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / kDraws, (i + 1) / 10.0,
                0.005)
        << "index " << i;
  }
}

TEST(AliasTableTest, RejectsInvalidWeights) {
  EXPECT_FALSE(AliasTable::FromWeights({}).ok());
  EXPECT_FALSE(AliasTable::FromWeights(std::vector<double>{0.0, 0.0}).ok());
  EXPECT_FALSE(AliasTable::FromWeights(std::vector<double>{1.0, -1.0}).ok());
  EXPECT_FALSE(
      AliasTable::FromWeights(std::vector<double>{1.0, std::nan("")}).ok());
}

}  // namespace
}  // namespace kbtim

// Property sweep for the WRIS solver on random tiny graphs where the exact
// targeted spread is computable by enumeration:
//   1. the Lemma-1 estimator tracks the true expected spread of the seeds,
//   2. the returned seeds stay within the greedy approximation band of the
//      brute-force optimum.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "propagation/exact_spread.h"
#include "sampling/wris_solver.h"
#include "topics/profile_generator.h"

namespace kbtim {
namespace {

struct PropertyCase {
  uint64_t seed;
  uint32_t num_vertices;
  double avg_degree;
  uint32_t num_topics;
};

class WrisPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(WrisPropertyTest, EstimatorTracksExactSpreadAndNearOptimal) {
  const PropertyCase& c = GetParam();
  // Tiny graph: keep edges <= 20 so exact IC enumeration is feasible.
  SocialGraphOptions gopts;
  gopts.num_vertices = c.num_vertices;
  gopts.avg_degree = c.avg_degree;
  gopts.num_communities = 2;
  gopts.seed = c.seed;
  auto sg = GenerateSocialGraph(gopts);
  ASSERT_TRUE(sg.ok());
  if (sg->graph.num_edges() > 20 || sg->graph.num_edges() == 0) {
    GTEST_SKIP() << "edge count " << sg->graph.num_edges()
                 << " outside enumeration budget";
  }
  const std::vector<float> probs = UniformIcProbabilities(sg->graph);

  ProfileGeneratorOptions popts;
  popts.num_topics = c.num_topics;
  popts.mean_topics_per_user = 2.0;
  popts.seed = c.seed + 1;
  auto profiles = GenerateProfiles(c.num_vertices, sg->community, popts);
  ASSERT_TRUE(profiles.ok());
  const TfIdfModel model(&*profiles);

  // Pick the most popular topic so the query has relevance mass.
  TopicId best_topic = 0;
  for (TopicId w = 1; w < c.num_topics; ++w) {
    if (profiles->TopicTfSum(w) > profiles->TopicTfSum(best_topic)) {
      best_topic = w;
    }
  }
  const Query q{{best_topic}, 2};
  std::vector<double> phi(c.num_vertices, 0.0);
  for (VertexId v = 0; v < c.num_vertices; ++v) phi[v] = model.Phi(v, q);

  OnlineSolverOptions opts;
  opts.epsilon = 0.2;
  opts.seed = c.seed + 2;
  opts.max_theta = 300000;
  opts.opt_estimate.pilot_initial = 4096;
  WrisSolver solver(sg->graph, model,
                    PropagationModel::kIndependentCascade, probs, opts);
  auto result = solver.Solve(q);
  ASSERT_TRUE(result.ok()) << result.status();

  auto exact = ExactExpectedSpread(sg->graph,
                                   PropagationModel::kIndependentCascade,
                                   probs, result->seeds, phi);
  ASSERT_TRUE(exact.ok()) << exact.status();
  // Lemma 1: the coverage-based estimate converges to the true spread.
  EXPECT_NEAR(result->estimated_influence, *exact,
              0.1 * std::max(0.5, *exact));

  auto best = ExactBestSeedSet(sg->graph,
                               PropagationModel::kIndependentCascade,
                               probs, 2, phi);
  ASSERT_TRUE(best.ok());
  // Far above the worst-case (1 - 1/e - ε) ≈ 0.43 band on toy instances.
  EXPECT_GE(*exact, 0.7 * best->spread);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTinyGraphs, WrisPropertyTest,
    ::testing::Values(PropertyCase{101, 10, 1.5, 3},
                      PropertyCase{202, 12, 1.2, 4},
                      PropertyCase{303, 9, 1.8, 3},
                      PropertyCase{404, 14, 1.0, 5},
                      PropertyCase{505, 11, 1.4, 2},
                      PropertyCase{606, 13, 1.1, 4}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace kbtim

#include "sampling/vertex_sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/fixtures.h"

namespace kbtim {
namespace {

using testing::kCar;
using testing::kMusic;

TEST(VertexSamplerTest, UniformCoversAllVertices) {
  auto sampler = WeightedVertexSampler::Uniform(5);
  ASSERT_TRUE(sampler.ok());
  EXPECT_DOUBLE_EQ(sampler->total_weight(), 5.0);
  Rng rng(1);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler->Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(VertexSamplerTest, ForTopicSamplesProportionalToTf) {
  const ProfileStore profiles = testing::MakeFigure1Profiles();
  auto sampler = WeightedVertexSampler::ForTopic(profiles, kMusic);
  ASSERT_TRUE(sampler.ok());
  // music mass: a=.5 b=.3 c=.6 d=.5, total 1.9.
  EXPECT_NEAR(sampler->total_weight(), 1.9, 1e-6);
  EXPECT_EQ(sampler->support_size(), 4u);
  Rng rng(2);
  std::vector<int> counts(7, 0);
  constexpr int kDraws = 190000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler->Sample(rng)];
  EXPECT_EQ(counts[4], 0);  // e has no music
  EXPECT_NEAR(counts[0], kDraws * 0.5 / 1.9, 1500);
  EXPECT_NEAR(counts[2], kDraws * 0.6 / 1.9, 1500);
}

TEST(VertexSamplerTest, ForQueryUsesPhiWeights) {
  const ProfileStore profiles = testing::MakeFigure1Profiles();
  const TfIdfModel model(&profiles);
  const Query q{{kMusic, kCar}, 2};
  auto sampler = WeightedVertexSampler::ForQuery(model, q);
  ASSERT_TRUE(sampler.ok());
  EXPECT_NEAR(sampler->total_weight(), model.PhiQ(q), 1e-9);
  Rng rng(3);
  std::vector<int> counts(7, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler->Sample(rng)];
  // Only users with music or car can be drawn: a,b,c,d,e (not f, g).
  EXPECT_EQ(counts[5], 0);
  EXPECT_EQ(counts[6], 0);
  for (VertexId v : {0u, 1u, 2u, 3u, 4u}) {
    const double expect = model.Phi(v, q) / model.PhiQ(q);
    EXPECT_NEAR(static_cast<double>(counts[v]) / kDraws, expect, 0.01)
        << "user " << v;
  }
}

TEST(VertexSamplerTest, ErrorsOnEmptySupport) {
  EXPECT_FALSE(WeightedVertexSampler::Uniform(0).ok());
  const ProfileStore profiles = testing::MakeFigure1Profiles();
  EXPECT_FALSE(WeightedVertexSampler::ForTopic(profiles, 99).ok());
  auto empty_store = ProfileStore::FromTriplets(3, 2, {});
  ASSERT_TRUE(empty_store.ok());
  EXPECT_FALSE(WeightedVertexSampler::ForTopic(*empty_store, 0).ok());
  const TfIdfModel model(&*empty_store);
  EXPECT_FALSE(
      WeightedVertexSampler::ForQuery(model, Query{{0}, 1}).ok());
}

}  // namespace
}  // namespace kbtim

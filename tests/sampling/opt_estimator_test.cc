#include "sampling/opt_estimator.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "propagation/exact_spread.h"
#include "testing/fixtures.h"

namespace kbtim {
namespace {

TEST(OptEstimatorTest, LowerBoundsTrueOptimumOnFigure1) {
  const Figure1Graph fig = MakeFigure1Graph();
  auto roots = WeightedVertexSampler::Uniform(7);
  ASSERT_TRUE(roots.ok());
  auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                               fig.graph, fig.in_edge_prob);
  auto best = ExactBestSeedSet(
      fig.graph, PropagationModel::kIndependentCascade, fig.in_edge_prob, 2);
  ASSERT_TRUE(best.ok());

  OptEstimateOptions opts;
  opts.k = 2;
  opts.pilot_initial = 4096;
  opts.seed = 1;
  auto estimate = EstimateOptLowerBound(fig.graph, *sampler, *roots, opts);
  ASSERT_TRUE(estimate.ok());
  // A valid lower bound (allowing the configured slack plus MC noise).
  EXPECT_LE(*estimate, best->spread * 1.05);
  // And not uselessly small: within ~3x of the optimum on this toy graph.
  EXPECT_GE(*estimate, best->spread / 3.0);
}

TEST(OptEstimatorTest, RespectsFloor) {
  const Figure1Graph fig = MakeFigure1Graph();
  auto roots = WeightedVertexSampler::Uniform(7);
  ASSERT_TRUE(roots.ok());
  auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                               fig.graph, fig.in_edge_prob);
  OptEstimateOptions opts;
  opts.k = 2;
  opts.pilot_initial = 256;
  opts.floor = 2.0;  // k seeds always influence themselves
  opts.seed = 2;
  auto estimate = EstimateOptLowerBound(fig.graph, *sampler, *roots, opts);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, 2.0);
}

TEST(OptEstimatorTest, WeightedRootsUseWeightMass) {
  const Figure1Graph fig = MakeFigure1Graph();
  const ProfileStore profiles = testing::MakeFigure1Profiles();
  auto roots = WeightedVertexSampler::ForTopic(profiles, testing::kMusic);
  ASSERT_TRUE(roots.ok());
  auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                               fig.graph, fig.in_edge_prob);
  OptEstimateOptions opts;
  opts.k = 2;
  opts.pilot_initial = 4096;
  opts.seed = 3;
  auto estimate = EstimateOptLowerBound(fig.graph, *sampler, *roots, opts);
  ASSERT_TRUE(estimate.ok());
  // Bounded by the total music tf mass (1.9) and positive.
  EXPECT_GT(*estimate, 0.0);
  EXPECT_LE(*estimate, 1.9 + 1e-9);
}

TEST(OptEstimatorTest, RejectsBadOptions) {
  const Figure1Graph fig = MakeFigure1Graph();
  auto roots = WeightedVertexSampler::Uniform(7);
  ASSERT_TRUE(roots.ok());
  auto sampler = MakeRrSampler(PropagationModel::kIndependentCascade,
                               fig.graph, fig.in_edge_prob);
  OptEstimateOptions opts;
  opts.k = 0;
  EXPECT_FALSE(
      EstimateOptLowerBound(fig.graph, *sampler, *roots, opts).ok());
  opts.k = 1;
  opts.pilot_initial = 0;
  EXPECT_FALSE(
      EstimateOptLowerBound(fig.graph, *sampler, *roots, opts).ok());
}

}  // namespace
}  // namespace kbtim

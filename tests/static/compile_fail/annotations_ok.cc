// Positive control for the negative-compile suite: correct use of every
// annotation pattern the codebase relies on must be ACCEPTED under
// -Werror=thread-safety and -Werror=unused-result. If this case fails,
// the WILL_FAIL cases prove nothing.
#include "common/mutex.h"
#include "common/status.h"

namespace {

kbtim::Status DoWork() { return kbtim::Status::OK(); }

class Service {
 public:
  void Submit(int value) EXCLUDES(mu_) {
    kbtim::MutexLock lock(&mu_);
    queue_depth_ += value;
    PublishLocked();
    work_ready_.NotifyOne();
  }

  void WaitForWork() EXCLUDES(mu_) {
    kbtim::MutexLock lock(&mu_);
    while (queue_depth_ == 0) work_ready_.Wait(&mu_);
    --queue_depth_;
  }

  // The PR 4 lock-order contract pattern: the stats path takes its own
  // mutex and is never entered with the queue lock held.
  void RecordOutcome() EXCLUDES(mu_, stats_mu_) {
    kbtim::MutexLock lock(&stats_mu_);
    ++completed_;
  }

  bool TryBump() EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    ++queue_depth_;
    mu_.Unlock();
    return true;
  }

 private:
  void PublishLocked() REQUIRES(mu_) { published_ = queue_depth_; }

  kbtim::Mutex mu_;
  kbtim::CondVar work_ready_;
  int queue_depth_ GUARDED_BY(mu_) = 0;
  int published_ GUARDED_BY(mu_) = 0;

  kbtim::Mutex stats_mu_;
  unsigned long completed_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace

int main() {
  Service service;
  service.Submit(1);
  service.WaitForWork();
  service.RecordOutcome();
  if (!service.TryBump()) return 1;
  kbtim::Status status = DoWork();
  if (!status.ok()) return 1;
  KBTIM_IGNORE_STATUS(DoWork());
  return 0;
}

// MUST NOT COMPILE (Clang, -Werror=thread-safety): writing a GUARDED_BY
// field without holding its mutex.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // error: writing value_ requires holding mu_
  }

 private:
  kbtim::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}

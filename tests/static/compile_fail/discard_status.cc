// MUST NOT COMPILE (any compiler, -Werror=unused-result): silently
// dropping a Status. The escape hatch for deliberate discards is
// KBTIM_IGNORE_STATUS (see common/status.h), which annotations_ok.cc
// proves still compiles.
#include "common/status.h"

namespace {

kbtim::Status DoWork() { return kbtim::Status::OK(); }

}  // namespace

int main() {
  DoWork();  // error: Status is [[nodiscard]]
  return 0;
}

// MUST NOT COMPILE (Clang, -Werror=thread-safety): calling a *Locked()
// helper annotated REQUIRES(mu_) without holding mu_ — the contract every
// internal helper in keyword_cache / query_service / failure_domain now
// carries.
#include "common/mutex.h"

namespace {

class Table {
 public:
  void Rebalance() {
    CompactLocked();  // error: requires holding mu_
  }

 private:
  void CompactLocked() REQUIRES(mu_) { ++generation_; }

  kbtim::Mutex mu_;
  int generation_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table table;
  table.Rebalance();
  return 0;
}

// MUST NOT COMPILE (Clang, -Werror=thread-safety): nesting the stats
// mutex under the queue mutex. This replicates QueryService's PR 4
// lock-order contract — "stats_mu_ is never nested under mu_" — which the
// EXCLUDES annotations turn from a comment into a compile error.
#include "common/mutex.h"

namespace {

class Service {
 public:
  void CompleteRequest() EXCLUDES(mu_) {
    kbtim::MutexLock lock(&mu_);
    --in_flight_;
    RecordOutcome();  // error: RecordOutcome requires mu_ NOT held
  }

 private:
  void RecordOutcome() EXCLUDES(mu_, stats_mu_) {
    kbtim::MutexLock lock(&stats_mu_);
    ++completed_;
  }

  kbtim::Mutex mu_;
  int in_flight_ GUARDED_BY(mu_) = 0;

  kbtim::Mutex stats_mu_;
  unsigned long completed_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace

int main() {
  Service service;
  service.CompleteRequest();
  return 0;
}

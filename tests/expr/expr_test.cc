#include <gtest/gtest.h>

#include <sstream>

#include "expr/datasets.h"
#include "expr/table_printer.h"
#include "expr/workload.h"

namespace kbtim {
namespace {

TEST(DatasetsTest, SeriesMirrorPaperTable2Trends) {
  const auto news = NewsLikeSeries();
  const auto twitter = TwitterLikeSeries();
  ASSERT_EQ(news.size(), 4u);
  ASSERT_EQ(twitter.size(), 4u);
  // Vertex counts grow; average-degree targets shrink within each series.
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GT(news[i].graph.num_vertices, news[i - 1].graph.num_vertices);
    EXPECT_LT(news[i].graph.avg_degree, news[i - 1].graph.avg_degree);
    EXPECT_GT(twitter[i].graph.num_vertices,
              twitter[i - 1].graph.num_vertices);
    EXPECT_LT(twitter[i].graph.avg_degree,
              twitter[i - 1].graph.avg_degree);
  }
  // Twitter-like is much denser than news-like at every step.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GT(twitter[i].graph.avg_degree, 5 * news[i].graph.avg_degree);
  }
  EXPECT_EQ(DefaultNewsSpec().name, news.back().name);
  EXPECT_EQ(DefaultTwitterSpec().name, twitter.back().name);
}

TEST(DatasetsTest, BuildDatasetProducesConsistentPieces) {
  DatasetSpec spec = NewsLikeSeries(12)[0];
  spec.graph.num_vertices = 3000;
  auto dataset = BuildDataset(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->graph.num_vertices(), 3000u);
  EXPECT_EQ(dataset->community.size(), 3000u);
  EXPECT_EQ(dataset->profiles.num_users(), 3000u);
  EXPECT_EQ(dataset->profiles.num_topics(), 12u);
}

TEST(EnvironmentTest, CreatesAllDerivedState) {
  DatasetSpec spec = NewsLikeSeries(10)[0];
  spec.graph.num_vertices = 2000;
  auto env = Environment::Create(spec);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ((*env)->graph().num_vertices(), 2000u);
  EXPECT_EQ((*env)->ic_probs().size(), (*env)->graph().num_edges());
  EXPECT_EQ((*env)->lt_weights().size(), (*env)->graph().num_edges());
  // LT weights of each vertex's in-edges sum to ~1.
  const Graph& g = (*env)->graph();
  for (VertexId v = 0; v < 50; ++v) {
    auto [first, last] = g.InEdgeRange(v);
    if (first == last) continue;
    double sum = 0.0;
    for (uint64_t i = first; i < last; ++i) {
      sum += (*env)->lt_weights()[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  // Queries come back non-empty and valid.
  QueryGeneratorOptions qopts;
  qopts.queries_per_length = 2;
  qopts.max_keywords = 3;
  auto queries = (*env)->Queries(qopts);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 6u);
}

TEST(TablePrinterTest, AlignsColumnsAndPadsMissingCells) {
  TablePrinter table({"aa", "bbbb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("aa"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  // Header, underline, two rows.
  int lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0 MB");
  EXPECT_EQ(FormatSeconds(0.0125), "0.013 s");
}

TEST(QueryAggregatorTest, ComputesMeans) {
  QueryAggregator agg;
  SeedSetResult a, b;
  a.stats.total_seconds = 1.0;
  a.stats.rr_sets_loaded = 100;
  a.stats.io_reads = 4;
  a.estimated_influence = 10.0;
  b.stats.total_seconds = 3.0;
  b.stats.rr_sets_loaded = 300;
  b.stats.io_reads = 8;
  b.estimated_influence = 30.0;
  agg.Add(a);
  agg.Add(b);
  const QueryAggregate out = agg.Finish();
  EXPECT_EQ(out.queries, 2u);
  EXPECT_DOUBLE_EQ(out.mean_seconds, 2.0);
  EXPECT_DOUBLE_EQ(out.mean_rr_sets_loaded, 200.0);
  EXPECT_DOUBLE_EQ(out.mean_io_reads, 6.0);
  EXPECT_DOUBLE_EQ(out.mean_influence, 20.0);
}

TEST(QueryAggregatorTest, EmptyAggregateIsZero) {
  QueryAggregator agg;
  const QueryAggregate out = agg.Finish();
  EXPECT_EQ(out.queries, 0u);
  EXPECT_DOUBLE_EQ(out.mean_seconds, 0.0);
}

}  // namespace
}  // namespace kbtim

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/edge_list_io.h"
#include "graph/generators.h"

namespace kbtim {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kbtim_graph_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, BinaryRoundTrip) {
  auto g = GenerateErdosRenyi(500, 4.0, 7);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("g.bin");
  ASSERT_TRUE(SaveGraphBinary(*g, path).ok());
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    auto a = g->OutNeighbors(v);
    auto b = loaded->OutNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
  }
}

TEST_F(GraphIoTest, LoadRejectsBadMagic) {
  const std::string path = Path("bad.bin");
  std::ofstream(path) << "not a graph";
  auto loaded = LoadGraphBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, LoadRejectsTruncatedFile) {
  auto g = GenerateErdosRenyi(100, 3.0, 9);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("trunc.bin");
  ASSERT_TRUE(SaveGraphBinary(*g, path).ok());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  auto loaded = LoadGraphBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(GraphIoTest, LoadMissingFileIsIOError) {
  auto loaded = LoadGraphBinary(Path("nope.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(GraphIoTest, EdgeListTextRoundTrip) {
  auto g = GenerateErdosRenyi(200, 3.0, 11);
  ASSERT_TRUE(g.ok());
  const std::string path = Path("g.txt");
  ASSERT_TRUE(SaveEdgeListText(*g, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  // Vertex ids are remapped by first occurrence, so compare counts only.
  EXPECT_EQ(loaded->num_edges(), g->num_edges());
  EXPECT_LE(loaded->num_vertices(), g->num_vertices());
}

TEST_F(GraphIoTest, EdgeListParsesSnapStyleComments) {
  const std::string path = Path("snap.txt");
  std::ofstream(path) << "# Directed graph\n"
                      << "# Nodes: 3 Edges: 2\n"
                      << "10 20\n"
                      << "20 30\n";
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 3u);
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_TRUE(loaded->HasEdge(0, 1));  // 10 -> 20 remapped
  EXPECT_TRUE(loaded->HasEdge(1, 2));  // 20 -> 30 remapped
}

TEST_F(GraphIoTest, EdgeListRejectsGarbageLines) {
  const std::string path = Path("garbage.txt");
  std::ofstream(path) << "1 2\nhello world\n";
  auto loaded = LoadEdgeListText(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace kbtim

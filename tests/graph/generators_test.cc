#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace kbtim {
namespace {

TEST(SocialGraphTest, RespectsSizeAndApproximateDensity) {
  SocialGraphOptions opts;
  opts.num_vertices = 5000;
  opts.avg_degree = 8.0;
  opts.seed = 3;
  auto sg = GenerateSocialGraph(opts);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->graph.num_vertices(), 5000u);
  // Dedup of reciprocal duplicates loses a few edges; allow 25% slack.
  EXPECT_GT(sg->graph.AverageDegree(), 0.75 * opts.avg_degree);
  EXPECT_LT(sg->graph.AverageDegree(), 1.25 * opts.avg_degree);
}

TEST(SocialGraphTest, CommunityLabelsInRange) {
  SocialGraphOptions opts;
  opts.num_vertices = 1000;
  opts.num_communities = 7;
  opts.seed = 4;
  auto sg = GenerateSocialGraph(opts);
  ASSERT_TRUE(sg.ok());
  ASSERT_EQ(sg->community.size(), 1000u);
  for (uint32_t c : sg->community) EXPECT_LT(c, 7u);
}

TEST(SocialGraphTest, DeterministicForEqualSeeds) {
  SocialGraphOptions opts;
  opts.num_vertices = 800;
  opts.seed = 99;
  auto a = GenerateSocialGraph(opts);
  auto b = GenerateSocialGraph(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
  EXPECT_EQ(a->community, b->community);
  for (VertexId v = 0; v < 800; ++v) {
    auto na = a->graph.OutNeighbors(v);
    auto nb = b->graph.OutNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(na.begin(), na.end()),
              std::vector<VertexId>(nb.begin(), nb.end()));
  }
}

TEST(SocialGraphTest, HeavyTailedInDegree) {
  SocialGraphOptions opts;
  opts.num_vertices = 20000;
  opts.avg_degree = 10.0;
  opts.seed = 5;
  auto sg = GenerateSocialGraph(opts);
  ASSERT_TRUE(sg.ok());
  const DegreeStats stats = ComputeDegreeStats(sg->graph);
  // A heavy-tailed graph has hubs far above the mean...
  EXPECT_GT(stats.max_in_degree, 20 * stats.avg_degree);
  // ...and a log-log histogram with clearly negative slope (Figure 4).
  // Random edge orientation dilutes the in-degree tail relative to a pure
  // Yule process, so the binned slope lands around -0.6.
  EXPECT_LT(PowerLawSlope(sg->graph), -0.5);
}

TEST(SocialGraphTest, IntraCommunityFractionBiasesEdges) {
  SocialGraphOptions opts;
  opts.num_vertices = 4000;
  opts.num_communities = 8;
  opts.intra_community_fraction = 0.9;
  opts.seed = 6;
  auto sg = GenerateSocialGraph(opts);
  ASSERT_TRUE(sg.ok());
  uint64_t intra = 0, total = 0;
  for (VertexId u = 0; u < sg->graph.num_vertices(); ++u) {
    for (VertexId v : sg->graph.OutNeighbors(u)) {
      ++total;
      if (sg->community[u] == sg->community[v]) ++intra;
    }
  }
  // Uniform assignment would give ~1/8 = 12.5% intra edges.
  EXPECT_GT(static_cast<double>(intra) / total, 0.5);
}

TEST(SocialGraphTest, RejectsBadOptions) {
  SocialGraphOptions opts;
  opts.num_vertices = 0;
  EXPECT_FALSE(GenerateSocialGraph(opts).ok());
  opts.num_vertices = 10;
  opts.avg_degree = 0;
  EXPECT_FALSE(GenerateSocialGraph(opts).ok());
  opts.avg_degree = 2;
  opts.num_communities = 0;
  EXPECT_FALSE(GenerateSocialGraph(opts).ok());
}

TEST(ErdosRenyiTest, ApproximateDensityAndRange) {
  auto g = GenerateErdosRenyi(2000, 5.0, 8);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 2000u);
  EXPECT_GT(g->AverageDegree(), 4.5);
  EXPECT_LE(g->AverageDegree(), 5.0);
}

TEST(ErdosRenyiTest, RejectsTinyGraph) {
  EXPECT_FALSE(GenerateErdosRenyi(1, 1.0, 1).ok());
}

TEST(Figure1Test, StructureMatchesReconstruction) {
  const Figure1Graph fig = MakeFigure1Graph();
  constexpr VertexId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6;
  EXPECT_EQ(fig.graph.num_vertices(), 7u);
  EXPECT_EQ(fig.graph.num_edges(), 8u);
  EXPECT_TRUE(fig.graph.HasEdge(e, a));
  EXPECT_TRUE(fig.graph.HasEdge(e, b));
  EXPECT_TRUE(fig.graph.HasEdge(g, b));
  EXPECT_TRUE(fig.graph.HasEdge(a, b));
  EXPECT_TRUE(fig.graph.HasEdge(e, c));
  EXPECT_TRUE(fig.graph.HasEdge(b, c));
  EXPECT_TRUE(fig.graph.HasEdge(b, d));
  EXPECT_TRUE(fig.graph.HasEdge(f, d));
  ASSERT_EQ(fig.in_edge_prob.size(), fig.graph.num_edges());
  // Exactly one certain edge (e -> a); everything else 0.5.
  int ones = 0;
  for (float p : fig.in_edge_prob) {
    if (p == 1.0f) {
      ++ones;
    } else {
      EXPECT_FLOAT_EQ(p, 0.5f);
    }
  }
  EXPECT_EQ(ones, 1);
}

}  // namespace
}  // namespace kbtim

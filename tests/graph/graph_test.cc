#include "graph/graph.h"

#include <gtest/gtest.h>

#include <vector>

namespace kbtim {
namespace {

std::vector<Edge> DiamondEdges() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  return {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
}

TEST(GraphTest, BasicConstruction) {
  auto g = Graph::FromEdges(4, DiamondEdges());
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 4u);
  EXPECT_EQ(g->num_edges(), 4u);
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->InDegree(0), 0u);
  EXPECT_EQ(g->InDegree(3), 2u);
  EXPECT_EQ(g->OutDegree(3), 0u);
  EXPECT_DOUBLE_EQ(g->AverageDegree(), 1.0);
}

TEST(GraphTest, NeighborListsAreSorted) {
  auto g = Graph::FromEdges(5, std::vector<Edge>{
                                   {0, 4}, {0, 1}, {0, 3}, {2, 0}, {1, 0}});
  ASSERT_TRUE(g.ok());
  auto out0 = g->OutNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(out0.begin(), out0.end()),
            (std::vector<VertexId>{1, 3, 4}));
  auto in0 = g->InNeighbors(0);
  EXPECT_EQ(std::vector<VertexId>(in0.begin(), in0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(GraphTest, DropsSelfLoopsAndDuplicates) {
  auto g = Graph::FromEdges(
      3, std::vector<Edge>{{0, 1}, {0, 1}, {1, 1}, {1, 2}, {1, 2}, {2, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
  EXPECT_FALSE(g->HasEdge(1, 1));
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  auto g = Graph::FromEdges(2, std::vector<Edge>{{0, 2}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, EmptyGraph) {
  auto g = Graph::FromEdges(3, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 0u);
  EXPECT_TRUE(g->OutNeighbors(1).empty());
}

TEST(GraphTest, InEdgeRangeAlignsWithInNeighbors) {
  auto g = Graph::FromEdges(4, DiamondEdges());
  ASSERT_TRUE(g.ok());
  uint64_t total = 0;
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    auto [first, last] = g->InEdgeRange(v);
    EXPECT_EQ(last - first, g->InDegree(v));
    EXPECT_EQ(first, total);
    total = last;
  }
  EXPECT_EQ(total, g->num_edges());
}

TEST(GraphTest, HasEdgeHandlesOutOfRange) {
  auto g = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->HasEdge(5, 0));
  EXPECT_FALSE(g->HasEdge(0, 5));
}

TEST(GraphTest, FromCsrRoundTrip) {
  auto g = Graph::FromEdges(4, DiamondEdges());
  ASSERT_TRUE(g.ok());
  auto g2 = Graph::FromCsr(g->out_offsets(), g->out_neighbors(),
                           g->in_offsets(), g->in_neighbors());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), g->num_edges());
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(g2->OutDegree(v), g->OutDegree(v));
    EXPECT_EQ(g2->InDegree(v), g->InDegree(v));
  }
}

TEST(GraphTest, FromCsrRejectsInconsistentArrays) {
  auto g = Graph::FromEdges(4, DiamondEdges());
  ASSERT_TRUE(g.ok());
  // Neighbor id out of range.
  auto bad_neighbors = g->out_neighbors();
  bad_neighbors[0] = 99;
  auto r1 = Graph::FromCsr(g->out_offsets(), bad_neighbors, g->in_offsets(),
                           g->in_neighbors());
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCorruption);
  // Mismatched edge counts.
  auto short_in = g->in_neighbors();
  short_in.pop_back();
  auto r2 = Graph::FromCsr(g->out_offsets(), g->out_neighbors(),
                           g->in_offsets(), short_in);
  EXPECT_FALSE(r2.ok());
  // Non-monotone offsets.
  auto bad_offsets = g->out_offsets();
  std::swap(bad_offsets[1], bad_offsets[2]);
  auto r3 = Graph::FromCsr(bad_offsets, g->out_neighbors(), g->in_offsets(),
                           g->in_neighbors());
  EXPECT_FALSE(r3.ok());
}

}  // namespace
}  // namespace kbtim

#include "graph/stats.h"

#include <gtest/gtest.h>

namespace kbtim {
namespace {

Graph StarGraph(uint32_t leaves) {
  // leaves vertices all pointing at vertex 0.
  std::vector<Edge> edges;
  for (uint32_t i = 1; i <= leaves; ++i) edges.push_back({i, 0});
  auto g = Graph::FromEdges(leaves + 1, edges);
  return std::move(g).value();
}

TEST(StatsTest, DegreeStatsOnStar) {
  const Graph g = StarGraph(9);
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.max_in_degree, 9u);
  EXPECT_EQ(s.max_out_degree, 1u);
  EXPECT_NEAR(s.avg_degree, 0.9, 1e-9);
  EXPECT_NEAR(s.frac_in_isolated, 0.9, 1e-9);
}

TEST(StatsTest, InDegreeHistogramExact) {
  const Graph g = StarGraph(4);
  const auto hist = InDegreeHistogram(g);
  // 4 leaves with in-degree 0, one hub with in-degree 4.
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<uint32_t, uint64_t>{0, 4}));
  EXPECT_EQ(hist[1], (std::pair<uint32_t, uint64_t>{4, 1}));
}

TEST(StatsTest, LogBinnedHistogramSkipsZeroDegrees) {
  const Graph g = StarGraph(8);
  const auto bins = LogBinnedInDegreeHistogram(g);
  ASSERT_EQ(bins.size(), 1u);  // one vertex with in-degree 8 -> bin [8,16)
  EXPECT_EQ(bins[0].second, 1u);
  EXPECT_GE(bins[0].first, 8.0);
  EXPECT_LE(bins[0].first, 16.0);
}

TEST(StatsTest, EmptyGraphStats) {
  auto g = Graph::FromEdges(0, {});
  ASSERT_TRUE(g.ok());
  const DegreeStats s = ComputeDegreeStats(*g);
  EXPECT_EQ(s.max_in_degree, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
  EXPECT_DOUBLE_EQ(PowerLawSlope(*g), 0.0);
}

TEST(StatsTest, PowerLawSlopeNegativeForSkewedGraph) {
  // Hand-build a graph whose in-degree histogram decays: many degree-1,
  // fewer degree-4, one degree-16 vertex.
  std::vector<Edge> edges;
  VertexId next = 3;  // vertices 0,1,2 are targets
  auto add_sources = [&](VertexId target, uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) edges.push_back({next++, target});
  };
  add_sources(0, 16);
  add_sources(1, 4);
  add_sources(2, 4);
  const uint32_t n = next + 40;  // plus degree-0 padding
  // Give 30 of the padding vertices in-degree 1.
  for (uint32_t i = 0; i < 30; ++i) {
    edges.push_back({0, next + i});
  }
  auto g = Graph::FromEdges(n, edges);
  ASSERT_TRUE(g.ok());
  EXPECT_LT(PowerLawSlope(*g), -0.5);
}

}  // namespace
}  // namespace kbtim
